//! Strong-scaling study on both machines (the Fig. 10 experiment) for
//! one matrix of your choice (default: the nlpkkt160 analog).
//!
//! Run with: `cargo run --release --example dgx_scaling [matrix-name]`

use mgpu_sptrsv::prelude::*;
use sparsemat::corpus;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "nlpkkt160".into());
    let nm = corpus::by_name_scaled(&name, 12_000, 240_000)
        .unwrap_or_else(|| panic!("unknown corpus matrix {name}; see corpus::all_names()"));
    println!(
        "{}: n = {}, nnz = {}, levels = {}, parallelism = {:.0}, dependency = {:.1}",
        nm.name,
        nm.achieved.rows,
        nm.achieved.nnz,
        nm.achieved.levels,
        nm.achieved.parallelism,
        nm.achieved.dependency
    );
    let (_, b) = sptrsv::verify::rhs_for(&nm.matrix, 99);

    // baseline: single-GPU csrsv2-style level-set solver
    let base = sptrsv::solve(
        &nm.matrix,
        &b,
        MachineConfig::dgx1(1),
        &SolveOptions { kind: SolverKind::LevelSet, ..Default::default() },
    )
    .expect("baseline");
    println!("csrsv2 baseline: {} ({} levels)\n", base.timings.total, base.kernels);

    println!(
        "{:<8} {:>14} {:>10} {:>12} {:>12}",
        "machine", "total", "speedup", "gets", "nvlink KB"
    );
    for gpus in [1usize, 2, 3, 4] {
        let r = sptrsv::solve(
            &nm.matrix,
            &b,
            MachineConfig::dgx1(gpus),
            &SolveOptions { kind: SolverKind::ZeroCopyTotal { total: 32 }, ..Default::default() },
        )
        .expect("dgx1 run");
        println!(
            "DGX1x{gpus}   {:>14} {:>10.2} {:>12} {:>12}",
            r.timings.total.to_string(),
            r.speedup_over(&base),
            r.stats.shmem.total_gets(),
            r.stats.nvlink_bytes / 1024,
        );
    }
    for gpus in [4usize, 8, 16] {
        let r = sptrsv::solve(
            &nm.matrix,
            &b,
            MachineConfig::dgx2(gpus),
            &SolveOptions { kind: SolverKind::ZeroCopyTotal { total: 32 }, ..Default::default() },
        )
        .expect("dgx2 run");
        println!(
            "DGX2x{gpus:<2}  {:>14} {:>10.2} {:>12} {:>12}",
            r.timings.total.to_string(),
            r.speedup_over(&base),
            r.stats.shmem.total_gets(),
            r.stats.switch_bytes / 1024,
        );
    }
}
