//! Chain-fused execution on a deep/narrow factor — the Schedule IR at
//! work.
//!
//! Factors from strongly sequential problems (chained subdomains,
//! long-recurrence ILU factors) are thousands of levels deep with
//! single-digit level widths. The per-level barrier schedule pays two
//! synchronizations per level there — pure overhead, since a narrow
//! level has no parallelism to buy. The warm path's Schedule IR
//! ([`sptrsv::Schedule`]) fuses consecutive narrow levels into
//! **chains**: a fused chain runs on one worker in canonical
//! level-major order with zero internal barriers, wide levels keep the
//! owner-computes sharded path, and barriers land only at chain
//! boundaries.
//!
//! Three scenes:
//!  1. **the schedule itself** — the reported [`sptrsv::ScheduleStats`]
//!     of the default tuning against `chain_width_threshold: 0` (the
//!     historical per-level schedule): same levels, a fraction of the
//!     chains, ≥ 5× fewer barriers per solve;
//!  2. **bit-identity** — the chain-fused sharded tier against the
//!     serial replay for every worker count 1–8, exact to the last bit
//!     by construction (a fused chain's instruction stream is the
//!     serial replay's subsequence);
//!  3. **refresh safety** — `refresh_values` rewrites the numeric
//!     arrays while the Schedule IR stays untouched, and the fused
//!     replay is bit-identical to a cold rebuild on the new values.
//!
//! Run with: `cargo run --release --example chain_fused`

use mgpu_sptrsv::prelude::*;

fn main() {
    // ~1000 levels deep, ~6 rows wide: the deep/narrow regime
    let m = sparsemat::gen::deep_narrow(1_000, 6, 3.2, 21);
    let (_, b) = sptrsv::verify::rhs_for(&m, 7);
    println!("deep/narrow factor: n = {}, nnz = {}", m.n(), m.nnz());

    // --- scene 1: the schedule itself ---------------------------------
    let opts = SolveOptions { kind: SolverKind::ZeroCopy { per_gpu: 8 }, ..Default::default() };
    let per_level_opts = SolveOptions { chain_width_threshold: 0, ..opts.clone() };
    let fused = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).expect("engine");
    let per_level =
        SolverEngine::build(&m, MachineConfig::dgx1(4), &per_level_opts).expect("engine");
    let fs = fused.solve(&b).expect("solve").schedule.expect("schedule stats");
    let ps = per_level.solve(&b).expect("solve").schedule.expect("schedule stats");
    println!(
        "default tuning (threshold {}): {} levels -> {} chains ({} fused levels, {:.1}% of all), \
         {} barriers/solve",
        fused.options().chain_width_threshold,
        fs.levels,
        fs.chains,
        fs.fused_levels,
        fs.fused_fraction * 100.0,
        fs.barriers_per_solve,
    );
    println!(
        "threshold 0 (per-level)     : {} levels -> {} chains, {} barriers/solve",
        ps.levels, ps.chains, ps.barriers_per_solve,
    );
    assert_eq!(fs.levels, ps.levels, "fusion changes chains, never levels");
    assert!(
        ps.barriers_per_solve >= 5 * fs.barriers_per_solve.max(1),
        "the deep/narrow regime must cut barriers at least 5x"
    );

    // --- scene 2: bit-identity across worker counts -------------------
    let serial = fused.solve(&b).expect("solve").x;
    let mut ws = SolveWorkspace::new();
    let mut out = vec![0.0f64; m.n()];
    for workers in 1..=8usize {
        out.fill(f64::NAN);
        fused.solve_sharded_into(&b, &mut out, &mut ws, workers).expect("sharded");
        assert_eq!(out, serial, "workers={workers}: chain-fused bits");
    }
    println!("chain-fused replay bit-identical to serial for workers 1..=8");

    // --- scene 3: refresh leaves the schedule untouched ---------------
    let mut m2 = m.clone();
    for (i, v) in m2.values_mut().iter_mut().enumerate() {
        *v *= 1.0 + ((i % 5) as f64) * 0.02;
    }
    let refresh = fused.refresh_values(&m2).expect("refresh");
    let cold = SolverEngine::build(&m2, MachineConfig::dgx1(4), &opts).expect("cold engine");
    let expect = cold.solve(&b).expect("solve").x;
    for workers in 1..=8usize {
        out.fill(f64::NAN);
        fused.solve_sharded_into(&b, &mut out, &mut ws, workers).expect("sharded");
        assert_eq!(out, expect, "workers={workers}: bits after refresh");
    }
    let after = fused.solve(&b).expect("solve").schedule.expect("schedule stats");
    assert_eq!(after, fs, "a value refresh must not touch the Schedule IR");
    println!(
        "epoch {} serves the new values through the SAME schedule — bit-identical to a cold build",
        refresh.value_epoch
    );
}
