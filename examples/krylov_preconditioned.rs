//! The paper's §I workload, end to end through the `krylov`
//! subsystem: PCG and BiCGSTAB with an ILU(0) preconditioner whose
//! forward/backward triangular solves run on a warm
//! [`PreconditionerEngine`] — two `SolverEngine`s (unit-lower `L`,
//! upper `U`) built once over one shared worker pool, then applied on
//! every Krylov iteration through the zero-allocation `apply_into`
//! path.
//!
//! Contrast with `examples/preconditioner_loop.rs`, which hand-rolls
//! the CG recurrence: here the drivers, the SpMV kernel and the
//! preconditioner pairing all come from the library, and the example
//! prints the amortization ledger the engines' calibration reports
//! price out — the analysis phase charged once versus on every one of
//! the `2 × iterations` triangular solves.
//!
//! Run with: `cargo run --release --example krylov_preconditioned`

use mgpu_sptrsv::prelude::*;
use sparsemat::factor::ilu0;
use sptrsv::krylov::{bicgstab, pcg, KrylovOptions, PreconditionerEngine};
use std::time::Instant;

fn main() {
    // An SPD system: 96x96 grid Laplacian, 9,216 unknowns.
    let a = sparsemat::gen::grid_laplacian(96, 96);
    println!("system: n = {}, nnz = {}", a.n(), a.nnz());

    let f = ilu0(&a, 1e-8).expect("factorization");

    // --- analysis phase, exactly once per factorization ---------------
    let t_build = Instant::now();
    let opts = SolveOptions {
        kind: SolverKind::ZeroCopy { per_gpu: 8 },
        verify: false,
        ..SolveOptions::default()
    };
    let pre = PreconditionerEngine::from_ilu0(&f, MachineConfig::dgx1(4), &opts)
        .expect("L/U engine pair");
    println!("engine pair built (analysis + calibration, shared pool): {:?}", t_build.elapsed());

    let b: Vec<f64> = (0..a.n()).map(|i| ((i % 23) as f64 - 11.0) / 11.0).collect();
    let kopts = KrylovOptions { max_iterations: 400, rel_tol: 1e-10 };

    // --- PCG ----------------------------------------------------------
    let t = Instant::now();
    let rep = pcg(&a, &b, &pre, &kopts).expect("pcg");
    let wall = t.elapsed();
    println!(
        "\npcg: converged={} in {} iterations, rel residual {:.3e}, {wall:?}",
        rep.converged,
        rep.iterations,
        rep.final_rel_residual()
    );
    for (k, h) in rep.residual_history.iter().enumerate().step_by(8) {
        println!("  iter {k:>3}: |r|/|b| = {h:.3e}");
    }

    // --- BiCGSTAB on the same operator --------------------------------
    let rep2 = bicgstab(&a, &b, &pre, &kopts).expect("bicgstab");
    println!(
        "bicgstab: converged={} in {} iterations, rel residual {:.3e}",
        rep2.converged,
        rep2.iterations,
        rep2.final_rel_residual()
    );

    // --- the amortization ledger --------------------------------------
    // Every warm application replays the same value-independent
    // timeline, so the virtual cost of the preconditioner loop is the
    // calibration timings times the solve count — with the analysis
    // phase charged once (§II-B) or, naively, on every application.
    // PCG applies M⁻¹ once per iteration (the initial apply replaces
    // the skipped one of the exit iteration); BiCGSTAB applies twice
    // per full iteration (p̂ and ŝ — one fewer on a half-step exit,
    // which this run's trajectory does not take).
    let lt = pre.forward().calibration().expect("simulated").timings;
    let ut = pre.backward().calibration().expect("simulated").timings;
    let applications = (rep.iterations + 2 * rep2.iterations) as u64;
    let amortized = lt.total.as_ns()
        + ut.total.as_ns()
        + (applications - 1) * (lt.solve.as_ns() + ut.solve.as_ns());
    let unamortized = applications * (lt.total.as_ns() + ut.total.as_ns());
    println!("\ntriangular-solve applications: {applications} (L + U each)");
    println!("virtual time, analysis charged once:   {}", SimTime::from_ns(amortized));
    println!("virtual time, analysis per application: {}", SimTime::from_ns(unamortized));
    println!(
        "amortization saves {:.1}% of simulated preconditioner time",
        100.0 * (1.0 - amortized as f64 / unamortized.max(1) as f64)
    );
}
