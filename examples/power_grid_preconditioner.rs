//! Power-grid simulation scenario (one of the paper's motivating HPC
//! applications, §I): factor a structured-grid conductance matrix with
//! ILU(0) and use the triangular factors as a preconditioner step —
//! forward solve with L, backward solve with U — on a multi-GPU node.
//!
//! Run with: `cargo run --release --example power_grid_preconditioner`

use mgpu_sptrsv::prelude::*;
use sparsemat::factor::ilu0;

fn main() {
    // A 120x100 grid network: 12,000 buses, 5-point coupling.
    let a = sparsemat::gen::grid_laplacian(120, 100);
    println!("grid system: n = {}, nnz = {}", a.n(), a.nnz());

    // MA48 stand-in: ILU(0) factorization A ~= L*U (see DESIGN.md).
    let f = ilu0(&a, 1e-8).expect("factorization");
    let l_stats = sparsemat::levels::TriStats::compute(&f.l, Triangle::Lower);
    println!(
        "L factor: nnz = {}, levels = {}, parallelism = {:.0}",
        l_stats.nnz, l_stats.levels, l_stats.parallelism
    );

    // One preconditioner application: z = U^-1 (L^-1 r).
    let r: Vec<f64> = (0..a.n()).map(|i| ((i % 17) as f64 - 8.0) / 8.0).collect();

    let fwd = sptrsv::solve(
        &f.l,
        &r,
        MachineConfig::dgx1(4),
        &SolveOptions {
            kind: SolverKind::ZeroCopy { per_gpu: 8 },
            triangle: Triangle::Lower,
            ..Default::default()
        },
    )
    .expect("forward solve");
    println!(
        "forward solve (Lz = r):  {} simulated, {} one-sided gets",
        fwd.timings.total,
        fwd.stats.shmem.total_gets()
    );

    let bwd = sptrsv::solve(
        &f.u,
        &fwd.x,
        MachineConfig::dgx1(4),
        &SolveOptions {
            kind: SolverKind::ZeroCopy { per_gpu: 8 },
            triangle: Triangle::Upper,
            ..Default::default()
        },
    )
    .expect("backward solve");
    println!(
        "backward solve (Uz' = z): {} simulated, {} one-sided gets",
        bwd.timings.total,
        bwd.stats.shmem.total_gets()
    );

    // Verify against the serial preconditioner application.
    let z_ref = sptrsv::reference::solve_lower(&f.l, &r).unwrap();
    let z_ref = sptrsv::reference::solve_upper(&f.u, &z_ref).unwrap();
    let err = sptrsv::verify::rel_inf_diff(&bwd.x, &z_ref);
    println!("preconditioner application verified: rel err = {err:.2e}");
}
