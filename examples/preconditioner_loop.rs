//! Build-once/solve-many inside a Krylov iteration — the paper's
//! headline use case (§I): the same L/U factors are applied as a
//! preconditioner on *every* CG iteration, so the analysis phase
//! (level sets, execution plan, dependency adjacency, calibration)
//! must be paid once, not per solve.
//!
//! This example runs preconditioned conjugate gradients on a grid
//! Laplacian with an ILU(0) preconditioner. Two [`SolverEngine`]s are
//! built up front — one for `L`, one for `U` — and reused by every
//! iteration's forward/backward substitution through the
//! zero-allocation tier: `solve_into` with a reusable
//! [`SolveWorkspace`] and preallocated output buffers, so the steady
//! state of the CG loop performs no heap allocation in the
//! preconditioner at all. Per-solve virtual timings come from the
//! engines' shared calibration reports (they are identical for every
//! warm solve — the timeline is value-independent). At the end it
//! prints the amortization ledger: wall-clock per warm solve, and the
//! simulated virtual time with the analysis charged once versus on
//! every application.
//!
//! Run with: `cargo run --release --example preconditioner_loop`

use mgpu_sptrsv::prelude::*;
use sparsemat::factor::ilu0;
use std::time::Instant;

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn main() {
    // A 90x90 grid: 8,100 unknowns, 5-point stencil.
    let a = sparsemat::gen::grid_laplacian(90, 90);
    let n = a.n();
    println!("system: n = {n}, nnz = {}", a.nnz());

    let f = ilu0(&a, 1e-8).expect("factorization");

    // --- analysis phase, exactly once per factor ----------------------
    let t_build = Instant::now();
    let fwd_opts = SolveOptions {
        kind: SolverKind::ZeroCopy { per_gpu: 8 },
        triangle: Triangle::Lower,
        verify: false,
        ..Default::default()
    };
    let bwd_opts = SolveOptions { triangle: Triangle::Upper, ..fwd_opts.clone() };
    let l_engine =
        SolverEngine::build(&f.l, MachineConfig::dgx1(4), &fwd_opts).expect("L analysis");
    let u_engine =
        SolverEngine::build(&f.u, MachineConfig::dgx1(4), &bwd_opts).expect("U analysis");
    let build_wall = t_build.elapsed();
    println!("engines built (analysis + calibration): {build_wall:?}");

    // --- preconditioned conjugate gradients ---------------------------
    // M^-1 r = U^-1 (L^-1 r), both triangular solves on warm engines
    // through the zero-allocation tier: one workspace + two output
    // buffers, reused by every iteration.
    let b: Vec<f64> = (0..n).map(|i| ((i % 23) as f64 - 11.0) / 11.0).collect();
    let mut x = vec![0.0f64; n];
    let mut r = b.clone();
    let mut solves = 0usize;
    let mut solve_wall = std::time::Duration::ZERO;
    let mut amortized_ns = 0u64;
    let mut unamortized_ns = 0u64;

    // every warm solve replays the same value-independent timeline, so
    // the per-solve virtual timings are simply the calibration's
    let l_timings = l_engine.calibration().expect("simulated").timings;
    let u_timings = u_engine.calibration().expect("simulated").timings;

    let mut ws = SolveWorkspace::new();
    let mut y = vec![0.0f64; n];
    let mut z = vec![0.0f64; n];
    let mut apply_preconditioner =
        |r: &[f64], y: &mut [f64], z: &mut [f64], ws: &mut SolveWorkspace| {
            let t0 = Instant::now();
            l_engine.solve_into(r, y, ws).expect("forward solve");
            u_engine.solve_into(y, z, ws).expect("backward solve");
            solve_wall += t0.elapsed();
            for t in [&l_timings, &u_timings] {
                amortized_ns += if solves < 2 {
                    t.total.as_ns() // first L and first U pay analysis
                } else {
                    t.solve.as_ns()
                };
                unamortized_ns += t.total.as_ns();
                solves += 1;
            }
        };

    apply_preconditioner(&r, &mut y, &mut z, &mut ws);
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let b_norm = dot(&b, &b).sqrt();
    let mut iterations = 0usize;

    for k in 0..200 {
        iterations = k + 1;
        let ap = a.matvec(&p);
        let alpha = rz / dot(&p, &ap);
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let r_norm = dot(&r, &r).sqrt();
        if k % 10 == 0 {
            println!("iter {k:>3}: |r|/|b| = {:.3e}", r_norm / b_norm);
        }
        if r_norm / b_norm < 1e-10 {
            break;
        }
        apply_preconditioner(&r, &mut y, &mut z, &mut ws);
        let rz_next = dot(&r, &z);
        let beta = rz_next / rz;
        rz = rz_next;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }

    // --- the amortization ledger --------------------------------------
    let resid = {
        let ax = a.matvec(&x);
        let rr: f64 = ax.iter().zip(&b).map(|(v, w)| (v - w) * (v - w)).sum();
        rr.sqrt() / b_norm
    };
    println!("\nconverged in {iterations} iterations, final |Ax-b|/|b| = {resid:.3e}");
    println!("triangular solves: {solves} ({} per iteration)", 2);
    println!(
        "wall-clock: build {build_wall:?} once, then {:?} per warm solve",
        solve_wall / solves.max(1) as u32
    );
    println!("virtual time, analysis charged once:      {}", desim::SimTime::from_ns(amortized_ns));
    println!(
        "virtual time, analysis on every solve:    {}",
        desim::SimTime::from_ns(unamortized_ns)
    );
    println!(
        "amortization saves {:.1}% of simulated preconditioner time",
        100.0 * (1.0 - amortized_ns as f64 / unamortized_ns.max(1) as f64)
    );
}
