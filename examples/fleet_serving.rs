//! Multi-tenant fleet serving demo: three factors behind one
//! `EngineFleet`, with chaos aimed at a single tenant.
//!
//! Registers three triangular factors by content fingerprint, installs
//! a `FaultPlan` that makes the victim tenant's engine builds panic
//! (a no-op without `--features fault-inject`), then drives client
//! traffic at all three tenants. The victim's requests resolve to
//! typed errors (`BuildFailed`, `Quarantined`) until its cooldown
//! expires and a clean probe re-admits it; the other tenants serve
//! bit-identically throughout; and the final fleet report shows cache
//! bytes never crossed the budget.
//!
//! Run with (the fault plan only arms with the feature):
//!
//! ```text
//! cargo run --release --example fleet_serving
//! cargo run --release --example fleet_serving --features fault-inject
//! ```

use mgpu_sptrsv::prelude::*;
use sptrsv::fault::{self, FaultPlan, FaultSite};
use sptrsv::fleet::{EngineFleet, FleetConfig, FleetError};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let seed = 42u64;
    let tenants: Vec<Arc<CscMatrix>> = (0..3u64)
        .map(|t| {
            Arc::new(sparsemat::gen::level_structured(&sparsemat::gen::LevelSpec::new(
                1_200,
                24,
                6_000,
                7 + t,
            )))
        })
        .collect();

    let cfg = FleetConfig {
        machine: MachineConfig::dgx1(2),
        quarantine_cooldown: Duration::from_millis(100),
        build_backoff: Duration::from_micros(100),
        seed,
        ..FleetConfig::default()
    };
    // serial ground truth per tenant, for the bit-identity check
    let serial: Vec<SolverEngine<'_>> = tenants
        .iter()
        .map(|m| SolverEngine::build(m, cfg.machine.clone(), &cfg.solve).expect("serial engine"))
        .collect();

    // chaos plan aimed at tenant 0: its first build's attempts all
    // panic, quarantining the fingerprint. Without `fault-inject` the
    // plan installs but never fires, and every tenant just serves.
    let plan = Arc::new(
        FaultPlan::new(seed)
            .with_rate(FaultSite::EngineBuild, 1.0)
            .with_budget(FaultSite::EngineBuild, u64::from(cfg.build_attempts)),
    );

    let budget = cfg.cache_budget_bytes;
    let report = fault::with_plan(&plan, || {
        let fleet = EngineFleet::new(cfg.clone()).expect("fleet config");
        let fps: Vec<_> = tenants.iter().map(|m| fleet.register(Arc::clone(m))).collect();
        for (t, fp) in fps.iter().enumerate() {
            println!("tenant {t}: fingerprint {fp}");
        }

        let mut served = 0u64;
        let mut typed = 0u64;
        for round in 0..8u64 {
            for (t, m) in tenants.iter().enumerate() {
                let (_, b) = sptrsv::verify::rhs_for(m, 100 * t as u64 + round);
                match fleet.submit(fps[t], &b) {
                    Ok(ticket) => match ticket.wait() {
                        Ok(x) => {
                            assert_eq!(
                                x,
                                serial[t].solve(&b).unwrap().x,
                                "tenant {t} must be bit-identical to its serial solve"
                            );
                            served += 1;
                        }
                        Err(e @ FleetError::BuildFailed { .. }) => {
                            println!("round {round} tenant {t}: {e}");
                            typed += 1;
                        }
                        Err(e) => {
                            println!("round {round} tenant {t}: typed failure: {e}");
                            typed += 1;
                        }
                    },
                    Err(e @ FleetError::Quarantined { .. }) => {
                        println!("round {round} tenant {t}: {e}");
                        typed += 1;
                    }
                    Err(e) => {
                        println!("round {round} tenant {t}: rejected: {e}");
                        typed += 1;
                    }
                }
            }
            if round == 3 {
                // let the victim's quarantine cooldown expire so the
                // re-admission probe lands inside the run
                std::thread::sleep(Duration::from_millis(150));
                println!("health after cooldown:");
                for (fp, h) in fleet.health() {
                    println!("  {fp}: {h:?}");
                }
            }
        }
        println!("clients done: {served} served, {typed} typed failures — zero hangs");

        let report = fleet.report();
        fleet.shutdown();
        report
    });

    println!("--- fleet report ---");
    println!("submitted:             {}", report.submitted);
    println!("served:                {}", report.served);
    println!("failed:                {}", report.failed);
    println!("builds ok/failed:      {}/{}", report.builds_ok, report.builds_failed);
    println!("build retries:         {}", report.build_retries);
    println!("quarantine events:     {}", report.quarantine_events);
    println!("quarantine rejections: {}", report.quarantine_rejections);
    println!("evictions:             {}", report.evictions);
    println!("tenant aborts:         {}", report.tenant_aborts);
    println!("cache bytes high-water: {} / {} budget", report.cache_bytes_high_water, budget);
    println!("--- fault plan ---");
    println!(
        "engine-build probed {} fired {}",
        plan.probes(FaultSite::EngineBuild),
        plan.fired(FaultSite::EngineBuild)
    );

    assert!(report.cache_bytes_high_water <= budget, "byte budget must hold");
    assert_eq!(report.submitted, report.served + report.failed, "no request may leak");
    if plan.fired(FaultSite::EngineBuild) > 0 {
        assert!(report.builds_failed >= 1, "injected build panics must surface");
        println!("chaos contained to the victim tenant — fleet report reconciles.");
    } else {
        assert_eq!(report.failed, 0, "without faults every request serves");
        println!("no faults armed — every tenant served bit-identically.");
    }
}
