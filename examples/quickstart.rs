//! Quickstart: build the paper's Fig. 1 example system, inspect its
//! dependency structure and level sets, and solve it with several
//! solver variants on a simulated 4-GPU DGX-1.
//!
//! Run with: `cargo run --release --example quickstart`

use mgpu_sptrsv::prelude::*;

fn main() {
    // --- the 8x8 lower-triangular system of Fig. 1a -------------------
    // column j holds the diagonal plus the dependents x_j must update
    let mut b = TripletBuilder::new(8);
    for i in 0..8 {
        b.push(i, i, 2.0);
    }
    for &(r, c) in &[
        (1, 0),
        (3, 0),
        (5, 0),
        (7, 0), // left.sum_{1,3,5,7} depend on x0
        (2, 1),
        (4, 3),
        (7, 3),
        (6, 4),
        (7, 4),
        (6, 5),
        (7, 6),
    ] {
        b.push(r, c, -0.5);
    }
    let l = b.build().expect("valid triangular system");

    // --- dependency analysis (Fig. 1b) ---------------------------------
    let levels = LevelSets::analyze(&l, Triangle::Lower);
    println!("level sets of the Fig. 1 matrix:");
    for (i, set) in levels.iter_levels().enumerate() {
        println!("  level {i}: {:?}", set.iter().map(|&c| format!("x{c}")).collect::<Vec<_>>());
    }
    println!("parallelism = {:.2} components/level (Table I metric)\n", levels.parallelism());

    // --- solve with a known answer --------------------------------------
    let x_true: Vec<f64> = (1..=8).map(|i| i as f64 / 4.0).collect();
    let rhs = l.matvec(&x_true);

    for kind in [
        SolverKind::Serial,
        SolverKind::LevelSet,
        SolverKind::SyncFree,
        SolverKind::Unified,
        SolverKind::ZeroCopy { per_gpu: 2 },
    ] {
        let report = sptrsv::solve(
            &l,
            &rhs,
            MachineConfig::dgx1(4),
            &SolveOptions { kind, ..Default::default() },
        )
        .expect("solve");
        let err = sptrsv::verify::rel_inf_diff(&report.x, &x_true);
        println!(
            "{:<14} x = {:?}  (rel err {err:.1e}, simulated {} on {} GPU(s))",
            report.label,
            report.x.iter().map(|v| (v * 100.0).round() / 100.0).collect::<Vec<_>>(),
            report.timings.total,
            report.gpus.max(1),
        );
    }
}
