//! The serving front-end in action: many client threads, one warm
//! engine, fused panels.
//!
//! A [`sptrsv::serve::SolverService`] sits between concurrent clients
//! and a warm `SolverEngine`: clients `submit(b)` and get a `Ticket`
//! back; a dispatcher coalesces queued right-hand sides into
//! `PANEL_K`-lane fused panels (flushing early when a deadline's slack
//! or the linger window expires), so throughput traffic amortizes the
//! factor stream across lanes while latency traffic still gets out
//! fast — and every answer is bit-identical to a serial
//! `engine.solve()` of the same right-hand side.
//!
//! The example runs three scenes:
//!  1. a **throughput flood** — 8 client threads × bursts of requests,
//!     showing the mean panel fill and the wait/solve split;
//!  2. a **latency singleton** — one deadline-tagged request against
//!     an otherwise idle service, flushed ahead of the linger window;
//!  3. **backpressure** — a queue bound small enough to reject, with
//!     the typed `QueueFull` the paper-scale "millions of users" story
//!     needs instead of unbounded buffering.
//!
//! Run with: `cargo run --release --example serving_front_end`

use mgpu_sptrsv::prelude::*;
use sptrsv::serve::{serve_solver, ServeError, ServiceConfig};
use std::time::{Duration, Instant};

fn main() {
    // A 50k-row level-structured lower factor — the shape the paper's
    // §II analysis targets — and a warm engine built once.
    let m =
        sparsemat::gen::level_structured(&sparsemat::gen::LevelSpec::new(50_000, 120, 200_000, 13));
    let opts = SolveOptions {
        kind: SolverKind::ZeroCopy { per_gpu: 8 },
        verify: false,
        ..SolveOptions::default()
    };
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).expect("engine");
    println!("factor: n = {}, nnz = {}; engine built once", m.n(), m.nnz());

    // --- scene 1: throughput flood ------------------------------------
    const CLIENTS: u64 = 8;
    const PER_CLIENT: u64 = 16;
    let expected: Vec<Vec<f64>> = (0..CLIENTS)
        .map(|c| engine.solve(&sptrsv::verify::rhs_for(&m, 100 + c).1).unwrap().x)
        .collect();
    let cfg = ServiceConfig { max_linger: Duration::from_micros(500), ..Default::default() };
    let t0 = Instant::now();
    let ((), report) = serve_solver(&engine, &cfg, |svc| {
        std::thread::scope(|s| {
            for c in 0..CLIENTS {
                let expect = &expected[c as usize];
                let m = &m;
                s.spawn(move || {
                    let (_, b) = sptrsv::verify::rhs_for(m, 100 + c);
                    for _ in 0..PER_CLIENT {
                        let ticket = svc.submit(&b).expect("admitted");
                        let x = ticket.wait().expect("served");
                        assert_eq!(&x, expect, "bit-identical to serial solve()");
                    }
                });
            }
        });
    })
    .expect("service ran");
    let wall = t0.elapsed();
    println!("\nscene 1 — flood: {CLIENTS} clients x {PER_CLIENT} requests in {wall:?}");
    println!(
        "  panels {} | mean fill {:.2} lanes | max fill {} | depth high-water {}",
        report.panels,
        report.mean_fill(),
        report.max_fill,
        report.queue_depth_high_water
    );
    println!(
        "  per-request mean wait {:.1} us | mean panel solve {:.1} us | flushes: {} full / {} linger / {} deadline",
        report.mean_wait_ns() / 1e3,
        report.mean_panel_solve_ns() / 1e3,
        report.full_flushes,
        report.linger_flushes,
        report.deadline_flushes
    );

    // --- scene 2: latency singleton -----------------------------------
    let (_, b) = sptrsv::verify::rhs_for(&m, 7);
    let lazy = ServiceConfig { max_linger: Duration::from_secs(60), ..Default::default() };
    let ((), report) = serve_solver(&engine, &lazy, |svc| {
        let t = Instant::now();
        let ticket = svc
            .submit_with_deadline(&b, Instant::now() + Duration::from_millis(2))
            .expect("admitted");
        ticket.wait().expect("served");
        println!(
            "\nscene 2 — singleton with 2ms deadline served in {:?} (linger window was 60s)",
            t.elapsed()
        );
    })
    .expect("service ran");
    println!(
        "  deadline flushes: {} | deadline misses: {}",
        report.deadline_flushes, report.deadline_misses
    );

    // --- scene 3: backpressure ----------------------------------------
    let tight = ServiceConfig {
        max_queue_requests: 4,
        max_linger: Duration::from_secs(60),
        ..Default::default()
    };
    let ((), report) = serve_solver(&engine, &tight, |svc| {
        let tickets: Vec<_> = (0..4).map(|_| svc.submit(&b).expect("admitted")).collect();
        match svc.submit(&b) {
            Err(ServeError::QueueFull { depth, bytes }) => println!(
                "\nscene 3 — 5th submit rejected: QueueFull {{ depth: {depth}, bytes: {bytes} }} (typed, non-blocking)"
            ),
            other => panic!("expected QueueFull, got {other:?}"),
        }
        svc.flush();
        for t in tickets {
            t.wait().expect("served after flush");
        }
    })
    .expect("service ran");
    println!(
        "  accepted {} | rejected {} | served {} — admission control sheds load instead of buffering it",
        report.submitted, report.rejected_full, report.served
    );
}
