//! Value refresh in a time-stepping loop, under live serving traffic.
//!
//! The paper's build-once/solve-many premise has a sharper corollary:
//! when a simulation re-factors the SAME sparsity pattern each time
//! step, only the *values* change — the level sets, the execution
//! plan, the flattened adjacency layout and the calibration timeline
//! are all structure-only and survive verbatim. `refresh_values`
//! exploits that: it validates structure identity, audits the new
//! values, and rewrites every warm tier's value arrays in place, with
//! zero symbolic work and zero allocation.
//!
//! The example runs three scenes:
//!  1. a **time-stepping loop** — a served engine takes a value
//!     refresh per step while four client threads stream requests the
//!     whole time; each step times the refresh against the full
//!     rebuild it replaces, and a probe request after each swap is
//!     asserted bit-identical to a cold engine built on the step's
//!     matrix (the refreshed warm tiers ARE the cold build, bitwise);
//!  2. **failure containment** — a poisoned step (NaN mid-factor) and
//!     a drifted structure are both rejected with typed errors before
//!     any mutation, and the previous epoch keeps serving;
//!  3. the **service report** — refresh counters next to the ordinary
//!     serving stats.
//!
//! Run with: `cargo run --release --example value_refresh`

use mgpu_sptrsv::prelude::*;
use sptrsv::serve::{serve_solver, ServeError, ServiceConfig};
use sptrsv::SolveError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// The step-`s` matrix: same structure as `m0`, values modulated by a
/// deterministic per-step coefficient field.
fn step_values(m0: &sparsemat::CscMatrix, s: u64) -> sparsemat::CscMatrix {
    let mut m = m0.clone();
    for (i, v) in m.values_mut().iter_mut().enumerate() {
        *v *= 1.0 + (((i as u64 + 3 * s) % 11) as f64) * 0.004;
    }
    m
}

fn main() {
    let m0 =
        sparsemat::gen::level_structured(&sparsemat::gen::LevelSpec::new(30_000, 100, 120_000, 19));
    let opts = SolveOptions {
        kind: SolverKind::ZeroCopy { per_gpu: 8 },
        verify: false,
        ..SolveOptions::default()
    };
    let t0 = Instant::now();
    let engine = SolverEngine::build(&m0, MachineConfig::dgx1(4), &opts).expect("engine");
    println!("factor: n = {}, nnz = {}; initial build {:?}", m0.n(), m0.nnz(), t0.elapsed());

    const STEPS: u64 = 4;
    let stop = AtomicBool::new(false);
    let cfg = ServiceConfig { max_linger: Duration::from_micros(300), ..Default::default() };
    let ((), report) = serve_solver(&engine, &cfg, |svc| {
        std::thread::scope(|s| {
            // --- background traffic: four clients stream requests
            // across every value epoch; each answer must be a finite
            // solution from exactly one epoch (the engine's numeric
            // lock guarantees no ticket ever sees a torn mix)
            for c in 0..4u64 {
                let (stop, m0) = (&stop, &m0);
                s.spawn(move || {
                    let mut served = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let (_, b) = sptrsv::verify::rhs_for(m0, 100 + c);
                        let x = svc.submit(&b).expect("admitted").wait().expect("served");
                        assert!(x.iter().all(|v| v.is_finite()));
                        served += 1;
                    }
                    served
                });
            }

            // --- scene 1: the time-stepping loop --------------------
            for step in 1..=STEPS {
                let ms = step_values(&m0, step);
                let t_refresh = Instant::now();
                let rep = svc.refresh_solver(&ms).expect("refresh");
                let t_refresh = t_refresh.elapsed();
                // the verification reference is the cold build the
                // refresh replaced — and doubles as the honest cost
                // comparison
                let t_rebuild = Instant::now();
                let cold =
                    SolverEngine::build(&ms, MachineConfig::dgx1(4), &opts).expect("cold build");
                let t_rebuild = t_rebuild.elapsed();
                let (_, b) = sptrsv::verify::rhs_for(&m0, 500 + step);
                let probe = svc.submit(&b).expect("admitted").wait().expect("served");
                assert_eq!(
                    probe,
                    cold.solve(&b).unwrap().x,
                    "refreshed warm tiers must be bit-identical to a cold build"
                );
                println!(
                    "step {step}: epoch {} in {t_refresh:>10.1?}  (rebuild {t_rebuild:>10.1?}, \
                     {:.0}x) — probe bit-identical to cold build",
                    rep.value_epoch,
                    t_rebuild.as_secs_f64() / t_refresh.as_secs_f64().max(1e-9),
                );
            }

            // --- scene 2: failure containment -----------------------
            let mut poisoned = step_values(&m0, STEPS);
            let mid = poisoned.nnz() / 2;
            poisoned.values_mut()[mid] = f64::NAN;
            match svc.refresh_solver(&poisoned) {
                Err(ServeError::Solve(SolveError::Matrix(e))) => {
                    println!("poisoned step rejected before any mutation: {e}")
                }
                other => panic!("expected a typed matrix error, got {other:?}"),
            }
            let drifted = sparsemat::gen::banded_lower(m0.n(), 6, 4.0, 19);
            match svc.refresh_solver(&drifted) {
                Err(ServeError::Solve(SolveError::StructureMismatch { .. })) => {
                    println!("drifted structure rejected: refresh is values-only by contract")
                }
                other => panic!("expected StructureMismatch, got {other:?}"),
            }
            // the last good epoch still serves
            let (_, b) = sptrsv::verify::rhs_for(&m0, 777);
            let x = svc.submit(&b).expect("admitted").wait().expect("served");
            assert!(x.iter().all(|v| v.is_finite()));
            println!("epoch {} still serving after both rejections", engine.value_epoch());

            stop.store(true, Ordering::Relaxed);
        });
    })
    .expect("service");

    // --- scene 3: the report --------------------------------------
    println!(
        "report: served {} requests across {} value epochs ({} refreshes ok, {} rejected), \
         mean panel fill {:.2}",
        report.served,
        engine.value_epoch() + 1,
        report.value_refreshes,
        report.refresh_failures,
        report.mean_fill(),
    );
    assert_eq!(report.value_refreshes, STEPS);
    assert_eq!(report.refresh_failures, 2);
    assert_eq!(report.failed, 0, "no client request may fail across a refresh");
}
