//! The Fig. 9 trade-off, hands on: sweep tasks/GPU for one matrix and
//! watch balance improve until kernel-launch overhead wins.
//!
//! Run with: `cargo run --release --example task_tuning [matrix-name]`

use mgpu_sptrsv::prelude::*;
use sparsemat::corpus;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "webbase-1M".into());
    let nm = corpus::by_name_scaled(&name, 12_000, 240_000)
        .unwrap_or_else(|| panic!("unknown corpus matrix {name}"));
    let (_, b) = sptrsv::verify::rhs_for(&nm.matrix, 5);

    println!("task-pool sensitivity for {} on a 4-GPU DGX-1:", nm.name);
    println!(
        "{:>10} {:>9} {:>14} {:>12} {:>12}",
        "tasks/GPU", "kernels", "total", "cross edges", "peak warps"
    );
    let mut best: Option<(u32, u64)> = None;
    for per_gpu in [1u32, 2, 4, 8, 16, 32, 64] {
        let r = sptrsv::solve(
            &nm.matrix,
            &b,
            MachineConfig::dgx1(4),
            &SolveOptions { kind: SolverKind::ZeroCopy { per_gpu }, ..Default::default() },
        )
        .expect("solve");
        let total = r.timings.total.as_ns();
        if best.is_none_or(|(_, t)| total < t) {
            best = Some((per_gpu, total));
        }
        println!(
            "{per_gpu:>10} {:>9} {:>14} {:>12} {:>12}",
            r.kernels,
            r.timings.total.to_string(),
            r.cross_edges,
            r.stats.peak_warps.iter().max().unwrap(),
        );
    }
    let (best_t, _) = best.unwrap();
    println!(
        "\nbest granularity here: {best_t} tasks/GPU — finer tasks balance the\n\
         unidirectional dependency chain, coarser tasks save launches (SV)."
    );
}
