//! Chaos-mode serving demo: a supervised `SolverService` surviving a
//! seeded fault plan.
//!
//! Builds a warm engine over a synthetic triangular system, installs a
//! `FaultPlan` that injects dispatcher panics, admission shedding,
//! worker-spawn failures and post-admission RHS corruption, then runs
//! client traffic through `SolverService::run_supervised` and prints
//! the health transitions plus the final report — every request either
//! served bit-identically to a serial solve or failed with a typed,
//! retryable error, and the report reconciles with the plan's fired
//! counters.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example chaos_serving --features fault-inject
//! ```

use mgpu_sptrsv::prelude::*;
use sptrsv::fault::{self, FaultPlan, FaultSite, ALL_SITES};
use sptrsv::serve::{
    RetryPolicy, ServeError, ServiceConfig, ServiceEngine, ServiceHealth, SolverService,
};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let seed = 42u64;
    let m = sparsemat::gen::level_structured(&sparsemat::gen::LevelSpec::new(2_000, 40, 12_000, 7));
    let opts = SolveOptions { verify: false, ..SolveOptions::default() };
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).expect("engine build");
    println!(
        "factor: n = {}, nnz = {}; audit clean: {}",
        m.n(),
        m.nnz(),
        engine.factor_audit().is_clean()
    );

    // the chaos plan: every probe decision is a pure function of
    // (seed, site, probe index) — rerunning this binary replays the
    // exact same fault schedule
    let plan = Arc::new(
        FaultPlan::new(seed)
            .with_rate(FaultSite::DispatcherPanic, 0.05)
            .with_budget(FaultSite::DispatcherPanic, 3)
            .with_rate(FaultSite::AdmissionAlloc, 0.05)
            .with_rate(FaultSite::WorkerSpawn, 0.25)
            .with_rate(FaultSite::RhsCorruptNonFinite, 0.02)
            .with_budget(FaultSite::RhsCorruptNonFinite, 4),
    );

    let cfg = ServiceConfig {
        scan_outputs: true,
        supervision_seed: seed,
        max_linger: Duration::from_micros(100),
        ..ServiceConfig::default()
    };

    let n = m.n();
    let report = fault::with_plan(&plan, || {
        let ((), report) =
            SolverService::run_supervised(ServiceEngine::Solver(&engine), &cfg, |svc| {
                let policy = RetryPolicy { seed, ..RetryPolicy::default() };
                let mut served = 0u64;
                let mut nonfinite = 0u64;
                let mut retryable = 0u64;
                let mut shed = 0u64;
                let mut last_health = svc.health();
                println!("health: {last_health:?}");
                for i in 0..400u64 {
                    let b: Vec<f64> = (0..n).map(|j| (i + 1) as f64 + j as f64 * 1e-4).collect();
                    match svc.submit_with_retry(&b, &policy) {
                        Ok(ticket) => match ticket.wait() {
                            Ok(x) => {
                                assert_eq!(x.len(), n);
                                served += 1;
                            }
                            Err(ServeError::Solve(e)) => {
                                println!("request {i}: typed solve error: {e}");
                                nonfinite += 1;
                            }
                            Err(ServeError::Retryable { reason }) => {
                                println!("request {i}: retryable ({reason})");
                                retryable += 1;
                            }
                            Err(e) => println!("request {i}: {e}"),
                        },
                        Err(ServeError::QueueFull { .. }) => shed += 1,
                        Err(e) => println!("request {i}: rejected: {e}"),
                    }
                    let h = svc.health();
                    if h != last_health {
                        println!("health: {last_health:?} -> {h:?}");
                        last_health = h;
                    }
                }
                assert_ne!(svc.health(), ServiceHealth::Draining, "still serving");
                println!(
                    "clients done: {served} served, {nonfinite} non-finite, \
                     {retryable} retryable, {shed} shed after retries"
                );
            })
            .expect("service ran");
        report
    });

    println!("--- final report ---");
    println!("submitted:            {}", report.submitted);
    println!("served:               {}", report.served);
    println!("failed:               {}", report.failed);
    println!("dispatcher restarts:  {}", report.dispatcher_restarts);
    println!("poisoned lanes:       {}", report.poisoned_lanes);
    println!("panel retries:        {}", report.panel_retries);
    println!("admission shed:       {}", report.admission_shed);
    println!("spawn shortfalls:     {}", report.spawn_shortfalls);
    println!("mean panel fill:      {:.2}", report.mean_fill());
    println!("--- fault plan ---");
    for site in ALL_SITES {
        println!(
            "{:<22} probed {:>6}  fired {:>4}",
            site.label(),
            plan.probes(site),
            plan.fired(site)
        );
    }
    assert_eq!(report.dispatcher_restarts, plan.fired(FaultSite::DispatcherPanic));
    assert_eq!(report.admission_shed, plan.fired(FaultSite::AdmissionAlloc));
    println!("report reconciles with the fault plan — chaos contained.");
}
