//! The unified telemetry plane end to end: arm the sink, run every
//! warm tier plus a value refresh, then export the same run three
//! ways — a chrome://tracing timeline, a Prometheus text page, and
//! the one-line digests the reports embed.
//!
//! The emitted timeline is not just printed: a small recursive-descent
//! JSON parser (hand-rolled — this repo takes no dependencies)
//! validates the whole document and checks the trace-event schema, so
//! CI running this example proves the exporter emits well-formed JSON
//! with balanced span begin/end pairs.
//!
//! Run with: `cargo run --release --example telemetry_timeline`

use mgpu_sptrsv::prelude::*;
use sptrsv::telemetry;

fn main() {
    let entry = sparsemat::corpus::deep_narrow_entry();
    let m = entry.matrix;
    let (_, b) = sptrsv::verify::rhs_for(&m, 7);
    println!("{} factor: n = {}, nnz = {}", entry.name, m.n(), m.nnz());

    let opts = SolveOptions {
        kind: SolverKind::ZeroCopy { per_gpu: 8 },
        verify: false,
        ..SolveOptions::default()
    };
    let engine = SolverEngine::build(&m, MachineConfig::dgx1(4), &opts).unwrap();
    let cold = engine.solve(&b).unwrap();
    // the satellite one-liners: every report renders in one line now
    println!("{}", cold.schedule.as_ref().unwrap());
    println!("{}", cold.timings);

    // --- arm the sink and trace one busy stretch ----------------------
    telemetry::set_enabled(true);
    let mut ws = SolveWorkspace::new();
    let mut out = vec![0.0f64; m.n()];
    // warm-up: sizes buffers, spawns pool workers, registers rings
    engine.solve_sharded_into(&b, &mut out, &mut ws, 2).unwrap();
    telemetry::reset();

    let bs: Vec<Vec<f64>> = (0..4u64).map(|k| sptrsv::verify::rhs_for(&m, 20 + k).1).collect();
    let mut outs: Vec<Vec<f64>> = vec![Vec::new(); bs.len()];
    for rhs in &bs {
        engine.solve_into(rhs, &mut out, &mut ws).unwrap();
        engine.solve_sharded_into(rhs, &mut out, &mut ws, 2).unwrap();
    }
    engine.solve_panel_into(&bs, &mut outs, &mut ws).unwrap();
    let refresh = engine.refresh_values(&m).unwrap();
    println!("{refresh}");

    let snap = telemetry::snapshot();
    telemetry::set_enabled(false);
    println!("{}", telemetry::report_from(&snap));

    // --- chrome://tracing timeline, validated, not trusted ------------
    // first prove the validator itself on a document that exercises
    // every grammar production it claims to handle
    let probe = parse_json(r#"[{"k":"v\nA"}, [true, false], null, -2.5e3]"#).unwrap();
    let Json::Arr(probe) = probe else { panic!("probe is an array") };
    assert!(matches!(&probe[1], Json::Arr(l) if matches!(l[0], Json::Bool(true))));
    assert!(matches!(probe[3], Json::Num(n) if n == -2500.0));

    let trace = telemetry::chrome_trace_json(&snap);
    let doc = parse_json(&trace).expect("exporter must emit well-formed JSON");
    let Json::Arr(events) = doc else { panic!("a chrome trace is a top-level array") };
    assert!(!events.is_empty(), "the traced stretch produced events");
    let (mut begins, mut ends) = (0u64, 0u64);
    let mut last_ts = f64::MIN;
    for ev in &events {
        let Json::Obj(fields) = ev else { panic!("every trace event is an object") };
        let field = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        let Some(Json::Str(ph)) = field("ph") else { panic!("event missing \"ph\"") };
        assert!(matches!(ph.as_str(), "B" | "E" | "i" | "C"), "unknown phase {ph:?}");
        assert!(matches!(field("name"), Some(Json::Str(_))), "event missing \"name\"");
        assert!(matches!(field("tid"), Some(Json::Num(_))), "event missing \"tid\"");
        let Some(Json::Num(pid)) = field("pid") else { panic!("event missing \"pid\"") };
        assert_eq!(*pid, 1.0, "one process, one pid lane");
        let Some(Json::Num(ts)) = field("ts") else { panic!("event missing \"ts\"") };
        assert!(*ts >= 0.0 && *ts >= last_ts, "events are emitted time-sorted");
        last_ts = *ts;
        match ph.as_str() {
            "B" => begins += 1,
            "E" => ends += 1,
            _ => {}
        }
    }
    assert_eq!(begins, ends, "span begin/end events pair up");
    println!(
        "chrome trace: {} events ({begins} span pairs) — parses clean, schema holds",
        events.len()
    );

    // --- Prometheus text page (excerpt) -------------------------------
    let prom = telemetry::prometheus_text(&snap);
    assert!(prom.contains("sptrsv_site_events_total"));
    assert!(prom.contains("sptrsv_solve_sharded_ns_count"));
    let shown: Vec<&str> =
        prom.lines().filter(|l| l.contains("sharded") || l.starts_with("# TYPE")).take(8).collect();
    println!("prometheus excerpt:");
    for l in &shown {
        println!("  {l}");
    }
}

/// A parsed JSON value — just enough structure to validate the trace.
enum Json {
    Obj(Vec<(String, Json)>),
    Arr(Vec<Json>),
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
}

/// Parse a complete JSON document (single value, trailing whitespace
/// only). Recursive descent over bytes; strings handle the standard
/// escapes. Errors carry the byte offset that broke the grammar.
fn parse_json(s: &str) -> Result<Json, String> {
    let mut p = Parser { b: s.as_bytes(), at: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.at != p.b.len() {
        return Err(format!("trailing garbage at byte {}", p.at));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.b.get(self.at).is_some_and(|c| matches!(c, b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.b.get(self.at) == Some(&c) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, self.at))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.b.get(self.at) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.at))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.b.get(self.at) == Some(&b'}') {
            self.at += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.b.get(self.at) {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.at)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.b.get(self.at) == Some(&b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.b.get(self.at) {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.at)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.at) {
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    let esc = *self.b.get(self.at).ok_or("unterminated escape")?;
                    self.at += 1;
                    match esc {
                        b'"' | b'\\' | b'/' => out.push(esc as char),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex =
                                self.b.get(self.at..self.at + 4).ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.at += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.at - 1)),
                    }
                }
                Some(&c) if c < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.at))
                }
                Some(_) => {
                    // multi-byte UTF-8 passes through untouched
                    let start = self.at;
                    self.at += 1;
                    while self.b.get(self.at).is_some_and(|&c| c & 0xC0 == 0x80) {
                        self.at += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.b[start..self.at]).map_err(|e| e.to_string())?,
                    );
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        while self
            .b
            .get(self.at)
            .is_some_and(|c| matches!(c, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.at += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.at]).map_err(|e| e.to_string())?;
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number at byte {start}"))
    }
}
