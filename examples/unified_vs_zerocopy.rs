//! Algorithm 2 vs Algorithm 3, side by side: run the same system under
//! the Unified-Memory design and the zero-copy NVSHMEM design and
//! compare what the machine had to do (the paper's core comparison).
//!
//! Run with: `cargo run --release --example unified_vs_zerocopy [matrix-name]`

use mgpu_sptrsv::prelude::*;
use sparsemat::corpus;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "powersim".into());
    let nm = corpus::by_name_scaled(&name, 12_000, 240_000)
        .unwrap_or_else(|| panic!("unknown corpus matrix {name}"));
    let (_, b) = sptrsv::verify::rhs_for(&nm.matrix, 3);

    let unified = sptrsv::solve(
        &nm.matrix,
        &b,
        MachineConfig::dgx1(4),
        &SolveOptions { kind: SolverKind::Unified, ..Default::default() },
    )
    .expect("unified");
    let zerocopy = sptrsv::solve(
        &nm.matrix,
        &b,
        MachineConfig::dgx1(4),
        &SolveOptions { kind: SolverKind::ZeroCopy { per_gpu: 8 }, ..Default::default() },
    )
    .expect("zerocopy");

    println!(
        "{} on a 4-GPU DGX-1 ({} rows, {} nnz):\n",
        nm.name, nm.achieved.rows, nm.achieved.nnz
    );
    println!("{:<28} {:>16} {:>16}", "", "unified (Alg.2)", "zero-copy (Alg.3)");
    let row = |label: &str, a: String, z: String| println!("{label:<28} {a:>16} {z:>16}");
    row("total time", unified.timings.total.to_string(), zerocopy.timings.total.to_string());
    row(
        "analysis time",
        unified.timings.analysis.to_string(),
        zerocopy.timings.analysis.to_string(),
    );
    row(
        "UM page faults",
        unified.stats.total_um_faults().to_string(),
        zerocopy.stats.total_um_faults().to_string(),
    );
    row(
        "UM remote ops",
        unified.stats.um_remote_ops.to_string(),
        zerocopy.stats.um_remote_ops.to_string(),
    );
    row(
        "page bytes migrated",
        format!("{} KB", unified.stats.um_migrated_bytes / 1024),
        format!("{} KB", zerocopy.stats.um_migrated_bytes / 1024),
    );
    row(
        "one-sided gets",
        unified.stats.shmem.total_gets().to_string(),
        zerocopy.stats.shmem.total_gets().to_string(),
    );
    row("gets saved by caching", "-".into(), zerocopy.stats.shmem.poll_gets_saved.to_string());
    row("cross-GPU edges", unified.cross_edges.to_string(), zerocopy.cross_edges.to_string());
    println!(
        "\nzero-copy speedup over unified: {:.2}x (paper Fig. 7: avg 3.53x, up to 9.86x)",
        zerocopy.speedup_over(&unified)
    );
}
