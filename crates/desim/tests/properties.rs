//! Property-based tests of the DES engine invariants.

use desim::{EventQueue, Gate, Pcg32, Resource, SimTime};
use proptest::prelude::*;

proptest! {
    /// Events always pop in non-decreasing time order, whatever the
    /// schedule order.
    #[test]
    fn queue_pops_sorted(times in prop::collection::vec(0u64..1_000_000, 1..400)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_ns(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Equal-time events preserve scheduling order (FIFO tie-break).
    #[test]
    fn queue_ties_are_fifo(n in 1usize..200, t in 0u64..1000) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule_at(SimTime::from_ns(t), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    /// A resource never starts a job before its arrival and never runs
    /// more jobs concurrently than it has servers.
    #[test]
    fn resource_respects_capacity(
        servers in 1usize..8,
        jobs in prop::collection::vec((0u64..10_000, 1u64..500), 1..300),
    ) {
        let mut sorted = jobs.clone();
        sorted.sort_unstable();
        let mut r = Resource::new(servers);
        let mut intervals: Vec<(u64, u64)> = Vec::new();
        for &(arrive, dur) in &sorted {
            let (start, end) = r.acquire_timed(SimTime::from_ns(arrive), dur);
            prop_assert!(start.as_ns() >= arrive);
            prop_assert_eq!(end.as_ns() - start.as_ns(), dur);
            intervals.push((start.as_ns(), end.as_ns()));
        }
        // concurrency check at every start point
        for &(s, _) in &intervals {
            let overlapping = intervals
                .iter()
                .filter(|&&(a, b)| a <= s && s < b)
                .count();
            prop_assert!(overlapping <= servers, "{overlapping} > {servers} servers");
        }
    }

    /// Total busy time equals the sum of requested durations.
    #[test]
    fn resource_accounts_busy_time(durs in prop::collection::vec(1u64..1000, 1..100)) {
        let mut r = Resource::new(3);
        for &d in &durs {
            r.acquire(SimTime::ZERO, d);
        }
        prop_assert_eq!(r.busy_ns(), durs.iter().sum::<u64>());
        prop_assert_eq!(r.jobs(), durs.len() as u64);
    }

    /// Gate admissions never exceed capacity and waiters are FIFO.
    #[test]
    fn gate_admits_fifo_within_capacity(cap in 1usize..16, n in 1usize..200) {
        let mut g = Gate::new(cap);
        let mut admitted = Vec::new();
        let mut queued = std::collections::VecDeque::new();
        for i in 0..n as u64 {
            if g.try_acquire() {
                admitted.push(i);
            } else {
                g.enqueue(i);
                queued.push_back(i);
            }
            prop_assert!(g.in_use() <= cap);
        }
        // drain: each release must hand the slot to the oldest waiter
        for _ in 0..admitted.len() + queued.len() {
            if g.in_use() == 0 {
                break;
            }
            match g.release() {
                Some(tok) => prop_assert_eq!(Some(tok), queued.pop_front()),
                None => prop_assert!(queued.is_empty()),
            }
        }
    }

    /// PCG32 is deterministic and bounded draws stay in range.
    #[test]
    fn rng_bounded_and_deterministic(seed in any::<u64>(), bound in 1u32..10_000) {
        let mut a = Pcg32::seed_from_u64(seed);
        let mut b = Pcg32::seed_from_u64(seed);
        for _ in 0..100 {
            let x = a.next_below(bound);
            prop_assert!(x < bound);
            prop_assert_eq!(x, b.next_below(bound));
        }
    }

    /// SimTime arithmetic is monotone and saturating.
    #[test]
    fn time_arithmetic(ns in any::<u64>(), delta in any::<u64>()) {
        let t = SimTime::from_ns(ns);
        prop_assert!(t.after(delta) >= t);
        prop_assert_eq!(t.after(delta) - t, delta.min(u64::MAX - ns));
    }
}
