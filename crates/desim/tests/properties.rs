//! Property-style tests of the DES engine invariants. Cases are drawn
//! from the crate's own deterministic [`Pcg32`] (the build environment
//! is offline, so the proptest crate cannot be resolved); every run
//! explores the same seeded case set, which keeps failures replayable.

use desim::{EventQueue, Gate, Pcg32, Resource, SimTime};

const CASES: u64 = 32;

/// Events always pop in non-decreasing time order, whatever the
/// schedule order.
#[test]
fn queue_pops_sorted() {
    for case in 0..CASES {
        let mut rng = Pcg32::seed_from_u64(0xA11CE + case);
        let n = 1 + rng.next_below(400) as usize;
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule_at(SimTime::from_ns(rng.next_u64() % 1_000_000), i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last, "case {case}");
            last = t;
            popped += 1;
        }
        assert_eq!(popped, n);
    }
}

/// Equal-time events preserve scheduling order (FIFO tie-break), also
/// when the tie sits at the current clock (the bucket fast path).
#[test]
fn queue_ties_are_fifo() {
    for case in 0..CASES {
        let mut rng = Pcg32::seed_from_u64(0xF1F0 + case);
        let n = 1 + rng.next_below(200) as usize;
        let t = rng.next_u64() % 1000;
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule_at(SimTime::from_ns(t), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..n).collect::<Vec<_>>(), "case {case}");
    }
}

/// Interleaving heap scheduling with same-instant bursts (scheduled at
/// the already-advanced clock) must still deliver a total FIFO order.
#[test]
fn queue_same_instant_bursts_interleave_with_heap() {
    for case in 0..CASES {
        let mut rng = Pcg32::seed_from_u64(0xB0057 + case);
        let mut q = EventQueue::new();
        let mut expected: Vec<(u64, usize)> = Vec::new();
        let mut id = 0usize;
        for _ in 0..20 {
            let t = rng.next_u64() % 64;
            q.schedule_at(SimTime::from_ns(t), id);
            expected.push((t, id));
            id += 1;
        }
        // sort by (time, schedule order) — the promised total order
        expected.sort_by_key(|&(t, i)| (t, i));
        let mut got: Vec<(u64, usize)> = Vec::new();
        while let Some((t, e)) = q.pop() {
            got.push((t.as_ns(), e));
            // every third pop, burst-schedule two events at `now`
            if e % 3 == 0 {
                for _ in 0..2 {
                    q.schedule_at(t, id);
                    // same-time events land after everything already
                    // scheduled at this instant
                    let pos = expected
                        .iter()
                        .position(|&(et, ei)| (et, ei) > (t.as_ns(), id))
                        .unwrap_or(expected.len());
                    expected.insert(pos, (t.as_ns(), id));
                    id += 1;
                }
            }
        }
        assert_eq!(got, expected, "case {case}");
    }
}

/// A resource never starts a job before its arrival and never runs
/// more jobs concurrently than it has servers.
#[test]
fn resource_respects_capacity() {
    for case in 0..CASES {
        let mut rng = Pcg32::seed_from_u64(0x5E2F + case);
        let servers = 1 + rng.next_below(7) as usize;
        let n = 1 + rng.next_below(300) as usize;
        let mut jobs: Vec<(u64, u64)> =
            (0..n).map(|_| (rng.next_u64() % 10_000, 1 + rng.next_u64() % 499)).collect();
        jobs.sort_unstable();
        let mut r = Resource::new(servers);
        let mut intervals: Vec<(u64, u64)> = Vec::new();
        for &(arrive, dur) in &jobs {
            let (start, end) = r.acquire_timed(SimTime::from_ns(arrive), dur);
            assert!(start.as_ns() >= arrive);
            assert_eq!(end.as_ns() - start.as_ns(), dur);
            intervals.push((start.as_ns(), end.as_ns()));
        }
        for &(s, _) in &intervals {
            let overlapping = intervals.iter().filter(|&&(a, b)| a <= s && s < b).count();
            assert!(overlapping <= servers, "case {case}: {overlapping} > {servers}");
        }
    }
}

/// Total busy time equals the sum of requested durations.
#[test]
fn resource_accounts_busy_time() {
    for case in 0..CASES {
        let mut rng = Pcg32::seed_from_u64(0xB5 + case);
        let n = 1 + rng.next_below(100) as usize;
        let durs: Vec<u64> = (0..n).map(|_| 1 + rng.next_u64() % 999).collect();
        let mut r = Resource::new(3);
        for &d in &durs {
            r.acquire(SimTime::ZERO, d);
        }
        assert_eq!(r.busy_ns(), durs.iter().sum::<u64>());
        assert_eq!(r.jobs(), durs.len() as u64);
    }
}

/// Gate admissions never exceed capacity and waiters are FIFO.
#[test]
fn gate_admits_fifo_within_capacity() {
    for case in 0..CASES {
        let mut rng = Pcg32::seed_from_u64(0x6A7E + case);
        let cap = 1 + rng.next_below(15) as usize;
        let n = 1 + rng.next_below(200) as usize;
        let mut g = Gate::new(cap);
        let mut admitted = Vec::new();
        let mut queued = std::collections::VecDeque::new();
        for i in 0..n as u64 {
            if g.try_acquire() {
                admitted.push(i);
            } else {
                g.enqueue(i);
                queued.push_back(i);
            }
            assert!(g.in_use() <= cap);
        }
        for _ in 0..admitted.len() + queued.len() {
            if g.in_use() == 0 {
                break;
            }
            match g.release() {
                Some(tok) => assert_eq!(Some(tok), queued.pop_front()),
                None => assert!(queued.is_empty()),
            }
        }
    }
}

/// PCG32 is deterministic and bounded draws stay in range.
#[test]
fn rng_bounded_and_deterministic() {
    for case in 0..CASES {
        let mut seeder = Pcg32::seed_from_u64(0xD1CE + case);
        let seed = seeder.next_u64();
        let bound = 1 + seeder.next_below(9_999);
        let mut a = Pcg32::seed_from_u64(seed);
        let mut b = Pcg32::seed_from_u64(seed);
        for _ in 0..100 {
            let x = a.next_below(bound);
            assert!(x < bound);
            assert_eq!(x, b.next_below(bound));
        }
    }
}

/// SimTime arithmetic is monotone and saturating.
#[test]
fn time_arithmetic() {
    let mut rng = Pcg32::seed_from_u64(0x71AE);
    for _ in 0..200 {
        let ns = rng.next_u64();
        let delta = rng.next_u64();
        let t = SimTime::from_ns(ns);
        assert!(t.after(delta) >= t);
        assert_eq!(t.after(delta) - t, delta.min(u64::MAX - ns));
    }
    // the saturating edge itself
    let t = SimTime::from_ns(u64::MAX - 3);
    assert_eq!(t.after(u64::MAX) - t, 3);
}
