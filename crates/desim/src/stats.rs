//! Lightweight statistics collectors for simulation instrumentation.
//!
//! Everything here is O(1) per observation and allocation-free after
//! construction, so collectors can sit on hot simulation paths.

use crate::time::SimTime;

/// A plain monotonically increasing event counter.
#[derive(Debug, Default, Clone, Copy)]
pub struct Counter(u64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Add one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Add `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// Welford's online mean/variance plus min/max.
#[derive(Debug, Clone, Copy)]
pub struct Online {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Online {
    fn default() -> Self {
        Self::new()
    }
}

impl Online {
    /// An empty accumulator.
    pub fn new() -> Self {
        Online { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than 2 samples).
    #[inline]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    #[inline]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    #[inline]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    #[inline]
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Time-weighted integral of a piecewise-constant signal, e.g. "number
/// of busy warps over time". Yields exact time averages.
#[derive(Debug, Clone, Copy)]
pub struct TimeWeighted {
    last_t: SimTime,
    value: f64,
    integral: f64,
    peak: f64,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWeighted {
    /// Start at value 0 at t = 0.
    pub fn new() -> Self {
        TimeWeighted { last_t: SimTime::ZERO, value: 0.0, integral: 0.0, peak: 0.0 }
    }

    /// Set the signal to `value` from time `now` on.
    #[inline]
    pub fn set(&mut self, now: SimTime, value: f64) {
        self.integral += self.value * (now - self.last_t) as f64;
        self.last_t = now;
        self.value = value;
        self.peak = self.peak.max(value);
    }

    /// Add `delta` to the signal at time `now`.
    #[inline]
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    /// Time average of the signal over `[0, horizon]`.
    pub fn average(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        let tail = self.value * (horizon - self.last_t) as f64;
        (self.integral + tail) / horizon.as_ns() as f64
    }

    /// Peak signal value seen.
    #[inline]
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Current signal value.
    #[inline]
    pub fn current(&self) -> f64 {
        self.value
    }
}

/// Power-of-two bucketed histogram of `u64` magnitudes (latencies,
/// sizes). Bucket `k` holds values in `[2^(k-1), 2^k)`; bucket 0 holds 0.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram { buckets: [0; 65], count: 0, sum: 0 }
    }

    /// Record a value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let idx = if v == 0 { 0 } else { 64 - v.leading_zeros() as usize };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v;
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q in [0,1]`: upper bound of the bucket
    /// containing the q-th observation.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0)) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return if k == 0 { 0 } else { (1u128 << k) as u64 - 1 };
            }
        }
        u64::MAX
    }

    /// Iterate `(bucket_upper_bound, count)` over non-empty buckets.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().enumerate().filter(|(_, &c)| c > 0).map(|(k, &c)| {
            let ub = if k == 0 { 0 } else { ((1u128 << k) - 1) as u64 };
            (ub, c)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn online_matches_closed_form() {
        let mut o = Online::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            o.record(x);
        }
        assert_eq!(o.count(), 8);
        assert!((o.mean() - 5.0).abs() < 1e-12);
        assert!((o.variance() - 4.0).abs() < 1e-12);
        assert!((o.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(o.min(), 2.0);
        assert_eq!(o.max(), 9.0);
    }

    #[test]
    fn online_empty_is_safe() {
        let o = Online::new();
        assert_eq!(o.mean(), 0.0);
        assert_eq!(o.variance(), 0.0);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new();
        tw.set(SimTime::from_ns(0), 2.0);
        tw.set(SimTime::from_ns(10), 4.0);
        tw.set(SimTime::from_ns(30), 0.0);
        // 2*10 + 4*20 + 0*70 over 100 ns = 1.0
        assert!((tw.average(SimTime::from_ns(100)) - 1.0).abs() < 1e-12);
        assert_eq!(tw.peak(), 4.0);
    }

    #[test]
    fn time_weighted_add_tracks_deltas() {
        let mut tw = TimeWeighted::new();
        tw.add(SimTime::from_ns(0), 1.0);
        tw.add(SimTime::from_ns(50), 1.0);
        assert_eq!(tw.current(), 2.0);
        // 1*50 + 2*50 over 100
        assert!((tw.average(SimTime::from_ns(100)) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_and_mean() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert!((h.mean() - (1010.0 / 6.0)).abs() < 1e-9);
        let buckets: Vec<_> = h.iter_nonzero().collect();
        // 0 -> bucket 0; 1 -> [1,1]; 2,3 -> [2,3]; 4 -> [4,7]; 1000 -> [512,1023]
        assert_eq!(buckets, vec![(0, 1), (1, 1), (3, 2), (7, 1), (1023, 1)]);
    }

    #[test]
    fn histogram_quantiles_are_monotone() {
        let mut h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v);
        }
        let q50 = h.quantile(0.5);
        let q90 = h.quantile(0.9);
        let q99 = h.quantile(0.99);
        assert!(q50 <= q90 && q90 <= q99);
        assert!((255..=1023).contains(&q50));
    }
}
