//! Deterministic pseudo-random numbers for the simulator.
//!
//! The engine deliberately ships its own tiny RNG instead of pulling a
//! general-purpose crate into the hot path: simulations must replay
//! bit-identically across versions, so the generator's exact stream is
//! part of the engine's contract. [`Pcg32`] is the classic PCG-XSH-RR
//! 64/32 generator (O'Neill 2014); [`split_mix64`] is used to expand a
//! single user seed into well-distributed stream seeds.

/// One step of the SplitMix64 sequence; good for seed expansion.
#[inline]
pub fn split_mix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// PCG-XSH-RR 64/32: small, fast, statistically solid, reproducible.
#[derive(Debug, Clone)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

impl Pcg32 {
    const MULT: u64 = 6_364_136_223_846_793_005;

    /// Seed a generator; distinct `(seed, stream)` pairs produce
    /// independent sequences.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut rng = Pcg32 { state: 0, inc: (stream << 1) | 1 };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Seed from a single value (stream derived via SplitMix64).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut s = seed;
        let a = split_mix64(&mut s);
        let b = split_mix64(&mut s);
        Pcg32::new(a, b)
    }

    /// Next 32 uniform random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(Self::MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 uniform random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Uniform value in `[0, bound)` using Lemire's multiply-shift
    /// rejection method (unbiased).
    #[inline]
    pub fn next_below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "next_below(0) is meaningless");
        loop {
            let x = self.next_u32();
            let m = (x as u64).wrapping_mul(bound as u64);
            let l = m as u32;
            if l >= bound.wrapping_neg() % bound {
                return (m >> 32) as u32;
            }
        }
    }

    /// Uniform `usize` in `[lo, hi)`.
    #[inline]
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = (hi - lo) as u64;
        if span <= u32::MAX as u64 {
            lo + self.next_below(span as u32) as usize
        } else {
            lo + (self.next_u64() % span) as usize
        }
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of entropy.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.range_usize(0, i + 1);
            xs.swap(i, j);
        }
    }

    /// Derive an independent child generator (for per-entity streams).
    pub fn fork(&mut self) -> Pcg32 {
        let a = self.next_u64();
        let b = self.next_u64();
        Pcg32::new(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = Pcg32::seed_from_u64(42);
        let mut b = Pcg32::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Pcg32::seed_from_u64(1);
        let mut b = Pcg32::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "streams should be effectively independent");
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = Pcg32::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(rng.next_below(17) < 17);
        }
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut rng = Pcg32::seed_from_u64(9);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.next_below(8) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c} out of range");
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Pcg32::seed_from_u64(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Pcg32::seed_from_u64(13);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn fork_gives_independent_streams() {
        let mut parent = Pcg32::seed_from_u64(99);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let same = (0..64).filter(|_| c1.next_u32() == c2.next_u32()).count();
        assert!(same < 4);
    }

    #[test]
    fn range_usize_bounds() {
        let mut rng = Pcg32::seed_from_u64(5);
        for _ in 0..1000 {
            let v = rng.range_usize(10, 20);
            assert!((10..20).contains(&v));
        }
    }
}
