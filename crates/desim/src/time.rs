//! Virtual simulation time.
//!
//! [`SimTime`] is a thin wrapper over `u64` nanoseconds. Nanosecond
//! integer resolution (rather than `f64` seconds) keeps event ordering
//! exact and platform-independent, which is a precondition for the
//! engine's determinism guarantee.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable time; used as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Time expressed in (fractional) microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Time expressed in (fractional) milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time expressed in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference `self - earlier`, in nanoseconds.
    #[inline]
    pub fn since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Checked addition of a nanosecond delay (saturates at `MAX`).
    #[inline]
    pub fn after(self, delay_ns: u64) -> SimTime {
        SimTime(self.0.saturating_add(delay_ns))
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: u64) -> SimTime {
        self.after(rhs)
    }
}

impl AddAssign<u64> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        *self = self.after(rhs);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: SimTime) -> u64 {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    /// Human-scale rendering: picks ns / µs / ms / s automatically.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 10_000 {
            write!(f, "{ns} ns")
        } else if ns < 10_000_000 {
            write!(f, "{:.2} us", self.as_us_f64())
        } else if ns < 10_000_000_000 {
            write!(f, "{:.3} ms", self.as_ms_f64())
        } else {
            write!(f, "{:.4} s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimTime::from_us(3).as_ns(), 3_000);
        assert_eq!(SimTime::from_ms(2).as_ns(), 2_000_000);
        assert_eq!(SimTime::from_ns(1500).as_us_f64(), 1.5);
        assert_eq!(SimTime::from_ms(1500).as_secs_f64(), 1.5);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ns(100);
        assert_eq!((t + 50).as_ns(), 150);
        let mut u = t;
        u += 25;
        assert_eq!(u.as_ns(), 125);
        assert_eq!(u - t, 25);
        // saturating difference never panics or wraps
        assert_eq!(t - u, 0);
    }

    #[test]
    fn saturation_at_max() {
        assert_eq!(SimTime::MAX.after(1), SimTime::MAX);
        assert_eq!(SimTime::MAX + 100, SimTime::MAX);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::ZERO < SimTime::from_ns(1));
        assert!(SimTime::from_us(1) < SimTime::from_ms(1));
        assert!(SimTime::from_ms(1) < SimTime::MAX);
    }

    #[test]
    fn display_scales() {
        assert_eq!(SimTime::from_ns(42).to_string(), "42 ns");
        assert_eq!(SimTime::from_us(42).to_string(), "42.00 us");
        assert_eq!(SimTime::from_ms(42).to_string(), "42.000 ms");
        assert_eq!(SimTime::from_ms(42_000).to_string(), "42.0000 s");
    }
}
