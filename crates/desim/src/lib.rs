//! # desim — a small deterministic discrete-event simulation engine
//!
//! `desim` provides the substrate on which the multi-GPU machine model
//! (`mgpu-sim`) and the SpTRSV dataflow executor (`sptrsv`) run. It is a
//! classic event-calendar DES core:
//!
//! * [`SimTime`] — a nanosecond-resolution virtual clock value.
//! * [`EventQueue`] — a time-ordered calendar of typed events with
//!   deterministic FIFO tie-breaking.
//! * [`Resource`] — a multi-server FIFO resource for *duration-known*
//!   work (e.g. GPU execution lanes, interconnect links).
//! * [`Gate`] — a counting-capacity admission gate for
//!   *duration-unknown* occupancy (e.g. resident warp slots).
//! * [`stats`] — counters, Welford online statistics, time-weighted
//!   integrals and power-of-two histograms.
//! * [`rng`] — a tiny, fully deterministic PCG32/SplitMix64 RNG so that
//!   simulations are reproducible from a single `u64` seed.
//!
//! The engine is intentionally *passive*: it has no process abstraction
//! and never calls user code. Domain crates own the control flow — they
//! pop events, mutate state, and push follow-up events. This keeps the
//! hot loop allocation-free and easy to reason about (see the Rust
//! Performance Book's guidance on avoiding indirection in hot paths).
//!
//! ## Determinism
//!
//! Two runs with the same seed and the same sequence of API calls
//! produce bit-identical schedules: ties in event time are broken by a
//! monotonically increasing sequence number, resources are strictly
//! FIFO, and all randomness flows from [`rng::Pcg32`].

#![warn(missing_docs)]

pub mod gate;
pub mod queue;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;

pub use gate::Gate;
pub use queue::EventQueue;
pub use resource::Resource;
pub use rng::Pcg32;
pub use time::SimTime;
