//! Counting-capacity admission gates for duration-unknown occupancy.
//!
//! A [`Gate`] models a pool of slots that are held for an *unknown*
//! duration — the canonical example here is GPU resident-warp slots: a
//! warp occupies its slot from launch until it retires, and how long
//! that takes depends on the dataflow being simulated. Waiters are
//! admitted strictly FIFO, identified by opaque `u64` tokens that the
//! caller maps back to its own entities.

use std::collections::VecDeque;

/// A FIFO admission gate with fixed capacity.
#[derive(Debug)]
pub struct Gate {
    capacity: usize,
    in_use: usize,
    waiters: VecDeque<u64>,
    peak_in_use: usize,
    peak_waiting: usize,
    admitted: u64,
}

impl Gate {
    /// Create a gate admitting at most `capacity` concurrent holders.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a Gate needs capacity of at least one");
        Gate {
            capacity,
            in_use: 0,
            waiters: VecDeque::new(),
            peak_in_use: 0,
            peak_waiting: 0,
            admitted: 0,
        }
    }

    /// Try to take a slot immediately. Returns `true` on success.
    /// On `false` the caller should register itself via
    /// [`enqueue`](Self::enqueue).
    #[inline]
    pub fn try_acquire(&mut self) -> bool {
        if self.in_use < self.capacity && self.waiters.is_empty() {
            self.in_use += 1;
            self.peak_in_use = self.peak_in_use.max(self.in_use);
            self.admitted += 1;
            true
        } else {
            false
        }
    }

    /// Join the FIFO wait queue with an opaque token the caller will
    /// recognize when it is admitted by [`release`](Self::release).
    #[inline]
    pub fn enqueue(&mut self, waiter: u64) {
        self.waiters.push_back(waiter);
        self.peak_waiting = self.peak_waiting.max(self.waiters.len());
    }

    /// Release one slot. If someone is waiting, the slot is handed over
    /// atomically and the admitted waiter's token is returned — the
    /// caller must schedule that waiter's resumption. Returns `None`
    /// when the queue was empty (the slot simply becomes free).
    #[inline]
    pub fn release(&mut self) -> Option<u64> {
        debug_assert!(self.in_use > 0, "release without acquire");
        match self.waiters.pop_front() {
            Some(next) => {
                // slot transfers directly; `in_use` is unchanged
                self.admitted += 1;
                Some(next)
            }
            None => {
                self.in_use -= 1;
                None
            }
        }
    }

    /// Slots currently held.
    #[inline]
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Waiters currently queued.
    #[inline]
    pub fn waiting(&self) -> usize {
        self.waiters.len()
    }

    /// Total capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// High-water mark of concurrently held slots.
    #[inline]
    pub fn peak_in_use(&self) -> usize {
        self.peak_in_use
    }

    /// High-water mark of the wait queue length.
    #[inline]
    pub fn peak_waiting(&self) -> usize {
        self.peak_waiting
    }

    /// Total admissions (immediate or after queueing).
    #[inline]
    pub fn admitted(&self) -> u64 {
        self.admitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_up_to_capacity() {
        let mut g = Gate::new(2);
        assert!(g.try_acquire());
        assert!(g.try_acquire());
        assert!(!g.try_acquire());
        assert_eq!(g.in_use(), 2);
    }

    #[test]
    fn release_hands_slot_to_fifo_waiter() {
        let mut g = Gate::new(1);
        assert!(g.try_acquire());
        g.enqueue(7);
        g.enqueue(8);
        assert_eq!(g.release(), Some(7));
        assert_eq!(g.in_use(), 1, "slot transferred, not freed");
        assert_eq!(g.release(), Some(8));
        assert_eq!(g.release(), None);
        assert_eq!(g.in_use(), 0);
    }

    #[test]
    fn waiters_block_new_arrivals_even_with_free_slots() {
        // Prevents barging: once a queue forms, FIFO order is strict.
        let mut g = Gate::new(2);
        assert!(g.try_acquire());
        g.enqueue(1);
        assert!(!g.try_acquire(), "must not barge past queued waiter");
    }

    #[test]
    fn statistics_track_peaks() {
        let mut g = Gate::new(1);
        assert!(g.try_acquire());
        g.enqueue(1);
        g.enqueue(2);
        g.enqueue(3);
        assert_eq!(g.peak_waiting(), 3);
        assert_eq!(g.peak_in_use(), 1);
        g.release();
        g.release();
        g.release();
        assert_eq!(g.release(), None);
        assert_eq!(g.admitted(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_capacity_rejected() {
        let _ = Gate::new(0);
    }
}
