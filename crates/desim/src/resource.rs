//! Multi-server FIFO resources for duration-known work.
//!
//! A [`Resource`] models a bank of identical servers (GPU execution
//! lanes, a link's transfer engines, a fault handler). Callers *reserve*
//! a server for a known duration at the current simulation time; the
//! resource returns the completion time, which the caller schedules as
//! an event. Because DES event processing calls `acquire` in
//! non-decreasing time order, reservation order equals arrival order and
//! the discipline is FIFO.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A bank of `servers` identical FIFO servers.
#[derive(Debug)]
pub struct Resource {
    /// Earliest instant each server becomes free.
    free_at: BinaryHeap<Reverse<SimTime>>,
    servers: usize,
    busy_ns: u64,
    jobs: u64,
    queued_ns: u64,
}

impl Resource {
    /// Create a resource with `servers` parallel servers.
    ///
    /// # Panics
    /// Panics if `servers == 0`.
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "a Resource needs at least one server");
        let mut free_at = BinaryHeap::with_capacity(servers);
        for _ in 0..servers {
            free_at.push(Reverse(SimTime::ZERO));
        }
        Resource { free_at, servers, busy_ns: 0, jobs: 0, queued_ns: 0 }
    }

    /// Number of servers in the bank.
    #[inline]
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Reserve one server at time `now` for `dur_ns`; returns the
    /// completion time (`>= now + dur_ns`, later if all servers busy).
    #[inline]
    pub fn acquire(&mut self, now: SimTime, dur_ns: u64) -> SimTime {
        let Reverse(earliest) = self.free_at.pop().expect("server heap invariant");
        let start = earliest.max(now);
        let end = start.after(dur_ns);
        self.free_at.push(Reverse(end));
        self.busy_ns += dur_ns;
        self.queued_ns += start - now;
        self.jobs += 1;
        end
    }

    /// Like [`acquire`](Self::acquire) but also returns the start time,
    /// for callers that need to know the queueing delay of this job.
    #[inline]
    pub fn acquire_timed(&mut self, now: SimTime, dur_ns: u64) -> (SimTime, SimTime) {
        let Reverse(earliest) = self.free_at.pop().expect("server heap invariant");
        let start = earliest.max(now);
        let end = start.after(dur_ns);
        self.free_at.push(Reverse(end));
        self.busy_ns += dur_ns;
        self.queued_ns += start - now;
        self.jobs += 1;
        (start, end)
    }

    /// Earliest time a new job arriving at `now` could start.
    #[inline]
    pub fn next_free(&self, now: SimTime) -> SimTime {
        let Reverse(earliest) = *self.free_at.peek().expect("server heap invariant");
        earliest.max(now)
    }

    /// Total busy server-nanoseconds consumed so far.
    #[inline]
    pub fn busy_ns(&self) -> u64 {
        self.busy_ns
    }

    /// Total nanoseconds jobs spent waiting for a server.
    #[inline]
    pub fn queued_ns(&self) -> u64 {
        self.queued_ns
    }

    /// Number of jobs served.
    #[inline]
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Mean utilization over `[0, horizon]`: busy server-time divided by
    /// total server capacity. Returns a value in `[0, 1]` for feasible
    /// schedules.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        self.busy_ns as f64 / (self.servers as f64 * horizon.as_ns() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_server_serializes() {
        let mut r = Resource::new(1);
        let t0 = SimTime::ZERO;
        assert_eq!(r.acquire(t0, 10).as_ns(), 10);
        assert_eq!(r.acquire(t0, 10).as_ns(), 20);
        assert_eq!(r.acquire(t0, 5).as_ns(), 25);
        assert_eq!(r.busy_ns(), 25);
        assert_eq!(r.jobs(), 3);
    }

    #[test]
    fn parallel_servers_overlap() {
        let mut r = Resource::new(2);
        let t0 = SimTime::ZERO;
        assert_eq!(r.acquire(t0, 10).as_ns(), 10);
        assert_eq!(r.acquire(t0, 10).as_ns(), 10);
        // third job waits for the earliest of the two to free up
        assert_eq!(r.acquire(t0, 10).as_ns(), 20);
    }

    #[test]
    fn idle_server_starts_at_now() {
        let mut r = Resource::new(1);
        assert_eq!(r.acquire(SimTime::from_ns(100), 10).as_ns(), 110);
        // arriving later than the server frees: starts immediately
        assert_eq!(r.acquire(SimTime::from_ns(500), 10).as_ns(), 510);
    }

    #[test]
    fn acquire_timed_reports_queueing() {
        let mut r = Resource::new(1);
        let t0 = SimTime::ZERO;
        r.acquire(t0, 100);
        let (start, end) = r.acquire_timed(SimTime::from_ns(30), 10);
        assert_eq!(start.as_ns(), 100);
        assert_eq!(end.as_ns(), 110);
        assert_eq!(r.queued_ns(), 70);
    }

    #[test]
    fn utilization_is_fractional() {
        let mut r = Resource::new(2);
        r.acquire(SimTime::ZERO, 50);
        // one of two servers busy for 50 of 100 ns => 25%
        assert!((r.utilization(SimTime::from_ns(100)) - 0.25).abs() < 1e-12);
        assert_eq!(r.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn next_free_peeks_without_reserving() {
        let mut r = Resource::new(1);
        r.acquire(SimTime::ZERO, 40);
        assert_eq!(r.next_free(SimTime::from_ns(10)).as_ns(), 40);
        assert_eq!(r.next_free(SimTime::from_ns(90)).as_ns(), 90);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        let _ = Resource::new(0);
    }
}
