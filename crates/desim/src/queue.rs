//! The event calendar.
//!
//! [`EventQueue`] is a binary-heap calendar keyed on
//! `(SimTime, sequence)`. The sequence number makes event ordering a
//! *total* order: two events scheduled for the same instant are
//! delivered in the order they were pushed. That FIFO tie-break is what
//! makes simulations replayable bit-for-bit.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    at: SimTime,
    seq: u64,
}

/// Heap entry ordered solely by key — the payload never participates in
/// comparisons, so `E` needs no `Ord` bound.
#[derive(Debug)]
struct Entry<E> {
    key: Key,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// A time-ordered queue of typed events.
///
/// The queue also owns the simulation clock: popping an event advances
/// [`EventQueue::now`] to that event's timestamp. Scheduling into the
/// past is a logic error and panics in debug builds (it is clamped to
/// `now` in release builds, which keeps long benchmark runs alive while
/// still surfacing the bug under `cargo test`).
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    now: SimTime,
    seq: u64,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty calendar at t = 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            scheduled_total: 0,
        }
    }

    /// An empty calendar with pre-allocated capacity for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            now: SimTime::ZERO,
            seq: 0,
            scheduled_total: 0,
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting in the calendar.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events remain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (for run statistics).
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// `at` must not precede the current clock; see the type-level docs
    /// for the debug/release behaviour on violation.
    #[inline]
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduled into the past: at={at:?} now={:?}",
            self.now
        );
        let at = at.max(self.now);
        let key = Key { at, seq: self.seq };
        self.seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Reverse(Entry { key, event }));
    }

    /// Schedule `event` at `now + delay_ns`.
    #[inline]
    pub fn schedule_in(&mut self, delay_ns: u64, event: E) {
        self.schedule_at(self.now.after(delay_ns), event);
    }

    /// Pop the earliest event and advance the clock to its timestamp.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(Entry { key, event }) = self.heap.pop()?;
        debug_assert!(key.at >= self.now, "event calendar went backwards");
        self.now = key.at;
        Some((key.at, event))
    }

    /// Timestamp of the next event without popping it.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.key.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ns(30), "c");
        q.schedule_at(SimTime::from_ns(10), "a");
        q.schedule_at(SimTime::from_ns(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(SimTime::from_ns(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule_in(100, ());
        assert_eq!(q.now(), SimTime::ZERO);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_ns(100));
        assert_eq!(q.now(), SimTime::from_ns(100));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_in(10, "first");
        q.pop().unwrap();
        q.schedule_in(10, "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t.as_ns(), 20);
    }

    #[test]
    fn counts_scheduled_events() {
        let mut q = EventQueue::new();
        q.schedule_in(1, ());
        q.schedule_in(2, ());
        q.pop();
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule_in(7, ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(7)));
        assert_eq!(q.now(), SimTime::ZERO);
    }

    #[test]
    #[cfg(debug_assertions)] // release builds clamp instead of panicking
    #[should_panic(expected = "scheduled into the past")]
    fn scheduling_into_the_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule_in(100, ());
        q.pop();
        q.schedule_at(SimTime::from_ns(1), ());
    }
}
