//! The event calendar.
//!
//! [`EventQueue`] is a calendar keyed on `(SimTime, sequence)`. The
//! sequence number makes event ordering a *total* order: two events
//! scheduled for the same instant are delivered in the order they were
//! pushed. That FIFO tie-break is what makes simulations replayable
//! bit-for-bit.
//!
//! ## Same-timestamp fast path
//!
//! The dataflow executor's dominant scheduling pattern is a *burst at
//! the current instant*: a kernel event fans out warp-slot events at
//! `now`, a retiring warp floods dependency decrements at one durable
//! timestamp, and so on. Routing those through the binary heap costs
//! `O(log n)` sift-downs per event even though they pop in pure FIFO
//! order. The calendar therefore keeps a [`VecDeque`] *bucket* for
//! events scheduled exactly at the current clock: `push_back` on
//! schedule, `pop_front` on pop, both `O(1)`. Total order is preserved
//! because every pop compares the bucket head's `(at, seq)` key against
//! the heap's — whichever is globally smallest is delivered. The
//! `same_time_bursts` benchmark in `crates/bench/benches/substrate.rs`
//! tracks the win.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    at: SimTime,
    seq: u64,
}

/// Heap entry ordered solely by key — the payload never participates in
/// comparisons, so `E` needs no `Ord` bound.
#[derive(Debug)]
struct Entry<E> {
    key: Key,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// A time-ordered queue of typed events.
///
/// The queue also owns the simulation clock: popping an event advances
/// [`EventQueue::now`] to that event's timestamp. Scheduling into the
/// past is a logic error and panics in debug builds (it is clamped to
/// `now` in release builds, which keeps long benchmark runs alive while
/// still surfacing the bug under `cargo test`).
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    /// FIFO bucket holding events scheduled at exactly [`Self::bucket_at`];
    /// `seq` rides along so pops can interleave correctly with the heap.
    bucket: VecDeque<(u64, E)>,
    bucket_at: SimTime,
    now: SimTime,
    seq: u64,
    scheduled_total: u64,
    bucket_hits: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty calendar at t = 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            bucket: VecDeque::new(),
            bucket_at: SimTime::ZERO,
            now: SimTime::ZERO,
            seq: 0,
            scheduled_total: 0,
            bucket_hits: 0,
        }
    }

    /// An empty calendar with pre-allocated capacity for `cap` events.
    ///
    /// The heap takes the full capacity; the same-timestamp bucket is
    /// pre-sized to a bounded slice of it (bursts are wide but not
    /// calendar-wide).
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            bucket: VecDeque::with_capacity(cap.min(1024)),
            bucket_at: SimTime::ZERO,
            now: SimTime::ZERO,
            seq: 0,
            scheduled_total: 0,
            bucket_hits: 0,
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting in the calendar.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len() + self.bucket.len()
    }

    /// True when no events remain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty() && self.bucket.is_empty()
    }

    /// Total number of events ever scheduled (for run statistics).
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Events that took the O(1) same-timestamp fast path (for
    /// benchmarks and tests).
    #[inline]
    pub fn fast_path_hits(&self) -> u64 {
        self.bucket_hits
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// `at` must not precede the current clock; see the type-level docs
    /// for the debug/release behaviour on violation.
    #[inline]
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "scheduled into the past: at={at:?} now={:?}", self.now);
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.scheduled_total += 1;
        // Fast path: a burst at the current instant (or growing an
        // already-open bucket at that instant) is pure FIFO — skip the
        // heap entirely.
        if at == self.now && (self.bucket.is_empty() || self.bucket_at == at) {
            self.bucket_at = at;
            self.bucket.push_back((seq, event));
            self.bucket_hits += 1;
            return;
        }
        self.heap.push(Reverse(Entry { key: Key { at, seq }, event }));
    }

    /// Schedule `event` at `now + delay_ns`.
    #[inline]
    pub fn schedule_in(&mut self, delay_ns: u64, event: E) {
        self.schedule_at(self.now.after(delay_ns), event);
    }

    /// Pop the earliest event and advance the clock to its timestamp.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let take_bucket = match (self.bucket.front(), self.heap.peek()) {
            (Some(&(bseq, _)), Some(Reverse(entry))) => {
                (self.bucket_at, bseq) < (entry.key.at, entry.key.seq)
            }
            (Some(_), None) => true,
            (None, _) => false,
        };
        if take_bucket {
            let (_, event) = self.bucket.pop_front().expect("checked non-empty");
            debug_assert!(self.bucket_at >= self.now, "event calendar went backwards");
            self.now = self.bucket_at;
            return Some((self.bucket_at, event));
        }
        let Reverse(Entry { key, event }) = self.heap.pop()?;
        debug_assert!(key.at >= self.now, "event calendar went backwards");
        self.now = key.at;
        Some((key.at, event))
    }

    /// Timestamp of the next event without popping it.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        let heap_at = self.heap.peek().map(|Reverse(e)| e.key.at);
        let bucket_at = self.bucket.front().map(|_| self.bucket_at);
        match (heap_at, bucket_at) {
            (Some(h), Some(b)) => Some(h.min(b)),
            (h, b) => h.or(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ns(30), "c");
        q.schedule_at(SimTime::from_ns(10), "a");
        q.schedule_at(SimTime::from_ns(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(SimTime::from_ns(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule_in(100, ());
        assert_eq!(q.now(), SimTime::ZERO);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_ns(100));
        assert_eq!(q.now(), SimTime::from_ns(100));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_in(10, "first");
        q.pop().unwrap();
        q.schedule_in(10, "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t.as_ns(), 20);
    }

    #[test]
    fn counts_scheduled_events() {
        let mut q = EventQueue::new();
        q.schedule_in(1, ());
        q.schedule_in(2, ());
        q.pop();
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule_in(7, ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(7)));
        assert_eq!(q.now(), SimTime::ZERO);
    }

    #[test]
    fn same_instant_burst_takes_fast_path_and_stays_fifo() {
        let mut q = EventQueue::new();
        q.schedule_in(10, 0u32);
        let (t, _) = q.pop().unwrap();
        // burst at the current instant: all bucketed
        for i in 1..=50u32 {
            q.schedule_at(t, i);
        }
        assert!(q.fast_path_hits() >= 50);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (1..=50).collect::<Vec<_>>());
    }

    #[test]
    fn bucket_interleaves_with_heap_in_seq_order() {
        let mut q = EventQueue::new();
        // heap events at t=10 scheduled first (smaller seq)
        q.schedule_at(SimTime::from_ns(10), 0u32);
        q.schedule_at(SimTime::from_ns(10), 1u32);
        let (t, e) = q.pop().unwrap();
        assert_eq!((t.as_ns(), e), (10, 0));
        // now schedule at the same instant: bucketed, but seq is larger
        // than the remaining heap event at t=10 — heap must pop first
        q.schedule_at(t, 2u32);
        q.schedule_at(SimTime::from_ns(11), 3u32);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn peek_sees_bucket_head() {
        let mut q = EventQueue::new();
        q.schedule_in(5, 0u32);
        q.pop().unwrap();
        q.schedule_at(SimTime::from_ns(5), 1u32); // bucketed
        q.schedule_at(SimTime::from_ns(9), 2u32); // heap
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(5)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    #[cfg(debug_assertions)] // release builds clamp instead of panicking
    #[should_panic(expected = "scheduled into the past")]
    fn scheduling_into_the_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule_in(100, ());
        q.pop();
        q.schedule_at(SimTime::from_ns(1), ());
    }
}
