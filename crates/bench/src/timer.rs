//! A dependency-free timed harness for `cargo bench`.
//!
//! The build environment is offline, so criterion cannot be resolved;
//! this module provides the small subset the benches need: named
//! groups, per-benchmark sample loops with one warmup iteration, and a
//! min/median/mean summary printed in a stable, greppable format.
//! Bench targets declare `harness = false` and call these helpers from
//! a plain `main()`.

use std::time::Instant;

/// Summary statistics of one benchmark's sample loop.
#[derive(Debug, Clone, Copy)]
pub struct TimingSummary {
    /// Fastest sample, ns.
    pub min_ns: u64,
    /// Median sample, ns.
    pub median_ns: u64,
    /// Arithmetic mean, ns.
    pub mean_ns: u64,
    /// Number of timed samples (excluding warmup).
    pub samples: usize,
}

impl TimingSummary {
    /// Render a duration in adaptive units.
    pub fn human(ns: u64) -> String {
        if ns >= 1_000_000_000 {
            format!("{:.3} s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            format!("{:.3} ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            format!("{:.3} us", ns as f64 / 1e3)
        } else {
            format!("{ns} ns")
        }
    }
}

/// Time `f` over `samples` iterations after one untimed warmup.
pub fn time_ns<R>(samples: usize, mut f: impl FnMut() -> R) -> TimingSummary {
    let samples = samples.max(1);
    std::hint::black_box(f()); // warmup
    let mut laps = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        std::hint::black_box(f());
        laps.push(t0.elapsed().as_nanos() as u64);
    }
    laps.sort_unstable();
    TimingSummary {
        min_ns: laps[0],
        median_ns: laps[laps.len() / 2],
        mean_ns: laps.iter().sum::<u64>() / laps.len() as u64,
        samples,
    }
}

/// A named benchmark group mirroring criterion's `benchmark_group`.
pub struct Group {
    name: String,
}

impl Group {
    /// Open a group and print its header.
    pub fn new(name: &str) -> Group {
        println!("\n== {name} ==");
        Group { name: name.to_string() }
    }

    /// Run one benchmark in the group and print its summary line.
    pub fn bench<R>(&mut self, label: &str, samples: usize, f: impl FnMut() -> R) -> TimingSummary {
        let s = time_ns(samples, f);
        println!(
            "{}/{label:<28} min {:>12}  median {:>12}  mean {:>12}  ({} samples)",
            self.name,
            TimingSummary::human(s.min_ns),
            TimingSummary::human(s.median_ns),
            TimingSummary::human(s.mean_ns),
            s.samples,
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_orders_min_le_median_le_max_mean_band() {
        let s = time_ns(9, || {
            let mut acc = 0u64;
            for i in 0..1_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(s.min_ns <= s.median_ns);
        assert!(s.samples == 9);
    }

    #[test]
    fn human_units() {
        assert_eq!(TimingSummary::human(500), "500 ns");
        assert_eq!(TimingSummary::human(1_500), "1.500 us");
        assert_eq!(TimingSummary::human(2_500_000), "2.500 ms");
        assert_eq!(TimingSummary::human(3_000_000_000), "3.000 s");
    }
}
