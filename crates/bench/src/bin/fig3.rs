//! Figure 3: the Unified-Memory page-thrashing characterization.
//!
//! (a) page-fault counts and (b) performance of the UM design on
//! 2/4/8 GPUs of a DGX-1, normalized to the 2-GPU run, for four
//! representative matrices. Paper's finding: fault counts *grow* with
//! GPU count (up to 11.71× on one matrix) and performance *degrades*
//! for every matrix except nlpkkt160 (the embarrassingly parallel one).

use mgpu_sim::MachineConfig;
use sptrsv::SolverKind;
use sptrsv_bench::{harness_matrix, print_table, r2, run_variant};

fn main() {
    let gpu_counts = [2usize, 4, 8];
    let names = sparsemat::corpus::fig3_names();

    let mut fault_rows = Vec::new();
    let mut perf_rows = Vec::new();
    for &name in names {
        let nm = harness_matrix(name);
        let runs: Vec<_> = gpu_counts
            .iter()
            .map(|&g| run_variant(&nm, MachineConfig::dgx1(g), SolverKind::Unified))
            .collect();
        let f0 = runs[0].stats.total_um_faults().max(1) as f64;
        let t0 = runs[0].timings.total.as_ns() as f64;
        fault_rows.push(
            std::iter::once(name.to_string())
                .chain(runs.iter().map(|r| r2(r.stats.total_um_faults() as f64 / f0)))
                .collect(),
        );
        perf_rows.push(
            std::iter::once(name.to_string())
                .chain(runs.iter().map(|r| r2(t0 / r.timings.total.as_ns() as f64)))
                .collect(),
        );
    }
    print_table(
        "Figure 3a: UM page faults, normalized to 2 GPUs",
        &["matrix", "2 GPUs", "4 GPUs", "8 GPUs"],
        &fault_rows,
    );
    print_table(
        "Figure 3b: UM performance (1/time), normalized to 2 GPUs",
        &["matrix", "2 GPUs", "4 GPUs", "8 GPUs"],
        &perf_rows,
    );
    println!("\npaper: faults grow with GPU count (up to 11.71x); performance degrades");
    println!("2->8 GPUs for all but the most parallel matrix (nlpkkt160).");
}
