//! Out-of-core study (§I / §VI-A): the paper's motivation for
//! multi-GPU SpTRSV is matrices that do not fit a single GPU
//! (twitter7: 21.6 GB, uk-2005: 16.8 GB vs a 16 GB V100). Here the two
//! web-scale analogs are generated at 4× harness scale so they exceed
//! the corpus-scaled device capacity the same way: a single GPU must
//! stream spilled columns over PCIe, while 4 GPUs hold the partitions
//! in device memory (plus the symmetric-heap replicas of Algorithm 3).

use mgpu_sim::MachineConfig;
use sparsemat::corpus::by_name_scaled;
use sptrsv::SolverKind;
use sptrsv_bench::{harness_matrix, print_table, r2, run_variant};

fn main() {
    // Capacity scaled like the rest of the corpus; ~4 MiB plays the
    // role of the V100's 16 GB against these analog sizes.
    let cap_bytes: u64 = 4 << 20;
    let mut rows = Vec::new();
    for name in ["twitter7", "uk-2005", "nlpkkt160"] {
        let nm = if name == "nlpkkt160" {
            harness_matrix(name)
        } else {
            by_name_scaled(name, 48_000, 960_000).expect("corpus name")
        };
        let mut one = MachineConfig::dgx1(1);
        one.gpu.mem_bytes = cap_bytes;
        let mut four = MachineConfig::dgx1(4);
        four.gpu.mem_bytes = cap_bytes;

        let bytes = nm.matrix.device_bytes();
        let single = run_variant(&nm, one, SolverKind::SyncFree);
        let multi = run_variant(&nm, four, SolverKind::ZeroCopy { per_gpu: 8 });
        rows.push(vec![
            name.to_string(),
            format!("{:.1} MiB", bytes as f64 / (1 << 20) as f64),
            format!("{:.1} MiB", cap_bytes as f64 / (1 << 20) as f64),
            if single.fits_in_memory { "yes".into() } else { "NO (spills)".into() },
            format!("{:.1} MiB", single.stats.pcie_bytes as f64 / (1 << 20) as f64),
            if multi.fits_in_memory { "yes".into() } else { "NO".into() },
            r2(multi.speedup_over(&single)),
        ]);
    }
    print_table(
        "Out-of-core: single-GPU spill vs 4-GPU zero-copy (DGX-1)",
        &[
            "matrix",
            "matrix bytes",
            "GPU capacity",
            "fits 1 GPU",
            "PCIe traffic",
            "fits 4 GPUs",
            "4-GPU speedup",
        ],
        &rows,
    );
    println!("\npaper: twitter7 and uk-2005 are out-of-memory on one V100; the");
    println!("multi-GPU partitioning is what makes them solvable at device speed.");
}
