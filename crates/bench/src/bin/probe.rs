//! Calibration probe: absolute per-variant timings and counters for a
//! few corpus matrices. Not part of the paper's figures — a tuning aid.

use mgpu_sim::MachineConfig;
use sptrsv::SolverKind;
use sptrsv_bench::{harness_matrix, run_variant};

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

fn tweak(mut cfg: MachineConfig) -> MachineConfig {
    if let Some(v) = env_u64("UM_REMOTE_ATOMIC") {
        cfg.um.remote_atomic_ns = v;
    }
    if let Some(v) = env_u64("UM_FAULT_SERVICE") {
        cfg.um.fault_service_ns = v;
    }
    if let Some(v) = env_u64("UM_MIGRATE_THRESHOLD") {
        cfg.um.migrate_threshold = v as u32;
    }
    cfg
}

fn main() {
    let names: Vec<String> = std::env::args().skip(1).collect();
    let names = if names.is_empty() {
        vec![
            "powersim".to_string(),
            "nlpkkt160".to_string(),
            "chipcool0".to_string(),
            "dblp-2010".to_string(),
        ]
    } else {
        names
    };
    for name in &names {
        let nm = harness_matrix(name);
        println!(
            "\n--- {name}: n={} nnz={} levels={} par={:.0} ---",
            nm.achieved.rows, nm.achieved.nnz, nm.achieved.levels, nm.achieved.parallelism
        );
        for kind in [
            SolverKind::LevelSet,
            SolverKind::SyncFree,
            SolverKind::Unified,
            SolverKind::UnifiedTasks { per_gpu: 8 },
            SolverKind::ShmemBlocked,
            SolverKind::ZeroCopy { per_gpu: 8 },
        ] {
            let r = run_variant(&nm, tweak(MachineConfig::dgx1(4)), kind);
            println!(
                "{}  remote_ops={} migr={} cross={} pcie={}KB nvlink={}KB",
                r.summary(),
                r.stats.um_remote_ops,
                r.stats.um_migrations,
                r.cross_edges,
                r.stats.pcie_bytes / 1024,
                r.stats.nvlink_bytes / 1024,
            );
        }
    }
}
