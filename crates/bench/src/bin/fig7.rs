//! Figure 7: speedup of SpTRSV under the four design scenarios on a
//! 4-GPU DGX-1, normalized to 4GPU-Unified (analysis + solve summed).
//!
//! Paper's result: Unified+8task ≈ 11% *slower* on average than
//! Unified; Shmem ≈ 2.33× (up to 8.1×); Zerocopy ≈ 3.53× (up to 9.86×),
//! strongest on high-parallelism matrices (dc2, nlpkkt160, powersim,
//! Wordnet3).

use mgpu_sim::MachineConfig;
use sptrsv::SolverKind;
use sptrsv_bench::{geomean, harness_corpus, print_table, r2, run_variant};

fn main() {
    let corpus = harness_corpus();
    let kinds = [
        ("4GPU-Unified", SolverKind::Unified),
        ("4GPU-Unified+8task", SolverKind::UnifiedTasks { per_gpu: 8 }),
        ("4GPU-Shmem", SolverKind::ShmemBlocked),
        ("4GPU-Zerocopy", SolverKind::ZeroCopy { per_gpu: 8 }),
    ];

    let mut rows = Vec::new();
    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); kinds.len()];
    for nm in &corpus {
        let baseline = run_variant(nm, MachineConfig::dgx1(4), kinds[0].1);
        let mut row = vec![nm.name.to_string()];
        for (k, (_, kind)) in kinds.iter().enumerate() {
            let rep = if k == 0 {
                baseline.clone()
            } else {
                run_variant(nm, MachineConfig::dgx1(4), *kind)
            };
            let s = rep.speedup_over(&baseline);
            speedups[k].push(s);
            row.push(r2(s));
        }
        rows.push(row);
    }
    let mut avg = vec!["geomean".to_string()];
    let mut maxr = vec!["max".to_string()];
    for s in &speedups {
        avg.push(r2(geomean(s)));
        maxr.push(r2(s.iter().cloned().fold(f64::MIN, f64::max)));
    }
    rows.push(avg);
    rows.push(maxr);

    print_table(
        "Figure 7: speedup over 4GPU-Unified (DGX-1, 4 GPUs, 8 tasks/GPU)",
        &["matrix", "Unified", "Unified+8task", "Shmem", "Zerocopy"],
        &rows,
    );
    println!(
        "\npaper: Unified+8task ~0.89x avg | Shmem ~2.33x avg (max 8.1) | Zerocopy ~3.53x avg (max 9.86)"
    );
}
