//! Figure 8: DGX-1 vs DGX-2 with 4 GPUs and 8 tasks/GPU, normalized to
//! DGX-1-Unified per matrix.
//!
//! Paper's finding: zero-copy achieves nearly the same speedup on both
//! machines (3.53× DGX-1 vs 3.66× DGX-2) despite DGX-2's higher
//! interconnect bandwidth — evidence that the lock-wait communication
//! overlaps with solve-update computation.

use mgpu_sim::MachineConfig;
use sptrsv::SolverKind;
use sptrsv_bench::{geomean, harness_corpus, print_table, r2, run_variant};

fn main() {
    let corpus = harness_corpus();
    type Column = (&'static str, fn() -> MachineConfig, SolverKind);
    let cols: [Column; 4] = [
        ("DGX-1-Unified", || MachineConfig::dgx1(4), SolverKind::Unified),
        ("DGX-2-Unified", || MachineConfig::dgx2(4), SolverKind::Unified),
        ("DGX-1-Zerocopy", || MachineConfig::dgx1(4), SolverKind::ZeroCopy { per_gpu: 8 }),
        ("DGX-2-Zerocopy", || MachineConfig::dgx2(4), SolverKind::ZeroCopy { per_gpu: 8 }),
    ];

    let mut rows = Vec::new();
    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); cols.len()];
    for nm in &corpus {
        let baseline = run_variant(nm, cols[0].1(), cols[0].2);
        let mut row = vec![nm.name.to_string()];
        for (k, (_, cfg, kind)) in cols.iter().enumerate() {
            let rep = if k == 0 { baseline.clone() } else { run_variant(nm, cfg(), *kind) };
            let s = rep.speedup_over(&baseline);
            speedups[k].push(s);
            row.push(r2(s));
        }
        rows.push(row);
    }
    let mut avg = vec!["geomean".to_string()];
    for s in &speedups {
        avg.push(r2(geomean(s)));
    }
    rows.push(avg);

    print_table(
        "Figure 8: DGX-1 vs DGX-2, 4 GPUs, normalized to DGX-1-Unified",
        &["matrix", "DGX1-Unified", "DGX2-Unified", "DGX1-Zerocopy", "DGX2-Zerocopy"],
        &rows,
    );
    println!("\npaper: zero-copy speedup is ~3.53x on DGX-1 and ~3.66x on DGX-2 —");
    println!("nearly identical despite the bandwidth difference (communication is");
    println!("overlapped with computation).");
}
