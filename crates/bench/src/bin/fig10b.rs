//! Figure 10b: strong scaling on DGX-2 — zero-copy SpTRSV on
//! 1/4/8/12/16 GPUs (32 total tasks), normalized per matrix to the
//! single-GPU cuSPARSE `csrsv2()` baseline.
//!
//! Paper's finding: the DGX-2 curve is *flatter* than DGX-1's — through
//! the switch, the active bandwidth per GPU stays constant as more
//! GPUs join, so adding GPUs adds compute but not per-GPU wires.

use mgpu_sim::MachineConfig;
use sptrsv::SolverKind;
use sptrsv_bench::{geomean, harness_corpus, print_table, r2, run_variant};

fn main() {
    let corpus = harness_corpus();
    let highlight = sparsemat::corpus::fig10_names();
    let gpu_counts = [1usize, 4, 8, 12, 16];

    let mut rows = Vec::new();
    let mut all: Vec<Vec<f64>> = vec![Vec::new(); gpu_counts.len()];
    for nm in &corpus {
        let csrsv2 = run_variant(nm, MachineConfig::dgx2(1), SolverKind::LevelSet);
        let mut row = vec![nm.name.to_string()];
        for (k, &g) in gpu_counts.iter().enumerate() {
            let rep =
                run_variant(nm, MachineConfig::dgx2(g), SolverKind::ZeroCopyTotal { total: 32 });
            let s = rep.speedup_over(&csrsv2);
            all[k].push(s);
            row.push(r2(s));
        }
        if highlight.contains(&nm.name) {
            rows.push(row);
        }
    }
    let mut avg = vec!["Avg. (all 16)".to_string()];
    for s in &all {
        avg.push(r2(geomean(s)));
    }
    rows.push(avg);

    print_table(
        "Figure 10b: DGX-2 strong scaling, speedup over single-GPU csrsv2 (32 total tasks)",
        &["matrix", "1 GPU", "4 GPUs", "8 GPUs", "12 GPUs", "16 GPUs"],
        &rows,
    );
    println!("\npaper: scaling is flatter than DGX-1 — per-GPU switch bandwidth is");
    println!("constant, so extra GPUs add compute but no extra active links.");
}
