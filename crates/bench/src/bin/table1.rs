//! Table I: the test-matrix corpus — paper statistics vs the generated
//! structural analogs (rows, nonzeros, levels, parallelism, dependency).

use sptrsv_bench::{harness_corpus, print_table};

fn main() {
    let corpus = harness_corpus();
    let rows: Vec<Vec<String>> = corpus
        .iter()
        .map(|m| {
            vec![
                m.name.to_string(),
                m.class.to_string(),
                m.paper.rows.to_string(),
                m.paper.nnz.to_string(),
                m.paper.levels.to_string(),
                format!("{:.0}", m.paper.parallelism),
                m.achieved.rows.to_string(),
                m.achieved.nnz.to_string(),
                m.achieved.levels.to_string(),
                format!("{:.0}", m.achieved.parallelism),
                format!("{:.2}", m.paper.dependency()),
                format!("{:.2}", m.achieved.dependency),
            ]
        })
        .collect();
    print_table(
        "Table I: test matrices (paper vs generated analog)",
        &[
            "matrix", "class", "rows", "nnz", "lvls", "par", "rows'", "nnz'", "lvls'", "par'",
            "dep", "dep'",
        ],
        &rows,
    );
    println!("\nprimed columns are the generated analogs at harness scale;");
    println!("dependency (nnz/rows) is preserved exactly, parallelism up to the row cap.");
}
