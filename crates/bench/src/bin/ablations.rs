//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! * **E9 — r.in_degree poll caching** (§IV-B): the lock-wait loop
//!   skips peers whose partial in-degree already reached zero. We
//!   measure the poll-get traffic and runtime with and without it.
//! * **E10 — task placement locality** (§V): blocked vs round-robin
//!   task layouts change the cross-GPU edge count and the balance.
//! * **Pre-Volta UM** (§III): enabling migrate-on-poll steal-back
//!   (`bounce_delay`) reproduces the page ping-pong pathology that
//!   motivated the paper's Fig. 2/3 characterization.
//! * **Gather scope** (§IV-B): Algorithm 3 gathers `left_sum` from
//!   every PE; gathering only from dependency owners is the obvious
//!   optimization the paper leaves on the table.

use mgpu_sim::MachineConfig;
use sparsemat::Triangle;
use sptrsv::{solve, SolveOptions, SolverKind};
use sptrsv_bench::{geomean, harness_corpus, print_table, r2};

fn main() {
    let corpus = harness_corpus();
    let subset: Vec<_> = corpus
        .iter()
        .filter(|m| {
            ["powersim", "nlpkkt160", "chipcool0", "dblp-2010", "webbase-1M", "dc2"]
                .contains(&m.name)
        })
        .collect();

    // --- E9: poll caching ------------------------------------------------
    let mut rows = Vec::new();
    let mut time_ratio = Vec::new();
    let mut traffic_ratio = Vec::new();
    for nm in &subset {
        let (_, b) = sptrsv::verify::rhs_for(&nm.matrix, 0xE9);
        let base =
            SolveOptions { kind: SolverKind::ZeroCopy { per_gpu: 8 }, ..SolveOptions::default() };
        let cached = solve(&nm.matrix, &b, MachineConfig::dgx1(4), &base).unwrap();
        let raw = solve(
            &nm.matrix,
            &b,
            MachineConfig::dgx1(4),
            &SolveOptions { poll_caching: false, ..base },
        )
        .unwrap();
        let tr = raw.timings.total.as_ns() as f64 / cached.timings.total.as_ns() as f64;
        let gr = raw.stats.shmem.poll_gets as f64 / cached.stats.shmem.poll_gets.max(1) as f64;
        time_ratio.push(tr);
        traffic_ratio.push(gr);
        rows.push(vec![
            nm.name.to_string(),
            cached.stats.shmem.poll_gets.to_string(),
            raw.stats.shmem.poll_gets.to_string(),
            r2(gr),
            r2(tr),
        ]);
    }
    rows.push(vec![
        "geomean".into(),
        String::new(),
        String::new(),
        r2(geomean(&traffic_ratio)),
        r2(geomean(&time_ratio)),
    ]);
    print_table(
        "E9: r.in_degree poll caching (zero-copy, 4-GPU DGX-1)",
        &["matrix", "poll gets (cached)", "poll gets (raw)", "traffic x", "time x"],
        &rows,
    );

    // --- E10: placement locality -----------------------------------------
    let mut rows = Vec::new();
    for nm in &subset {
        let (_, b) = sptrsv::verify::rhs_for(&nm.matrix, 0xE10);
        let blocked = solve(
            &nm.matrix,
            &b,
            MachineConfig::dgx1(4),
            &SolveOptions { kind: SolverKind::ShmemBlocked, ..SolveOptions::default() },
        )
        .unwrap();
        let tasks = solve(
            &nm.matrix,
            &b,
            MachineConfig::dgx1(4),
            &SolveOptions { kind: SolverKind::ZeroCopy { per_gpu: 8 }, ..SolveOptions::default() },
        )
        .unwrap();
        rows.push(vec![
            nm.name.to_string(),
            blocked.cross_edges.to_string(),
            tasks.cross_edges.to_string(),
            r2(tasks.speedup_over(&blocked)),
        ]);
    }
    print_table(
        "E10: blocked vs round-robin tasks (cross edges vs speedup)",
        &["matrix", "cross (blocked)", "cross (tasks)", "tasks speedup"],
        &rows,
    );

    // --- Pre-Volta UM: watcher steal-back --------------------------------
    let mut rows = Vec::new();
    for nm in &subset {
        let (_, b) = sptrsv::verify::rhs_for(&nm.matrix, 0xF16);
        let volta = solve(
            &nm.matrix,
            &b,
            MachineConfig::dgx1(4),
            &SolveOptions { kind: SolverKind::Unified, ..SolveOptions::default() },
        )
        .unwrap();
        let mut cfg = MachineConfig::dgx1(4);
        cfg.um.bounce_delay_ns = 25_000; // migrate-on-poll ping-pong
        let prevolta = solve(
            &nm.matrix,
            &b,
            cfg,
            &SolveOptions { kind: SolverKind::Unified, ..SolveOptions::default() },
        )
        .unwrap();
        rows.push(vec![
            nm.name.to_string(),
            volta.stats.total_um_faults().to_string(),
            prevolta.stats.total_um_faults().to_string(),
            r2(prevolta.timings.total.as_ns() as f64 / volta.timings.total.as_ns() as f64),
        ]);
    }
    print_table(
        "Pre-Volta UM ablation: poll steal-back enabled (faults & slowdown vs default UM)",
        &["matrix", "faults (volta)", "faults (steal-back)", "slowdown x"],
        &rows,
    );

    // --- Naive Get-Update-Put NVSHMEM design (§IV-A) -----------------------
    let mut rows = Vec::new();
    for nm in &subset {
        let (_, b) = sptrsv::verify::rhs_for(&nm.matrix, 0x60B);
        let naive = solve(
            &nm.matrix,
            &b,
            MachineConfig::dgx1(4),
            &SolveOptions { kind: SolverKind::ShmemNaive, ..SolveOptions::default() },
        )
        .unwrap();
        let zerocopy = solve(
            &nm.matrix,
            &b,
            MachineConfig::dgx1(4),
            &SolveOptions { kind: SolverKind::ZeroCopy { per_gpu: 8 }, ..SolveOptions::default() },
        )
        .unwrap();
        rows.push(vec![
            nm.name.to_string(),
            naive.stats.shmem.puts.to_string(),
            naive.stats.shmem.fences.to_string(),
            naive.stats.shmem.quiets.to_string(),
            r2(zerocopy.speedup_over(&naive)),
        ]);
    }
    print_table(
        "Naive Get-Update-Put design (§IV-A): fenced round trips vs zero-copy speedup",
        &["matrix", "puts", "fences", "quiets", "zerocopy speedup"],
        &rows,
    );

    // --- Reordering: RCM vs natural ordering --------------------------------
    let mut rows = Vec::new();
    for nm in &subset {
        let (_, b) = sptrsv::verify::rhs_for(&nm.matrix, 0x5C3);
        let natural = solve(
            &nm.matrix,
            &b,
            MachineConfig::dgx1(4),
            &SolveOptions { kind: SolverKind::ZeroCopy { per_gpu: 8 }, ..SolveOptions::default() },
        )
        .unwrap();
        let p = sparsemat::reorder::rcm(&nm.matrix);
        let rm = sparsemat::reorder::permute_lower(&nm.matrix, &p);
        let (_, rb) = sptrsv::verify::rhs_for(&rm, 0x5C3);
        let reordered = solve(
            &rm,
            &rb,
            MachineConfig::dgx1(4),
            &SolveOptions { kind: SolverKind::ZeroCopy { per_gpu: 8 }, ..SolveOptions::default() },
        )
        .unwrap();
        let lv = |m: &sparsemat::CscMatrix| {
            sparsemat::levels::TriStats::compute(m, Triangle::Lower).levels
        };
        rows.push(vec![
            nm.name.to_string(),
            lv(&nm.matrix).to_string(),
            lv(&rm).to_string(),
            natural.cross_edges.to_string(),
            reordered.cross_edges.to_string(),
            r2(reordered.speedup_over(&natural)),
        ]);
    }
    print_table(
        "Reordering: RCM vs natural ordering (zero-copy, 4-GPU DGX-1)",
        &["matrix", "levels", "levels (RCM)", "cross", "cross (RCM)", "RCM speedup"],
        &rows,
    );

    // --- Gather scope ------------------------------------------------------
    let mut rows = Vec::new();
    for nm in &subset {
        let (_, b) = sptrsv::verify::rhs_for(&nm.matrix, 0xAB);
        let base = SolveOptions {
            kind: SolverKind::ZeroCopy { per_gpu: 8 },
            triangle: Triangle::Lower,
            ..SolveOptions::default()
        };
        let all = solve(&nm.matrix, &b, MachineConfig::dgx1(4), &base).unwrap();
        let deps_only = solve(
            &nm.matrix,
            &b,
            MachineConfig::dgx1(4),
            &SolveOptions { gather_all_pes: false, ..base },
        )
        .unwrap();
        rows.push(vec![
            nm.name.to_string(),
            all.stats.shmem.gets.to_string(),
            deps_only.stats.shmem.gets.to_string(),
            r2(all.timings.total.as_ns() as f64 / deps_only.timings.total.as_ns() as f64),
        ]);
    }
    print_table(
        "Gather scope: all PEs (Alg. 3) vs dependency owners only (gets & Alg3/deps-only time)",
        &["matrix", "gets (all PEs)", "gets (deps only)", "alg3 time x"],
        &rows,
    );
}
