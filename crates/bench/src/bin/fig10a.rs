//! Figure 10a: strong scaling on DGX-1 — zero-copy SpTRSV on 1–4 GPUs
//! (32 total tasks), normalized per matrix to the single-GPU cuSPARSE
//! `csrsv2()` baseline.
//!
//! Paper's findings: zero-copy beats csrsv2 everywhere; single-GPU
//! execution often beats 2–3 GPUs (on-board communication is fast,
//! interconnect latency is not) while 4 GPUs pull ahead again
//! (+34%/+91% over 2/3 GPUs on average); matrices with low dependency
//! and high parallelism scale best.

use mgpu_sim::MachineConfig;
use sptrsv::SolverKind;
use sptrsv_bench::{geomean, harness_corpus, print_table, r2, run_variant};

fn main() {
    let corpus = harness_corpus();
    let highlight = sparsemat::corpus::fig10_names();
    let gpu_counts = [1usize, 2, 3, 4];

    let mut rows = Vec::new();
    let mut all: Vec<Vec<f64>> = vec![Vec::new(); gpu_counts.len()];
    for nm in &corpus {
        let csrsv2 = run_variant(nm, MachineConfig::dgx1(1), SolverKind::LevelSet);
        let mut row = vec![nm.name.to_string()];
        for (k, &g) in gpu_counts.iter().enumerate() {
            let rep =
                run_variant(nm, MachineConfig::dgx1(g), SolverKind::ZeroCopyTotal { total: 32 });
            let s = rep.speedup_over(&csrsv2);
            all[k].push(s);
            row.push(r2(s));
        }
        if highlight.contains(&nm.name) {
            rows.push(row);
        }
    }
    let mut avg = vec!["Avg. (all 16)".to_string()];
    for s in &all {
        avg.push(r2(geomean(s)));
    }
    rows.push(avg);

    print_table(
        "Figure 10a: DGX-1 strong scaling, speedup over single-GPU csrsv2 (32 total tasks)",
        &["matrix", "1 GPU", "2 GPUs", "3 GPUs", "4 GPUs"],
        &rows,
    );
    println!("\npaper: 1 GPU often beats 2-3 GPUs; 4 GPUs gain +34%/+91% over 2/3 GPUs");
    println!("on average; low-dependency high-parallelism matrices scale best.");
}
