//! Figure 9: task-granularity sensitivity — zero-copy SpTRSV with
//! 4/8/16/32 tasks per GPU on a 4-GPU DGX-1, normalized to 4 tasks/GPU.
//!
//! Paper's findings: finer tasks usually help (16 tasks/GPU averages
//! +22%, up to +78% on one matrix), but not monotonically — webbase-1M
//! peaks at 8 tasks/GPU (+69%) and degrades beyond, because extra
//! kernels cost launch overhead and extra cross-GPU edges.

use mgpu_sim::MachineConfig;
use sptrsv::SolverKind;
use sptrsv_bench::{geomean, harness_corpus, print_table, r2, run_variant};

fn main() {
    let corpus = harness_corpus();
    let task_counts = [4u32, 8, 16, 32];

    let mut rows = Vec::new();
    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); task_counts.len()];
    for nm in &corpus {
        let baseline = run_variant(
            nm,
            MachineConfig::dgx1(4),
            SolverKind::ZeroCopy { per_gpu: task_counts[0] },
        );
        let mut row = vec![nm.name.to_string()];
        for (k, &t) in task_counts.iter().enumerate() {
            let rep = if k == 0 {
                baseline.clone()
            } else {
                run_variant(nm, MachineConfig::dgx1(4), SolverKind::ZeroCopy { per_gpu: t })
            };
            let s = rep.speedup_over(&baseline);
            speedups[k].push(s);
            row.push(r2(s));
        }
        rows.push(row);
    }
    let mut avg = vec!["geomean".to_string()];
    let mut maxr = vec!["max".to_string()];
    for s in &speedups {
        avg.push(r2(geomean(s)));
        maxr.push(r2(s.iter().cloned().fold(f64::MIN, f64::max)));
    }
    rows.push(avg);
    rows.push(maxr);

    print_table(
        "Figure 9: zero-copy with varying tasks/GPU (4-GPU DGX-1, vs 4 tasks/GPU)",
        &["matrix", "4 t/GPU", "8 t/GPU", "16 t/GPU", "32 t/GPU"],
        &rows,
    );
    println!("\npaper: 16 tasks/GPU ~ +22% avg (up to +78%); webbase-1M peaks at 8");
    println!("tasks/GPU (+69%) then degrades — the launch-overhead trade-off of SV.");
}
