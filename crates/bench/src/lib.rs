//! Shared harness for regenerating every table and figure of the
//! paper's evaluation (§VI). Each `src/bin/figN.rs` binary prints the
//! corresponding rows/series; `benches/` wraps the same runs in the
//! [`timer`] harness for wall-clock tracking of the implementation
//! itself (criterion is unavailable offline).

pub mod timer;

use mgpu_sim::MachineConfig;
use sparsemat::{corpus, NamedMatrix};
use sptrsv::{solve, SolveOptions, SolveReport, SolverKind};

/// Row/nnz caps used by the figure harnesses. Smaller than the corpus
/// defaults so a full figure regenerates in seconds; override with the
/// `SPTRSV_SCALE` environment variable (e.g. `SPTRSV_SCALE=2.0`).
pub const HARNESS_ROW_CAP: usize = 12_000;
/// Default nnz cap companion to [`HARNESS_ROW_CAP`].
pub const HARNESS_NNZ_CAP: usize = 240_000;

/// Scale factor from `SPTRSV_SCALE` (default 1.0).
pub fn scale_factor() -> f64 {
    std::env::var("SPTRSV_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|s| *s > 0.0)
        .unwrap_or(1.0)
}

/// Load the Table-I analog corpus at harness scale.
pub fn harness_corpus() -> Vec<NamedMatrix> {
    let s = scale_factor();
    corpus::corpus_scaled(
        (HARNESS_ROW_CAP as f64 * s) as usize,
        (HARNESS_NNZ_CAP as f64 * s) as usize,
    )
}

/// Load one analog by name at harness scale.
pub fn harness_matrix(name: &str) -> NamedMatrix {
    let s = scale_factor();
    corpus::by_name_scaled(
        name,
        (HARNESS_ROW_CAP as f64 * s) as usize,
        (HARNESS_NNZ_CAP as f64 * s) as usize,
    )
    .unwrap_or_else(|| panic!("unknown corpus matrix {name}"))
}

/// Run one solver variant on one corpus matrix and verify it.
pub fn run_variant(nm: &NamedMatrix, cfg: MachineConfig, kind: SolverKind) -> SolveReport {
    let (_, b) = sptrsv::verify::rhs_for(&nm.matrix, 0xB0B + nm.matrix.n() as u64);
    let opts = SolveOptions { kind, ..SolveOptions::default() };
    solve(&nm.matrix, &b, cfg, &opts)
        .unwrap_or_else(|e| panic!("{} on {}: {e}", kind.label(), nm.name))
}

/// Geometric mean (the right average for speedup ratios).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.max(1e-300).ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Render an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i == 0 {
                s.push_str(&format!("{:<w$}", c, w = widths[i] + 2));
            } else {
                s.push_str(&format!("{:>w$}", c, w = widths[i] + 2));
            }
        }
        s
    };
    println!("{}", line(headers.iter().map(|h| h.to_string()).collect()));
    println!("{}", "-".repeat(widths.iter().map(|w| w + 2).sum::<usize>()));
    for row in rows {
        println!("{}", line(row.clone()));
    }
}

/// Format a ratio with two decimals.
pub fn r2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_ratios() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn scale_factor_defaults_to_one() {
        // (cannot set env safely in parallel tests; just check the default path)
        assert!(scale_factor() >= 1.0 || scale_factor() > 0.0);
    }
}
