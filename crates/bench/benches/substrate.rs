//! Microbenchmarks of the substrates: the DES engine, the sparse
//! matrix kernels and the reference solver. These guard the
//! implementation's own performance (the guides' "mediocre benchmarking
//! beats none" rule) independent of the paper-shape experiments.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use desim::{EventQueue, Pcg32, Resource, SimTime};
use sparsemat::gen::{self, LevelSpec};
use sparsemat::levels::LevelSets;
use sparsemat::{CsrMatrix, Triangle};
use sptrsv::reference;
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("desim_event_queue");
    for n in [1_000usize, 100_000] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            let mut rng = Pcg32::seed_from_u64(7);
            b.iter(|| {
                let mut q = EventQueue::with_capacity(n);
                for i in 0..n {
                    q.schedule_at(SimTime::from_ns(rng.next_u64() % 1_000_000), i as u32);
                }
                let mut last = SimTime::ZERO;
                while let Some((t, e)) = q.pop() {
                    debug_assert!(t >= last);
                    last = t;
                    black_box(e);
                }
                last
            })
        });
    }
    g.finish();
}

fn bench_resource(c: &mut Criterion) {
    let mut g = c.benchmark_group("desim_resource");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("acquire_100k", |b| {
        b.iter(|| {
            let mut r = Resource::new(16);
            let mut t = SimTime::ZERO;
            for i in 0..100_000u64 {
                t = r.acquire(SimTime::from_ns(i * 3), 40);
            }
            t
        })
    });
    g.finish();
}

fn bench_generator(c: &mut Criterion) {
    let mut g = c.benchmark_group("sparsemat_generators");
    g.sample_size(10);
    g.bench_function("level_structured_20k", |b| {
        b.iter(|| gen::level_structured(&LevelSpec::new(20_000, 100, 100_000, 3)))
    });
    g.bench_function("rmat_16k", |b| b.iter(|| gen::rmat_lower(1 << 14, 80_000, 5)));
    g.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let m = gen::level_structured(&LevelSpec::new(50_000, 200, 250_000, 11));
    let mut g = c.benchmark_group("sparsemat_analysis");
    g.throughput(Throughput::Elements(m.nnz() as u64));
    g.bench_function("level_sets_50k", |b| {
        b.iter(|| LevelSets::analyze(black_box(&m), Triangle::Lower))
    });
    g.bench_function("transpose_50k", |b| b.iter(|| black_box(&m).transpose()));
    g.bench_function("csr_conversion_50k", |b| b.iter(|| CsrMatrix::from_csc(black_box(&m))));
    g.finish();
}

fn bench_reference_solver(c: &mut Criterion) {
    let m = gen::level_structured(&LevelSpec::new(50_000, 200, 250_000, 13));
    let (_, b_rhs) = sptrsv::verify::rhs_for(&m, 1);
    let mut g = c.benchmark_group("reference_solver");
    g.throughput(Throughput::Elements(m.nnz() as u64));
    g.bench_function("forward_substitution_50k", |bch| {
        bch.iter(|| reference::solve_lower(black_box(&m), black_box(&b_rhs)).unwrap())
    });
    let u = m.transpose();
    let (_, bu) = sptrsv::verify::rhs_for(&u, 2);
    g.bench_function("backward_substitution_50k", |bch| {
        bch.iter(|| reference::solve_upper(black_box(&u), black_box(&bu)).unwrap())
    });
    g.finish();
}

fn bench_cpu_parallel(c: &mut Criterion) {
    let m = gen::level_structured(&LevelSpec::new(50_000, 40, 250_000, 17));
    let (_, b_rhs) = sptrsv::verify::rhs_for(&m, 3);
    let mut g = c.benchmark_group("cpu_levelset_solver");
    g.sample_size(10);
    g.throughput(Throughput::Elements(m.nnz() as u64));
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |bch, &t| {
            bch.iter(|| {
                sptrsv::cpu::solve_parallel(black_box(&m), black_box(&b_rhs),
                    Triangle::Lower, t).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(
    substrate,
    bench_event_queue,
    bench_resource,
    bench_generator,
    bench_analysis,
    bench_reference_solver,
    bench_cpu_parallel
);
criterion_main!(substrate);
