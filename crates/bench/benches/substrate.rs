//! Microbenchmarks of the substrates: the DES engine, the sparse
//! matrix kernels and the reference solver. These guard the
//! implementation's own performance (the guides' "mediocre benchmarking
//! beats none" rule) independent of the paper-shape experiments.

use desim::{EventQueue, Pcg32, Resource, SimTime};
use sparsemat::gen::{self, LevelSpec};
use sparsemat::levels::LevelSets;
use sparsemat::{CsrMatrix, Triangle};
use sptrsv::reference;
use sptrsv_bench::timer::Group;
use std::hint::black_box;

fn bench_event_queue() {
    let mut g = Group::new("desim_event_queue");
    for n in [1_000usize, 100_000] {
        g.bench(&format!("push_pop/{n}"), 10, || {
            let mut rng = Pcg32::seed_from_u64(7);
            let mut q = EventQueue::with_capacity(n);
            for i in 0..n {
                q.schedule_at(SimTime::from_ns(rng.next_u64() % 1_000_000), i as u32);
            }
            let mut last = SimTime::ZERO;
            while let Some((t, e)) = q.pop() {
                debug_assert!(t >= last);
                last = t;
                black_box(e);
            }
            last
        });
    }
    // The executor's dominant pattern: bursts of events scheduled at the
    // *current* timestamp (same-time kernel fan-out, dependency floods).
    // This exercises the FIFO bucket fast path against the binary heap.
    for burst in [32usize, 1_024] {
        g.bench(&format!("same_time_bursts/{burst}"), 10, || {
            let mut q = EventQueue::with_capacity(burst * 64);
            let mut total = 0u64;
            q.schedule_at(SimTime::from_ns(1), 0u32);
            for round in 1..=64u64 {
                // drain the current instant, scheduling a burst at `now`
                if let Some((now, e)) = q.pop() {
                    black_box(e);
                    for i in 0..burst {
                        q.schedule_at(now, i as u32);
                    }
                    while let Some((_, e)) = q.pop() {
                        total += e as u64;
                    }
                    q.schedule_at(SimTime::from_ns(round + 1), 0u32);
                }
            }
            while q.pop().is_some() {}
            total
        });
    }
}

fn bench_resource() {
    let mut g = Group::new("desim_resource");
    g.bench("acquire_100k", 10, || {
        let mut r = Resource::new(16);
        let mut t = SimTime::ZERO;
        for i in 0..100_000u64 {
            t = r.acquire(SimTime::from_ns(i * 3), 40);
        }
        t
    });
}

fn bench_generator() {
    let mut g = Group::new("sparsemat_generators");
    g.bench("level_structured_20k", 10, || {
        gen::level_structured(&LevelSpec::new(20_000, 100, 100_000, 3))
    });
    g.bench("rmat_16k", 10, || gen::rmat_lower(1 << 14, 80_000, 5));
}

fn bench_analysis() {
    let m = gen::level_structured(&LevelSpec::new(50_000, 200, 250_000, 11));
    let mut g = Group::new("sparsemat_analysis");
    g.bench("level_sets_50k", 10, || LevelSets::analyze(black_box(&m), Triangle::Lower));
    g.bench("transpose_50k", 10, || black_box(&m).transpose());
    g.bench("csr_conversion_50k", 10, || CsrMatrix::from_csc(black_box(&m)));
}

fn bench_reference_solver() {
    let m = gen::level_structured(&LevelSpec::new(50_000, 200, 250_000, 13));
    let (_, b_rhs) = sptrsv::verify::rhs_for(&m, 1);
    let mut g = Group::new("reference_solver");
    g.bench("forward_substitution_50k", 10, || {
        reference::solve_lower(black_box(&m), black_box(&b_rhs)).unwrap()
    });
    let u = m.transpose();
    let (_, bu) = sptrsv::verify::rhs_for(&u, 2);
    g.bench("backward_substitution_50k", 10, || {
        reference::solve_upper(black_box(&u), black_box(&bu)).unwrap()
    });
}

fn bench_cpu_parallel() {
    let m = gen::level_structured(&LevelSpec::new(50_000, 40, 250_000, 17));
    let (_, b_rhs) = sptrsv::verify::rhs_for(&m, 3);
    let mut g = Group::new("cpu_levelset_solver");
    for threads in [1usize, 2, 4, 8] {
        g.bench(&format!("threads_{threads}"), 10, || {
            sptrsv::cpu::solve_parallel(black_box(&m), black_box(&b_rhs), Triangle::Lower, threads)
                .unwrap()
        });
    }
}

fn main() {
    bench_event_queue();
    bench_resource();
    bench_generator();
    bench_analysis();
    bench_reference_solver();
    bench_cpu_parallel();
}
