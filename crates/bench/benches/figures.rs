//! Timed wrappers around every table/figure experiment — one group per
//! artifact of §VI. Each bench runs the same simulation the
//! corresponding `src/bin/figN.rs` harness prints, at a reduced corpus
//! scale so the whole suite completes in minutes. What is measured here
//! is the wall-clock of the *implementation* (simulator + solvers); the
//! paper-shape numbers themselves come from the harness binaries.

use mgpu_sim::MachineConfig;
use sparsemat::corpus::{by_name_scaled, fig10_names, fig3_names};
use sparsemat::levels::TriStats;
use sparsemat::Triangle;
use sptrsv::{solve, SolveOptions, SolverKind};
use sptrsv_bench::timer::Group;
use std::hint::black_box;

const ROW_CAP: usize = 3_000;
const NNZ_CAP: usize = 60_000;
const SAMPLES: usize = 10;

fn load(name: &str) -> sparsemat::NamedMatrix {
    by_name_scaled(name, ROW_CAP, NNZ_CAP).expect("corpus matrix")
}

fn run(nm: &sparsemat::NamedMatrix, cfg: MachineConfig, kind: SolverKind) -> u64 {
    let (_, b) = sptrsv::verify::rhs_for(&nm.matrix, 0xBEEF);
    let opts = SolveOptions { kind, verify: false, ..SolveOptions::default() };
    solve(&nm.matrix, &b, cfg, &opts).expect("solve").timings.total.as_ns()
}

/// Table I: corpus generation + structural analysis.
fn bench_table1() {
    let mut g = Group::new("table1_corpus");
    g.bench("generate_and_analyze", SAMPLES, || {
        let m = load(black_box("powersim"));
        black_box(TriStats::compute(&m.matrix, Triangle::Lower))
    });
}

/// Figure 3: UM thrashing at growing GPU counts.
fn bench_fig3() {
    let mut g = Group::new("fig3_unified_thrashing");
    for name in fig3_names() {
        let nm = load(name);
        for gpus in [2usize, 4, 8] {
            g.bench(&format!("{name}/{gpus}"), SAMPLES, || {
                run(&nm, MachineConfig::dgx1(gpus), SolverKind::Unified)
            });
        }
    }
}

/// Figure 7: the four design scenarios on 4 GPUs.
fn bench_fig7() {
    let mut g = Group::new("fig7_scenarios");
    let nm = load("powersim");
    let kinds = [
        ("unified", SolverKind::Unified),
        ("unified_8task", SolverKind::UnifiedTasks { per_gpu: 8 }),
        ("shmem", SolverKind::ShmemBlocked),
        ("zerocopy", SolverKind::ZeroCopy { per_gpu: 8 }),
    ];
    for (label, kind) in kinds {
        g.bench(label, SAMPLES, || run(&nm, MachineConfig::dgx1(4), kind));
    }
}

/// Figure 8: DGX-1 vs DGX-2 machines.
fn bench_fig8() {
    let mut g = Group::new("fig8_dgx1_vs_dgx2");
    let nm = load("dc2");
    g.bench("dgx1_zerocopy", SAMPLES, || {
        run(&nm, MachineConfig::dgx1(4), SolverKind::ZeroCopy { per_gpu: 8 })
    });
    g.bench("dgx2_zerocopy", SAMPLES, || {
        run(&nm, MachineConfig::dgx2(4), SolverKind::ZeroCopy { per_gpu: 8 })
    });
}

/// Figure 9: task-granularity sweep.
fn bench_fig9() {
    let mut g = Group::new("fig9_task_sensitivity");
    let nm = load("webbase-1M");
    for tasks in [4u32, 8, 16, 32] {
        g.bench(&format!("tasks_{tasks}"), SAMPLES, || {
            run(&nm, MachineConfig::dgx1(4), SolverKind::ZeroCopy { per_gpu: tasks })
        });
    }
}

/// Figure 10: strong scaling on both machines (incl. csrsv2 baseline).
fn bench_fig10() {
    let mut g = Group::new("fig10_scaling");
    let nm = load(fig10_names()[2]); // nlpkkt160, the best-scaling one
    g.bench("csrsv2_baseline", SAMPLES, || run(&nm, MachineConfig::dgx1(1), SolverKind::LevelSet));
    for gpus in [1usize, 2, 4] {
        g.bench(&format!("dgx1/{gpus}"), SAMPLES, || {
            run(&nm, MachineConfig::dgx1(gpus), SolverKind::ZeroCopyTotal { total: 32 })
        });
    }
    for gpus in [4usize, 16] {
        g.bench(&format!("dgx2/{gpus}"), SAMPLES, || {
            run(&nm, MachineConfig::dgx2(gpus), SolverKind::ZeroCopyTotal { total: 32 })
        });
    }
}

fn main() {
    bench_table1();
    bench_fig3();
    bench_fig7();
    bench_fig8();
    bench_fig9();
    bench_fig10();
}
