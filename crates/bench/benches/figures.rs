//! Criterion wrappers around every table/figure experiment — one bench
//! group per artifact of §VI. Each bench runs the same simulation the
//! corresponding `src/bin/figN.rs` harness prints, at a reduced corpus
//! scale so the whole suite completes in minutes. What Criterion
//! measures here is the wall-clock of the *implementation* (simulator +
//! solvers); the paper-shape numbers themselves come from the harness
//! binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mgpu_sim::MachineConfig;
use sparsemat::corpus::{by_name_scaled, fig3_names, fig10_names};
use sparsemat::levels::TriStats;
use sparsemat::Triangle;
use sptrsv::{solve, SolveOptions, SolverKind};
use std::hint::black_box;

const ROW_CAP: usize = 3_000;
const NNZ_CAP: usize = 60_000;

fn load(name: &str) -> sparsemat::NamedMatrix {
    by_name_scaled(name, ROW_CAP, NNZ_CAP).expect("corpus matrix")
}

fn run(nm: &sparsemat::NamedMatrix, cfg: MachineConfig, kind: SolverKind) -> u64 {
    let (_, b) = sptrsv::verify::rhs_for(&nm.matrix, 0xBEEF);
    let opts = SolveOptions { kind, verify: false, ..SolveOptions::default() };
    solve(&nm.matrix, &b, cfg, &opts)
        .expect("solve")
        .timings
        .total
        .as_ns()
}

/// Table I: corpus generation + structural analysis.
fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_corpus");
    g.sample_size(10);
    g.bench_function("generate_and_analyze", |b| {
        b.iter(|| {
            let m = load(black_box("powersim"));
            black_box(TriStats::compute(&m.matrix, Triangle::Lower))
        })
    });
    g.finish();
}

/// Figure 3: UM thrashing at growing GPU counts.
fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_unified_thrashing");
    g.sample_size(10);
    for name in fig3_names() {
        let nm = load(name);
        for gpus in [2usize, 4, 8] {
            g.bench_with_input(
                BenchmarkId::new(*name, gpus),
                &gpus,
                |b, &gpus| {
                    b.iter(|| run(&nm, MachineConfig::dgx1(gpus), SolverKind::Unified))
                },
            );
        }
    }
    g.finish();
}

/// Figure 7: the four design scenarios on 4 GPUs.
fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_scenarios");
    g.sample_size(10);
    let nm = load("powersim");
    let kinds = [
        ("unified", SolverKind::Unified),
        ("unified_8task", SolverKind::UnifiedTasks { per_gpu: 8 }),
        ("shmem", SolverKind::ShmemBlocked),
        ("zerocopy", SolverKind::ZeroCopy { per_gpu: 8 }),
    ];
    for (label, kind) in kinds {
        g.bench_function(label, |b| {
            b.iter(|| run(&nm, MachineConfig::dgx1(4), kind))
        });
    }
    g.finish();
}

/// Figure 8: DGX-1 vs DGX-2 machines.
fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_dgx1_vs_dgx2");
    g.sample_size(10);
    let nm = load("dc2");
    g.bench_function("dgx1_zerocopy", |b| {
        b.iter(|| run(&nm, MachineConfig::dgx1(4), SolverKind::ZeroCopy { per_gpu: 8 }))
    });
    g.bench_function("dgx2_zerocopy", |b| {
        b.iter(|| run(&nm, MachineConfig::dgx2(4), SolverKind::ZeroCopy { per_gpu: 8 }))
    });
    g.finish();
}

/// Figure 9: task-granularity sweep.
fn bench_fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_task_sensitivity");
    g.sample_size(10);
    let nm = load("webbase-1M");
    for tasks in [4u32, 8, 16, 32] {
        g.bench_with_input(BenchmarkId::from_parameter(tasks), &tasks, |b, &t| {
            b.iter(|| run(&nm, MachineConfig::dgx1(4), SolverKind::ZeroCopy { per_gpu: t }))
        });
    }
    g.finish();
}

/// Figure 10: strong scaling on both machines (incl. csrsv2 baseline).
fn bench_fig10(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_scaling");
    g.sample_size(10);
    let nm = load(fig10_names()[2]); // nlpkkt160, the best-scaling one
    g.bench_function("csrsv2_baseline", |b| {
        b.iter(|| run(&nm, MachineConfig::dgx1(1), SolverKind::LevelSet))
    });
    for gpus in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("dgx1", gpus), &gpus, |b, &gpus| {
            b.iter(|| run(&nm, MachineConfig::dgx1(gpus), SolverKind::ZeroCopyTotal { total: 32 }))
        });
    }
    for gpus in [4usize, 16] {
        g.bench_with_input(BenchmarkId::new("dgx2", gpus), &gpus, |b, &gpus| {
            b.iter(|| run(&nm, MachineConfig::dgx2(gpus), SolverKind::ZeroCopyTotal { total: 32 }))
        });
    }
    g.finish();
}

criterion_group!(
    figures,
    bench_table1,
    bench_fig3,
    bench_fig7,
    bench_fig8,
    bench_fig9,
    bench_fig10
);
criterion_main!(figures);
