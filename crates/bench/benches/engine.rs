//! Build-once/solve-many engine benchmark: cold vs amortized solves.
//!
//! Measures, on a 100k-row level-structured factor (scalable via
//! `SPTRSV_SCALE`):
//!
//! * **cold solve** — one-shot `sptrsv::solve()`: analysis + plan +
//!   adjacency + calibration simulation + numeric solve, every call;
//! * **warm solve** — `engine.solve()` on a prebuilt [`SolverEngine`]:
//!   numeric replay only;
//! * **64-RHS amortized batch** — `engine.solve_batch()` against 64
//!   one-shot `solve()` calls on the same matrix;
//! * **fused panel vs per-RHS warm loop** — the K-blocked
//!   `solve_panel_into` (factor streamed once per 8-wide block,
//!   zero-allocation workspace) and the pooled `solve_batch_into`
//!   against 64 individual warm `solve()` calls;
//! * **sharded level-parallel replay** — `solve_sharded_into` on a
//!   *wide* synthetic factor (few levels, thousands of components
//!   each) against the serial warm replay, single RHS. The speedup
//!   floor (≥ 1.5× at 4 workers) is asserted only when the hardware
//!   actually has ≥ 4 threads; on narrower machines the numbers are
//!   recorded with the effective worker count for the record.
//! * **chain-fused replay vs per-level barriers** — `solve_sharded_into`
//!   on a *deep/narrow* synthetic factor (thousands of levels, a
//!   handful of rows each) with the default Schedule IR tuning (narrow
//!   runs fuse into single-worker chains, barriers only at chain
//!   boundaries) against the same engine at `chain_width_threshold: 0`
//!   (the historical two-barriers-per-level schedule). The ≥ 5×
//!   barrier cut is asserted from the reported schedule statistics on
//!   any hardware; the ≥ 1.2× wall-clock floor only on ≥ 4 threads.
//! * **value refresh vs full rebuild** — the time-stepping step cost:
//!   `refresh_values` (in-place value swap, zero symbolic work) then a
//!   warm solve, against a full `SolverEngine::build` then the same
//!   solve; asserted ≥ 3× (the rebuild pays analysis + calibration,
//!   the refresh pays neither, so the floor is hardware-independent).
//! * **fleet warm submit vs cold rebuild** — per-request latency of a
//!   warm [`EngineFleet`] submit (mailbox dispatch + cached-engine
//!   replay) against the cold one-shot solve a service without the
//!   factor cache would pay per request; asserted ≥ 2× (build
//!   dominates, so the floor is hardware-independent), and the
//!   fleet's byte high-water is asserted under budget.
//!
//! Results go to `BENCH_engine.json` at the repository root so the perf
//! trajectory is tracked from PR to PR. The batch and fused-panel
//! speedups are asserted to stay ≥ 2× — the acceptance floors; the
//! designs typically land far above them.
//!
//! Run with `cargo bench -p sptrsv-bench --bench engine`.

use mgpu_sim::MachineConfig;
use sparsemat::factor::{ilu0, LuFactors};
use sparsemat::gen::{self, LevelSpec};
use sparsemat::{CscMatrix, Triangle};
use sptrsv::fleet::{EngineFleet, FleetConfig};
use sptrsv::krylov::{pcg, KrylovOptions, PreconditionerEngine};
use sptrsv::serve::{serve_solver, ServiceConfig};
use sptrsv::telemetry;
use sptrsv::{solve, verify, SolveOptions, SolveWorkspace, SolverEngine, SolverKind};
use sptrsv_bench::timer::{time_ns, TimingSummary};
use std::cell::Cell;
use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Duration;

const BASE_N: usize = 100_000;
const BATCH_RHS: usize = 64;

fn main() {
    let scale = sptrsv_bench::scale_factor();
    let n = (BASE_N as f64 * scale) as usize;
    let m = gen::level_structured(&LevelSpec::new(n, 200, n * 4, 11));
    let nnz = m.nnz();
    let cfg = MachineConfig::dgx1(4);
    let opts = SolveOptions {
        kind: SolverKind::ZeroCopy { per_gpu: 8 },
        verify: false,
        ..SolveOptions::default()
    };
    println!("engine bench: n={n} nnz={nnz} kind={}", opts.kind.label());

    // --- cold vs warm single solves ----------------------------------
    let (_, b) = verify::rhs_for(&m, 1);
    let cold = time_ns(5, || solve(&m, &b, cfg.clone(), &opts).unwrap());
    let engine = SolverEngine::build(&m, cfg.clone(), &opts).unwrap();
    let warm = time_ns(5, || engine.solve(&b).unwrap());
    let cold_over_warm = cold.median_ns as f64 / warm.median_ns.max(1) as f64;
    println!("cold solve   median {:>12}", TimingSummary::human(cold.median_ns));
    println!(
        "warm solve   median {:>12}   (cold/warm = {cold_over_warm:.1}x)",
        TimingSummary::human(warm.median_ns)
    );

    // --- 64-RHS: amortized batch vs one-shot loop --------------------
    let bs: Vec<Vec<f64>> =
        (0..BATCH_RHS as u64).map(|k| verify::rhs_for(&m, 1000 + k).1).collect();
    let one_shot = time_ns(3, || {
        let mut acc = 0u64;
        for b in &bs {
            acc ^= solve(&m, b, cfg.clone(), &opts).unwrap().events;
        }
        acc
    });
    let batch = time_ns(3, || {
        // a fresh engine per sample: the amortized cost INCLUDES the
        // one-time analysis + calibration, as a real caller would pay it
        let engine = SolverEngine::build(&m, cfg.clone(), &opts).unwrap();
        engine.solve_batch(&bs).unwrap().reports.len()
    });
    let speedup = one_shot.median_ns as f64 / batch.median_ns.max(1) as f64;
    println!("{BATCH_RHS}x one-shot median {:>12}", TimingSummary::human(one_shot.median_ns));
    println!(
        "{BATCH_RHS}x batch    median {:>12}   (speedup = {speedup:.1}x)",
        TimingSummary::human(batch.median_ns)
    );

    // --- fused panel vs per-RHS warm loop ----------------------------
    // Warm replay is memory-bandwidth-bound: the per-RHS loop streams
    // the flattened factor adjacency 64 times, the fused panel once
    // per 8-wide block. Same engine, same machine, same run.
    let per_rhs = time_ns(5, || {
        let mut acc = 0.0f64;
        for b in &bs {
            acc += engine.solve(b).unwrap().x[0];
        }
        acc
    });
    let mut ws = SolveWorkspace::new();
    let mut outs: Vec<Vec<f64>> = vec![Vec::new(); bs.len()];
    engine.solve_panel_into(&bs, &mut outs, &mut ws).unwrap(); // warm the workspace
    let fused = time_ns(5, || {
        engine.solve_panel_into(&bs, &mut outs, &mut ws).unwrap();
        outs[0][0]
    });
    engine.solve_batch_into(&bs, &mut outs).unwrap(); // spawn + warm the pool
    let pooled = time_ns(5, || {
        engine.solve_batch_into(&bs, &mut outs).unwrap();
        outs[0][0]
    });
    let fused_speedup = per_rhs.median_ns as f64 / fused.median_ns.max(1) as f64;
    let pooled_speedup = per_rhs.median_ns as f64 / pooled.median_ns.max(1) as f64;
    // factor bytes one replay sweep streams: update lists (u32 row +
    // f64 value per entry), diagonals, and the CSR-style offsets
    let factor_bytes = (nnz - n) as u64 * 12 + n as u64 * 8 + (n as u64 + 1) * 4;
    let panel_k = sptrsv::exec::PANEL_K;
    let fused_sweeps = (BATCH_RHS as u64).div_ceil(panel_k as u64);
    let rows_per_s = |ns: u64| (BATCH_RHS * n) as f64 / (ns as f64 / 1e9);
    let gbps = |sweeps: u64, ns: u64| (sweeps * factor_bytes) as f64 / (ns as f64 / 1e9) / 1e9;
    println!(
        "{BATCH_RHS}x per-RHS warm loop median {:>12}   ({:.2e} rows/s, {:.2} GB/s factor)",
        TimingSummary::human(per_rhs.median_ns),
        rows_per_s(per_rhs.median_ns),
        gbps(BATCH_RHS as u64, per_rhs.median_ns),
    );
    println!(
        "{BATCH_RHS}x fused panel K={panel_k}  median {:>12}   ({:.2e} rows/s, {:.2} GB/s factor, {fused_speedup:.1}x)",
        TimingSummary::human(fused.median_ns),
        rows_per_s(fused.median_ns),
        gbps(fused_sweeps, fused.median_ns),
    );
    println!(
        "{BATCH_RHS}x pooled batch_into median {:>12}   ({:.2e} rows/s, {pooled_speedup:.1}x)",
        TimingSummary::human(pooled.median_ns),
        rows_per_s(pooled.median_ns),
    );

    // --- sharded level-parallel replay vs serial warm replay ----------
    // A wide factor (avg level width n/24) is the sharded tier's home
    // turf: each level offers thousands of independent components, so
    // the two per-level barriers amortize. Workers are capped at the
    // hardware parallelism — requesting more threads than cores would
    // measure scheduler thrash, not the algorithm.
    let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
    let wide_levels = 24usize;
    let wm = gen::level_structured(&LevelSpec::new(n, wide_levels, n * 4, 7));
    let wide_nnz = wm.nnz();
    let wide_stats = sparsemat::LevelSets::analyze(&wm, sparsemat::Triangle::Lower);
    let wide_n_levels = wide_stats.n_levels();
    let wide_max_width = wide_stats.max_level_width();
    let wengine = SolverEngine::build(&wm, cfg.clone(), &opts).unwrap();
    let (_, wb) = verify::rhs_for(&wm, 5);
    let requested_workers = 4usize;
    let workers = requested_workers.min(hw);
    let mut wws = SolveWorkspace::new();
    let mut wout = vec![0.0f64; wm.n()];
    // warm-up both tiers: grow buffers, spawn the pool
    wengine.solve_sharded_into(&wb, &mut wout, &mut wws, 1).unwrap();
    wengine.solve_sharded_into(&wb, &mut wout, &mut wws, workers).unwrap();
    let serial_warm = time_ns(7, || {
        // workers == 1 degrades to the serial replay along the same
        // canonical order — the exact baseline the sharded tier races
        wengine.solve_sharded_into(&wb, &mut wout, &mut wws, 1).unwrap();
        wout[0]
    });
    let sharded_warm = time_ns(7, || {
        wengine.solve_sharded_into(&wb, &mut wout, &mut wws, workers).unwrap();
        wout[0]
    });
    let sharded_speedup = serial_warm.median_ns as f64 / sharded_warm.median_ns.max(1) as f64;
    println!("wide factor n={n} nnz={wide_nnz} levels={wide_n_levels} max_width={wide_max_width}");
    println!("serial  warm replay median {:>12}", TimingSummary::human(serial_warm.median_ns));
    println!(
        "sharded warm replay median {:>12}   ({workers} workers, {sharded_speedup:.2}x, hw={hw})",
        TimingSummary::human(sharded_warm.median_ns)
    );

    // --- chain-fused replay vs per-level barriers on deep/narrow -----
    // The Schedule IR's home turf: a factor thousands of levels deep
    // with single-digit level widths. The per-level schedule
    // (`chain_width_threshold: 0`) pays two barriers per level; the
    // default tuning fuses the narrow runs into a handful of chains,
    // so barriers land only at chain boundaries. Barrier counts come
    // from the reported schedule stats (valid on any core count); the
    // wall-clock floor binds only where parallel hardware exists.
    let deep_depth = ((2_000.0 * scale) as usize).max(64);
    let dm = gen::deep_narrow(deep_depth, 6, 3.2, 0xBEEF);
    let deep_n = dm.n();
    let deep_nnz = dm.nnz();
    let (_, db) = verify::rhs_for(&dm, 13);
    let fused_engine = SolverEngine::build(&dm, cfg.clone(), &opts).unwrap();
    let unfused_opts = SolveOptions { chain_width_threshold: 0, ..opts.clone() };
    let unfused_engine = SolverEngine::build(&dm, cfg.clone(), &unfused_opts).unwrap();
    let fused_sched = fused_engine.solve(&db).unwrap().schedule.unwrap();
    let unfused_sched = unfused_engine.solve(&db).unwrap().schedule.unwrap();
    let chain_workers = 4usize;
    let mut dws = SolveWorkspace::new();
    let mut dout = vec![0.0f64; deep_n];
    // warm-up both engines: grow buffers, spawn the pools
    fused_engine.solve_sharded_into(&db, &mut dout, &mut dws, chain_workers).unwrap();
    unfused_engine.solve_sharded_into(&db, &mut dout, &mut dws, chain_workers).unwrap();
    let fused_chain = time_ns(7, || {
        fused_engine.solve_sharded_into(&db, &mut dout, &mut dws, chain_workers).unwrap();
        dout[0]
    });
    let unfused_chain = time_ns(7, || {
        unfused_engine.solve_sharded_into(&db, &mut dout, &mut dws, chain_workers).unwrap();
        dout[0]
    });
    let chain_speedup = unfused_chain.median_ns as f64 / fused_chain.median_ns.max(1) as f64;
    let barrier_cut =
        unfused_sched.barriers_per_solve as f64 / fused_sched.barriers_per_solve.max(1) as f64;
    println!(
        "deep/narrow factor n={deep_n} nnz={deep_nnz} levels={} chains={} fused_fraction={:.3}",
        fused_sched.levels, fused_sched.chains, fused_sched.fused_fraction
    );
    println!(
        "per-level barriers  median {:>12}   ({} barriers/solve)",
        TimingSummary::human(unfused_chain.median_ns),
        unfused_sched.barriers_per_solve
    );
    println!(
        "chain-fused replay  median {:>12}   ({} barriers/solve, {barrier_cut:.0}x fewer, {chain_speedup:.2}x, hw={hw})",
        TimingSummary::human(fused_chain.median_ns),
        fused_sched.barriers_per_solve
    );

    // --- serving front-end: coalesced panels vs lock-per-request -----
    // 64 concurrent right-hand sides from 8 client threads. The
    // baseline is what a service without a batching layer does: every
    // client grabs a global engine lock and runs one warm solve per
    // request (the factor streams once per RHS). The coalesced path
    // runs the same traffic through a SolverService, whose dispatcher
    // fuses queued requests into PANEL_K-lane panels — the factor
    // streams once per panel, and the mean fill is recorded. The win
    // floor is asserted only on ≥ 4-thread hardware; a 1-CPU container
    // records its honest numbers (thread oversubscription noise can
    // eat the fusion win there).
    const SERVE_CLIENTS: usize = 8;
    const SERVE_PER_CLIENT: usize = 8;
    let serve_bs: Vec<Vec<f64>> = (0..(SERVE_CLIENTS * SERVE_PER_CLIENT) as u64)
        .map(|k| verify::rhs_for(&m, 5000 + k).1)
        .collect();
    let locked = Mutex::new((SolveWorkspace::new(), vec![0.0f64; n]));
    let lock_loop = time_ns(3, || {
        std::thread::scope(|s| {
            for c in 0..SERVE_CLIENTS {
                let (locked, engine, serve_bs) = (&locked, &engine, &serve_bs);
                s.spawn(move || {
                    for r in 0..SERVE_PER_CLIENT {
                        let b = &serve_bs[c * SERVE_PER_CLIENT + r];
                        let mut guard = locked.lock().unwrap();
                        let (ws, out) = &mut *guard;
                        engine.solve_into(b, out, ws).unwrap();
                    }
                });
            }
        });
    });
    let serve_cfg =
        ServiceConfig { max_linger: Duration::from_micros(500), ..ServiceConfig::default() };
    let mean_fill = Cell::new(0.0f64);
    let serve_panels = Cell::new(0u64);
    let coalesced = time_ns(3, || {
        let ((), report) = serve_solver(&engine, &serve_cfg, |svc| {
            std::thread::scope(|s| {
                for c in 0..SERVE_CLIENTS {
                    let serve_bs = &serve_bs;
                    s.spawn(move || {
                        // a burst per client: submit everything, then
                        // wait — the coalescing opportunity real
                        // concurrent traffic presents
                        let tickets: Vec<_> = (0..SERVE_PER_CLIENT)
                            .map(|r| svc.submit(&serve_bs[c * SERVE_PER_CLIENT + r]).unwrap())
                            .collect();
                        for t in tickets {
                            t.wait().unwrap();
                        }
                    });
                }
            });
        })
        .unwrap();
        mean_fill.set(report.mean_fill());
        serve_panels.set(report.panels);
    });
    let serve_speedup = lock_loop.median_ns as f64 / coalesced.median_ns.max(1) as f64;
    println!(
        "{}x lock-per-request loop median {:>12}",
        SERVE_CLIENTS * SERVE_PER_CLIENT,
        TimingSummary::human(lock_loop.median_ns)
    );
    println!(
        "{}x coalesced service   median {:>12}   (mean fill {:.2} lanes over {} panels, {serve_speedup:.2}x, hw={hw_threads})",
        SERVE_CLIENTS * SERVE_PER_CLIENT,
        TimingSummary::human(coalesced.median_ns),
        mean_fill.get(),
        serve_panels.get(),
        hw_threads = std::thread::available_parallelism().map_or(1, |p| p.get()),
    );

    // --- PCG + ILU(0): cold per-application analysis vs warm replay --
    // The paper's §I workload: every Krylov iteration applies
    // M⁻¹ = (LU)⁻¹ against the SAME factors. Warm builds the
    // PreconditionerEngine once (two engines, one shared pool) and
    // replays the substitution per application; cold re-runs the full
    // analysis + calibration for L and U on every application — what a
    // caller without the engine abstraction would pay.
    let spd = gen::grid_laplacian(64, 64);
    let fac = ilu0(&spd, 1e-8).expect("ilu0");
    let pcg_b: Vec<f64> = (0..spd.n()).map(|i| ((i % 19) as f64 - 9.0) / 9.0).collect();
    let kopts = KrylovOptions { max_iterations: 300, rel_tol: 1e-8 };
    let warm_pcg = time_ns(3, || {
        // a fresh engine pair per sample: the warm cost INCLUDES the
        // one-time analysis of both factors, as a real caller pays it
        let pre = PreconditionerEngine::from_ilu0(&fac, cfg.clone(), &opts).expect("engine pair");
        let rep = pcg(&spd, &pcg_b, &pre, &kopts).expect("pcg");
        assert!(rep.converged, "warm PCG must converge");
        rep.iterations
    });
    let pre = PreconditionerEngine::from_ilu0(&fac, cfg.clone(), &opts).unwrap();
    let pcg_iters = pcg(&spd, &pcg_b, &pre, &kopts).unwrap().iterations;
    let cold_pcg = time_ns(1, || cold_pcg_iterations(&spd, &fac, &pcg_b, &cfg, &opts, &kopts));
    let pcg_speedup = cold_pcg.median_ns as f64 / warm_pcg.median_ns.max(1) as f64;
    println!("pcg+ilu0 n={} iters={pcg_iters}", spd.n());
    println!(
        "cold pcg (analysis per apply) median {:>12}",
        TimingSummary::human(cold_pcg.median_ns)
    );
    println!(
        "warm pcg (engine pair, replay)  median {:>12}   (speedup = {pcg_speedup:.1}x)",
        TimingSummary::human(warm_pcg.median_ns)
    );

    // --- fleet: warm cached-engine serving vs cold per-request build -
    // The factor cache's value proposition: once a tenant's engine is
    // resident, a fleet submit pays mailbox dispatch + warm panel
    // replay, while a service WITHOUT the cache pays the full build
    // (analysis + calibration) per request — the already-measured cold
    // one-shot solve. The floor is hardware-independent: an engine
    // build costs orders of magnitude more than a warm dispatch.
    const FLEET_REQS: u64 = 16;
    let fleet_cfg = FleetConfig { machine: cfg.clone(), solve: opts.clone(), ..Default::default() };
    let fleet = EngineFleet::new(fleet_cfg).expect("fleet config");
    let fleet_fp = fleet.register(Arc::new(m.clone()));
    let fleet_bs: Vec<Vec<f64>> =
        (0..FLEET_REQS).map(|k| verify::rhs_for(&m, 9000 + k).1).collect();
    // first submit admits + builds the tenant; excluded from the warm timing
    fleet.submit(fleet_fp, &fleet_bs[0]).unwrap().wait().unwrap();
    let fleet_warm = time_ns(3, || {
        let tickets: Vec<_> = (0..FLEET_REQS as usize)
            .map(|r| fleet.submit(fleet_fp, &fleet_bs[r]).unwrap())
            .collect();
        for t in tickets {
            t.wait().unwrap();
        }
    });
    let fleet_report = fleet.report();
    let fleet_per_req = fleet_warm.median_ns / FLEET_REQS;
    let fleet_speedup = cold.median_ns as f64 / fleet_per_req.max(1) as f64;
    println!(
        "fleet warm submit     median {:>12}/req   (vs cold per-request build: {fleet_speedup:.1}x, \
         cache {}/{} bytes)",
        TimingSummary::human(fleet_per_req),
        fleet_report.cache_bytes_high_water,
        fleet_report.cache_budget_bytes,
    );
    assert!(
        fleet_report.cache_bytes_high_water <= fleet_report.cache_budget_bytes,
        "fleet byte budget violated under bench traffic: {fleet_report:?}"
    );
    drop(fleet);

    // --- value refresh vs full rebuild -------------------------------
    // Time-stepping workloads change factor VALUES every step while
    // the structure is fixed. `refresh_values` validates, audits and
    // rewrites every warm tier's value arrays in place — zero symbolic
    // work; the alternative is a full engine rebuild (analysis + plan
    // + adjacency + calibration) per step. Samples alternate between
    // two value sets so every refresh writes genuinely new values.
    let m2 = {
        let mut t = m.clone();
        for (i, v) in t.values_mut().iter_mut().enumerate() {
            *v *= 1.0 + ((i % 7) as f64) * 0.01;
        }
        t
    };
    let mut rws = SolveWorkspace::new();
    let mut rout = vec![0.0f64; n];
    engine.solve_into(&b, &mut rout, &mut rws).unwrap(); // warm buffers
    let flip = Cell::new(false);
    let refresh_then_solve = time_ns(5, || {
        let next = if flip.replace(!flip.get()) { &m } else { &m2 };
        engine.refresh_values(next).unwrap();
        engine.solve_into(&b, &mut rout, &mut rws).unwrap();
        rout[0]
    });
    assert!(engine.value_epoch() >= 5, "every sample must commit a refresh");
    let rebuild_then_solve = time_ns(3, || {
        let e2 = SolverEngine::build(&m2, cfg.clone(), &opts).unwrap();
        e2.solve_into(&b, &mut rout, &mut rws).unwrap();
        rout[0]
    });
    let refresh_speedup =
        rebuild_then_solve.median_ns as f64 / refresh_then_solve.median_ns.max(1) as f64;
    println!(
        "rebuild-then-solve median {:>12}",
        TimingSummary::human(rebuild_then_solve.median_ns)
    );
    println!(
        "refresh-then-solve median {:>12}   (speedup = {refresh_speedup:.1}x)",
        TimingSummary::human(refresh_then_solve.median_ns)
    );

    // --- telemetry plane: armed vs dark warm solves ------------------
    // The observability contract: with the span/metric sink disabled
    // (one relaxed atomic load per probe) the warm path is unchanged,
    // and ARMING it — every solve now records spans, bumps counters
    // and feeds a latency histogram — costs at most 5%. Each sample
    // batches solves so the ratio compares real work, and min-of-
    // samples damps scheduler noise on both sides; the alloc_free
    // suite separately proves both modes stay zero-allocation.
    const TELEM_BATCH: usize = 32;
    let mut tout = vec![0.0f64; n];
    let mut tws = SolveWorkspace::new();
    engine.solve_into(&b, &mut tout, &mut tws).unwrap(); // warm buffers
    let telem_dark = time_ns(7, || {
        for _ in 0..TELEM_BATCH {
            engine.solve_into(&b, &mut tout, &mut tws).unwrap();
        }
        tout[0]
    });
    telemetry::set_enabled(true);
    engine.solve_into(&b, &mut tout, &mut tws).unwrap(); // register the ring
    telemetry::reset();
    let telem_armed = time_ns(7, || {
        for _ in 0..TELEM_BATCH {
            engine.solve_into(&b, &mut tout, &mut tws).unwrap();
        }
        tout[0]
    });
    let telem_total_events = telemetry::snapshot().total_events;
    telemetry::set_enabled(false);
    telemetry::reset();
    let telem_overhead_pct =
        (telem_armed.min_ns as f64 / telem_dark.min_ns.max(1) as f64 - 1.0) * 100.0;
    assert!(telem_total_events > 0, "the armed window must actually record events");
    println!(
        "telemetry dark  {TELEM_BATCH}x warm solve min {:>12}",
        TimingSummary::human(telem_dark.min_ns)
    );
    println!(
        "telemetry armed {TELEM_BATCH}x warm solve min {:>12}   (overhead {telem_overhead_pct:+.2}%, {telem_total_events} events)",
        TimingSummary::human(telem_armed.min_ns)
    );

    // --- emit BENCH_engine.json at the repo root ---------------------
    let json = format!(
        r#"{{
  "bench": "engine_cold_vs_warm",
  "matrix": {{ "n": {n}, "nnz": {nnz}, "generator": "level_structured(levels=200, seed=11)" }},
  "solver": "{label}",
  "machine": "dgx1x4",
  "cold_solve_ns": {{ "median": {cold_med}, "min": {cold_min} }},
  "warm_solve_ns": {{ "median": {warm_med}, "min": {warm_min} }},
  "cold_over_warm": {cold_over_warm:.2},
  "batch": {{
    "rhs": {BATCH_RHS},
    "one_shot_loop_ns": {os_med},
    "amortized_batch_ns": {batch_med},
    "speedup": {speedup:.2},
    "threads": {threads}
  }},
  "fused_panel": {{
    "rhs": {BATCH_RHS},
    "panel_k": {panel_k},
    "per_rhs_warm_loop_ns": {per_rhs_med},
    "fused_panel_ns": {fused_med},
    "pooled_batch_into_ns": {pooled_med},
    "speedup_vs_per_rhs": {fused_speedup:.2},
    "pooled_speedup_vs_per_rhs": {pooled_speedup:.2},
    "fused_rows_per_s": {fused_rows:.0},
    "per_rhs_factor_gb_per_s": {per_rhs_gbps:.2},
    "fused_factor_gb_per_s": {fused_gbps:.2}
  }},
  "serving": {{
    "clients": {serve_clients},
    "per_client": {serve_per_client},
    "rhs": {serve_rhs},
    "max_lanes": {panel_k},
    "lock_per_request_ns": {lock_med},
    "coalesced_service_ns": {serve_med},
    "speedup": {serve_speedup:.2},
    "mean_panel_fill": {serve_fill:.2},
    "panels": {serve_panels_v},
    "hardware_threads": {threads}
  }},
  "pcg_ilu0": {{
    "matrix": {{ "n": {pcg_n}, "nnz": {pcg_nnz}, "generator": "grid_laplacian(64x64)" }},
    "preconditioner": "ilu0 PreconditionerEngine (L fwd + U bwd, shared pool)",
    "iterations": {pcg_iters},
    "rel_tol": 1e-8,
    "cold_pcg_ns": {cold_pcg_med},
    "warm_pcg_ns": {warm_pcg_med},
    "warm_speedup": {pcg_speedup:.2}
  }},
  "sharded_replay": {{
    "matrix": {{ "n": {n}, "nnz": {wide_nnz}, "generator": "level_structured(levels={wide_levels}, seed=7)" }},
    "n_levels": {wide_n_levels},
    "max_level_width": {wide_max_width},
    "workers_requested": {requested_workers},
    "workers": {workers},
    "hardware_threads": {hw},
    "serial_warm_ns": {serial_med},
    "sharded_warm_ns": {sharded_med},
    "speedup_vs_serial": {sharded_speedup:.2}
  }},
  "chain_fused": {{
    "matrix": {{ "n": {deep_n}, "nnz": {deep_nnz}, "generator": "deep_narrow(depth={deep_depth}, width=6, seed=0xBEEF)" }},
    "levels": {cf_levels},
    "chains": {cf_chains},
    "fused_levels": {cf_fused_levels},
    "fused_fraction": {cf_fused_fraction:.4},
    "shards": {cf_shards},
    "barriers_per_solve_fused": {cf_barriers_fused},
    "barriers_per_solve_per_level": {cf_barriers_unfused},
    "barrier_cut": {barrier_cut:.1},
    "workers": {chain_workers},
    "hardware_threads": {hw},
    "per_level_ns": {cf_unfused_med},
    "chain_fused_ns": {cf_fused_med},
    "speedup_vs_per_level": {chain_speedup:.2}
  }},
  "fleet": {{
    "requests": {fleet_reqs},
    "warm_submit_ns_per_req": {fleet_per_req},
    "cold_build_per_request_ns": {cold_med},
    "speedup_vs_cold_rebuild": {fleet_speedup:.2},
    "cache_bytes_high_water": {fleet_high_water},
    "cache_budget_bytes": {fleet_budget}
  }},
  "value_refresh": {{
    "refresh_then_solve_ns": {refresh_med},
    "rebuild_then_solve_ns": {rebuild_med},
    "speedup_vs_rebuild": {refresh_speedup:.2}
  }},
  "telemetry": {{
    "batch": {telem_batch},
    "disabled_warm_batch_ns": {telem_dark_min},
    "enabled_warm_batch_ns": {telem_armed_min},
    "overhead_pct": {telem_overhead_pct:.2},
    "events_recorded": {telem_total_events}
  }}
}}
"#,
        telem_batch = TELEM_BATCH,
        telem_dark_min = telem_dark.min_ns,
        telem_armed_min = telem_armed.min_ns,
        refresh_med = refresh_then_solve.median_ns,
        rebuild_med = rebuild_then_solve.median_ns,
        fleet_reqs = FLEET_REQS,
        fleet_high_water = fleet_report.cache_bytes_high_water,
        fleet_budget = fleet_report.cache_budget_bytes,
        label = opts.kind.label(),
        cold_med = cold.median_ns,
        cold_min = cold.min_ns,
        warm_med = warm.median_ns,
        warm_min = warm.min_ns,
        os_med = one_shot.median_ns,
        batch_med = batch.median_ns,
        threads = std::thread::available_parallelism().map_or(1, |p| p.get()),
        per_rhs_med = per_rhs.median_ns,
        fused_med = fused.median_ns,
        pooled_med = pooled.median_ns,
        fused_rows = rows_per_s(fused.median_ns),
        per_rhs_gbps = gbps(BATCH_RHS as u64, per_rhs.median_ns),
        fused_gbps = gbps(fused_sweeps, fused.median_ns),
        serial_med = serial_warm.median_ns,
        sharded_med = sharded_warm.median_ns,
        cf_levels = fused_sched.levels,
        cf_chains = fused_sched.chains,
        cf_fused_levels = fused_sched.fused_levels,
        cf_fused_fraction = fused_sched.fused_fraction,
        cf_shards = fused_sched.shards,
        cf_barriers_fused = fused_sched.barriers_per_solve,
        cf_barriers_unfused = unfused_sched.barriers_per_solve,
        cf_unfused_med = unfused_chain.median_ns,
        cf_fused_med = fused_chain.median_ns,
        serve_clients = SERVE_CLIENTS,
        serve_per_client = SERVE_PER_CLIENT,
        serve_rhs = SERVE_CLIENTS * SERVE_PER_CLIENT,
        lock_med = lock_loop.median_ns,
        serve_med = coalesced.median_ns,
        serve_fill = mean_fill.get(),
        serve_panels_v = serve_panels.get(),
        pcg_n = spd.n(),
        pcg_nnz = spd.nnz(),
        cold_pcg_med = cold_pcg.median_ns,
        warm_pcg_med = warm_pcg.median_ns,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    let mut f = std::fs::File::create(out).expect("create BENCH_engine.json");
    f.write_all(json.as_bytes()).expect("write BENCH_engine.json");
    println!("wrote {out}");

    assert!(
        speedup >= 2.0,
        "amortized batch must be at least 2x faster than one-shot loop, got {speedup:.2}x"
    );
    assert!(
        fused_speedup >= 2.0,
        "fused panel must be at least 2x faster than the per-RHS warm loop, got {fused_speedup:.2}x"
    );
    // the parallel floor only binds where parallel hardware exists; a
    // 1–3 thread machine records its honest numbers instead
    assert!(
        hw < 4 || sharded_speedup >= 1.5,
        "sharded replay must be at least 1.5x faster than serial warm replay \
         at {workers} workers on {hw} hardware threads, got {sharded_speedup:.2}x"
    );
    // schedule-stat floor, valid on any core count: fusion must cut
    // barriers per solve at least 5x on the deep/narrow factor
    assert!(
        unfused_sched.barriers_per_solve >= 5 * fused_sched.barriers_per_solve.max(1),
        "chain fusion must cut barriers >=5x on the deep/narrow factor: \
         {} per-level vs {} fused",
        unfused_sched.barriers_per_solve,
        fused_sched.barriers_per_solve
    );
    // the wall-clock floor binds only where parallel hardware exists;
    // narrower machines record their honest numbers
    assert!(
        hw < 4 || chain_speedup >= 1.2,
        "chain-fused replay must be at least 1.2x faster than the per-level \
         schedule at {chain_workers} workers on {hw} hardware threads, got {chain_speedup:.2}x"
    );
    assert!(
        pcg_speedup >= 2.0,
        "warm PCG (engine pair) must be at least 2x faster than per-application \
         analysis, got {pcg_speedup:.2}x"
    );
    assert!(
        fleet_speedup >= 2.0,
        "a warm fleet submit must be at least 2x faster than a cold per-request \
         engine rebuild, got {fleet_speedup:.2}x"
    );
    // hardware-independent: the rebuild pays analysis + plan +
    // adjacency + calibration; the refresh pays none of it
    assert!(
        refresh_speedup >= 3.0,
        "refresh-then-solve must be at least 3x faster than rebuild-then-solve, \
         got {refresh_speedup:.2}x"
    );
    // coalescing must beat the lock-per-request loop wherever parallel
    // hardware exists; a 1–3 thread machine records its honest numbers
    // (oversubscribed client threads add scheduling noise the fusion
    // win has to overcome first)
    assert!(
        hw < 4 || serve_speedup >= 1.3,
        "the coalesced service must beat the lock-per-request serial loop at \
         {} concurrent RHS on {hw} hardware threads, got {serve_speedup:.2}x",
        SERVE_CLIENTS * SERVE_PER_CLIENT
    );
    // hardware-independent: a handful of atomic stores per solve
    // against a full factor sweep — the armed sink must stay ≤ 5%
    assert!(
        telem_overhead_pct <= 5.0,
        "armed telemetry must cost at most 5% on warm solves, \
         got {telem_overhead_pct:+.2}%"
    );
}

/// The cold baseline: the same PCG recurrence as `krylov::pcg`, but
/// every preconditioner application rebuilds both engines — i.e. pays
/// level sets, plan, adjacency AND the calibration simulation for L
/// and U each time, which is what a caller does with only the one-shot
/// `solve()` API. The one-shot applies replay the engines' canonical
/// level-major order rather than the warm path's natural order, so the
/// two trajectories may differ in the last bits and the iteration
/// counts can differ by a hair — per-application cost, not iteration
/// count, is what this baseline measures.
fn cold_pcg_iterations(
    a: &CscMatrix,
    f: &LuFactors,
    b: &[f64],
    cfg: &MachineConfig,
    opts: &SolveOptions,
    kopts: &KrylovOptions,
) -> usize {
    let fwd_opts = SolveOptions { triangle: Triangle::Lower, ..opts.clone() };
    let bwd_opts = SolveOptions { triangle: Triangle::Upper, ..opts.clone() };
    let apply = |r: &[f64]| -> Vec<f64> {
        let y = solve(&f.l, r, cfg.clone(), &fwd_opts).expect("cold L solve").x;
        solve(&f.u, &y, cfg.clone(), &bwd_opts).expect("cold U solve").x
    };
    let n = a.n();
    let dot = |u: &[f64], v: &[f64]| u.iter().zip(v).map(|(x, y)| x * y).sum::<f64>();
    let b_norm = dot(b, b).sqrt();
    let mut x = vec![0.0f64; n];
    let mut r = b.to_vec();
    let mut z = apply(&r);
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut ap = vec![0.0f64; n];
    for k in 0..kopts.max_iterations {
        a.matvec_into(&p, &mut ap);
        let alpha = rz / dot(&p, &ap);
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        if dot(&r, &r).sqrt() / b_norm <= kopts.rel_tol {
            return k + 1;
        }
        if k + 1 == kopts.max_iterations {
            break; // mirror the warm driver: no discarded final direction
        }
        z = apply(&r);
        let rz_next = dot(&r, &z);
        let beta = rz_next / rz;
        rz = rz_next;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    kopts.max_iterations
}
