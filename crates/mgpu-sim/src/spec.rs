//! Hardware parameter blocks.
//!
//! Absolute values are engineering estimates assembled from public
//! V100 / NVLink / UVM measurements (Tartan \[29\], the UVM evaluations
//! \[25\]\[26\], NVSHMEM talks \[15\]). Every experiment reports *ratios*
//! against a baseline run on the same spec, so relative magnitudes are
//! what matter; the ablation benches sweep the sensitive ones.

use crate::topology::TopologyKind;

/// A V100-class GPU.
#[derive(Debug, Clone)]
pub struct GpuSpec {
    /// Streaming multiprocessors.
    pub sms: usize,
    /// Maximum resident warps per SM (occupancy ceiling).
    pub warps_per_sm: usize,
    /// Warp-instructions issued concurrently across the chip; models
    /// aggregate execution/memory throughput for solve & update work.
    pub exec_lanes: usize,
    /// Cost of one device-wide atomic visible at L2 (amortized), ns.
    pub atomic_ns: u64,
    /// Cost of solving one component once inputs are ready (divide +
    /// fma + bookkeeping), ns.
    pub solve_ns: u64,
    /// Per-nonzero streaming cost of reading column data from HBM
    /// (amortized per thread), ns.
    pub per_nnz_ns: u64,
    /// Local spin-poll iteration period, ns.
    pub poll_ns: u64,
    /// One `__shfl_down_sync` step of the warp reduction, ns.
    pub shuffle_ns: u64,
    /// Kernel launch overhead (host-side dispatch + device start), ns.
    pub launch_ns: u64,
    /// Device-side barrier / kernel tear-down between level-set
    /// kernels, ns (the csrsv2 per-level cost).
    pub level_sync_ns: u64,
    /// Device memory capacity in bytes, scaled to corpus size — chosen
    /// so the out-of-core analogs (twitter7, uk-2005) exceed a single
    /// GPU exactly as the real inputs exceed a 16 GB V100.
    pub mem_bytes: u64,
}

impl GpuSpec {
    /// Tesla V100 (SXM2) parameters *at corpus scale*: issue capacity
    /// and resident-warp slots are divided by the same ~×100 factor as
    /// the corpus row caps (DESIGN.md §5), so per-GPU saturation — the
    /// effect the task pool exists to exploit — occurs at the same
    /// relative matrix size as on the real machine. Latency-class
    /// parameters (atomics, polls, launches) are unscaled: latencies
    /// don't shrink when a problem does.
    pub fn v100() -> Self {
        GpuSpec {
            sms: 80,
            warps_per_sm: 8,
            exec_lanes: 16,
            atomic_ns: 25,
            solve_ns: 220,
            per_nnz_ns: 6,
            poll_ns: 180,
            shuffle_ns: 8,
            launch_ns: 6_000,
            level_sync_ns: 3_500,
            mem_bytes: 8 << 20,
        }
    }

    /// Unscaled V100 part counts (80 SMs × 64 warps, 160 issue lanes,
    /// 16 GB); use with full-size SuiteSparse inputs.
    pub fn v100_full() -> Self {
        GpuSpec { sms: 80, warps_per_sm: 64, exec_lanes: 160, mem_bytes: 16 << 30, ..Self::v100() }
    }

    /// Total resident-warp slots on the GPU.
    pub fn warp_slots(&self) -> usize {
        self.sms * self.warps_per_sm
    }
}

/// Unified Memory behaviour (§III).
#[derive(Debug, Clone)]
pub struct UmSpec {
    /// Migration granularity in bytes. UVM migrates in multiples of the
    /// 4 KiB OS base page (up to 2 MiB); the base granularity is what
    /// governs false sharing of the small intermediate arrays.
    pub page_bytes: u64,
    /// GPU fault-handling service time per fault (driver + replay), ns.
    /// Effective per-fault cost is lower than a cold fault's wall time
    /// because UVM replays faults in batches.
    pub fault_service_ns: u64,
    /// Parallel fault-service contexts per GPU (batch replay lanes).
    pub fault_handlers: usize,
    /// Consecutive remote *read* faults from distinct GPUs with no
    /// intervening write before the page is duplicated read-only
    /// (models the access-counter read-duplication heuristic).
    pub dup_threshold: u32,
    /// Time after a *migration* before busy-waiting watchers steal the
    /// page back, ns; `u64::MAX` disables steal-back (the default — on
    /// Volta the spin loop's reads execute remotely over NVLink and
    /// the driver's anti-thrash heuristics keep contended pages put;
    /// finite values model the pre-Volta migrate-on-touch behaviour
    /// and are exercised by the ablation benches).
    pub bounce_delay_ns: u64,
    /// Latency of a system-wide atomic executed *remotely* over NVLink
    /// without migrating the page (Volta supports native NVLink
    /// atomics), ns.
    pub remote_atomic_ns: u64,
    /// Remote accesses to a page before the access-counter heuristic
    /// migrates it toward the accessor. First touch from the host
    /// always faults.
    pub migrate_threshold: u32,
}

impl Default for UmSpec {
    fn default() -> Self {
        UmSpec {
            page_bytes: 4 << 10,
            fault_service_ns: 2_500,
            fault_handlers: 4,
            dup_threshold: 2,
            bounce_delay_ns: u64::MAX,
            remote_atomic_ns: 700,
            migrate_threshold: 24,
        }
    }
}

/// NVSHMEM-style symmetric-heap behaviour (§IV).
#[derive(Debug, Clone)]
pub struct ShmemSpec {
    /// One-sided `get` base latency over NVLink (GPU-initiated,
    /// fine-grained), ns.
    pub get_latency_ns: u64,
    /// One-sided `put` base latency, ns.
    pub put_latency_ns: u64,
    /// Additional latency when crossing an NVSwitch hop, ns.
    pub switch_hop_ns: u64,
    /// `nvshmem_fence` cost (ordering point), ns.
    pub fence_ns: u64,
    /// `nvshmem_quiet` cost (completion of all outstanding ops), ns.
    pub quiet_ns: u64,
    /// Gap between remote-poll rounds in the lock-wait loop beyond the
    /// get latency itself, ns.
    pub poll_gap_ns: u64,
    /// How many concurrently spinning warps one NVLink can carry before
    /// fine-grained remote latency doubles (≈ 25 GB/s divided by one
    /// 32 B packet per poll round per warp, derated for protocol
    /// overhead). Governs the low-GPU-count congestion dip of
    /// Fig. 10a: with 2 GPUs all poll traffic crosses a single link,
    /// while every added DGX-1 GPU brings more active links — exactly
    /// the paper's "active communication bandwidth per GPU" argument.
    pub poll_capacity_per_link: u64,
}

impl Default for ShmemSpec {
    fn default() -> Self {
        ShmemSpec {
            get_latency_ns: 1_400,
            put_latency_ns: 1_100,
            switch_hop_ns: 400,
            fence_ns: 600,
            quiet_ns: 2_500,
            poll_gap_ns: 200,
            poll_capacity_per_link: 260,
        }
    }
}

/// Full machine description.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Number of GPUs used by the job.
    pub gpus: usize,
    /// Interconnect topology.
    pub topology: TopologyKind,
    /// Per-GPU parameters.
    pub gpu: GpuSpec,
    /// Unified-memory parameters.
    pub um: UmSpec,
    /// Symmetric-heap parameters.
    pub shmem: ShmemSpec,
    /// Seed for the machine's internal jitter streams.
    pub seed: u64,
}

impl MachineConfig {
    /// A DGX-1 with `gpus` V100s (hybrid cube-mesh NVLink, 8 max).
    pub fn dgx1(gpus: usize) -> Self {
        assert!((1..=8).contains(&gpus), "DGX-1 has 8 GPUs");
        MachineConfig {
            gpus,
            topology: TopologyKind::Dgx1,
            gpu: GpuSpec::v100(),
            um: UmSpec::default(),
            shmem: ShmemSpec::default(),
            seed: 0x5EED,
        }
    }

    /// A DGX-2 with `gpus` V100s (NVSwitch all-to-all, 16 max).
    pub fn dgx2(gpus: usize) -> Self {
        assert!((1..=16).contains(&gpus), "DGX-2 has 16 GPUs");
        MachineConfig {
            gpus,
            topology: TopologyKind::Dgx2,
            gpu: GpuSpec::v100(),
            um: UmSpec::default(),
            shmem: ShmemSpec::default(),
            seed: 0x5EED,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_full_has_5120_warp_slots() {
        assert_eq!(GpuSpec::v100_full().warp_slots(), 5120);
        // corpus-scaled spec shrinks capacity by the same factor as the
        // row caps but keeps latencies
        let scaled = GpuSpec::v100();
        assert_eq!(scaled.warp_slots(), 640);
        assert_eq!(scaled.launch_ns, GpuSpec::v100_full().launch_ns);
    }

    #[test]
    fn dgx_constructors_validate_gpu_counts() {
        assert_eq!(MachineConfig::dgx1(4).gpus, 4);
        assert_eq!(MachineConfig::dgx2(16).gpus, 16);
    }

    #[test]
    #[should_panic(expected = "DGX-1 has 8")]
    fn dgx1_rejects_nine_gpus() {
        let _ = MachineConfig::dgx1(9);
    }

    #[test]
    #[should_panic(expected = "DGX-2 has 16")]
    fn dgx2_rejects_seventeen_gpus() {
        let _ = MachineConfig::dgx2(17);
    }
}
