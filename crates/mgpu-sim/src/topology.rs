//! Interconnect topologies.
//!
//! * **DGX-1** (hybrid cube-mesh, Fig. in §III-B of the paper / Tartan
//!   \[29\]): 8 V100s, 6 NVLink ports each, with double links on some
//!   pairs. GPUs 0–3 form a fully connected clique — which is exactly
//!   why the paper can run NVSHMEM on at most 4 GPUs of a DGX-1 — and
//!   several pairs (e.g. 0–5) have *no* direct link and must route
//!   through PCIe/host.
//! * **DGX-2**: 16 V100s all-to-all through NVSwitch; every GPU has a
//!   single 6-link port into the fabric, so per-GPU bandwidth stays
//!   constant as peers are added (the §VI-D flat-scaling observation).
//! * **PCIe host links** connect every GPU to the host for UM
//!   host-routing and out-of-core traffic.

use crate::GpuId;

/// Which machine fabric to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// DGX-1 hybrid cube-mesh NVLink.
    Dgx1,
    /// DGX-2 NVSwitch all-to-all.
    Dgx2,
    /// Fully connected single-link NVLink mesh (synthetic, for ablations).
    AllToAllNvlink,
    /// No peer links at all — every transfer routes through PCIe
    /// (models a commodity multi-GPU box, for ablations).
    PcieOnly,
}

/// DGX-1V NVLink pairs with link multiplicity (each V100 has 6 ports).
pub const DGX1_LINKS: &[(GpuId, GpuId, u32)] = &[
    (0, 1, 1),
    (0, 2, 1),
    (0, 3, 2),
    (0, 4, 2),
    (1, 2, 2),
    (1, 3, 1),
    (1, 5, 2),
    (2, 3, 1),
    (2, 6, 2),
    (3, 7, 2),
    (4, 5, 1),
    (4, 6, 1),
    (4, 7, 2),
    (5, 6, 2),
    (5, 7, 1),
    (6, 7, 1),
];

/// NVLink 2.0 per-link bandwidth, one direction, bytes/ns (25 GB/s).
pub const NVLINK_BW: f64 = 25.0;
/// NVSwitch per-GPU port bandwidth, one direction, bytes/ns (120 GB/s).
pub const NVSWITCH_PORT_BW: f64 = 120.0;
/// PCIe 3.0 x16 bandwidth, bytes/ns (16 GB/s).
pub const PCIE_BW: f64 = 16.0;
/// Base NVLink hardware latency, ns.
pub const NVLINK_LAT_NS: u64 = 700;
/// NVSwitch fabric latency, ns.
pub const NVSWITCH_LAT_NS: u64 = 1_000;
/// PCIe + host path latency, ns.
pub const PCIE_LAT_NS: u64 = 9_000;

/// How two endpoints are physically connected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Same GPU — no interconnect involved.
    Local,
    /// Direct NVLink(s); payload carries the link index into
    /// [`Topology::pair_links`].
    Direct {
        /// Index into the pair-link table.
        link: usize,
    },
    /// Through the NVSwitch fabric: source egress port + destination
    /// ingress port.
    Switched,
    /// No peer path — staged through host PCIe (two PCIe hops).
    HostStaged,
}

/// A pair link (DGX-1 style): endpoints + multiplicity.
#[derive(Debug, Clone, Copy)]
pub struct PairLink {
    /// Lower endpoint.
    pub a: GpuId,
    /// Higher endpoint.
    pub b: GpuId,
    /// Number of physical NVLinks bonded on this pair.
    pub lanes: u32,
}

/// An instantiated topology with a dense route table.
#[derive(Debug, Clone)]
pub struct Topology {
    kind: TopologyKind,
    gpus: usize,
    pair_links: Vec<PairLink>,
    /// `route[src * gpus + dst]`
    routes: Vec<Route>,
}

impl Topology {
    /// Build the route table for `gpus` devices of the given kind.
    pub fn new(kind: TopologyKind, gpus: usize) -> Topology {
        let mut pair_links = Vec::new();
        match kind {
            TopologyKind::Dgx1 => {
                for &(a, b, lanes) in DGX1_LINKS {
                    if a < gpus && b < gpus {
                        pair_links.push(PairLink { a, b, lanes });
                    }
                }
            }
            TopologyKind::AllToAllNvlink => {
                for a in 0..gpus {
                    for b in a + 1..gpus {
                        pair_links.push(PairLink { a, b, lanes: 1 });
                    }
                }
            }
            TopologyKind::Dgx2 | TopologyKind::PcieOnly => {}
        }
        let mut routes = vec![Route::Local; gpus * gpus];
        for s in 0..gpus {
            for d in 0..gpus {
                routes[s * gpus + d] = if s == d {
                    Route::Local
                } else {
                    match kind {
                        TopologyKind::Dgx2 => Route::Switched,
                        TopologyKind::PcieOnly => Route::HostStaged,
                        TopologyKind::Dgx1 | TopologyKind::AllToAllNvlink => {
                            match pair_links.iter().position(|l| (l.a, l.b) == (s.min(d), s.max(d)))
                            {
                                Some(link) => Route::Direct { link },
                                None => Route::HostStaged,
                            }
                        }
                    }
                };
            }
        }
        Topology { kind, gpus, pair_links, routes }
    }

    /// Topology kind.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Number of GPUs.
    pub fn gpus(&self) -> usize {
        self.gpus
    }

    /// The pair-link table (empty for switched fabrics).
    pub fn pair_links(&self) -> &[PairLink] {
        &self.pair_links
    }

    /// Route between two GPUs.
    #[inline]
    pub fn route(&self, src: GpuId, dst: GpuId) -> Route {
        self.routes[src * self.gpus + dst]
    }

    /// True when `src` and `dst` can do peer-to-peer communication
    /// (required by NVSHMEM; the paper's 4-GPU DGX-1 limit).
    pub fn p2p(&self, src: GpuId, dst: GpuId) -> bool {
        !matches!(self.route(src, dst), Route::HostStaged)
    }

    /// True when *all* GPU pairs are P2P-connected — the precondition
    /// for running the NVSHMEM solvers on this machine.
    pub fn fully_p2p(&self) -> bool {
        (0..self.gpus).all(|s| (0..self.gpus).all(|d| self.p2p(s, d)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dgx1_port_budget_is_six_per_gpu() {
        let mut ports = [0u32; 8];
        for &(a, b, lanes) in DGX1_LINKS {
            ports[a] += lanes;
            ports[b] += lanes;
        }
        assert!(ports.iter().all(|&p| p == 6), "V100 has 6 NVLink ports: {ports:?}");
    }

    #[test]
    fn dgx1_first_four_gpus_form_a_clique() {
        let t = Topology::new(TopologyKind::Dgx1, 4);
        assert!(t.fully_p2p(), "paper runs NVSHMEM on GPUs 0-3 of DGX-1");
    }

    #[test]
    fn dgx1_eight_gpus_are_not_fully_p2p() {
        let t = Topology::new(TopologyKind::Dgx1, 8);
        assert!(!t.fully_p2p());
        assert!(!t.p2p(0, 5), "0-5 has no direct NVLink on DGX-1V");
        assert!(t.p2p(0, 4));
        assert!(matches!(t.route(0, 5), Route::HostStaged));
    }

    #[test]
    fn dgx2_is_fully_switched() {
        let t = Topology::new(TopologyKind::Dgx2, 16);
        assert!(t.fully_p2p());
        for s in 0..16 {
            for d in 0..16 {
                if s != d {
                    assert!(matches!(t.route(s, d), Route::Switched));
                }
            }
        }
        assert!(t.pair_links().is_empty());
    }

    #[test]
    fn double_links_present_where_documented() {
        let t = Topology::new(TopologyKind::Dgx1, 8);
        let Route::Direct { link } = t.route(0, 3) else { panic!("0-3 must be direct") };
        assert_eq!(t.pair_links()[link].lanes, 2);
        let Route::Direct { link } = t.route(0, 1) else { panic!("0-1 must be direct") };
        assert_eq!(t.pair_links()[link].lanes, 1);
    }

    #[test]
    fn routes_are_symmetric_in_reachability() {
        for kind in [TopologyKind::Dgx1, TopologyKind::Dgx2, TopologyKind::AllToAllNvlink] {
            let t = Topology::new(kind, 8.min(if kind == TopologyKind::Dgx2 { 16 } else { 8 }));
            for s in 0..t.gpus() {
                for d in 0..t.gpus() {
                    assert_eq!(t.p2p(s, d), t.p2p(d, s));
                }
            }
        }
    }

    #[test]
    fn pcie_only_routes_everything_through_host() {
        let t = Topology::new(TopologyKind::PcieOnly, 4);
        assert!(!t.fully_p2p());
        assert!(matches!(t.route(1, 2), Route::HostStaged));
        assert!(matches!(t.route(2, 2), Route::Local));
    }

    #[test]
    fn local_route_on_diagonal() {
        let t = Topology::new(TopologyKind::Dgx1, 8);
        for g in 0..8 {
            assert!(matches!(t.route(g, g), Route::Local));
        }
    }
}
