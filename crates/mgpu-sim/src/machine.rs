//! The assembled multi-GPU node.
//!
//! [`Machine`] owns every shared hardware resource — warp slots,
//! execution lanes, kernel launchers, fault handlers, NVLink /
//! NVSwitch / PCIe links — plus the [`crate::um`] and [`crate::shmem`]
//! subsystems, and exposes the cost/semantics API that the solver
//! executor drives. It is passive (no internal event loop); every
//! method takes the current simulation time and returns completion
//! times computed against FIFO resources, so the caller's event order
//! fully determines the run.

use crate::shmem::ShmemStats;
use crate::spec::MachineConfig;
use crate::topology::{
    Route, Topology, NVLINK_BW, NVLINK_LAT_NS, NVSWITCH_LAT_NS, NVSWITCH_PORT_BW, PCIE_BW,
    PCIE_LAT_NS,
};
use crate::um::{ReadAccess, UmRange, UnifiedMemory, WriteAccess};
use crate::GpuId;
use desim::{Gate, Pcg32, Resource, SimTime};

/// Aggregated run statistics, snapshotted by the executor at the end of
/// a solve.
#[derive(Debug, Clone, Default)]
pub struct MachineStats {
    /// UM page faults per GPU.
    pub um_faults: Vec<u64>,
    /// UM page migrations (incl. duplications).
    pub um_migrations: u64,
    /// UM read-duplication events.
    pub um_duplications: u64,
    /// Bytes moved by UM migrations.
    pub um_migrated_bytes: u64,
    /// UM remote (non-migrating) operations over the fabric.
    pub um_remote_ops: u64,
    /// PGAS operation ledger.
    pub shmem: ShmemStats,
    /// Bytes carried per fabric class.
    pub nvlink_bytes: u64,
    /// Bytes through NVSwitch ports.
    pub switch_bytes: u64,
    /// Bytes over PCIe (host staging / out-of-core).
    pub pcie_bytes: u64,
    /// Kernel launches per GPU.
    pub kernel_launches: Vec<u64>,
    /// Busy execution-lane nanoseconds per GPU.
    pub exec_busy_ns: Vec<u64>,
    /// Peak resident warps per GPU.
    pub peak_warps: Vec<usize>,
}

impl MachineStats {
    /// Total UM faults across GPUs.
    pub fn total_um_faults(&self) -> u64 {
        self.um_faults.iter().sum()
    }

    /// Total bytes over all fabrics.
    pub fn total_fabric_bytes(&self) -> u64 {
        self.nvlink_bytes + self.switch_bytes + self.pcie_bytes
    }
}

/// One modeled multi-GPU node.
#[derive(Debug)]
pub struct Machine {
    cfg: MachineConfig,
    topo: Topology,
    // --- per-GPU resources ---
    warp_slots: Vec<Gate>,
    exec: Vec<Resource>,
    launcher: Vec<Resource>,
    fault_handler: Vec<Resource>,
    alloc_bytes: Vec<u64>,
    // --- fabric resources ---
    pair_link_res: Vec<Resource>, // parallel to topo.pair_links()
    port_in: Vec<Resource>,       // NVSwitch ingress per GPU
    port_out: Vec<Resource>,      // NVSwitch egress per GPU
    pcie: Vec<Resource>,          // host link per GPU
    // --- subsystems ---
    um: UnifiedMemory,
    shmem_stats: ShmemStats,
    /// Warps currently spin-polling a remote location (set by the
    /// executor); drives the fabric-congestion factor.
    polling_load: u64,
    /// Total fine-grained poll capacity of the active fabric.
    poll_capacity: u64,
    // --- counters ---
    nvlink_bytes: u64,
    switch_bytes: u64,
    pcie_bytes: u64,
    kernel_launches: Vec<u64>,
    rng: Pcg32,
}

impl Machine {
    /// Build a machine from its configuration.
    pub fn new(cfg: MachineConfig) -> Machine {
        let g = cfg.gpus;
        let topo = Topology::new(cfg.topology, g);
        let mk = |f: &dyn Fn() -> Resource| (0..g).map(|_| f()).collect::<Vec<_>>();
        let pair_link_res: Vec<Resource> =
            topo.pair_links().iter().map(|l| Resource::new(l.lanes as usize)).collect();
        // Fine-grained poll capacity of the active fabric: total NVLink
        // lanes (DGX-1 style) or switch-port equivalents (DGX-2).
        let total_lanes: u64 = match cfg.topology {
            crate::topology::TopologyKind::Dgx2 => g as u64 * (NVSWITCH_PORT_BW / NVLINK_BW) as u64,
            _ => topo.pair_links().iter().map(|l| l.lanes as u64).sum::<u64>().max(1),
        };
        let poll_capacity = total_lanes * cfg.shmem.poll_capacity_per_link;
        Machine {
            warp_slots: (0..g).map(|_| Gate::new(cfg.gpu.warp_slots())).collect(),
            exec: mk(&|| Resource::new(cfg.gpu.exec_lanes)),
            launcher: mk(&|| Resource::new(1)),
            fault_handler: mk(&|| Resource::new(cfg.um.fault_handlers)),
            alloc_bytes: vec![0; g],
            pair_link_res,
            port_in: mk(&|| Resource::new(1)),
            port_out: mk(&|| Resource::new(1)),
            pcie: mk(&|| Resource::new(1)),
            um: UnifiedMemory::new(cfg.um.clone(), g),
            shmem_stats: ShmemStats::default(),
            polling_load: 0,
            poll_capacity,
            nvlink_bytes: 0,
            switch_bytes: 0,
            pcie_bytes: 0,
            kernel_launches: vec![0; g],
            rng: Pcg32::seed_from_u64(cfg.seed),
            topo,
            cfg,
        }
    }

    /// Number of GPUs in the job.
    #[inline]
    pub fn n_gpus(&self) -> usize {
        self.cfg.gpus
    }

    /// The machine configuration.
    #[inline]
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The interconnect topology.
    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Deterministic jitter in `[0, bound_ns)` (poll-phase offsets).
    #[inline]
    pub fn jitter(&mut self, bound_ns: u64) -> u64 {
        if bound_ns == 0 {
            0
        } else {
            self.rng.next_u64() % bound_ns
        }
    }

    // ------------------------------------------------------------------
    // Kernels & occupancy
    // ------------------------------------------------------------------

    /// Launch a kernel on `gpu` at `now`; returns the time the kernel's
    /// warps become eligible for scheduling. Launches of one process
    /// serialize through the host-side launcher.
    pub fn launch_kernel(&mut self, gpu: GpuId, now: SimTime) -> SimTime {
        self.kernel_launches[gpu] += 1;
        self.launcher[gpu].acquire(now, self.cfg.gpu.launch_ns)
    }

    /// Try to take a resident-warp slot immediately.
    pub fn try_warp_slot(&mut self, gpu: GpuId) -> bool {
        self.warp_slots[gpu].try_acquire()
    }

    /// Queue `token` for a warp slot on `gpu` (FIFO, hardware dispatch
    /// order).
    pub fn enqueue_warp(&mut self, gpu: GpuId, token: u64) {
        self.warp_slots[gpu].enqueue(token);
    }

    /// Release a warp slot; returns the token of the admitted waiter,
    /// if any.
    pub fn release_warp(&mut self, gpu: GpuId) -> Option<u64> {
        self.warp_slots[gpu].release()
    }

    /// Charge `dur_ns` of warp execution on `gpu`'s lanes starting at
    /// `now`; returns completion time.
    pub fn exec(&mut self, gpu: GpuId, now: SimTime, dur_ns: u64) -> SimTime {
        self.exec[gpu].acquire(now, dur_ns)
    }

    // ------------------------------------------------------------------
    // Fabric transfers
    // ------------------------------------------------------------------

    fn transfer_ns(bytes: u64, bw_bytes_per_ns: f64) -> u64 {
        (bytes as f64 / bw_bytes_per_ns).ceil() as u64
    }

    /// Move `bytes` from `src` to `dst`, occupying the fabric; returns
    /// arrival time. `src == dst` is free.
    pub fn transfer(&mut self, src: GpuId, dst: GpuId, bytes: u64, now: SimTime) -> SimTime {
        match self.topo.route(src, dst) {
            Route::Local => now,
            Route::Direct { link } => {
                self.nvlink_bytes += bytes;
                let dur = Self::transfer_ns(bytes, NVLINK_BW);
                self.pair_link_res[link].acquire(now, dur).after(NVLINK_LAT_NS)
            }
            Route::Switched => {
                self.switch_bytes += bytes;
                let dur = Self::transfer_ns(bytes, NVSWITCH_PORT_BW);
                let egress = self.port_out[src].acquire(now, dur);
                let ingress = self.port_in[dst].acquire(egress, dur);
                ingress.after(NVSWITCH_LAT_NS)
            }
            Route::HostStaged => {
                self.pcie_bytes += bytes;
                let dur = Self::transfer_ns(bytes, PCIE_BW);
                let up = self.pcie[src].acquire(now, dur).after(PCIE_LAT_NS);

                self.pcie[dst].acquire(up, dur).after(PCIE_LAT_NS)
            }
        }
    }

    /// Host ↔ device transfer over `gpu`'s PCIe link (out-of-core
    /// streaming); returns completion.
    pub fn host_transfer(&mut self, gpu: GpuId, bytes: u64, now: SimTime) -> SimTime {
        self.pcie_bytes += bytes;
        let dur = Self::transfer_ns(bytes, PCIE_BW);
        self.pcie[gpu].acquire(now, dur).after(PCIE_LAT_NS)
    }

    // ------------------------------------------------------------------
    // NVSHMEM-style one-sided operations
    // ------------------------------------------------------------------

    /// One-sided `get` of `bytes` from `target`'s symmetric heap into
    /// `requester`; returns data-arrival time.
    ///
    /// # Panics
    /// Panics when the pair is not P2P-connected — NVSHMEM requires
    /// peer access (the paper's 4-GPU DGX-1 limit).
    pub fn shmem_get(
        &mut self,
        requester: GpuId,
        target: GpuId,
        bytes: u64,
        now: SimTime,
    ) -> SimTime {
        self.shmem_stats.gets += 1;
        self.shmem_stats.get_bytes += bytes;
        if requester == target {
            return now.after(self.cfg.gpu.atomic_ns);
        }
        assert!(
            self.topo.p2p(requester, target),
            "NVSHMEM get between non-P2P GPUs {requester} and {target}"
        );
        let base = self.congested(self.shmem_base_latency(requester, target));
        // wire occupancy: fine-grained gets ride a min-size packet
        let t = self.transfer(target, requester, bytes.max(32), now);
        t.after(base)
    }

    /// One-sided `put` of `bytes` from `src` into `target`'s heap.
    pub fn shmem_put(&mut self, src: GpuId, target: GpuId, bytes: u64, now: SimTime) -> SimTime {
        self.shmem_stats.puts += 1;
        self.shmem_stats.put_bytes += bytes;
        if src == target {
            return now.after(self.cfg.gpu.atomic_ns);
        }
        assert!(self.topo.p2p(src, target), "NVSHMEM put between non-P2P GPUs {src} and {target}");
        let base = self.cfg.shmem.put_latency_ns
            + if matches!(self.topo.route(src, target), Route::Switched) {
                self.cfg.shmem.switch_hop_ns
            } else {
                0
            };
        let base = self.congested(base);
        let t = self.transfer(src, target, bytes.max(32), now);
        t.after(base)
    }

    fn shmem_base_latency(&self, a: GpuId, b: GpuId) -> u64 {
        self.cfg.shmem.get_latency_ns
            + if matches!(self.topo.route(a, b), Route::Switched) {
                self.cfg.shmem.switch_hop_ns
            } else {
                0
            }
    }

    /// Warp-parallel gather: `requester` gets `bytes_per_peer` from
    /// every peer concurrently (threads of the warp issue to different
    /// PEs, §IV-B), then reduces with `log2(peers+1)` shuffle steps.
    /// Returns the time the reduced value is available.
    pub fn shmem_gather_reduce(
        &mut self,
        requester: GpuId,
        peers: &[GpuId],
        bytes_per_peer: u64,
        now: SimTime,
    ) -> SimTime {
        let mut latest = now;
        for &p in peers {
            if p == requester {
                continue;
            }
            let t = self.shmem_get(requester, p, bytes_per_peer, now);
            latest = latest.max(t);
        }
        let lanes = (peers.len() + 1).next_power_of_two().trailing_zeros() as u64;
        latest.after(self.cfg.gpu.shuffle_ns * lanes.max(1))
    }

    /// Record `rounds` remote-poll iterations over `active_peers` peers
    /// of which `polled` were actually fetched (r.in_degree caching
    /// skips the rest). Traffic is accounted analytically — poll gets
    /// are 4-byte reads that would swamp the event calendar if
    /// simulated one by one.
    pub fn record_polling(&mut self, rounds: u64, active_peers: u64, polled: u64) {
        self.shmem_stats.poll_rounds += rounds;
        self.shmem_stats.poll_gets += polled;
        self.shmem_stats.poll_gets_saved += active_peers.saturating_mul(rounds) - polled;
        // attribute wire bytes to the dominant fabric class
        let bytes = polled * 4;
        match self.cfg.topology {
            crate::topology::TopologyKind::Dgx2 => self.switch_bytes += bytes,
            _ => self.nvlink_bytes += bytes,
        }
    }

    /// `nvshmem_fence` (naive-design ablation).
    pub fn shmem_fence(&mut self, now: SimTime) -> SimTime {
        self.shmem_stats.fences += 1;
        now.after(self.cfg.shmem.fence_ns)
    }

    /// `nvshmem_quiet` (naive-design ablation).
    pub fn shmem_quiet(&mut self, now: SimTime) -> SimTime {
        self.shmem_stats.quiets += 1;
        now.after(self.cfg.shmem.quiet_ns)
    }

    /// Remote-poll round period for the lock-wait loop of Alg. 3.
    pub fn remote_poll_period_ns(&self) -> u64 {
        self.cfg.shmem.get_latency_ns + self.cfg.shmem.poll_gap_ns
    }

    // ------------------------------------------------------------------
    // Fabric congestion from spin polling
    // ------------------------------------------------------------------

    /// A warp started spin-polling a remote location.
    #[inline]
    pub fn polling_started(&mut self) {
        self.polling_load += 1;
    }

    /// A warp stopped spin-polling.
    #[inline]
    pub fn polling_stopped(&mut self) {
        debug_assert!(self.polling_load > 0, "polling underflow");
        self.polling_load = self.polling_load.saturating_sub(1);
    }

    /// Current latency multiplier (×1000) for fine-grained remote
    /// operations: `1 + load / capacity`. With 2 DGX-1 GPUs all poll
    /// traffic shares one link; each added GPU adds links, so the
    /// factor falls — the §VI-D "active bandwidth per GPU" effect.
    #[inline]
    pub fn congestion_millis(&self) -> u64 {
        1_000 + 1_000 * self.polling_load / self.poll_capacity.max(1)
    }

    /// Stretch a fine-grained remote latency by the congestion factor.
    #[inline]
    pub fn congested(&self, latency_ns: u64) -> u64 {
        latency_ns * self.congestion_millis() / 1_000
    }

    // ------------------------------------------------------------------
    // Unified memory
    // ------------------------------------------------------------------

    /// Allocate a managed array of `bytes` (cudaMallocManaged).
    pub fn um_alloc(&mut self, bytes: u64) -> UmRange {
        self.um.alloc(bytes)
    }

    /// UM page granularity.
    pub fn um_page_bytes(&self) -> u64 {
        self.um.page_bytes()
    }

    /// System-wide atomic *write* by `gpu` into a UM page.
    ///
    /// Returns `(warp_free, durable)`: system atomics are
    /// fire-and-forget for the issuing warp, so `warp_free` is just the
    /// issue cost, while `durable` is when the value is globally
    /// observable. Access-counter migrations run asynchronously in the
    /// driver (charged to the fault handler and fabric) and gate
    /// durability, not the warp. Only first-touch faults from
    /// host-resident pages block the warp itself.
    pub fn um_write(&mut self, gpu: GpuId, page: usize, now: SimTime) -> (SimTime, SimTime) {
        let access = self.um.write(page, gpu, now);
        let issue = now.after(self.cfg.gpu.atomic_ns);
        let out = match access {
            WriteAccess::LocalHit => (issue, issue),
            WriteAccess::RemoteAtomic { holder } => {
                let lat = self.congested(self.um.remote_atomic_ns());
                (issue, self.transfer(gpu, holder, 32, now).after(lat))
            }
            WriteAccess::Fault { src: None } => {
                // genuine first-touch fault: the warp stalls
                let done = self.charge_fault(gpu, None, now);
                (done, done)
            }
            WriteAccess::Fault { src } => {
                // async access-counter migration / replica collapse
                let done = self.charge_fault(gpu, src, now);
                (issue, done)
            }
        };
        self.apply_um_charges();
        out
    }

    /// Read by `gpu` from a UM page; returns data-ready time.
    pub fn um_read(&mut self, gpu: GpuId, page: usize, now: SimTime) -> SimTime {
        let access = self.um.read(page, gpu, now);
        let done = match access {
            ReadAccess::LocalHit => now.after(self.cfg.gpu.atomic_ns),
            ReadAccess::RemoteRead { holder } => {
                let lat = self.congested(self.um.remote_atomic_ns());
                self.transfer(holder, gpu, 32, now).after(lat)
            }
            ReadAccess::MigrateFault { src } | ReadAccess::DuplicateFault { src } => {
                self.charge_fault(gpu, src, now)
            }
        };
        self.apply_um_charges();
        done
    }

    /// When a busy-waiting warp on `gpu` can observe a value written to
    /// `page` at `written_at`: one local poll period if a copy is (or
    /// bounces) local, otherwise a remote poll round (which may trip
    /// the access counter and fault).
    pub fn um_visible_at(&mut self, gpu: GpuId, page: usize, written_at: SimTime) -> SimTime {
        let poll = self.cfg.gpu.poll_ns;
        let probe = written_at.after(poll / 2 + self.jitter(poll));
        if self.um.has_local_copy(page, gpu, probe) {
            self.apply_um_charges();
            probe
        } else {
            // remote poll period: the spin loop reads over the fabric
            let period = self.um.remote_atomic_ns() + self.cfg.gpu.poll_ns;
            let probe = written_at.after(self.jitter(period + 1));
            self.um_read(gpu, page, probe)
        }
    }

    /// Spin-poll period of the unified-memory lock-wait loop: the read
    /// of `s.in_degree[i]` rides the fabric when the page is remote.
    pub fn um_poll_period_ns(&self) -> u64 {
        self.um.remote_atomic_ns() + self.cfg.gpu.poll_ns
    }

    /// Apply `rounds` of spin-poll pressure from `gpu` against a UM
    /// page; if the access counter migrates the page toward the poller,
    /// the fault is charged and its completion time returned.
    pub fn um_poll_pressure(
        &mut self,
        gpu: GpuId,
        page: usize,
        rounds: u32,
        now: SimTime,
    ) -> Option<SimTime> {
        let src = self.um.holder_of(page, now).filter(|&h| h != gpu);
        if self.um.poll_pressure(page, gpu, rounds, now) {
            let done = self.charge_fault(gpu, src, now);
            self.apply_um_charges();
            Some(done)
        } else {
            None
        }
    }

    /// Dense first-touch sweep of a managed range (the analysis-phase
    /// pattern): the driver coalesces contiguous faults, so the cost is
    /// one bulk transfer plus batched fault servicing rather than a
    /// per-page penalty.
    pub fn um_bulk_sweep(
        &mut self,
        gpu: GpuId,
        range: &crate::um::UmRange,
        now: SimTime,
    ) -> SimTime {
        let moved = self.um.bulk_sweep(range, gpu, now);
        self.apply_um_charges();
        if moved == 0 {
            return now.after(self.cfg.gpu.atomic_ns);
        }
        // batches of 64 pages share one fault service
        let batches = (moved as u64).div_ceil(64);
        let service = batches * self.um.fault_service_ns();
        let t = self.fault_handler[gpu].acquire(now, service);
        let bytes = moved as u64 * self.um.page_bytes();
        self.host_transfer(gpu, bytes, t)
    }

    fn charge_fault(&mut self, gpu: GpuId, src: Option<GpuId>, now: SimTime) -> SimTime {
        let service = self.fault_handler[gpu].acquire(now, self.um.fault_service_ns());
        match src {
            Some(s) if s != gpu => {
                let bytes = self.um.page_bytes();
                self.transfer(s, gpu, bytes, service)
            }
            _ => {
                // host-sourced page
                let bytes = self.um.page_bytes();
                self.host_transfer(gpu, bytes, service)
            }
        }
    }

    /// Drain deferred watcher-bounce charges into handler occupancy.
    fn apply_um_charges(&mut self) {
        for (gpu, at) in self.um.take_charges() {
            let service = self.um.fault_service_ns();
            self.fault_handler[gpu].acquire(at, service);
        }
    }

    /// Register a busy-waiting warp of `gpu` on `page`.
    pub fn um_watch(&mut self, gpu: GpuId, page: usize) {
        self.um.watch(page, gpu);
    }

    /// Deregister a busy-waiting warp.
    pub fn um_unwatch(&mut self, gpu: GpuId, page: usize) {
        self.um.unwatch(page, gpu);
    }

    // ------------------------------------------------------------------
    // Memory accounting (out-of-core)
    // ------------------------------------------------------------------

    /// Account `bytes` of device allocation on `gpu`.
    pub fn account_alloc(&mut self, gpu: GpuId, bytes: u64) {
        self.alloc_bytes[gpu] += bytes;
    }

    /// Fraction of `gpu`'s allocation that exceeds device capacity and
    /// must page over PCIe (0.0 when everything fits).
    pub fn spill_ratio(&self, gpu: GpuId) -> f64 {
        let cap = self.cfg.gpu.mem_bytes as f64;
        let used = self.alloc_bytes[gpu] as f64;
        if used <= cap {
            0.0
        } else {
            (used - cap) / used
        }
    }

    /// Whether the job's data fits in device memory on every GPU.
    pub fn fits_in_memory(&self) -> bool {
        (0..self.n_gpus()).all(|g| self.spill_ratio(g) == 0.0)
    }

    // ------------------------------------------------------------------
    // Statistics
    // ------------------------------------------------------------------

    /// Snapshot all counters.
    pub fn stats(&self) -> MachineStats {
        MachineStats {
            um_faults: self.um.faults().to_vec(),
            um_migrations: self.um.migrations(),
            um_duplications: self.um.duplications(),
            um_migrated_bytes: self.um.migrated_bytes(),
            um_remote_ops: self.um.remote_ops(),
            shmem: self.shmem_stats.clone(),
            nvlink_bytes: self.nvlink_bytes,
            switch_bytes: self.switch_bytes,
            pcie_bytes: self.pcie_bytes,
            kernel_launches: self.kernel_launches.clone(),
            exec_busy_ns: self.exec.iter().map(Resource::busy_ns).collect(),
            peak_warps: self.warp_slots.iter().map(Gate::peak_in_use).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MachineConfig;

    fn m4() -> Machine {
        Machine::new(MachineConfig::dgx1(4))
    }

    #[test]
    fn kernel_launches_serialize_per_gpu() {
        let mut m = m4();
        let t0 = SimTime::ZERO;
        let a = m.launch_kernel(0, t0);
        let b = m.launch_kernel(0, t0);
        let c = m.launch_kernel(1, t0);
        assert_eq!(a.as_ns(), 6_000);
        assert_eq!(b.as_ns(), 12_000, "same-GPU launches queue");
        assert_eq!(c.as_ns(), 6_000, "different GPU launches in parallel");
        assert_eq!(m.stats().kernel_launches, vec![2, 1, 0, 0]);
    }

    #[test]
    fn warp_slots_cap_at_spec() {
        let mut m = m4();
        let slots = m.config().gpu.warp_slots();
        for _ in 0..slots {
            assert!(m.try_warp_slot(0));
        }
        assert!(!m.try_warp_slot(0));
        m.enqueue_warp(0, 99);
        assert_eq!(m.release_warp(0), Some(99));
    }

    #[test]
    fn nvlink_transfer_uses_double_links() {
        let mut m = m4();
        // 0-3 is a double link: two concurrent transfers don't queue
        let t0 = SimTime::ZERO;
        let bytes = 25_000; // 1 us at 25 B/ns
        let a = m.transfer(0, 3, bytes, t0);
        let b = m.transfer(0, 3, bytes, t0);
        assert_eq!(a, b, "double link carries two transfers concurrently");
        // 0-1 is single: second transfer queues
        let c = m.transfer(0, 1, bytes, t0);
        let d = m.transfer(0, 1, bytes, t0);
        assert!(d > c);
    }

    #[test]
    fn shmem_get_rejects_non_p2p() {
        let mut m = Machine::new(MachineConfig::dgx1(8));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.shmem_get(0, 5, 4, SimTime::ZERO)
        }));
        assert!(r.is_err(), "0-5 is not P2P on DGX-1");
    }

    #[test]
    fn shmem_gather_is_parallel_across_peers() {
        let mut m = m4();
        let t = m.shmem_gather_reduce(0, &[0, 1, 2, 3], 8, SimTime::ZERO);
        // parallel gets: roughly one get latency + shuffles, far less
        // than 3 sequential gets
        assert!(t.as_ns() < 2 * m.config().shmem.get_latency_ns + 3_000, "{t}");
        assert_eq!(m.stats().shmem.gets, 3);
    }

    #[test]
    fn um_write_local_remote_and_fault() {
        let mut m = m4();
        let r = m.um_alloc(4096);
        // first touch faults from host and blocks the warp
        let (free1, t1) = m.um_write(0, r.first_page, SimTime::ZERO);
        assert!(t1.as_ns() >= 6_000, "first touch faults from host");
        assert_eq!(free1, t1, "first-touch fault blocks the warp");
        let (_, t2) = m.um_write(0, r.first_page, t1);
        assert_eq!(t2 - t1, m.config().gpu.atomic_ns, "second write is a local atomic");
        // cross-GPU writes under the threshold are remote atomics:
        // fire-and-forget for the warp, durable after the wire latency
        let (free3, t3) = m.um_write(1, r.first_page, t2);
        assert_eq!(free3 - t2, m.config().gpu.atomic_ns);
        assert!(t3 - t2 >= m.config().um.remote_atomic_ns);
        assert_eq!(m.stats().total_um_faults(), 1);
        // crossing the access counter migrates (asynchronously)
        let mut t = t3;
        for _ in 0..m.config().um.migrate_threshold {
            let (f, d) = m.um_write(1, r.first_page, t);
            assert!(f <= d);
            t = d;
        }
        assert_eq!(m.stats().total_um_faults(), 2, "threshold crossing faults");
    }

    #[test]
    fn um_bulk_sweep_batches_faults() {
        let mut m = m4();
        let r = m.um_alloc(100 * 4096);
        let t = m.um_bulk_sweep(0, &r, SimTime::ZERO);
        // 100 pages in ceil(100/64)=2 batches, not 100 serialized services
        assert!(t.as_ns() < 100 * m.config().um.fault_service_ns / 4);
        assert_eq!(m.stats().total_um_faults(), 100, "counts stay per page");
        let t2 = m.um_bulk_sweep(0, &r, t);
        assert_eq!(t2 - t, m.config().gpu.atomic_ns, "resident sweep is free");
    }

    #[test]
    fn um_visible_after_bounce_for_watcher() {
        // pre-Volta ablation config: watcher steal-back enabled
        let mut cfg = MachineConfig::dgx1(4);
        cfg.um.bounce_delay_ns = 25_000;
        let mut m = Machine::new(cfg);
        let r = m.um_alloc(4096);
        m.um_watch(1, r.first_page);
        // first touch migrates to GPU 0 and arms the watcher bounce
        let (_, w) = m.um_write(0, r.first_page, SimTime::ZERO);
        let vis = m.um_visible_at(1, r.first_page, w);
        assert!(vis > w);
        // after the bounce delay, the watcher holds a replica and the
        // bounce fault was counted
        assert!(m.um_visible_at(1, r.first_page, w.after(1_000_000)) > w);
        assert!(m.stats().um_faults[1] >= 1);
    }

    #[test]
    fn um_default_polls_remotely_without_bounce() {
        let mut m = m4();
        let r = m.um_alloc(4096);
        m.um_watch(1, r.first_page);
        let (_, w) = m.um_write(0, r.first_page, SimTime::ZERO);
        // waiter sees the value via a remote poll round, no fault
        let vis = m.um_visible_at(1, r.first_page, w);
        assert!(vis > w);
        assert_eq!(m.stats().um_faults[1], 0, "no steal-back on Volta default");
        assert!(m.stats().um_remote_ops >= 1);
    }

    #[test]
    fn polling_accounting_tracks_savings() {
        let mut m = m4();
        m.record_polling(10, 3, 12);
        let s = m.stats().shmem;
        assert_eq!(s.poll_rounds, 10);
        assert_eq!(s.poll_gets, 12);
        assert_eq!(s.poll_gets_saved, 18);
    }

    #[test]
    fn spill_ratio_reflects_capacity() {
        let mut m = m4();
        assert_eq!(m.spill_ratio(0), 0.0);
        let cap = m.config().gpu.mem_bytes;
        m.account_alloc(0, cap * 2);
        assert!((m.spill_ratio(0) - 0.5).abs() < 1e-12);
        assert!(!m.fits_in_memory());
    }

    #[test]
    fn dgx2_routes_via_ports() {
        let mut m = Machine::new(MachineConfig::dgx2(16));
        let t = m.transfer(0, 15, 120_000, SimTime::ZERO);
        assert!(t.as_ns() >= NVSWITCH_LAT_NS);
        assert_eq!(m.stats().switch_bytes, 120_000);
        // port serialization: a second concurrent transfer from GPU 0 queues
        let t2 = m.transfer(0, 14, 120_000, SimTime::ZERO);
        assert!(t2 > t);
    }

    #[test]
    fn host_staged_path_on_dgx1_far_pairs() {
        let mut m = Machine::new(MachineConfig::dgx1(8));
        let t = m.transfer(0, 5, 16_000, SimTime::ZERO);
        assert!(t.as_ns() >= 2 * PCIE_LAT_NS, "two PCIe hops");
        assert_eq!(m.stats().pcie_bytes, 16_000);
    }

    #[test]
    fn host_transfer_charges_pcie() {
        let mut m = m4();
        let t = m.host_transfer(2, 160_000, SimTime::ZERO);
        // 160 KB at 16 B/ns = 10 us + 9 us latency
        assert!(t.as_ns() >= 19_000);
        assert_eq!(m.stats().pcie_bytes, 160_000);
        // per-GPU PCIe links are independent
        let t2 = m.host_transfer(3, 160_000, SimTime::ZERO);
        assert_eq!(t, t2);
    }

    #[test]
    fn shmem_put_and_ordering_ops() {
        let mut m = m4();
        let p = m.shmem_put(0, 1, 8, SimTime::ZERO);
        assert!(p.as_ns() >= m.config().shmem.put_latency_ns);
        let f = m.shmem_fence(p);
        assert_eq!(f - p, m.config().shmem.fence_ns);
        let q = m.shmem_quiet(f);
        assert_eq!(q - f, m.config().shmem.quiet_ns);
        let s = m.stats().shmem;
        assert_eq!((s.puts, s.fences, s.quiets), (1, 1, 1));
    }

    #[test]
    fn congestion_rises_with_polling_load() {
        let mut m = m4();
        let base = m.congestion_millis();
        assert_eq!(base, 1_000, "no pollers, no congestion");
        for _ in 0..10_000 {
            m.polling_started();
        }
        let loaded = m.congestion_millis();
        assert!(loaded > base, "congestion factor must grow: {loaded}");
        let lat = m.congested(1_400);
        assert!(lat > 1_400);
        for _ in 0..10_000 {
            m.polling_stopped();
        }
        assert_eq!(m.congestion_millis(), 1_000);
    }

    #[test]
    fn dgx2_has_more_poll_capacity_than_dgx1_pairs() {
        // the Fig. 8/10b mechanism: switched fabrics absorb poll storms
        let mut d1 = Machine::new(MachineConfig::dgx1(2));
        let mut d2 = Machine::new(MachineConfig::dgx2(2));
        for _ in 0..2_000 {
            d1.polling_started();
            d2.polling_started();
        }
        assert!(d1.congestion_millis() > d2.congestion_millis());
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let mut a = m4();
        let mut b = m4();
        for bound in [1u64, 10, 1000] {
            for _ in 0..100 {
                let ja = a.jitter(bound);
                assert!(ja < bound);
                assert_eq!(ja, b.jitter(bound));
            }
        }
        assert_eq!(a.jitter(0), 0);
    }
}
