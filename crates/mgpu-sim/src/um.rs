//! CUDA Unified Memory model (§III of the paper).
//!
//! State machine per migration-granule ("page"):
//!
//! * Pages start **host-resident** (first-touch after
//!   `cudaMallocManaged` + `cudaMemset`); the first device access
//!   always faults the page in.
//! * A device access to a page resident *elsewhere* normally executes
//!   as a **remote operation over NVLink** (Volta supports native
//!   NVLink atomics) — no migration, just wire latency. The UVM
//!   access-counter heuristic tracks remote accesses per page; once
//!   they cross [`crate::spec::UmSpec::migrate_threshold`], the page
//!   **migrates** to the accessor (a page fault: driver service +
//!   page-sized transfer). Reads that cross the threshold *duplicate*
//!   the page read-only instead (Volta read duplication).
//! * Writes to a replicated page collapse the replicas and take
//!   exclusive ownership at the writer (a write fault).
//! * GPUs that busy-wait on a page (the lock-wait loop of Algorithm 2)
//!   register as **watchers**. After a *migration* lands at a writer,
//!   watchers pull the page straight back: a *bounce* is scheduled
//!   [`crate::spec::UmSpec::bounce_delay_ns`] later, replicating the
//!   page across the watchers, each paying a read fault. This is the
//!   ping-pong of Fig. 2 / Fig. 3, and it grows with the number of
//!   GPUs because more GPUs watch (and write) every hot page.
//!
//! The model is *lazy*: bounces are applied on the next access, so no
//! event queue is needed and the caller's determinism is preserved.
//! Fault-handler occupancy and page transfers are charged by
//! [`crate::machine::Machine`], which drains
//! [`UnifiedMemory::take_charges`] after every access.

use crate::spec::UmSpec;
use crate::GpuId;
use desim::SimTime;

/// Maximum GPUs a machine can have (DGX-2 = 16); watcher masks are u32.
pub const MAX_GPUS: usize = 16;

/// A contiguous managed allocation, identified by its page range.
#[derive(Debug, Clone, Copy)]
pub struct UmRange {
    /// First page index.
    pub first_page: usize,
    /// Number of pages.
    pub pages: usize,
    /// Bytes per page used when mapping offsets to pages.
    pub page_bytes: u64,
}

impl UmRange {
    /// Page holding `byte_offset` within this allocation.
    #[inline]
    pub fn page_of(&self, byte_offset: u64) -> usize {
        let p = (byte_offset / self.page_bytes) as usize;
        debug_assert!(p < self.pages, "offset beyond allocation");
        self.first_page + p
    }
}

/// Who holds a valid copy of a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residency {
    /// Valid only on the host.
    Host,
    /// Exclusively resident on one GPU.
    Single(GpuId),
    /// Read-only replicas on the GPUs in the mask (bit per GPU).
    Replicated(u32),
}

/// What a write access did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteAccess {
    /// Page exclusive at the writer — plain device atomic.
    LocalHit,
    /// System atomic executed remotely over the fabric against the
    /// holder (`None` would be host, but host-resident pages fault
    /// instead); no migration.
    RemoteAtomic {
        /// GPU currently holding the page.
        holder: GpuId,
    },
    /// Write fault: collapse replicas / migrate from `src`
    /// (`None` = host). Page becomes exclusive at the writer.
    Fault {
        /// Where the valid copy came from.
        src: Option<GpuId>,
    },
}

/// What a read access did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadAccess {
    /// A valid local copy existed.
    LocalHit,
    /// Remote read over the fabric against the holder; no migration.
    RemoteRead {
        /// GPU currently holding the page.
        holder: GpuId,
    },
    /// Read fault, page *migrated* from `src` (`None` = host).
    MigrateFault {
        /// Where the valid copy came from.
        src: Option<GpuId>,
    },
    /// Read fault, page *duplicated* read-only from `src`.
    DuplicateFault {
        /// Where the valid copy came from.
        src: Option<GpuId>,
    },
}

#[derive(Debug, Clone)]
struct PageState {
    residency: Residency,
    /// Per-GPU count of busy-waiting warps.
    watchers: [u32; MAX_GPUS],
    /// Pending bounce: at this instant the page replicates to watchers.
    bounce_at: SimTime,
    bounce_mask: u32,
    /// Remote accesses per GPU since the page last moved (UVM access
    /// counters are tracked per accessing processor).
    remote_accesses: [u16; MAX_GPUS],
    /// Distinct-GPU read faults since the last write (read duplication).
    read_streak: u32,
}

impl PageState {
    fn new() -> Self {
        PageState {
            residency: Residency::Host,
            watchers: [0; MAX_GPUS],
            bounce_at: SimTime::MAX,
            bounce_mask: 0,
            remote_accesses: [0; MAX_GPUS],
            read_streak: 0,
        }
    }

    fn watcher_mask(&self) -> u32 {
        let mut m = 0;
        for (g, &c) in self.watchers.iter().enumerate() {
            if c > 0 {
                m |= 1 << g;
            }
        }
        m
    }

    fn has_copy(&self, gpu: GpuId) -> bool {
        match self.residency {
            Residency::Host => false,
            Residency::Single(g) => g == gpu,
            Residency::Replicated(m) => m & (1 << gpu) != 0,
        }
    }

    /// A representative holder GPU for a remote access (`None` = host).
    fn holder(&self) -> Option<GpuId> {
        match self.residency {
            Residency::Host => None,
            Residency::Single(g) => Some(g),
            Residency::Replicated(m) => {
                debug_assert!(m != 0);
                Some(m.trailing_zeros() as GpuId)
            }
        }
    }
}

/// A deferred fault charge the machine must apply: `(gpu, at)`.
pub type Charge = (GpuId, SimTime);

/// The unified-memory subsystem of one machine.
#[derive(Debug)]
pub struct UnifiedMemory {
    spec: UmSpec,
    gpus: usize,
    pages: Vec<PageState>,
    /// Deferred watcher-bounce fault charges for the machine to apply.
    charges: Vec<Charge>,
    // --- counters ---
    faults: Vec<u64>,
    migrations: u64,
    duplications: u64,
    migrated_bytes: u64,
    remote_ops: u64,
}

impl UnifiedMemory {
    /// New UM subsystem for `gpus` devices.
    pub fn new(spec: UmSpec, gpus: usize) -> Self {
        assert!(gpus <= MAX_GPUS);
        UnifiedMemory {
            spec,
            gpus,
            pages: Vec::new(),
            charges: Vec::new(),
            faults: vec![0; gpus],
            migrations: 0,
            duplications: 0,
            migrated_bytes: 0,
            remote_ops: 0,
        }
    }

    /// Managed allocation of `bytes`, page-granular.
    pub fn alloc(&mut self, bytes: u64) -> UmRange {
        let pages = bytes.div_ceil(self.spec.page_bytes).max(1) as usize;
        let first_page = self.pages.len();
        self.pages.extend((0..pages).map(|_| PageState::new()));
        UmRange { first_page, pages, page_bytes: self.spec.page_bytes }
    }

    /// Page granularity in bytes.
    pub fn page_bytes(&self) -> u64 {
        self.spec.page_bytes
    }

    /// Total pages allocated.
    pub fn n_pages(&self) -> usize {
        self.pages.len()
    }

    /// Apply a pending watcher bounce if its time has come.
    fn apply_pending(&mut self, page: usize, now: SimTime) {
        let p = &mut self.pages[page];
        if p.bounce_at > now || p.bounce_mask == 0 {
            return;
        }
        let at = p.bounce_at;
        let mask = p.bounce_mask;
        p.bounce_at = SimTime::MAX;
        p.bounce_mask = 0;
        let holder_mask = match p.residency {
            Residency::Host => 0,
            Residency::Single(g) => 1 << g,
            Residency::Replicated(m) => m,
        };
        let new_mask = holder_mask | mask;
        let gained = new_mask & !holder_mask;
        p.residency = Residency::Replicated(new_mask);
        p.remote_accesses = [0; MAX_GPUS];
        let page_bytes = self.spec.page_bytes;
        for g in 0..self.gpus {
            if gained & (1 << g) != 0 {
                self.faults[g] += 1;
                self.migrations += 1;
                self.migrated_bytes += page_bytes;
                self.charges.push((g, at));
            }
        }
    }

    fn record_migration(&mut self, gpu: GpuId) {
        self.faults[gpu] += 1;
        self.migrations += 1;
        self.migrated_bytes += self.spec.page_bytes;
    }

    /// Schedule the watcher steal-back after a migration to a writer
    /// (disabled when `bounce_delay_ns == u64::MAX`, the Volta default).
    fn arm_bounce(&mut self, page: usize, writer: GpuId, now: SimTime) {
        if self.spec.bounce_delay_ns == u64::MAX {
            return;
        }
        let mask = self.pages[page].watcher_mask() & !(1 << writer);
        if mask != 0 {
            let p = &mut self.pages[page];
            p.bounce_mask |= mask;
            p.bounce_at = p.bounce_at.min(now.after(self.spec.bounce_delay_ns));
        }
    }

    /// A GPU issues a system-wide atomic write into `page` at `now`.
    pub fn write(&mut self, page: usize, gpu: GpuId, now: SimTime) -> WriteAccess {
        self.apply_pending(page, now);
        let p = &self.pages[page];
        match p.residency {
            Residency::Single(g) if g == gpu => {
                self.pages[page].read_streak = 0;
                WriteAccess::LocalHit
            }
            Residency::Host => {
                // first touch: fault the page in, exclusive at writer
                let p = &mut self.pages[page];
                p.residency = Residency::Single(gpu);
                p.remote_accesses = [0; MAX_GPUS];
                p.read_streak = 0;
                self.record_migration(gpu);
                self.arm_bounce(page, gpu, now);
                WriteAccess::Fault { src: None }
            }
            Residency::Replicated(mask) => {
                // write collapses replicas: write fault, exclusive here
                let src = if mask & !(1 << gpu) != 0 {
                    Some((mask & !(1 << gpu)).trailing_zeros() as GpuId)
                } else {
                    None
                };
                let p = &mut self.pages[page];
                p.residency = Residency::Single(gpu);
                p.remote_accesses = [0; MAX_GPUS];
                p.read_streak = 0;
                self.record_migration(gpu);
                self.arm_bounce(page, gpu, now);
                WriteAccess::Fault { src }
            }
            Residency::Single(holder) => {
                // remote atomic unless the access counter trips
                let p = &mut self.pages[page];
                p.remote_accesses[gpu] += 1;
                p.read_streak = 0;
                if u32::from(p.remote_accesses[gpu]) >= self.spec.migrate_threshold {
                    p.residency = Residency::Single(gpu);
                    p.remote_accesses = [0; MAX_GPUS];
                    self.record_migration(gpu);
                    self.arm_bounce(page, gpu, now);
                    WriteAccess::Fault { src: Some(holder) }
                } else {
                    self.remote_ops += 1;
                    WriteAccess::RemoteAtomic { holder }
                }
            }
        }
    }

    /// A GPU reads `page` at `now`.
    pub fn read(&mut self, page: usize, gpu: GpuId, now: SimTime) -> ReadAccess {
        self.apply_pending(page, now);
        let p = &self.pages[page];
        if p.has_copy(gpu) {
            return ReadAccess::LocalHit;
        }
        match p.residency {
            Residency::Host => {
                let p = &mut self.pages[page];
                p.residency = Residency::Single(gpu);
                p.remote_accesses = [0; MAX_GPUS];
                self.record_migration(gpu);
                ReadAccess::MigrateFault { src: None }
            }
            Residency::Single(_) | Residency::Replicated(_) => {
                let holder = p.holder().expect("device-resident page has a holder");
                let p = &mut self.pages[page];
                p.remote_accesses[gpu] += 1;
                if u32::from(p.remote_accesses[gpu]) >= self.spec.migrate_threshold {
                    p.remote_accesses = [0; MAX_GPUS];
                    p.read_streak += 1;
                    if p.read_streak >= self.spec.dup_threshold {
                        // duplicate read-only at the reader
                        let mut mask = match p.residency {
                            Residency::Single(h) => 1u32 << h,
                            Residency::Replicated(m) => m,
                            Residency::Host => 0,
                        };
                        mask |= 1 << gpu;
                        p.residency = Residency::Replicated(mask);
                        self.duplications += 1;
                        self.record_migration(gpu);
                        ReadAccess::DuplicateFault { src: Some(holder) }
                    } else {
                        p.residency = Residency::Single(gpu);
                        self.record_migration(gpu);
                        ReadAccess::MigrateFault { src: Some(holder) }
                    }
                } else {
                    self.remote_ops += 1;
                    ReadAccess::RemoteRead { holder }
                }
            }
        }
    }

    /// Register `rounds` spin-poll reads by `gpu` against `page` (the
    /// lock-wait loop of Algorithm 2). Polls are remote reads that feed
    /// the access counter, so sustained polling migrates the page
    /// toward the poller — after which the spin loop runs at local
    /// speed until a remote writer steals the page again. Returns
    /// `true` when this pressure migrated the page here.
    pub fn poll_pressure(&mut self, page: usize, gpu: GpuId, rounds: u32, now: SimTime) -> bool {
        if rounds == 0 {
            return false;
        }
        self.apply_pending(page, now);
        let p = &mut self.pages[page];
        if p.has_copy(gpu) {
            return false;
        }
        self.remote_ops += u64::from(rounds);
        let c = &mut p.remote_accesses[gpu];
        *c = c.saturating_add(rounds.min(u16::MAX as u32) as u16);
        if u32::from(*c) >= self.spec.migrate_threshold {
            p.remote_accesses = [0; MAX_GPUS];
            // polls are reads: the counter crossing *duplicates* the
            // page at the poller (other pollers keep their replicas),
            // so several waiting GPUs can spin locally at once; the
            // next write collapses the replicas.
            let mask = match p.residency {
                Residency::Host => 0,
                Residency::Single(h) => 1 << h,
                Residency::Replicated(m) => m,
            };
            p.residency = Residency::Replicated(mask | (1 << gpu));
            self.duplications += 1;
            self.record_migration(gpu);
            true
        } else {
            false
        }
    }

    /// Bulk first-touch sweep of a whole range by one GPU (the
    /// analysis-phase access pattern: dense, in address order, which the
    /// UVM driver coalesces into large migrations). Returns the number
    /// of pages that actually moved; counters are updated accordingly.
    pub fn bulk_sweep(&mut self, range: &UmRange, gpu: GpuId, now: SimTime) -> usize {
        let mut moved = 0;
        for p in range.first_page..range.first_page + range.pages {
            self.apply_pending(p, now);
            if !self.pages[p].has_copy(gpu) {
                let pg = &mut self.pages[p];
                pg.residency = Residency::Single(gpu);
                pg.remote_accesses = [0; MAX_GPUS];
                self.record_migration(gpu);
                moved += 1;
            }
        }
        moved
    }

    /// True when `gpu` holds a valid copy right now (after applying any
    /// due bounce) — the cheap-poll case of the lock-wait loop.
    pub fn has_local_copy(&mut self, page: usize, gpu: GpuId, now: SimTime) -> bool {
        self.apply_pending(page, now);
        self.pages[page].has_copy(gpu)
    }

    /// Current holder for a remote access (None = host-resident).
    pub fn holder_of(&mut self, page: usize, now: SimTime) -> Option<GpuId> {
        self.apply_pending(page, now);
        self.pages[page].holder()
    }

    /// Register a busy-waiting warp of `gpu` on `page`.
    pub fn watch(&mut self, page: usize, gpu: GpuId) {
        self.pages[page].watchers[gpu] += 1;
    }

    /// Remove one busy-waiting warp of `gpu` from `page`.
    pub fn unwatch(&mut self, page: usize, gpu: GpuId) {
        let w = &mut self.pages[page].watchers[gpu];
        debug_assert!(*w > 0, "unwatch without watch");
        *w = w.saturating_sub(1);
    }

    /// Drain deferred watcher-bounce fault charges.
    pub fn take_charges(&mut self) -> Vec<Charge> {
        std::mem::take(&mut self.charges)
    }

    /// Fault-service time per fault.
    pub fn fault_service_ns(&self) -> u64 {
        self.spec.fault_service_ns
    }

    /// Remote-atomic latency.
    pub fn remote_atomic_ns(&self) -> u64 {
        self.spec.remote_atomic_ns
    }

    /// Page-fault count per GPU.
    pub fn faults(&self) -> &[u64] {
        &self.faults
    }

    /// Total fault count across GPUs.
    pub fn total_faults(&self) -> u64 {
        self.faults.iter().sum()
    }

    /// Total page migrations (incl. duplications).
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Read-duplication events.
    pub fn duplications(&self) -> u64 {
        self.duplications
    }

    /// Bytes moved by migrations/duplications.
    pub fn migrated_bytes(&self) -> u64 {
        self.migrated_bytes
    }

    /// Remote (non-migrating) operations over the fabric.
    pub fn remote_ops(&self) -> u64 {
        self.remote_ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn um(gpus: usize) -> UnifiedMemory {
        UnifiedMemory::new(UmSpec::default(), gpus)
    }

    fn um_with(gpus: usize, f: impl FnOnce(&mut UmSpec)) -> UnifiedMemory {
        let mut spec = UmSpec::default();
        f(&mut spec);
        UnifiedMemory::new(spec, gpus)
    }

    #[test]
    fn alloc_is_page_granular() {
        let mut u = um(2);
        let r = u.alloc(1);
        assert_eq!(r.pages, 1);
        let r2 = u.alloc(5 * 4096);
        assert_eq!(r2.pages, 5);
        assert_eq!(r2.first_page, 1);
        assert_eq!(u.n_pages(), 6);
        assert_eq!(r2.page_of(4096), 2);
    }

    #[test]
    fn first_write_faults_from_host_then_local() {
        let mut u = um(2);
        let r = u.alloc(4096);
        let w = u.write(r.first_page, 0, SimTime::ZERO);
        assert_eq!(w, WriteAccess::Fault { src: None });
        assert_eq!(u.faults()[0], 1);
        let w = u.write(r.first_page, 0, SimTime::from_ns(10));
        assert_eq!(w, WriteAccess::LocalHit);
        assert_eq!(u.faults()[0], 1);
    }

    #[test]
    fn cross_gpu_writes_are_remote_atomics_until_threshold() {
        let mut u = um_with(2, |s| s.migrate_threshold = 4);
        let r = u.alloc(4096);
        u.write(r.first_page, 0, SimTime::ZERO);
        for k in 0..3 {
            let w = u.write(r.first_page, 1, SimTime::from_ns(100 + k));
            assert_eq!(w, WriteAccess::RemoteAtomic { holder: 0 }, "op {k}");
        }
        // fourth remote access crosses the access-counter threshold
        let w = u.write(r.first_page, 1, SimTime::from_ns(200));
        assert_eq!(w, WriteAccess::Fault { src: Some(0) });
        assert_eq!(u.faults()[1], 1);
        assert_eq!(u.remote_ops(), 3);
    }

    #[test]
    fn reads_duplicate_after_repeated_pressure() {
        let mut u = um_with(4, |s| {
            s.migrate_threshold = 2;
            s.dup_threshold = 2;
        });
        let r = u.alloc(4096);
        u.write(r.first_page, 0, SimTime::ZERO);
        // first threshold crossing migrates
        assert!(matches!(
            u.read(r.first_page, 1, SimTime::from_ns(1)),
            ReadAccess::RemoteRead { .. }
        ));
        assert!(matches!(
            u.read(r.first_page, 1, SimTime::from_ns(2)),
            ReadAccess::MigrateFault { src: Some(0) }
        ));
        // second crossing duplicates
        assert!(matches!(
            u.read(r.first_page, 2, SimTime::from_ns(3)),
            ReadAccess::RemoteRead { .. }
        ));
        assert!(matches!(
            u.read(r.first_page, 2, SimTime::from_ns(4)),
            ReadAccess::DuplicateFault { .. }
        ));
        assert!(u.has_local_copy(r.first_page, 1, SimTime::from_ns(5)));
        assert!(u.has_local_copy(r.first_page, 2, SimTime::from_ns(5)));
        assert_eq!(u.duplications(), 1);
    }

    #[test]
    fn write_collapses_replicas() {
        let mut u = um_with(4, |s| {
            s.migrate_threshold = 1;
            s.dup_threshold = 1;
        });
        let r = u.alloc(4096);
        u.write(r.first_page, 0, SimTime::ZERO);
        u.read(r.first_page, 1, SimTime::from_ns(10)); // duplicates at threshold 1
        assert!(u.has_local_copy(r.first_page, 1, SimTime::from_ns(11)));
        let w = u.write(r.first_page, 3, SimTime::from_ns(30));
        assert!(matches!(w, WriteAccess::Fault { src: Some(_) }));
        assert!(u.has_local_copy(r.first_page, 3, SimTime::from_ns(40)));
        assert!(!u.has_local_copy(r.first_page, 1, SimTime::from_ns(40)));
    }

    #[test]
    fn watcher_bounce_steals_page_after_migration() {
        let mut u = um_with(2, |s| {
            s.migrate_threshold = 1;
            s.bounce_delay_ns = 25_000;
        });
        let r = u.alloc(4096);
        let page = r.first_page;
        u.watch(page, 1);
        u.write(page, 0, SimTime::ZERO); // host fault -> exclusive at 0, bounce armed
        assert!(u.has_local_copy(page, 0, SimTime::from_ns(100)));
        assert!(!u.has_local_copy(page, 1, SimTime::from_ns(100)));
        let late = SimTime::from_ns(100_000);
        assert!(u.has_local_copy(page, 1, late), "watcher stole a replica");
        assert_eq!(u.faults()[1], 1);
        let charges = u.take_charges();
        assert_eq!(charges.len(), 1);
        assert_eq!(charges[0].0, 1);
        assert!(u.take_charges().is_empty(), "charges drain once");
    }

    #[test]
    fn unwatch_stops_bounces() {
        let mut u = um_with(2, |s| s.bounce_delay_ns = 25_000);
        let r = u.alloc(4096);
        u.watch(r.first_page, 1);
        u.unwatch(r.first_page, 1);
        u.write(r.first_page, 0, SimTime::ZERO);
        assert!(u.has_local_copy(r.first_page, 0, SimTime::from_ns(1_000_000)));
        assert_eq!(u.faults()[1], 0);
    }

    #[test]
    fn bulk_sweep_touches_every_page_once() {
        let mut u = um(2);
        let r = u.alloc(10 * 4096);
        let moved = u.bulk_sweep(&r, 0, SimTime::ZERO);
        assert_eq!(moved, 10);
        assert_eq!(u.faults()[0], 10);
        // second sweep by the same GPU is free
        assert_eq!(u.bulk_sweep(&r, 0, SimTime::from_ns(1)), 0);
        // sweep by the other GPU steals everything
        assert_eq!(u.bulk_sweep(&r, 1, SimTime::from_ns(2)), 10);
    }

    #[test]
    fn more_watchers_mean_more_faults() {
        // the Fig. 3a mechanism: fault count grows with GPU count
        let mut totals = Vec::new();
        for gpus in [2usize, 4, 8] {
            let mut u = um_with(gpus, |s| {
                s.migrate_threshold = 1;
                s.bounce_delay_ns = 25_000;
            });
            let r = u.alloc(4096);
            let page = r.first_page;
            for g in 1..gpus {
                u.watch(page, g);
            }
            let mut t = 0u64;
            for _ in 0..100 {
                u.write(page, 0, SimTime::from_ns(t));
                t += 100_000; // beyond bounce delay: full ping-pong each round
            }
            let _ = u.has_local_copy(page, 0, SimTime::from_ns(t + 1_000_000));
            totals.push(u.total_faults());
        }
        assert!(totals[0] < totals[1] && totals[1] < totals[2], "{totals:?}");
    }

    #[test]
    fn holder_is_tracked() {
        let mut u = um(3);
        let r = u.alloc(4096);
        assert_eq!(u.holder_of(r.first_page, SimTime::ZERO), None);
        u.write(r.first_page, 2, SimTime::ZERO);
        assert_eq!(u.holder_of(r.first_page, SimTime::from_ns(1)), Some(2));
    }
}
