//! NVSHMEM-style symmetric-heap accounting (§IV-A).
//!
//! The semantic content of the zero-copy design lives in the solver
//! executor (who reads/writes which heap copy when); what this module
//! owns is the *operation ledger*: one-sided gets/puts, local atomics
//! on the symmetric heap, remote-poll rounds of the lock-wait loop, and
//! the fence/quiet ordering operations that the naive Get-Update-Put
//! design would need (kept for the ablation experiment E9/E10).

/// Operation counters for the PGAS layer.
#[derive(Debug, Clone, Default)]
pub struct ShmemStats {
    /// One-sided get operations issued.
    pub gets: u64,
    /// Bytes fetched by gets.
    pub get_bytes: u64,
    /// One-sided put operations issued.
    pub puts: u64,
    /// Bytes written by puts.
    pub put_bytes: u64,
    /// Device atomics on the *local* symmetric heap copy (the
    /// zero-copy design's publish path, Alg. 3 lines 35–36).
    pub local_amos: u64,
    /// Remote poll rounds executed by lock-wait loops.
    pub poll_rounds: u64,
    /// Gets issued by poll rounds (≤ `poll_rounds × (PEs−1)`; the
    /// r.in_degree caching optimization skips satisfied peers).
    pub poll_gets: u64,
    /// Gets *saved* by the r.in_degree caching optimization.
    pub poll_gets_saved: u64,
    /// `nvshmem_fence` calls (naive design only).
    pub fences: u64,
    /// `nvshmem_quiet` calls (naive design only).
    pub quiets: u64,
}

impl ShmemStats {
    /// Total gets including poll-loop gets.
    pub fn total_gets(&self) -> u64 {
        self.gets + self.poll_gets
    }

    /// Total bytes moved one-sidedly (gets + puts + poll gets at 4 B).
    pub fn total_bytes(&self) -> u64 {
        self.get_bytes + self.put_bytes + self.poll_gets * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_combine_polls_and_data() {
        let s = ShmemStats {
            gets: 10,
            get_bytes: 80,
            puts: 2,
            put_bytes: 8,
            poll_gets: 5,
            ..Default::default()
        };
        assert_eq!(s.total_gets(), 15);
        assert_eq!(s.total_bytes(), 80 + 8 + 20);
    }
}
