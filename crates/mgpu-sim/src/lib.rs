//! # mgpu-sim — a discrete-event model of a multi-GPU HPC node
//!
//! This crate is the hardware substitute for the paper's NVIDIA
//! V100-DGX-1 and DGX-2 testbeds (see DESIGN.md §1). It models, at the
//! granularity that governs SpTRSV behaviour:
//!
//! * [`GpuSpec`] — a V100-class GPU: resident-warp slots, execution
//!   lanes, atomic/solve/poll costs, kernel-launch overhead, memory
//!   capacity.
//! * [`topology`] — the DGX-1 hybrid cube-mesh NVLink topology
//!   (including its double links and its non-P2P pairs, which is why
//!   the paper caps NVSHMEM at 4 GPUs on DGX-1), the DGX-2 NVSwitch
//!   all-to-all fabric, and PCIe host links.
//! * [`um`] — CUDA Unified Memory: page-granular residency, exclusive
//!   migration on write, read duplication for stable pages,
//!   bounce-back thrashing between writers and busy-waiting watchers,
//!   and a serialized per-GPU fault handler (§III of the paper).
//! * [`shmem`] — an NVSHMEM-style symmetric heap: one-sided get/put
//!   with per-byte link occupancy and latency, local atomics, and
//!   fence/quiet costs for the naive design the paper rejects (§IV-A).
//! * [`Machine`] — the assembled node: per-GPU resources, the routed
//!   interconnect, and the statistics every experiment reports.
//!
//! The machine is *passive*: it owns state, resources and cost
//! formulas, while control flow lives in the solver executor
//! (`sptrsv::exec`). All state updates are lazy, so no internal event
//! queue is needed and determinism follows from the caller's.

#![warn(missing_docs)]

pub mod machine;
pub mod shmem;
pub mod spec;
pub mod topology;
pub mod um;

pub use machine::{Machine, MachineStats};
pub use spec::{GpuSpec, MachineConfig, ShmemSpec, UmSpec};
pub use topology::{Topology, TopologyKind};

/// GPU identifier within a machine (0-based, also the NVSHMEM PE id).
pub type GpuId = usize;
