//! Property-style tests of the sparse-matrix substrate invariants.
//! Cases are drawn from a deterministic PCG32 (proptest is unavailable
//! offline); the seeded case set is identical on every run.

use desim::Pcg32;
use sparsemat::gen::{self, LevelSpec};
use sparsemat::levels::LevelSets;
use sparsemat::{CscMatrix, CsrMatrix, Triangle, TripletBuilder};

const CASES: u64 = 24;

/// A random valid triplet list for an n×n matrix.
fn triplets(rng: &mut Pcg32, n: usize) -> Vec<(usize, usize, f64)> {
    let count = rng.next_below((n * 4) as u32) as usize;
    (0..count)
        .map(|_| {
            let r = rng.next_below(n as u32) as usize;
            let c = rng.next_below(n as u32) as usize;
            let v = (rng.next_u64() % 2_000) as f64 / 100.0 - 10.0;
            (r, c, v)
        })
        .collect()
}

/// Builder output always validates, whatever the input order and
/// duplication pattern.
#[test]
fn builder_always_validates() {
    for case in 0..CASES {
        let mut rng = Pcg32::seed_from_u64(0x811D + case);
        let ts = triplets(&mut rng, 24);
        let mut b = TripletBuilder::new(24);
        for &(r, c, v) in &ts {
            b.push(r, c, v);
        }
        let m = b.build().unwrap();
        assert!(m.validate().is_ok());
        assert!(m.nnz() <= ts.len());
    }
}

/// Builder sums duplicates exactly like a naive map.
#[test]
fn builder_matches_naive_map() {
    for case in 0..CASES {
        let mut rng = Pcg32::seed_from_u64(0x3A9 + case);
        let ts = triplets(&mut rng, 16);
        let mut b = TripletBuilder::new(16);
        let mut map = std::collections::BTreeMap::new();
        for &(r, c, v) in &ts {
            b.push(r, c, v);
            *map.entry((r, c)).or_insert(0.0) += v;
        }
        let m = b.build().unwrap();
        for (&(r, c), &v) in &map {
            let got = m.get(r, c).unwrap_or(0.0);
            assert!((got - v).abs() < 1e-12, "({r},{c}): {got} vs {v}");
        }
    }
}

/// Transpose is an involution and preserves nnz.
#[test]
fn transpose_involution() {
    for case in 0..CASES {
        let mut rng = Pcg32::seed_from_u64(0x7A0 + case);
        let ts = triplets(&mut rng, 20);
        let mut b = TripletBuilder::new(20);
        for &(r, c, v) in &ts {
            b.push(r, c, v);
        }
        let m = b.build().unwrap();
        let tt = m.transpose().transpose();
        assert_eq!(m, tt);
    }
}

/// CSR round-trips through CSC without loss.
#[test]
fn csr_roundtrip() {
    for case in 0..CASES {
        let mut rng = Pcg32::seed_from_u64(0xC5A + case);
        let ts = triplets(&mut rng, 20);
        let mut b = TripletBuilder::new(20);
        for &(r, c, v) in &ts {
            b.push(r, c, v);
        }
        let m = b.build().unwrap();
        assert_eq!(CsrMatrix::from_csc(&m).to_csc(), m);
    }
}

/// matvec distributes over transpose: (A x) . y == x . (Aᵀ y).
#[test]
fn matvec_transpose_adjoint() {
    for case in 0..CASES {
        let mut rng = Pcg32::seed_from_u64(0xADD + case);
        let ts = triplets(&mut rng, 12);
        let mut b = TripletBuilder::new(12);
        for &(r, c, v) in &ts {
            b.push(r, c, v);
        }
        let m = b.build().unwrap();
        let x: Vec<f64> = (0..12).map(|i| (i as f64 * 0.7).sin()).collect();
        let y: Vec<f64> = (0..12).map(|i| (i as f64 * 1.3).cos()).collect();
        let ax = m.matvec(&x);
        let aty = m.transpose().matvec(&y);
        let lhs: f64 = ax.iter().zip(&y).map(|(a, b)| a * b).sum();
        let rhs: f64 = x.iter().zip(&aty).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-8 * (1.0 + lhs.abs()));
    }
}

/// The level-structured generator hits its exact level count for
/// arbitrary shapes, and the result is a solvable lower factor.
#[test]
fn generator_hits_exact_levels() {
    for case in 0..CASES {
        let mut rng = Pcg32::seed_from_u64(0x6E4 + case);
        let n = 10 + rng.next_below(390) as usize;
        let levels = (1 + rng.next_below(n as u32) as usize).clamp(1, n);
        let dep = 1.2 + (rng.next_below(480) as f64) / 100.0;
        let spec = LevelSpec {
            n,
            levels,
            nnz_target: (n as f64 * dep) as usize,
            locality: 0.7,
            window_frac: 0.05,
            seed: rng.next_u64(),
        };
        let m = gen::level_structured(&spec);
        assert!(m.validate_triangular(Triangle::Lower).is_ok());
        let ls = LevelSets::analyze(&m, Triangle::Lower);
        assert_eq!(ls.n_levels(), levels);
    }
}

/// Level assignment is consistent: every dependency sits in a strictly
/// lower level, and the flat level layout partitions 0..n.
#[test]
fn levels_respect_dependencies() {
    for case in 0..CASES {
        let mut rng = Pcg32::seed_from_u64(0x1E5 + case);
        let n = 10 + rng.next_below(290) as usize;
        let m = gen::level_structured(&LevelSpec::new(n, (n / 7).max(1), n * 3, rng.next_u64()));
        let ls = LevelSets::analyze(&m, Triangle::Lower);
        for j in 0..n {
            for (r, _) in m.col(j) {
                let r = r as usize;
                if r > j {
                    assert!(ls.level_of[r] > ls.level_of[j]);
                }
            }
        }
        // levels partition 0..n
        let total: usize = ls.iter_levels().map(<[u32]>::len).sum();
        assert_eq!(total, n);
        let mut seen = vec![false; n];
        for level in ls.iter_levels() {
            for &c in level {
                assert!(!seen[c as usize], "component {c} in two levels");
                seen[c as usize] = true;
            }
        }
    }
}

/// The chain partition is well-formed for every corpus entry (all 16
/// Table-I analogs plus the deep/narrow chain-fusion entry) × both
/// triangles × a spread of width thresholds: `chain_ptr` starts at 0,
/// is strictly increasing and ends at `n_levels` (so the chains cover
/// every level exactly once), no level inside a fused chain exceeds
/// the width threshold, and every unfused chain is a single level
/// wider than the threshold.
#[test]
fn chain_partition_is_well_formed_across_corpus() {
    let mut entries: Vec<(&'static str, sparsemat::CscMatrix)> =
        sparsemat::corpus::corpus_scaled(2_000, 40_000)
            .into_iter()
            .map(|e| (e.name, e.matrix))
            .collect();
    entries
        .push((sparsemat::corpus::DEEP_NARROW_NAME, sparsemat::corpus::deep_narrow_entry().matrix));
    for (name, lower) in &entries {
        let upper = lower.transpose();
        for (m, tri) in [(lower, Triangle::Lower), (&upper, Triangle::Upper)] {
            let ls = LevelSets::analyze(m, tri);
            for threshold in [0usize, 1, 4, 64, 1 << 20] {
                let tag = format!("{name}/{}/t={threshold}", tri.name());
                let ch = ls.chains(threshold);
                let ptr = ch.chain_ptr();
                assert_eq!(ptr[0], 0, "{tag}: chain_ptr must start at 0");
                assert!(
                    ptr.windows(2).all(|w| w[0] < w[1]),
                    "{tag}: chain_ptr must be strictly increasing"
                );
                assert_eq!(
                    *ptr.last().unwrap() as usize,
                    ls.n_levels(),
                    "{tag}: chains must cover every level exactly once"
                );
                let mut fused_levels = 0usize;
                for k in 0..ch.n_chains() {
                    for l in ch.chain(k) {
                        let width = ls.level(l).len();
                        if ch.is_fused(k) {
                            fused_levels += 1;
                            assert!(
                                width <= threshold,
                                "{tag}: fused level {l} width {width} above threshold"
                            );
                        } else {
                            assert!(
                                width > threshold,
                                "{tag}: unfused level {l} width {width} within threshold"
                            );
                            assert_eq!(
                                ch.chain(k).len(),
                                1,
                                "{tag}: wide chains must be singletons"
                            );
                        }
                    }
                }
                assert_eq!(fused_levels, ch.fused_levels(), "{tag}: fused-level accounting");
            }
        }
    }
}

/// in_degrees equals the per-row count of strictly-lower entries.
#[test]
fn in_degrees_match_structure() {
    for case in 0..CASES {
        let mut rng = Pcg32::seed_from_u64(0xDE6 + case);
        let n = 5 + rng.next_below(195) as usize;
        let m = gen::banded_lower(n, 8, 3.0, rng.next_u64());
        let deg = m.in_degrees(Triangle::Lower);
        let mut expect = vec![0u32; n];
        for j in 0..n {
            for (r, _) in m.col(j) {
                if (r as usize) > j {
                    expect[r as usize] += 1;
                }
            }
        }
        assert_eq!(deg, expect);
    }
}

/// Matrix Market round-trip is lossless for arbitrary matrices.
#[test]
fn matrix_market_roundtrip() {
    for case in 0..CASES {
        let mut rng = Pcg32::seed_from_u64(0x330 + case);
        let ts = triplets(&mut rng, 15);
        let mut b = TripletBuilder::new(15);
        for &(r, c, v) in &ts {
            b.push(r, c, v);
        }
        let m = b.build().unwrap();
        let mut buf = Vec::new();
        sparsemat::io::write_matrix_market(&m, &mut buf).unwrap();
        let back = sparsemat::io::read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(back, m);
    }
}

/// triangular_part output is always a solvable factor of the requested
/// orientation.
#[test]
fn triangular_part_is_solvable() {
    for case in 0..CASES {
        let mut rng = Pcg32::seed_from_u64(0x791 + case);
        let ts = triplets(&mut rng, 18);
        let mut b = TripletBuilder::new(18);
        for &(r, c, v) in &ts {
            b.push(r, c, v);
        }
        let m = b.build().unwrap();
        for tri in [Triangle::Lower, Triangle::Upper] {
            let t = m.triangular_part(tri, 1.0);
            assert!(t.validate_triangular(tri).is_ok());
        }
    }
}

/// ILU(0) on random diagonally-dominant grids stays within pattern and
/// produces solvable factors.
#[test]
fn ilu0_factors_random_grids() {
    for (nx, ny) in [(5usize, 7usize), (12, 4), (9, 9)] {
        let a = gen::grid_laplacian(nx, ny);
        let f = sparsemat::factor::ilu0(&a, 1e-8).unwrap();
        f.l.validate_triangular(Triangle::Lower).unwrap();
        f.u.validate_triangular(Triangle::Upper).unwrap();
        let _ = CscMatrix::identity(nx * ny); // exercise identity too
    }
}
