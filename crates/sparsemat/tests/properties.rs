//! Property-based tests of the sparse-matrix substrate invariants.

use proptest::prelude::*;
use sparsemat::gen::{self, LevelSpec};
use sparsemat::levels::LevelSets;
use sparsemat::{CscMatrix, CsrMatrix, Triangle, TripletBuilder};

/// Strategy: a random valid triplet list for an n×n matrix.
fn triplets(n: usize) -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    prop::collection::vec(
        (0..n, 0..n, -10.0f64..10.0),
        0..n * 4,
    )
}

proptest! {
    /// Builder output always validates, whatever the input order and
    /// duplication pattern.
    #[test]
    fn builder_always_validates(ts in triplets(24)) {
        let mut b = TripletBuilder::new(24);
        for &(r, c, v) in &ts {
            b.push(r, c, v);
        }
        let m = b.build().unwrap();
        prop_assert!(m.validate().is_ok());
        prop_assert!(m.nnz() <= ts.len());
    }

    /// Builder sums duplicates exactly like a naive map.
    #[test]
    fn builder_matches_naive_map(ts in triplets(16)) {
        let mut b = TripletBuilder::new(16);
        let mut map = std::collections::BTreeMap::new();
        for &(r, c, v) in &ts {
            b.push(r, c, v);
            *map.entry((r, c)).or_insert(0.0) += v;
        }
        let m = b.build().unwrap();
        for (&(r, c), &v) in &map {
            let got = m.get(r, c).unwrap_or(0.0);
            prop_assert!((got - v).abs() < 1e-12, "({r},{c}): {got} vs {v}");
        }
    }

    /// Transpose is an involution and preserves nnz.
    #[test]
    fn transpose_involution(ts in triplets(20)) {
        let mut b = TripletBuilder::new(20);
        for &(r, c, v) in &ts {
            b.push(r, c, v);
        }
        let m = b.build().unwrap();
        let tt = m.transpose().transpose();
        prop_assert_eq!(m, tt);
    }

    /// CSR round-trips through CSC without loss.
    #[test]
    fn csr_roundtrip(ts in triplets(20)) {
        let mut b = TripletBuilder::new(20);
        for &(r, c, v) in &ts {
            b.push(r, c, v);
        }
        let m = b.build().unwrap();
        prop_assert_eq!(CsrMatrix::from_csc(&m).to_csc(), m);
    }

    /// matvec distributes over transpose: (A x) . y == x . (Aᵀ y).
    #[test]
    fn matvec_transpose_adjoint(ts in triplets(12)) {
        let mut b = TripletBuilder::new(12);
        for &(r, c, v) in &ts {
            b.push(r, c, v);
        }
        let m = b.build().unwrap();
        let x: Vec<f64> = (0..12).map(|i| (i as f64 * 0.7).sin()).collect();
        let y: Vec<f64> = (0..12).map(|i| (i as f64 * 1.3).cos()).collect();
        let ax = m.matvec(&x);
        let aty = m.transpose().matvec(&y);
        let lhs: f64 = ax.iter().zip(&y).map(|(a, b)| a * b).sum();
        let rhs: f64 = x.iter().zip(&aty).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-8 * (1.0 + lhs.abs()));
    }

    /// The level-structured generator hits its exact level count for
    /// arbitrary shapes, and the result is a solvable lower factor.
    #[test]
    fn generator_hits_exact_levels(
        n in 10usize..400,
        levels_frac in 0.01f64..1.0,
        dep in 1.2f64..6.0,
        seed in any::<u64>(),
    ) {
        let levels = ((n as f64 * levels_frac) as usize).clamp(1, n);
        let spec = LevelSpec {
            n,
            levels,
            nnz_target: (n as f64 * dep) as usize,
            locality: 0.7,
            window_frac: 0.05,
            seed,
        };
        let m = gen::level_structured(&spec);
        prop_assert!(m.validate_triangular(Triangle::Lower).is_ok());
        let ls = LevelSets::analyze(&m, Triangle::Lower);
        prop_assert_eq!(ls.n_levels(), levels);
    }

    /// Level assignment is consistent: every dependency sits in a
    /// strictly lower level.
    #[test]
    fn levels_respect_dependencies(n in 10usize..300, seed in any::<u64>()) {
        let m = gen::level_structured(&LevelSpec::new(n, (n / 7).max(1), n * 3, seed));
        let ls = LevelSets::analyze(&m, Triangle::Lower);
        for j in 0..n {
            for (r, _) in m.col(j) {
                let r = r as usize;
                if r > j {
                    prop_assert!(ls.level_of[r] > ls.level_of[j]);
                }
            }
        }
        // sets partition 0..n
        let total: usize = ls.sets.iter().map(Vec::len).sum();
        prop_assert_eq!(total, n);
    }

    /// in_degrees equals the per-row count of strictly-lower entries.
    #[test]
    fn in_degrees_match_structure(n in 5usize..200, seed in any::<u64>()) {
        let m = gen::banded_lower(n, 8, 3.0, seed);
        let deg = m.in_degrees(Triangle::Lower);
        let mut expect = vec![0u32; n];
        for j in 0..n {
            for (r, _) in m.col(j) {
                if (r as usize) > j {
                    expect[r as usize] += 1;
                }
            }
        }
        prop_assert_eq!(deg, expect);
    }

    /// Matrix Market round-trip is lossless for arbitrary matrices.
    #[test]
    fn matrix_market_roundtrip(ts in triplets(15)) {
        let mut b = TripletBuilder::new(15);
        for &(r, c, v) in &ts {
            b.push(r, c, v);
        }
        let m = b.build().unwrap();
        let mut buf = Vec::new();
        sparsemat::io::write_matrix_market(&m, &mut buf).unwrap();
        let back = sparsemat::io::read_matrix_market(buf.as_slice()).unwrap();
        prop_assert_eq!(back, m);
    }

    /// triangular_part output is always a solvable factor of the
    /// requested orientation.
    #[test]
    fn triangular_part_is_solvable(ts in triplets(18)) {
        let mut b = TripletBuilder::new(18);
        for &(r, c, v) in &ts {
            b.push(r, c, v);
        }
        let m = b.build().unwrap();
        for tri in [Triangle::Lower, Triangle::Upper] {
            let t = m.triangular_part(tri, 1.0);
            prop_assert!(t.validate_triangular(tri).is_ok());
        }
    }
}

/// ILU(0) on random diagonally-dominant grids stays within pattern and
/// produces solvable factors. (Outside `proptest!` to keep the case
/// count small — factorization is the most expensive property here.)
#[test]
fn ilu0_factors_random_grids() {
    for (nx, ny) in [(5usize, 7usize), (12, 4), (9, 9)] {
        let a = gen::grid_laplacian(nx, ny);
        let f = sparsemat::factor::ilu0(&a, 1e-8).unwrap();
        f.l.validate_triangular(Triangle::Lower).unwrap();
        f.u.validate_triangular(Triangle::Upper).unwrap();
        let _ = CscMatrix::identity(nx * ny); // exercise identity too
    }
}
