//! Level-set analysis of triangular systems (§II-B, Fig. 1b).
//!
//! A *level set* partitions the solution components so that every
//! component in level `ℓ` depends only on components in levels
//! `< ℓ`; components within a level can be solved concurrently. The
//! level-set schedule is the basis of the cuSPARSE `csrsv2()` baseline,
//! and its summary statistics are exactly Table I's `#Levels` and
//! `Parallelism` columns.

use crate::csc::CscMatrix;
use crate::{Idx, Triangle};

/// The level-set decomposition of a triangular matrix.
#[derive(Debug, Clone)]
pub struct LevelSets {
    /// `level[i]` = level of component `i`.
    pub level_of: Vec<u32>,
    /// `sets[ℓ]` = components in level `ℓ`, ascending.
    pub sets: Vec<Vec<Idx>>,
}

impl LevelSets {
    /// Analyze a triangular matrix. For `Lower`, dependencies run from
    /// smaller to larger indices, so a single ascending pass suffices;
    /// for `Upper` a descending pass.
    ///
    /// Cost: O(n + nnz), the paper's "analysis phase" for the
    /// level-based solver.
    pub fn analyze(m: &CscMatrix, tri: Triangle) -> LevelSets {
        let n = m.n();
        let mut level_of = vec![0u32; n];
        match tri {
            Triangle::Lower => {
                for j in 0..n {
                    let lj = level_of[j];
                    for (r, _) in m.col(j) {
                        let r = r as usize;
                        if r > j {
                            level_of[r] = level_of[r].max(lj + 1);
                        }
                    }
                }
            }
            Triangle::Upper => {
                for j in (0..n).rev() {
                    let lj = level_of[j];
                    for (r, _) in m.col(j) {
                        let r = r as usize;
                        if r < j {
                            level_of[r] = level_of[r].max(lj + 1);
                        }
                    }
                }
            }
        }
        let n_levels = level_of.iter().copied().max().map_or(0, |m| m as usize + 1);
        let mut sets: Vec<Vec<Idx>> = vec![Vec::new(); n_levels];
        for (i, &l) in level_of.iter().enumerate() {
            sets[l as usize].push(i as Idx);
        }
        LevelSets { level_of, sets }
    }

    /// Number of levels (0 for an empty matrix).
    #[inline]
    pub fn n_levels(&self) -> usize {
        self.sets.len()
    }

    /// Size of the largest level.
    pub fn max_level_width(&self) -> usize {
        self.sets.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The paper's parallelism metric: `rows / levels` (average
    /// available concurrency per level).
    pub fn parallelism(&self) -> f64 {
        if self.sets.is_empty() {
            return 0.0;
        }
        self.level_of.len() as f64 / self.sets.len() as f64
    }
}

/// Summary structural statistics of a triangular system — one row of
/// Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriStats {
    /// Matrix dimension (Table I "#Rows").
    pub rows: usize,
    /// Stored entries (Table I "#Non-Zeros").
    pub nnz: usize,
    /// Level-set count (Table I "#Levels").
    pub levels: usize,
    /// `rows / levels` (Table I "Parallelism").
    pub parallelism: f64,
    /// `nnz / rows` (the dependency metric of §VI-D).
    pub dependency: f64,
}

impl TriStats {
    /// Compute the Table-I statistics for `m`.
    pub fn compute(m: &CscMatrix, tri: Triangle) -> TriStats {
        let ls = LevelSets::analyze(m, tri);
        let rows = m.n();
        let levels = ls.n_levels();
        TriStats {
            rows,
            nnz: m.nnz(),
            levels,
            parallelism: if levels == 0 { 0.0 } else { rows as f64 / levels as f64 },
            dependency: if rows == 0 { 0.0 } else { m.nnz() as f64 / rows as f64 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::TripletBuilder;

    /// Fig. 1's 8×8 example; expected level sets from Fig. 1b:
    /// {x0}, {x1,x3,x5}, {x2,x4}, {x6}, {x7}.
    fn fig1() -> CscMatrix {
        let mut b = TripletBuilder::new(8);
        for i in 0..8 {
            b.push(i, i, 2.0);
        }
        for &(r, c) in &[
            (1usize, 0usize),
            (3, 0),
            (5, 0),
            (7, 0),
            (2, 1),
            (4, 3),
            (7, 3),
            (6, 4),
            (7, 4),
            (6, 5),
            (7, 6),
        ] {
            b.push(r, c, -1.0);
        }
        b.build().unwrap()
    }

    #[test]
    fn fig1_levels_match_paper() {
        let ls = LevelSets::analyze(&fig1(), Triangle::Lower);
        // paper Fig 1b: 5 levels: {0}, {1,3,5}, {2,4}, {6}, {7}
        assert_eq!(ls.n_levels(), 5);
        assert_eq!(ls.sets[0], vec![0]);
        assert_eq!(ls.sets[1], vec![1, 3, 5]);
        assert_eq!(ls.sets[2], vec![2, 4]);
        assert_eq!(ls.sets[3], vec![6]);
        assert_eq!(ls.sets[4], vec![7]);
        assert!((ls.parallelism() - 8.0 / 5.0).abs() < 1e-12);
        assert_eq!(ls.max_level_width(), 3);
    }

    #[test]
    fn diagonal_matrix_has_one_level() {
        let m = CscMatrix::identity(16);
        let ls = LevelSets::analyze(&m, Triangle::Lower);
        assert_eq!(ls.n_levels(), 1);
        assert_eq!(ls.sets[0].len(), 16);
        assert_eq!(ls.parallelism(), 16.0);
    }

    #[test]
    fn chain_matrix_has_n_levels() {
        // bidiagonal: x_i depends on x_{i-1}
        let n = 10;
        let mut b = TripletBuilder::new(n);
        for i in 0..n {
            b.push(i, i, 1.0);
            if i > 0 {
                b.push(i, i - 1, -1.0);
            }
        }
        let ls = LevelSets::analyze(&b.build().unwrap(), Triangle::Lower);
        assert_eq!(ls.n_levels(), n);
        assert!(ls.sets.iter().all(|s| s.len() == 1));
        assert_eq!(ls.parallelism(), 1.0);
    }

    #[test]
    fn upper_triangle_levels_mirror_lower() {
        let l = fig1();
        let u = l.transpose();
        let lsl = LevelSets::analyze(&l, Triangle::Lower);
        let lsu = LevelSets::analyze(&u, Triangle::Upper);
        assert_eq!(lsl.n_levels(), lsu.n_levels());
        // component 0 is solved first in forward, last in backward
        assert_eq!(lsl.level_of[0], 0);
        assert_eq!(lsu.level_of[0] as usize, lsu.sets.len() - 1);
    }

    #[test]
    fn levels_are_consistent_with_dependencies() {
        let m = fig1();
        let ls = LevelSets::analyze(&m, Triangle::Lower);
        for j in 0..m.n() {
            for (r, _) in m.col(j) {
                let r = r as usize;
                if r > j {
                    assert!(
                        ls.level_of[r] > ls.level_of[j],
                        "dependent {} must be deeper than {}",
                        r,
                        j
                    );
                }
            }
        }
    }

    #[test]
    fn tristats_summary() {
        let s = TriStats::compute(&fig1(), Triangle::Lower);
        assert_eq!(s.rows, 8);
        assert_eq!(s.nnz, 19);
        assert_eq!(s.levels, 5);
        assert!((s.dependency - 19.0 / 8.0).abs() < 1e-12);
        assert!((s.parallelism - 1.6).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_stats() {
        let m = crate::build::TripletBuilder::new(0).build().unwrap();
        let s = TriStats::compute(&m, Triangle::Lower);
        assert_eq!(s.rows, 0);
        assert_eq!(s.levels, 0);
        assert_eq!(s.parallelism, 0.0);
    }
}
