//! Level-set analysis of triangular systems (§II-B, Fig. 1b).
//!
//! A *level set* partitions the solution components so that every
//! component in level `ℓ` depends only on components in levels
//! `< ℓ`; components within a level can be solved concurrently. The
//! level-set schedule is the basis of the cuSPARSE `csrsv2()` baseline,
//! and its summary statistics are exactly Table I's `#Levels` and
//! `Parallelism` columns.
//!
//! The decomposition is stored flat, CSR-style: `level_ptr[ℓ] ..
//! level_ptr[ℓ+1]` indexes the components of level `ℓ` inside one
//! contiguous `level_comps` array. One allocation instead of
//! `n_levels` nested `Vec`s keeps the solve-phase iteration
//! cache-linear — this structure is rebuilt never and walked on every
//! solve, so its layout is a hot-path concern.

use crate::csc::CscMatrix;
use crate::{Idx, Triangle};
use std::cell::Cell;
use std::sync::Arc;

thread_local! {
    /// Per-thread count of [`LevelSets::analyze`] invocations. The
    /// build-once/solve-many engine tests read this to prove that warm
    /// solves perform **zero** level-set construction. Thread-local so
    /// concurrently running tests (and batch worker threads) cannot
    /// perturb each other's measurements.
    static ANALYZE_INVOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// How many times [`LevelSets::analyze`] has run on this thread.
pub fn analyze_invocations() -> u64 {
    ANALYZE_INVOCATIONS.with(Cell::get)
}

/// The level-set decomposition of a triangular matrix, in a flat
/// `(level_ptr, level_comps)` layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelSets {
    /// `level_of[i]` = level of component `i`.
    pub level_of: Vec<u32>,
    /// CSR-style offsets: level `ℓ` occupies
    /// `level_comps[level_ptr[ℓ] as usize .. level_ptr[ℓ+1] as usize]`.
    level_ptr: Vec<u32>,
    /// Components grouped by level, ascending within each level.
    /// Reference-counted so consumers that need the flat order (the
    /// build-once/solve-many engine stores it as its replay schedule)
    /// can share this allocation instead of copying all `n` entries.
    level_comps: Arc<[Idx]>,
}

impl LevelSets {
    /// Analyze a triangular matrix. For `Lower`, dependencies run from
    /// smaller to larger indices, so a single ascending pass suffices;
    /// for `Upper` a descending pass.
    ///
    /// Cost: O(n + nnz), the paper's "analysis phase" for the
    /// level-based solver. The flat arrays are sized exactly by a
    /// counting pass — no per-level reallocation.
    pub fn analyze(m: &CscMatrix, tri: Triangle) -> LevelSets {
        ANALYZE_INVOCATIONS.with(|c| c.set(c.get() + 1));
        let n = m.n();
        let mut level_of = vec![0u32; n];
        match tri {
            Triangle::Lower => {
                for j in 0..n {
                    let lj = level_of[j];
                    for (r, _) in m.col(j) {
                        let r = r as usize;
                        if r > j {
                            level_of[r] = level_of[r].max(lj + 1);
                        }
                    }
                }
            }
            Triangle::Upper => {
                for j in (0..n).rev() {
                    let lj = level_of[j];
                    for (r, _) in m.col(j) {
                        let r = r as usize;
                        if r < j {
                            level_of[r] = level_of[r].max(lj + 1);
                        }
                    }
                }
            }
        }
        let n_levels = level_of.iter().copied().max().map_or(0, |m| m as usize + 1);

        // counting pass: level sizes → exclusive prefix sum → fill
        let mut level_ptr = vec![0u32; n_levels + 1];
        for &l in &level_of {
            level_ptr[l as usize + 1] += 1;
        }
        for l in 0..n_levels {
            level_ptr[l + 1] += level_ptr[l];
        }
        let mut cursor = level_ptr.clone();
        let mut level_comps = vec![0 as Idx; n];
        for (i, &l) in level_of.iter().enumerate() {
            // ascending index order within each level: i is visited
            // ascending and each level's cursor only moves forward
            level_comps[cursor[l as usize] as usize] = i as Idx;
            cursor[l as usize] += 1;
        }
        LevelSets { level_of, level_ptr, level_comps: level_comps.into() }
    }

    /// Number of levels (0 for an empty matrix).
    #[inline]
    pub fn n_levels(&self) -> usize {
        self.level_ptr.len() - 1
    }

    /// Components of level `l`, ascending.
    #[inline]
    pub fn level(&self, l: usize) -> &[Idx] {
        &self.level_comps[self.level_ptr[l] as usize..self.level_ptr[l + 1] as usize]
    }

    /// Iterate over the levels in order, each as a slice of components.
    pub fn iter_levels(&self) -> impl Iterator<Item = &[Idx]> {
        (0..self.n_levels()).map(move |l| self.level(l))
    }

    /// The CSR-style offsets array (`n_levels + 1` entries).
    #[inline]
    pub fn level_ptr(&self) -> &[u32] {
        &self.level_ptr
    }

    /// All components grouped by level (the flat data array).
    #[inline]
    pub fn level_comps(&self) -> &[Idx] {
        &self.level_comps
    }

    /// The flat component order behind a shared handle — a refcount
    /// bump, not an `n`-length copy. The solver engine holds this as
    /// its warm-solve replay schedule.
    #[inline]
    pub fn level_comps_shared(&self) -> Arc<[Idx]> {
        Arc::clone(&self.level_comps)
    }

    /// Size of the largest level.
    pub fn max_level_width(&self) -> usize {
        (0..self.n_levels())
            .map(|l| (self.level_ptr[l + 1] - self.level_ptr[l]) as usize)
            .max()
            .unwrap_or(0)
    }

    /// The paper's parallelism metric: `rows / levels` (average
    /// available concurrency per level).
    pub fn parallelism(&self) -> f64 {
        if self.n_levels() == 0 {
            return 0.0;
        }
        self.level_of.len() as f64 / self.n_levels() as f64
    }

    /// Cut every level into `shards` owner segments — the
    /// owner-computes decomposition a level-parallel solver executes
    /// (each shard's rows are solved, and their partial sums
    /// accumulated, by exactly one worker).
    ///
    /// The returned order is level-major. Within a level, components
    /// are grouped by `owner[c]` when an ownership map is given (stable
    /// — ascending index within one owner), mirroring the paper's
    /// owner-local update placement, and left in ascending index order
    /// otherwise (the map is then shared with [`LevelSets::level_comps`]
    /// — a refcount bump, not a copy). Each level is then sliced into
    /// `shards` near-equal contiguous segments, so per-level work
    /// balances across however many workers later execute the shards.
    ///
    /// Cost: O(n log n) worst case (the per-level grouping sort); runs
    /// once per solver-engine build.
    pub fn owner_segments(&self, owner: Option<&[usize]>, shards: usize) -> LevelSegments {
        let shards = shards.max(1);
        let n = self.level_of.len();
        let n_levels = self.n_levels();
        let order: Arc<[Idx]> = match owner {
            None => self.level_comps_shared(),
            Some(own) => {
                assert_eq!(own.len(), n, "ownership map must cover every component");
                let mut v = self.level_comps.to_vec();
                for l in 0..n_levels {
                    let (lo, hi) = (self.level_ptr[l] as usize, self.level_ptr[l + 1] as usize);
                    v[lo..hi].sort_by_key(|&c| own[c as usize]);
                }
                v.into()
            }
        };
        let mut seg_ptr = vec![0u32; n_levels * shards + 1];
        let mut shard_of = vec![0u32; n];
        for l in 0..n_levels {
            let lo = self.level_ptr[l] as usize;
            let width = self.level_ptr[l + 1] as usize - lo;
            for s in 0..shards {
                // near-equal contiguous slices; segment ends are
                // cumulative, so consecutive segments (and levels)
                // tile the order array exactly
                let hi = lo + width * (s + 1) / shards;
                seg_ptr[l * shards + s + 1] = hi as u32;
                for &c in &order[lo + width * s / shards..hi] {
                    shard_of[c as usize] = s as u32;
                }
            }
        }
        LevelSegments { shards, order, seg_ptr, shard_of }
    }

    /// Partition the levels into **chains**: maximal runs of
    /// consecutive levels whose width is at most `width_threshold`
    /// fuse into one chain, while each wider level stands alone as a
    /// singleton chain. A fused chain can be executed by a single
    /// worker in canonical level-major order with **no internal
    /// synchronization** (every dependency of a row in the chain that
    /// lives inside the chain was solved earlier in the same walk), so
    /// an executor only needs a barrier at chain boundaries — the
    /// `chain_ptr` device from level-fusing GPU solvers, applied here
    /// to deep/narrow factors where per-level barriers dominate.
    ///
    /// `width_threshold == 0` disables fusion (every width is ≥ 1):
    /// each level becomes its own unfused singleton chain and the
    /// partition describes exactly the classic one-barrier-per-level
    /// schedule.
    ///
    /// The result is well-formed by construction: `chain_ptr` starts
    /// at 0, is strictly increasing, and ends at `n_levels`, so the
    /// chains tile the level sequence exactly.
    pub fn chains(&self, width_threshold: usize) -> ChainPartition {
        let n_levels = self.n_levels();
        let mut chain_ptr = vec![0u32];
        let mut fused = Vec::new();
        // `open` marks a run of narrow levels not yet closed off; a
        // wide level (or the end of the level sequence) closes it.
        let mut open = false;
        for l in 0..n_levels {
            let width = (self.level_ptr[l + 1] - self.level_ptr[l]) as usize;
            if width > width_threshold {
                if open {
                    chain_ptr.push(l as u32);
                    fused.push(true);
                    open = false;
                }
                chain_ptr.push((l + 1) as u32);
                fused.push(false);
            } else {
                open = true;
            }
        }
        if open {
            chain_ptr.push(n_levels as u32);
            fused.push(true);
        }
        ChainPartition { chain_ptr, fused, width_threshold }
    }
}

/// The owner-computes decomposition produced by
/// [`LevelSets::owner_segments`]: a level-major component order plus a
/// `(level, shard)`-indexed segmentation of it.
#[derive(Debug, Clone)]
pub struct LevelSegments {
    /// Number of shards each level was cut into.
    pub shards: usize,
    /// All components, level-major (the canonical serial order of the
    /// segmentation): segment `(l, s)` occupies
    /// `order[seg_ptr[l * shards + s] as usize .. seg_ptr[l * shards + s + 1] as usize]`.
    pub order: Arc<[Idx]>,
    /// CSR-style segment offsets into [`LevelSegments::order`]
    /// (`n_levels * shards + 1` entries).
    pub seg_ptr: Vec<u32>,
    /// Owning shard per component: `shard_of[c]` is the shard whose
    /// segment (in `c`'s level) contains `c`.
    pub shard_of: Vec<u32>,
}

impl LevelSegments {
    /// Components of segment `(level, shard)`.
    #[inline]
    pub fn segment(&self, level: usize, shard: usize) -> &[Idx] {
        let k = level * self.shards + shard;
        &self.order[self.seg_ptr[k] as usize..self.seg_ptr[k + 1] as usize]
    }
}

/// The chain partition produced by [`LevelSets::chains`]: a CSR-style
/// grouping of consecutive levels into barrier-delimited chains.
///
/// Chain `k` spans levels `chain_ptr[k] .. chain_ptr[k + 1]`. A
/// *fused* chain contains only levels at or below the width threshold
/// and runs on one worker without internal barriers; an unfused chain
/// is always a single wide level that keeps the owner-computes
/// sharded execution. Note a lone narrow level between two wide ones
/// still forms a (single-level) fused chain — it runs on one worker,
/// which is the right call for a level too narrow to shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainPartition {
    /// CSR-style level offsets: chain `k` spans levels
    /// `chain_ptr[k] .. chain_ptr[k + 1]`. Strictly increasing from 0
    /// to `n_levels`.
    chain_ptr: Vec<u32>,
    /// `fused[k]` — chain `k` is a run of narrow levels executed by a
    /// single worker (`false` means a singleton wide level).
    fused: Vec<bool>,
    /// The width threshold the partition was built with: levels of
    /// width ≤ this fused, wider levels stayed singleton chains.
    width_threshold: usize,
}

impl ChainPartition {
    /// Number of chains (0 for an empty matrix).
    #[inline]
    pub fn n_chains(&self) -> usize {
        self.chain_ptr.len() - 1
    }

    /// The half-open level range of chain `k`.
    #[inline]
    pub fn chain(&self, k: usize) -> std::ops::Range<usize> {
        self.chain_ptr[k] as usize..self.chain_ptr[k + 1] as usize
    }

    /// Whether chain `k` is a fused run of narrow levels (single
    /// worker, no internal barriers) rather than a sharded wide level.
    #[inline]
    pub fn is_fused(&self, k: usize) -> bool {
        self.fused[k]
    }

    /// The CSR-style level offsets (`n_chains + 1` entries).
    #[inline]
    pub fn chain_ptr(&self) -> &[u32] {
        &self.chain_ptr
    }

    /// The width threshold the partition was built with.
    #[inline]
    pub fn width_threshold(&self) -> usize {
        self.width_threshold
    }

    /// Total number of levels living inside fused chains.
    pub fn fused_levels(&self) -> usize {
        (0..self.n_chains()).filter(|&k| self.fused[k]).map(|k| self.chain(k).len()).sum()
    }

    /// Barriers one parallel solve over this partition pays: a fused
    /// chain needs one trailing barrier (publish its rows to the other
    /// workers), a sharded wide level needs two (solve phase → update
    /// phase → publish), and the final chain drops its trailing
    /// barrier because the region join synchronizes. The unfused
    /// partition (`width_threshold == 0`) yields the classic
    /// `2·levels − 1`.
    pub fn barriers_per_solve(&self) -> usize {
        let per_chain: usize = self.fused.iter().map(|&f| if f { 1 } else { 2 }).sum();
        per_chain.saturating_sub(1)
    }
}

/// Summary structural statistics of a triangular system — one row of
/// Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriStats {
    /// Matrix dimension (Table I "#Rows").
    pub rows: usize,
    /// Stored entries (Table I "#Non-Zeros").
    pub nnz: usize,
    /// Level-set count (Table I "#Levels").
    pub levels: usize,
    /// `rows / levels` (Table I "Parallelism").
    pub parallelism: f64,
    /// `nnz / rows` (the dependency metric of §VI-D).
    pub dependency: f64,
}

impl TriStats {
    /// Compute the Table-I statistics for `m`.
    pub fn compute(m: &CscMatrix, tri: Triangle) -> TriStats {
        let ls = LevelSets::analyze(m, tri);
        let rows = m.n();
        let levels = ls.n_levels();
        TriStats {
            rows,
            nnz: m.nnz(),
            levels,
            parallelism: if levels == 0 { 0.0 } else { rows as f64 / levels as f64 },
            dependency: if rows == 0 { 0.0 } else { m.nnz() as f64 / rows as f64 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::TripletBuilder;

    /// Fig. 1's 8×8 example; expected level sets from Fig. 1b:
    /// {x0}, {x1,x3,x5}, {x2,x4}, {x6}, {x7}.
    fn fig1() -> CscMatrix {
        let mut b = TripletBuilder::new(8);
        for i in 0..8 {
            b.push(i, i, 2.0);
        }
        for &(r, c) in &[
            (1usize, 0usize),
            (3, 0),
            (5, 0),
            (7, 0),
            (2, 1),
            (4, 3),
            (7, 3),
            (6, 4),
            (7, 4),
            (6, 5),
            (7, 6),
        ] {
            b.push(r, c, -1.0);
        }
        b.build().unwrap()
    }

    #[test]
    fn fig1_levels_match_paper() {
        let ls = LevelSets::analyze(&fig1(), Triangle::Lower);
        // paper Fig 1b: 5 levels: {0}, {1,3,5}, {2,4}, {6}, {7}
        assert_eq!(ls.n_levels(), 5);
        assert_eq!(ls.level(0), &[0]);
        assert_eq!(ls.level(1), &[1, 3, 5]);
        assert_eq!(ls.level(2), &[2, 4]);
        assert_eq!(ls.level(3), &[6]);
        assert_eq!(ls.level(4), &[7]);
        assert!((ls.parallelism() - 8.0 / 5.0).abs() < 1e-12);
        assert_eq!(ls.max_level_width(), 3);
    }

    #[test]
    fn flat_layout_is_consistent() {
        let ls = LevelSets::analyze(&fig1(), Triangle::Lower);
        assert_eq!(ls.level_ptr(), &[0, 1, 4, 6, 7, 8]);
        assert_eq!(ls.level_comps(), &[0, 1, 3, 5, 2, 4, 6, 7]);
        let collected: Vec<&[Idx]> = ls.iter_levels().collect();
        assert_eq!(collected.len(), ls.n_levels());
        for (l, set) in collected.iter().enumerate() {
            assert_eq!(*set, ls.level(l));
        }
    }

    /// Regression: the flat layout reproduces the exact level contents
    /// of the old nested-`Vec` analysis on a banded matrix, where every
    /// level is known in closed form (band width 1 ⇒ level(i) = {i};
    /// wider bands ⇒ level count n - bw + ... structural recurrence
    /// checked against level_of directly).
    #[test]
    fn banded_matrix_levels_regression() {
        let m = crate::gen::banded_lower(64, 4, 3.0, 9);
        let ls = LevelSets::analyze(&m, Triangle::Lower);
        // reconstruct levels naively from level_of — the pre-flattening
        // representation — and compare content and order
        let n_levels = ls.n_levels();
        let mut naive: Vec<Vec<Idx>> = vec![Vec::new(); n_levels];
        for (i, &l) in ls.level_of.iter().enumerate() {
            naive[l as usize].push(i as Idx);
        }
        for (l, set) in naive.iter().enumerate() {
            assert_eq!(ls.level(l), set.as_slice(), "level {l}");
        }
        let total: usize = ls.iter_levels().map(<[Idx]>::len).sum();
        assert_eq!(total, 64);
    }

    #[test]
    fn diagonal_matrix_has_one_level() {
        let m = CscMatrix::identity(16);
        let ls = LevelSets::analyze(&m, Triangle::Lower);
        assert_eq!(ls.n_levels(), 1);
        assert_eq!(ls.level(0).len(), 16);
        assert_eq!(ls.parallelism(), 16.0);
    }

    #[test]
    fn chain_matrix_has_n_levels() {
        // bidiagonal: x_i depends on x_{i-1}
        let n = 10;
        let mut b = TripletBuilder::new(n);
        for i in 0..n {
            b.push(i, i, 1.0);
            if i > 0 {
                b.push(i, i - 1, -1.0);
            }
        }
        let ls = LevelSets::analyze(&b.build().unwrap(), Triangle::Lower);
        assert_eq!(ls.n_levels(), n);
        assert!(ls.iter_levels().all(|s| s.len() == 1));
        assert_eq!(ls.parallelism(), 1.0);
    }

    #[test]
    fn upper_triangle_levels_mirror_lower() {
        let l = fig1();
        let u = l.transpose();
        let lsl = LevelSets::analyze(&l, Triangle::Lower);
        let lsu = LevelSets::analyze(&u, Triangle::Upper);
        assert_eq!(lsl.n_levels(), lsu.n_levels());
        // component 0 is solved first in forward, last in backward
        assert_eq!(lsl.level_of[0], 0);
        assert_eq!(lsu.level_of[0] as usize, lsu.n_levels() - 1);
    }

    #[test]
    fn levels_are_consistent_with_dependencies() {
        let m = fig1();
        let ls = LevelSets::analyze(&m, Triangle::Lower);
        for j in 0..m.n() {
            for (r, _) in m.col(j) {
                let r = r as usize;
                if r > j {
                    assert!(
                        ls.level_of[r] > ls.level_of[j],
                        "dependent {} must be deeper than {}",
                        r,
                        j
                    );
                }
            }
        }
    }

    #[test]
    fn analyze_invocations_counter_advances() {
        let before = analyze_invocations();
        let _ = LevelSets::analyze(&fig1(), Triangle::Lower);
        assert!(analyze_invocations() > before);
    }

    #[test]
    fn tristats_summary() {
        let s = TriStats::compute(&fig1(), Triangle::Lower);
        assert_eq!(s.rows, 8);
        assert_eq!(s.nnz, 19);
        assert_eq!(s.levels, 5);
        assert!((s.dependency - 19.0 / 8.0).abs() < 1e-12);
        assert!((s.parallelism - 1.6).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_stats() {
        let m = crate::build::TripletBuilder::new(0).build().unwrap();
        let s = TriStats::compute(&m, Triangle::Lower);
        assert_eq!(s.rows, 0);
        assert_eq!(s.levels, 0);
        assert_eq!(s.parallelism, 0.0);
    }

    #[test]
    fn owner_segments_tile_every_level() {
        let m = crate::gen::banded_lower(97, 5, 3.0, 7);
        let ls = LevelSets::analyze(&m, Triangle::Lower);
        for shards in [1usize, 3, 8] {
            let segs = ls.owner_segments(None, shards);
            // without an ownership map the order is shared, not copied
            assert_eq!(segs.order.as_ref(), ls.level_comps());
            assert_eq!(segs.seg_ptr.len(), ls.n_levels() * shards + 1);
            for l in 0..ls.n_levels() {
                let mut rebuilt: Vec<Idx> = Vec::new();
                for s in 0..shards {
                    for &c in segs.segment(l, s) {
                        assert_eq!(segs.shard_of[c as usize], s as u32);
                        assert_eq!(ls.level_of[c as usize] as usize, l);
                        rebuilt.push(c);
                    }
                }
                assert_eq!(rebuilt.as_slice(), ls.level(l), "level {l} must tile exactly");
                // near-equal balance: segment sizes differ by at most 1
                let sizes: Vec<usize> = (0..shards).map(|s| segs.segment(l, s).len()).collect();
                let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(hi - lo <= 1, "level {l} shard sizes {sizes:?}");
            }
        }
    }

    #[test]
    fn owner_segments_group_by_owner_within_level() {
        let ls = LevelSets::analyze(&fig1(), Triangle::Lower);
        // level 1 is {1, 3, 5}; give 5 to owner 0 and 1, 3 to owner 1:
        // grouping must reorder the level to [5, 1, 3] (stable within
        // one owner)
        let mut owner = vec![0usize; 8];
        owner[1] = 1;
        owner[3] = 1;
        let segs = ls.owner_segments(Some(&owner), 2);
        let level1: Vec<Idx> = (0..2).flat_map(|s| segs.segment(1, s).to_vec()).collect();
        assert_eq!(level1, vec![5, 1, 3]);
        // every component still appears exactly once overall
        let mut seen = [false; 8];
        for &c in segs.order.iter() {
            assert!(!seen[c as usize]);
            seen[c as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn empty_matrix_owner_segments() {
        let m = crate::build::TripletBuilder::new(0).build().unwrap();
        let ls = LevelSets::analyze(&m, Triangle::Lower);
        let segs = ls.owner_segments(None, 4);
        assert_eq!(segs.order.len(), 0);
        assert_eq!(segs.seg_ptr, vec![0]);
    }

    /// Fig. 1's widths are 1, 3, 2, 1, 1: with threshold 1 the narrow
    /// singleton level 0 fuses alone, levels 1 and 2 stay wide
    /// singletons, and the trailing run {3, 4} fuses into one chain.
    #[test]
    fn fig1_chains_at_threshold_one() {
        let ls = LevelSets::analyze(&fig1(), Triangle::Lower);
        let ch = ls.chains(1);
        assert_eq!(ch.chain_ptr(), &[0, 1, 2, 3, 5]);
        assert_eq!(ch.n_chains(), 4);
        assert!(ch.is_fused(0) && !ch.is_fused(1) && !ch.is_fused(2) && ch.is_fused(3));
        assert_eq!(ch.chain(3), 3..5);
        assert_eq!(ch.fused_levels(), 3);
        assert_eq!(ch.width_threshold(), 1);
        // 1 + 2 + 2 + 1 barriers minus the dropped trailing one
        assert_eq!(ch.barriers_per_solve(), 5);
    }

    /// Threshold 0 disables fusion: every level is a singleton wide
    /// chain and the partition describes one barrier pair per level.
    #[test]
    fn threshold_zero_reproduces_per_level_schedule() {
        let ls = LevelSets::analyze(&fig1(), Triangle::Lower);
        let ch = ls.chains(0);
        assert_eq!(ch.n_chains(), ls.n_levels());
        assert!((0..ch.n_chains()).all(|k| !ch.is_fused(k) && ch.chain(k).len() == 1));
        assert_eq!(ch.fused_levels(), 0);
        assert_eq!(ch.barriers_per_solve(), 2 * ls.n_levels() - 1);
    }

    /// A pure dependency chain fuses into one barrier-free chain at
    /// any threshold ≥ 1; a diagonal matrix is one wide singleton.
    #[test]
    fn chain_and_diagonal_partitions() {
        let n = 10;
        let mut b = TripletBuilder::new(n);
        for i in 0..n {
            b.push(i, i, 1.0);
            if i > 0 {
                b.push(i, i - 1, -1.0);
            }
        }
        let ls = LevelSets::analyze(&b.build().unwrap(), Triangle::Lower);
        let ch = ls.chains(1);
        assert_eq!(ch.n_chains(), 1);
        assert!(ch.is_fused(0));
        assert_eq!(ch.chain(0), 0..n);
        assert_eq!(ch.barriers_per_solve(), 0);

        let diag = LevelSets::analyze(&CscMatrix::identity(16), Triangle::Lower);
        let ch = diag.chains(4);
        assert_eq!(ch.n_chains(), 1);
        assert!(!ch.is_fused(0));
        assert_eq!(ch.barriers_per_solve(), 1);
        // threshold at the full width fuses even the single wide level
        assert!(diag.chains(16).is_fused(0));
    }

    #[test]
    fn empty_matrix_has_no_chains() {
        let m = crate::build::TripletBuilder::new(0).build().unwrap();
        let ls = LevelSets::analyze(&m, Triangle::Lower);
        let ch = ls.chains(8);
        assert_eq!(ch.n_chains(), 0);
        assert_eq!(ch.chain_ptr(), &[0]);
        assert_eq!(ch.fused_levels(), 0);
        assert_eq!(ch.barriers_per_solve(), 0);
    }

    #[test]
    fn empty_matrix_flat_layout() {
        let m = crate::build::TripletBuilder::new(0).build().unwrap();
        let ls = LevelSets::analyze(&m, Triangle::Lower);
        assert_eq!(ls.n_levels(), 0);
        assert_eq!(ls.iter_levels().count(), 0);
        assert_eq!(ls.max_level_width(), 0);
    }
}
