//! Content-addressed identity for triangular factors.
//!
//! A serving fleet routes requests to cached solver engines, so it
//! needs a key that (a) is cheap to compute, (b) identifies a factor
//! by *content* rather than by pointer or client-chosen name, and (c)
//! distinguishes value refreshes of one sparsity pattern from genuinely
//! different structures. [`FactorFingerprint`] does exactly that:
//!
//! * the **structural hash** digests the dimension and the full
//!   sparsity pattern (`col_ptr` + `row_idx`), so two matrices with the
//!   same structure — the cache-hit case the paper's amortization
//!   argument (§II-B) is about — compare equal on
//!   [`FactorFingerprint::structure_hash`] regardless of their values;
//! * the **value hash** digests the stored numeric values, so "same
//!   pattern, new values" — the in-place refresh case — is detectable:
//!   a refreshed factor fingerprints equal on structure and unequal on
//!   values;
//! * the **value epoch** is a caller-managed counter bumped on every
//!   value refresh — the cheap identity a client can advance from
//!   metadata alone (structure + refresh count) without streaming
//!   `nnz` floats per request.
//!
//! The digest is a split-mix64 accumulation — not cryptographic, but
//! 64 bits of avalanche over every structural word, which is the same
//! collision regime as any hash-keyed in-process cache.

use crate::csc::CscMatrix;

/// One split-mix64 scramble step (Steele et al., the SplitMix64
/// finalizer): full avalanche per absorbed word.
fn mix(state: u64, word: u64) -> u64 {
    let mut z = state ^ word.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Content-derived identity of a triangular factor: a structural hash,
/// a value hash, and a caller-managed value epoch. See the
/// [module docs](self) for what each component distinguishes.
///
/// Ordering is lexicographic (structure, then values, then epoch) —
/// only so fingerprints can key ordered maps; the order itself is
/// meaningless.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FactorFingerprint {
    /// Split-mix digest of `(n, col_ptr, row_idx)`.
    pub structural: u64,
    /// Split-mix digest of the stored values' bit patterns.
    pub values: u64,
    /// Value-refresh counter: bump via [`FactorFingerprint::next_epoch`]
    /// whenever the factor's values change under a fixed structure, so
    /// caches keyed by fingerprint never serve stale numerics.
    pub epoch: u64,
}

impl FactorFingerprint {
    /// Fingerprint `m`'s sparsity structure and values at value epoch 0.
    ///
    /// Cost: one pass over `col_ptr`, `row_idx` and `values`
    /// (O(n + nnz) words) — orders of magnitude cheaper than the
    /// analysis it lets a cache skip.
    pub fn of(m: &CscMatrix) -> FactorFingerprint {
        let mut h = mix(0x5EED_F1D0_CAFE_F00D, m.n() as u64);
        for &p in m.col_ptr() {
            h = mix(h, p as u64);
        }
        // absorb row indices two per word: halves the scramble count
        // on the long array without weakening per-word avalanche
        let rows = m.row_idx();
        for pair in rows.chunks(2) {
            let word = match pair {
                [a, b] => u64::from(*a) | (u64::from(*b) << 32),
                [a] => u64::from(*a) | (1 << 63),
                _ => unreachable!("chunks(2) yields 1- or 2-element slices"),
            };
            h = mix(h, word);
        }
        let mut v = mix(0x0F1D_0F1D_5EED_5EED, m.nnz() as u64);
        for &x in m.values() {
            v = mix(v, x.to_bits());
        }
        FactorFingerprint { structural: h, values: v, epoch: 0 }
    }

    /// The structural component alone: equal for any two matrices with
    /// the same dimension and sparsity pattern, whatever their values —
    /// what a refresh path checks before rewriting numerics in place.
    #[inline]
    pub fn structure_hash(&self) -> u64 {
        self.structural
    }

    /// The value component alone: changes whenever any stored value's
    /// bit pattern changes — what makes "same pattern, new values"
    /// detectable.
    #[inline]
    pub fn values_hash(&self) -> u64 {
        self.values
    }

    /// Whether `other` fingerprints the same sparsity pattern
    /// (dimension + `col_ptr` + `row_idx`), regardless of values or
    /// epoch.
    #[inline]
    pub fn same_structure(&self, other: &FactorFingerprint) -> bool {
        self.structural == other.structural
    }

    /// This structure at an explicit value epoch.
    pub fn with_epoch(self, epoch: u64) -> FactorFingerprint {
        FactorFingerprint { epoch, ..self }
    }

    /// The next value epoch of this structure — what a client computes
    /// after refreshing the factor's values in place.
    pub fn next_epoch(self) -> FactorFingerprint {
        FactorFingerprint { epoch: self.epoch.wrapping_add(1), ..self }
    }
}

impl std::fmt::Display for FactorFingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}.{:016x}@{}", self.structural, self.values, self.epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    /// Regression for the all-or-nothing hash this module used to
    /// compute: a value refresh of one sparsity pattern must fingerprint
    /// equal on structure and unequal on values — otherwise "same
    /// pattern, new numerics" is indistinguishable from "same factor".
    #[test]
    fn refreshed_values_split_the_hash() {
        let a = gen::banded_lower(256, 6, 3.0, 11);
        let mut b = a.clone();
        for v in b.values_mut() {
            *v *= 1.5;
        }
        let fa = FactorFingerprint::of(&a);
        let fb = FactorFingerprint::of(&b);
        assert_eq!(fa.structure_hash(), fb.structure_hash());
        assert!(fa.same_structure(&fb));
        assert_ne!(fa.values_hash(), fb.values_hash());
        assert_ne!(fa, fb, "the full fingerprint must see the new values");
        // identical content still fingerprints identically
        assert_eq!(fa, FactorFingerprint::of(&a.clone()));
    }

    #[test]
    fn different_structures_diverge() {
        let a = FactorFingerprint::of(&gen::banded_lower(256, 6, 3.0, 11));
        let b = FactorFingerprint::of(&gen::banded_lower(256, 7, 3.0, 11));
        let c = FactorFingerprint::of(&gen::banded_lower(257, 6, 3.0, 11));
        assert_ne!(a.structural, b.structural, "bandwidth changes the pattern");
        assert_ne!(a.structural, c.structural, "dimension changes the pattern");
    }

    #[test]
    fn epoch_distinguishes_value_refreshes() {
        let m = gen::banded_lower(64, 3, 3.0, 5);
        let f0 = FactorFingerprint::of(&m);
        let f1 = f0.next_epoch();
        assert_eq!(f0.structural, f1.structural);
        assert_ne!(f0, f1);
        assert_eq!(f0.with_epoch(1), f1);
        assert_eq!(format!("{f1}"), format!("{:016x}.{:016x}@1", f0.structural, f0.values));
    }
}
