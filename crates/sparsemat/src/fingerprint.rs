//! Content-addressed identity for triangular factors.
//!
//! A serving fleet routes requests to cached solver engines, so it
//! needs a key that (a) is cheap to compute, (b) identifies a factor
//! by *content* rather than by pointer or client-chosen name, and (c)
//! distinguishes value refreshes of one sparsity pattern from genuinely
//! different structures. [`FactorFingerprint`] does exactly that:
//!
//! * the **structural hash** digests the dimension and the full
//!   sparsity pattern (`col_ptr` + `row_idx`), so two matrices with the
//!   same structure — the cache-hit case the paper's amortization
//!   argument (§II-B) is about — hash equal regardless of their values;
//! * the **value epoch** is a caller-managed counter bumped on every
//!   value refresh. Values are deliberately *not* hashed: a fingerprint
//!   must be reproducible from metadata a client holds (structure +
//!   refresh count) without streaming `nnz` floats per request, and a
//!   cache keyed on a value digest could never tell "same values" from
//!   "hash collision" anyway.
//!
//! The digest is a split-mix64 accumulation — not cryptographic, but
//! 64 bits of avalanche over every structural word, which is the same
//! collision regime as any hash-keyed in-process cache.

use crate::csc::CscMatrix;

/// One split-mix64 scramble step (Steele et al., the SplitMix64
/// finalizer): full avalanche per absorbed word.
fn mix(state: u64, word: u64) -> u64 {
    let mut z = state ^ word.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Content-derived identity of a triangular factor: structural hash
/// plus a caller-managed value epoch. See the [module docs](self) for
/// why values are not digested.
///
/// Ordering is lexicographic (structure, then epoch) — only so
/// fingerprints can key ordered maps; the order itself is meaningless.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FactorFingerprint {
    /// Split-mix digest of `(n, col_ptr, row_idx)`.
    pub structural: u64,
    /// Value-refresh counter: bump via [`FactorFingerprint::next_epoch`]
    /// whenever the factor's values change under a fixed structure, so
    /// caches keyed by fingerprint never serve stale numerics.
    pub epoch: u64,
}

impl FactorFingerprint {
    /// Fingerprint `m`'s sparsity structure at value epoch 0.
    ///
    /// Cost: one pass over `col_ptr` and `row_idx` (O(n + nnz) words)
    /// — orders of magnitude cheaper than the analysis it lets a cache
    /// skip.
    pub fn of(m: &CscMatrix) -> FactorFingerprint {
        let mut h = mix(0x5EED_F1D0_CAFE_F00D, m.n() as u64);
        for &p in m.col_ptr() {
            h = mix(h, p as u64);
        }
        // absorb row indices two per word: halves the scramble count
        // on the long array without weakening per-word avalanche
        let rows = m.row_idx();
        for pair in rows.chunks(2) {
            let word = match pair {
                [a, b] => u64::from(*a) | (u64::from(*b) << 32),
                [a] => u64::from(*a) | (1 << 63),
                _ => unreachable!("chunks(2) yields 1- or 2-element slices"),
            };
            h = mix(h, word);
        }
        FactorFingerprint { structural: h, epoch: 0 }
    }

    /// This structure at an explicit value epoch.
    pub fn with_epoch(self, epoch: u64) -> FactorFingerprint {
        FactorFingerprint { epoch, ..self }
    }

    /// The next value epoch of this structure — what a client computes
    /// after refreshing the factor's values in place.
    pub fn next_epoch(self) -> FactorFingerprint {
        FactorFingerprint { epoch: self.epoch.wrapping_add(1), ..self }
    }
}

impl std::fmt::Display for FactorFingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}@{}", self.structural, self.epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn same_structure_same_hash_values_ignored() {
        let a = gen::banded_lower(256, 6, 3.0, 11);
        let mut b = a.clone();
        for v in b.values_mut() {
            *v *= 1.5;
        }
        assert_eq!(FactorFingerprint::of(&a), FactorFingerprint::of(&b));
    }

    #[test]
    fn different_structures_diverge() {
        let a = FactorFingerprint::of(&gen::banded_lower(256, 6, 3.0, 11));
        let b = FactorFingerprint::of(&gen::banded_lower(256, 7, 3.0, 11));
        let c = FactorFingerprint::of(&gen::banded_lower(257, 6, 3.0, 11));
        assert_ne!(a.structural, b.structural, "bandwidth changes the pattern");
        assert_ne!(a.structural, c.structural, "dimension changes the pattern");
    }

    #[test]
    fn epoch_distinguishes_value_refreshes() {
        let m = gen::banded_lower(64, 3, 3.0, 5);
        let f0 = FactorFingerprint::of(&m);
        let f1 = f0.next_epoch();
        assert_eq!(f0.structural, f1.structural);
        assert_ne!(f0, f1);
        assert_eq!(f0.with_epoch(1), f1);
        assert_eq!(format!("{f1}"), format!("{:016x}@1", f0.structural));
    }
}
