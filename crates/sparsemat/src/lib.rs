//! # sparsemat — sparse matrix substrate for the SpTRSV reproduction
//!
//! This crate provides everything the solvers need from the sparse
//! linear-algebra world:
//!
//! * [`CscMatrix`] / [`CsrMatrix`] — compressed sparse column/row
//!   storage with validated invariants (sorted indices, no duplicates).
//!   CSC is the solver-facing format, exactly as in the paper (§II-A).
//! * [`build::TripletBuilder`] — COO assembly with duplicate summing.
//! * [`levels`] — level-set analysis (Fig. 1b) and the paper's
//!   `dependency = nnz/rows` and `parallelism = rows/levels` metrics.
//! * [`io`] — Matrix Market reader/writer for real SuiteSparse inputs.
//! * [`factor`] — ILU(0) and triangular-part extraction, standing in
//!   for the paper's MA48 factorization step (see DESIGN.md §1).
//! * [`fingerprint`] — content-addressed factor identity
//!   ([`FactorFingerprint`]: structural hash + value epoch), the
//!   routing key of the serving fleet's factor cache.
//! * [`gen`] — synthetic triangular-system generators with exact
//!   control over the level structure, dependency and locality.
//! * [`mod@corpus`] — the 16-matrix Table-I analog suite used by every
//!   experiment harness.

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // index loops mirror the paper's pseudocode

pub mod build;
pub mod corpus;
pub mod csc;
pub mod csr;
pub mod error;
pub mod factor;
pub mod fingerprint;
pub mod gen;
pub mod io;
pub mod levels;
pub mod reorder;

pub use build::TripletBuilder;
pub use corpus::{corpus, spd_corpus, NamedMatrix, PaperStats, SpdMatrix};
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use error::MatrixError;
pub use factor::{audit_factor, FactorAudit};
pub use fingerprint::FactorFingerprint;
pub use levels::{ChainPartition, LevelSets};
pub use reorder::Permutation;

/// Row/column index type. `u32` keeps hot arrays compact (see the Rust
/// Performance Book on smaller integers); matrices beyond 4G rows are
/// out of scope.
pub type Idx = u32;

/// Which triangle a triangular system refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Triangle {
    /// Lower triangular (`Lx = b`, forward substitution).
    Lower,
    /// Upper triangular (`Ux = b`, backward substitution).
    Upper,
}

impl Triangle {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Triangle::Lower => "lower",
            Triangle::Upper => "upper",
        }
    }
}
