//! Synthetic triangular-system generators.
//!
//! The centerpiece is [`level_structured`], which generates a
//! lower-triangular matrix with an *exact* number of level sets, a
//! target nonzero count and a tunable dependency locality. This is what
//! lets the Table-I analog corpus match the paper's structural metrics
//! (rows, nnz, #levels, parallelism) for each SuiteSparse input without
//! shipping gigabytes of data (see DESIGN.md §1).
//!
//! Additional generators cover the domain examples: 5-point grid
//! Laplacians (structured-grid problems), banded systems, scale-free
//! RMAT graphs (social/web networks like twitter7 / uk-2005), chains
//! (worst case) and diagonal systems (best case).

use crate::build::TripletBuilder;
use crate::csc::CscMatrix;
use crate::Idx;
use desim::Pcg32;

/// Parameters for [`level_structured`].
#[derive(Debug, Clone)]
pub struct LevelSpec {
    /// Matrix dimension.
    pub n: usize,
    /// Exact number of level sets to produce (clamped to `[1, n]`).
    pub levels: usize,
    /// Target total nonzeros including the diagonal. The generator may
    /// exceed this if the level structure alone requires more edges,
    /// and may fall slightly short after deduplication.
    pub nnz_target: usize,
    /// Probability that a dependency is drawn from a nearby index
    /// window rather than uniformly — models banded/mesh locality
    /// (1.0 = road-network-like, 0.0 = scale-free-like).
    pub locality: f64,
    /// Window size for local dependencies, as a fraction of `n`.
    pub window_frac: f64,
    /// RNG seed; equal specs with equal seeds generate identical matrices.
    pub seed: u64,
}

impl LevelSpec {
    /// A spec with the common defaults (`locality` 0.8, window 0.6%).
    pub fn new(n: usize, levels: usize, nnz_target: usize, seed: u64) -> Self {
        LevelSpec { n, levels, nnz_target, locality: 0.8, window_frac: 0.006, seed }
    }
}

/// Generate a lower-triangular matrix with an exact level-set count.
///
/// Construction: component `i` is assigned a level along a jittered
/// ramp (so levels interleave across the index space like factorization
/// fill does, preserving the paper's "unidirectional dependency"
/// phenomenon of §V). Every component at level `ℓ > 0` receives one
/// mandatory parent from level `ℓ − 1` (pinning its level exactly) and
/// extra parents from strictly lower levels until the nonzero budget is
/// spent.
///
/// The result always satisfies
/// `LevelSets::analyze(&m, Lower).n_levels() == spec.levels` (asserted
/// in tests), has a full nonzero diagonal, and is diagonally dominant
/// enough for stable substitution.
pub fn level_structured(spec: &LevelSpec) -> CscMatrix {
    let n = spec.n;
    assert!(n > 0, "empty matrix requested");
    let levels = spec.levels.clamp(1, n);
    let mut rng = Pcg32::seed_from_u64(spec.seed);

    // --- 1. level assignment along a jittered ramp --------------------
    let mut level_of = vec![0u32; n];
    let mut members: Vec<Vec<Idx>> = vec![Vec::new(); levels];
    let jitter_span = ((levels as f64) * 0.25).ceil() as i64;
    let mut max_assigned: i64 = -1;
    for i in 0..n {
        let base = (i as u64 * levels as u64 / n as u64) as i64;
        let jit = if jitter_span > 0 {
            rng.range_usize(0, (2 * jitter_span + 1) as usize) as i64 - jitter_span
        } else {
            0
        };
        let proposed = (base + jit).clamp(0, levels as i64 - 1);
        // Feasibility bounds: a level needs a predecessor population one
        // below (upper bound), and enough components must remain to
        // inhabit every level above (lower bound). Both hold inductively
        // because `levels <= n`.
        let must_reach = levels as i64 - (n - i) as i64; // ensures top level inhabited
        let lvl = proposed.min(max_assigned + 1).max(must_reach).max(0);
        level_of[i] = lvl as u32;
        members[lvl as usize].push(i as Idx);
        max_assigned = max_assigned.max(lvl);
    }
    debug_assert!((0..levels).all(|l| !members[l].is_empty()));

    // --- 2. mandatory parents pin each component's level ---------------
    let window = ((n as f64 * spec.window_frac).ceil() as usize).max(4);
    let mut edges: Vec<(Idx, Idx)> = Vec::with_capacity(spec.nnz_target.saturating_sub(n));
    let mut mandatory_parent = vec![Idx::MAX; n];
    for i in 0..n {
        let l = level_of[i] as usize;
        if l == 0 {
            continue;
        }
        let pool = &members[l - 1];
        // Only parents with a *smaller index* keep the matrix lower
        // triangular; the ramp guarantees the early part of `pool`
        // qualifies. Binary search for the cut.
        let cut = pool.partition_point(|&j| (j as usize) < i);
        debug_assert!(cut > 0, "ramp must give an earlier predecessor");
        let pick = if rng.chance(spec.locality) {
            // bias towards recent members: last `window` of the prefix
            let lo = cut.saturating_sub(window);
            rng.range_usize(lo, cut)
        } else {
            rng.range_usize(0, cut)
        };
        mandatory_parent[i] = pool[pick];
        edges.push((pool[pick], i as Idx));
    }

    // --- 3. extra parents spend the remaining nonzero budget -----------
    // Distributed per eligible component with distinct-parent sampling,
    // so high-dependency matrices (e.g. pkustk14's ~49 nnz/row) don't
    // collapse under deduplication.
    let mandatory = edges.len();
    let extra_budget = spec.nnz_target.saturating_sub(n + mandatory);
    let eligible: Vec<Idx> = (0..n as Idx).filter(|&i| level_of[i as usize] > 0).collect();
    if !eligible.is_empty() && extra_budget > 0 {
        let per = extra_budget / eligible.len();
        let mut remainder = extra_budget % eligible.len();
        let mut taken: Vec<Idx> = Vec::with_capacity(per + 2);
        for &ei in &eligible {
            let i = ei as usize;
            let want = per + usize::from(remainder > 0);
            remainder = remainder.saturating_sub(1);
            if want == 0 {
                continue;
            }
            taken.clear();
            taken.push(mandatory_parent[i]);
            // widen the local window when many distinct parents are needed
            let w = window.max(want * 3);
            let mut attempts = 0usize;
            let max_attempts = want * 6 + 24;
            let mut got = 0usize;
            while got < want && attempts < max_attempts {
                attempts += 1;
                let local = rng.chance(spec.locality) && i > 1;
                let j = if local {
                    rng.range_usize(i.saturating_sub(w), i)
                } else {
                    rng.range_usize(0, i)
                };
                let j32 = j as Idx;
                if level_of[j] < level_of[i] && !taken.contains(&j32) {
                    taken.push(j32);
                    edges.push((j32, i as Idx));
                    got += 1;
                }
            }
        }
    }

    // --- 4. dedup + assemble -------------------------------------------
    edges.sort_unstable();
    edges.dedup();
    let mut b = TripletBuilder::with_capacity(n, edges.len() + n);
    for i in 0..n {
        b.push(i, i, rng.range_f64(4.0, 8.0));
    }
    for &(j, i) in &edges {
        b.push(i as usize, j as usize, rng.range_f64(-1.0, 1.0));
    }
    b.build().expect("generator respects CSC invariants")
}

/// 5-point grid Laplacian on an `nx × ny` mesh (structured-grid
/// problems, §I's motivating applications). Symmetric positive
/// definite; factor with [`crate::factor::ilu0`] or take
/// `triangular_part` for a solvable L.
pub fn grid_laplacian(nx: usize, ny: usize) -> CscMatrix {
    let n = nx * ny;
    let mut b = TripletBuilder::with_capacity(n, 5 * n);
    let idx = |x: usize, y: usize| y * nx + x;
    for y in 0..ny {
        for x in 0..nx {
            let i = idx(x, y);
            b.push(i, i, 4.0);
            if x > 0 {
                b.push(i, idx(x - 1, y), -1.0);
            }
            if x + 1 < nx {
                b.push(i, idx(x + 1, y), -1.0);
            }
            if y > 0 {
                b.push(i, idx(x, y - 1), -1.0);
            }
            if y + 1 < ny {
                b.push(i, idx(x, y + 1), -1.0);
            }
        }
    }
    b.build().expect("stencil is valid")
}

/// Random banded lower-triangular matrix: each row draws
/// `avg_row_nnz − 1` parents uniformly from the preceding `bandwidth`
/// indices. Models narrow-band factors (power-grid style).
pub fn banded_lower(n: usize, bandwidth: usize, avg_row_nnz: f64, seed: u64) -> CscMatrix {
    let mut rng = Pcg32::seed_from_u64(seed);
    let mut b = TripletBuilder::new(n);
    for i in 0..n {
        b.push(i, i, rng.range_f64(4.0, 8.0));
        if i == 0 {
            continue;
        }
        let lo = i.saturating_sub(bandwidth);
        let want = (avg_row_nnz - 1.0).max(0.0);
        let k = want.floor() as usize + usize::from(rng.chance(want.fract()));
        let mut parents: Vec<usize> = Vec::with_capacity(k);
        for _ in 0..k.min(i - lo) {
            parents.push(rng.range_usize(lo, i));
        }
        parents.sort_unstable();
        parents.dedup();
        for j in parents {
            b.push(i, j, rng.range_f64(-1.0, 1.0));
        }
    }
    b.build().expect("banded generator is valid")
}

/// Scale-free RMAT lower-triangular matrix (social / web graph analog:
/// twitter7, uk-2005). Edges `(u, v)` are mapped to the strictly-lower
/// triangle as `(max, min)` and deduplicated; the diagonal is added.
pub fn rmat_lower(n: usize, edge_target: usize, seed: u64) -> CscMatrix {
    assert!(n >= 2);
    let mut rng = Pcg32::seed_from_u64(seed);
    let scale = (n as f64).log2().ceil() as u32;
    let side = 1usize << scale;
    let (a, bq, c) = (0.57, 0.19, 0.19); // d = 0.05
    let mut edges: Vec<(Idx, Idx)> = Vec::with_capacity(edge_target);
    let mut attempts = 0usize;
    while edges.len() < edge_target && attempts < edge_target * 8 {
        attempts += 1;
        let (mut x, mut y) = (0usize, 0usize);
        let mut step = side / 2;
        while step > 0 {
            let r = rng.next_f64();
            if r < a {
                // top-left
            } else if r < a + bq {
                y += step;
            } else if r < a + bq + c {
                x += step;
            } else {
                x += step;
                y += step;
            }
            step /= 2;
        }
        if x >= n || y >= n || x == y {
            continue;
        }
        let (row, col) = (x.max(y) as Idx, x.min(y) as Idx);
        edges.push((col, row));
    }
    edges.sort_unstable();
    edges.dedup();
    let mut b = TripletBuilder::with_capacity(n, edges.len() + n);
    for i in 0..n {
        b.push(i, i, rng.range_f64(4.0, 8.0));
    }
    for &(col, row) in &edges {
        b.push(row as usize, col as usize, rng.range_f64(-1.0, 1.0));
    }
    b.build().expect("rmat generator is valid")
}

/// Symmetrize the strictly-lower pattern of `l` into a symmetric
/// positive-definite matrix.
///
/// Every strictly-lower entry `l_ij` is mirrored to `(j, i)` and the
/// diagonal is set to the row's absolute off-diagonal sum plus a
/// seeded margin in `[0.5, 1.5]` — the result is symmetric and
/// *strictly* diagonally dominant with a positive diagonal, hence SPD
/// by Gershgorin. This is how the Krylov experiments obtain SPD
/// systems whose dependency structure matches any of the triangular
/// generators (banded, level-structured, scale-free): generate the
/// lower factor shape first, then symmetrize.
pub fn spd_from_lower(l: &CscMatrix, seed: u64) -> CscMatrix {
    let n = l.n();
    let mut rng = Pcg32::seed_from_u64(seed);
    let mut abs_sum = vec![0.0f64; n];
    let mut b = TripletBuilder::with_capacity(n, 2 * l.nnz() + n);
    for j in 0..n {
        for (r, v) in l.col(j) {
            let r = r as usize;
            if r == j {
                continue; // the diagonal is rebuilt below
            }
            b.push(r, j, v);
            b.push(j, r, v);
            abs_sum[r] += v.abs();
            abs_sum[j] += v.abs();
        }
    }
    for (i, s) in abs_sum.iter().enumerate() {
        b.push(i, i, s + rng.range_f64(0.5, 1.5));
    }
    b.build().expect("symmetrization preserves validity")
}

/// Random banded SPD matrix: the symmetrized [`banded_lower`] pattern
/// (narrow-band stiffness-matrix analog).
pub fn spd_banded(n: usize, bandwidth: usize, avg_row_nnz: f64, seed: u64) -> CscMatrix {
    spd_from_lower(&banded_lower(n, bandwidth, avg_row_nnz, seed), seed ^ 0x5bd)
}

/// SPD matrix with a controlled level structure in its lower triangle:
/// the symmetrized [`level_structured`] pattern. This is what lets the
/// Krylov corpus span the paper's parallelism/dependency space while
/// staying positive definite.
pub fn spd_structured(spec: &LevelSpec) -> CscMatrix {
    spd_from_lower(&level_structured(spec), spec.seed ^ 0x5bd)
}

/// Deep/narrow factor: exactly `depth` levels averaging `mean_width`
/// components each (`n = depth · mean_width`), with `avg_row_nnz`
/// stored entries per row and high dependency locality — the ILU(0) /
/// Cholesky shape where long runs of narrow levels make per-level
/// synchronization, not arithmetic, the solve cost. This is the honest
/// workload for chain-fused scheduling: nearly every level sits far
/// below any reasonable fusion width threshold.
pub fn deep_narrow(depth: usize, mean_width: usize, avg_row_nnz: f64, seed: u64) -> CscMatrix {
    assert!(depth > 0 && mean_width > 0, "deep_narrow needs positive depth and width");
    let n = depth * mean_width;
    level_structured(&LevelSpec {
        n,
        levels: depth,
        nnz_target: (n as f64 * avg_row_nnz).round() as usize,
        locality: 0.9,
        window_frac: 0.01,
        seed,
    })
}

/// Bidiagonal chain: the fully sequential worst case (`n` levels,
/// parallelism 1).
pub fn chain(n: usize) -> CscMatrix {
    let mut b = TripletBuilder::new(n);
    for i in 0..n {
        b.push(i, i, 2.0);
        if i > 0 {
            b.push(i, i - 1, -1.0);
        }
    }
    b.build().expect("chain is valid")
}

/// Diagonal system: the embarrassingly parallel best case (1 level).
pub fn diagonal(n: usize, seed: u64) -> CscMatrix {
    let mut rng = Pcg32::seed_from_u64(seed);
    let mut b = TripletBuilder::new(n);
    for i in 0..n {
        b.push(i, i, rng.range_f64(1.0, 3.0));
    }
    b.build().expect("diagonal is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levels::LevelSets;
    use crate::Triangle;

    #[test]
    fn level_structured_hits_exact_level_count() {
        for &(n, l) in &[(100usize, 1usize), (100, 7), (1000, 40), (500, 500), (64, 2)] {
            let spec = LevelSpec::new(n, l, n * 4, 42);
            let m = level_structured(&spec);
            let ls = LevelSets::analyze(&m, Triangle::Lower);
            assert_eq!(ls.n_levels(), l, "n={n} levels={l}");
            m.validate_triangular(Triangle::Lower).unwrap();
        }
    }

    #[test]
    fn level_structured_nnz_near_target() {
        let spec = LevelSpec::new(2000, 50, 12_000, 7);
        let m = level_structured(&spec);
        let achieved = m.nnz() as f64;
        assert!(
            (achieved - 12_000.0).abs() / 12_000.0 < 0.15,
            "nnz {achieved} too far from target"
        );
    }

    #[test]
    fn level_structured_is_deterministic() {
        let spec = LevelSpec::new(300, 12, 1200, 99);
        assert_eq!(level_structured(&spec), level_structured(&spec));
        let spec2 = LevelSpec { seed: 100, ..spec };
        assert_ne!(level_structured(&spec), level_structured(&spec2));
    }

    #[test]
    fn level_structured_minimum_nnz_is_honored() {
        // Budget below the structural minimum: still valid, exact levels.
        let spec = LevelSpec::new(200, 20, 0, 3);
        let m = level_structured(&spec);
        let ls = LevelSets::analyze(&m, Triangle::Lower);
        assert_eq!(ls.n_levels(), 20);
        assert!(m.nnz() >= 200);
    }

    #[test]
    fn level_structured_levels_interleave_indices() {
        // The unidirectional-dependency premise of §V: blocked partitions
        // skew level membership, but levels must not be contiguous index
        // blocks either (real factors interleave).
        let spec = LevelSpec::new(1000, 10, 4000, 5);
        let m = level_structured(&spec);
        let ls = LevelSets::analyze(&m, Triangle::Lower);
        // level 1 should span a wide index range
        let l1 = ls.level(1);
        let span = (*l1.last().unwrap() - l1[0]) as usize;
        assert!(span > 100, "levels should interleave, span was {span}");
    }

    #[test]
    fn grid_laplacian_structure() {
        let m = grid_laplacian(4, 3);
        assert_eq!(m.n(), 12);
        // interior node has 5 entries
        assert_eq!(m.col_nnz(5), 5);
        // corner has 3
        assert_eq!(m.col_nnz(0), 3);
        // symmetric
        assert_eq!(m.get(0, 1), m.get(1, 0));
    }

    #[test]
    fn banded_lower_respects_band_and_triangle() {
        let m = banded_lower(500, 16, 4.0, 11);
        m.validate_triangular(Triangle::Lower).unwrap();
        for j in 0..m.n() {
            for (r, _) in m.col(j) {
                assert!((r as usize) - j <= 16 || r as usize == j);
            }
        }
        let dep = m.nnz() as f64 / m.n() as f64;
        assert!((3.0..5.0).contains(&dep), "dependency {dep}");
    }

    #[test]
    fn rmat_lower_is_valid_and_skewed() {
        let m = rmat_lower(1 << 10, 8_000, 21);
        m.validate_triangular(Triangle::Lower).unwrap();
        // scale-free: max column degree far above average
        let avg = m.nnz() as f64 / m.n() as f64;
        let max = (0..m.n()).map(|j| m.col_nnz(j)).max().unwrap() as f64;
        assert!(max > avg * 5.0, "expected a hub, max={max} avg={avg}");
    }

    #[test]
    fn spd_generators_are_symmetric_and_dominant() {
        for m in [
            spd_banded(300, 12, 4.0, 9),
            spd_structured(&LevelSpec::new(400, 15, 1600, 31)),
            spd_from_lower(&rmat_lower(256, 1200, 3), 8),
        ] {
            let n = m.n();
            // symmetric
            assert_eq!(m, m.transpose());
            // strictly diagonally dominant with positive diagonal ⇒ SPD
            for i in 0..n {
                let diag = m.get(i, i).unwrap();
                let off: f64 =
                    m.col(i).filter(|&(r, _)| r as usize != i).map(|(_, v)| v.abs()).sum();
                assert!(diag > off, "row {i}: diag {diag} vs off-sum {off}");
            }
        }
    }

    #[test]
    fn spd_generator_is_deterministic() {
        let a = spd_banded(128, 6, 3.0, 4);
        let b = spd_banded(128, 6, 3.0, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn deep_narrow_is_deep_and_narrow() {
        let m = deep_narrow(400, 5, 3.0, 17);
        m.validate_triangular(Triangle::Lower).unwrap();
        let ls = LevelSets::analyze(&m, Triangle::Lower);
        assert_eq!(ls.n_levels(), 400, "depth is exact");
        assert_eq!(m.n(), 2_000);
        assert!(ls.parallelism() <= 6.0, "parallelism {}", ls.parallelism());
        // the ramp ends may pool a couple of wide levels, but ≥95% of
        // the levels must sit within 3x the requested mean width
        let narrow = (0..ls.n_levels()).filter(|&l| ls.level(l).len() <= 15).count();
        assert!(narrow * 20 >= ls.n_levels() * 19, "only {narrow}/400 narrow levels");
        // deterministic for fixed parameters
        assert_eq!(m, deep_narrow(400, 5, 3.0, 17));
    }

    #[test]
    fn chain_and_diagonal_extremes() {
        let c = chain(64);
        let ls = LevelSets::analyze(&c, Triangle::Lower);
        assert_eq!(ls.n_levels(), 64);
        let d = diagonal(64, 1);
        let ls = LevelSets::analyze(&d, Triangle::Lower);
        assert_eq!(ls.n_levels(), 1);
    }
}
