//! Matrix reordering — standard SpTRSV preprocessing.
//!
//! The level structure of a triangular factor is not intrinsic to the
//! underlying system: it depends on the row/column ordering. Reverse
//! Cuthill–McKee ([`rcm`]) narrows the bandwidth (shortening
//! dependency distances and increasing the locality the §V task pool
//! exploits), while [`level_order`] sorts components by level set —
//! the layout that maximizes the paper's "unidirectional dependency"
//! pathology and serves as an adversarial input for the partitioning
//! ablations.

use crate::csc::CscMatrix;
use crate::levels::LevelSets;
use crate::{Idx, Triangle};
use std::collections::VecDeque;

/// A permutation `perm` with `perm[new] = old`, plus its inverse.
#[derive(Debug, Clone)]
pub struct Permutation {
    /// `perm[new_index] = old_index`.
    pub perm: Vec<Idx>,
    /// `inv[old_index] = new_index`.
    pub inv: Vec<Idx>,
}

impl Permutation {
    /// Build from a `new -> old` map, computing the inverse.
    pub fn from_perm(perm: Vec<Idx>) -> Permutation {
        let mut inv = vec![0 as Idx; perm.len()];
        for (new, &old) in perm.iter().enumerate() {
            inv[old as usize] = new as Idx;
        }
        Permutation { perm, inv }
    }

    /// The identity permutation on `n` elements.
    pub fn identity(n: usize) -> Permutation {
        Permutation::from_perm((0..n as Idx).collect())
    }

    /// Length of the permutation.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// Apply to a vector: `out[new] = v[perm[new]]`.
    pub fn apply_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.perm.len());
        self.perm.iter().map(|&old| v[old as usize]).collect()
    }

    /// Undo on a vector: `out[old] = v[inv[old]]`.
    pub fn unapply_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.inv.len());
        self.inv.iter().map(|&new| v[new as usize]).collect()
    }
}

/// Symmetric permutation `P A Pᵀ`: entry `(r, c)` moves to
/// `(inv[r], inv[c])`.
pub fn permute_symmetric(a: &CscMatrix, p: &Permutation) -> CscMatrix {
    assert_eq!(a.n(), p.len());
    let mut b = crate::build::TripletBuilder::with_capacity(a.n(), a.nnz());
    for j in 0..a.n() {
        let nj = p.inv[j] as usize;
        for (r, v) in a.col(j) {
            b.push(p.inv[r as usize] as usize, nj, v);
        }
    }
    b.build().expect("permutation preserves validity")
}

/// Half-bandwidth of a matrix: `max |row - col|` over stored entries.
pub fn bandwidth(a: &CscMatrix) -> usize {
    let mut bw = 0usize;
    for j in 0..a.n() {
        for (r, _) in a.col(j) {
            bw = bw.max((r as usize).abs_diff(j));
        }
    }
    bw
}

/// Reverse Cuthill–McKee ordering of the *symmetrized* pattern of `a`.
///
/// Classic BFS from a minimum-degree peripheral seed per connected
/// component, neighbors visited in ascending degree, final order
/// reversed. The returned permutation typically shrinks
/// [`bandwidth`] substantially on mesh-like patterns.
pub fn rcm(a: &CscMatrix) -> Permutation {
    let n = a.n();
    // adjacency of the symmetrized pattern, self-loops dropped
    let mut adj: Vec<Vec<Idx>> = vec![Vec::new(); n];
    for j in 0..n {
        for (r, _) in a.col(j) {
            let r = r as usize;
            if r != j {
                adj[r].push(j as Idx);
                adj[j].push(r as Idx);
            }
        }
    }
    for l in &mut adj {
        l.sort_unstable();
        l.dedup();
    }
    let degree = |v: usize| adj[v].len();

    let mut visited = vec![false; n];
    let mut order: Vec<Idx> = Vec::with_capacity(n);
    let mut queue = VecDeque::new();
    let mut nodes_by_degree: Vec<Idx> = (0..n as Idx).collect();
    nodes_by_degree.sort_unstable_by_key(|&v| degree(v as usize));

    for &seed in &nodes_by_degree {
        if visited[seed as usize] {
            continue;
        }
        visited[seed as usize] = true;
        queue.push_back(seed);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut nbrs: Vec<Idx> =
                adj[v as usize].iter().copied().filter(|&u| !visited[u as usize]).collect();
            nbrs.sort_unstable_by_key(|&u| degree(u as usize));
            for u in nbrs {
                visited[u as usize] = true;
                queue.push_back(u);
            }
        }
    }
    order.reverse();
    Permutation::from_perm(order)
}

/// Order components by ascending level set (ties by original index):
/// the layout under which a blocked partition puts *all* early levels
/// on GPU 0 — the worst case for §V's unidirectional-dependency
/// analysis.
pub fn level_order(a: &CscMatrix, tri: Triangle) -> Permutation {
    let ls = LevelSets::analyze(a, tri);
    let mut order: Vec<Idx> = (0..a.n() as Idx).collect();
    order.sort_by_key(|&i| (ls.level_of[i as usize], i));
    Permutation::from_perm(order)
}

/// Reorder a *lower-triangular system* with an arbitrary symmetric
/// permutation while keeping it lower triangular: the permuted pattern
/// is re-triangularized by orienting every off-diagonal entry from the
/// smaller to the larger new index. Level counts may change — that is
/// the point of reordering.
pub fn permute_lower(l: &CscMatrix, p: &Permutation) -> CscMatrix {
    assert_eq!(l.n(), p.len());
    let mut b = crate::build::TripletBuilder::with_capacity(l.n(), l.nnz());
    for j in 0..l.n() {
        let nj = p.inv[j] as usize;
        for (r, v) in l.col(j) {
            let nr = p.inv[r as usize] as usize;
            if r as usize == j {
                b.push(nj, nj, v);
            } else {
                // orient to the lower triangle in the new ordering
                b.push(nr.max(nj), nr.min(nj), v);
            }
        }
    }
    b.build().expect("permutation preserves validity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::levels::TriStats;

    #[test]
    fn permutation_roundtrips_vectors() {
        let p = Permutation::from_perm(vec![2, 0, 1]);
        let v = vec![10.0, 20.0, 30.0];
        let w = p.apply_vec(&v);
        assert_eq!(w, vec![30.0, 10.0, 20.0]);
        assert_eq!(p.unapply_vec(&w), v);
        assert_eq!(p.inv, vec![1, 2, 0]);
    }

    #[test]
    fn identity_is_neutral() {
        let m = gen::grid_laplacian(6, 5);
        let p = Permutation::identity(m.n());
        assert_eq!(permute_symmetric(&m, &p), m);
        assert!(!p.is_empty());
        assert_eq!(p.len(), 30);
    }

    #[test]
    fn symmetric_permutation_preserves_entries() {
        let m = gen::grid_laplacian(5, 4);
        let p = rcm(&m);
        let pm = permute_symmetric(&m, &p);
        assert_eq!(pm.nnz(), m.nnz());
        // spot-check: entry (r, c) lands at (inv r, inv c)
        for j in 0..m.n() {
            for (r, v) in m.col(j) {
                let got = pm.get(p.inv[r as usize] as usize, p.inv[j] as usize).unwrap();
                assert_eq!(got, v);
            }
        }
    }

    #[test]
    fn rcm_shrinks_grid_bandwidth() {
        // a long thin grid in row-major order has bandwidth = nx
        let m = gen::grid_laplacian(40, 8);
        let before = bandwidth(&m);
        let p = rcm(&m);
        let after = bandwidth(&permute_symmetric(&m, &p));
        assert!(after <= before, "RCM must not widen the band: {after} vs {before}");
        assert!(after <= 12, "thin grid should get a narrow band, got {after}");
    }

    #[test]
    fn rcm_handles_disconnected_components() {
        // two disjoint chains
        let mut b = crate::build::TripletBuilder::new(8);
        for i in 0..8 {
            b.push(i, i, 2.0);
        }
        for i in 1..4 {
            b.push(i, i - 1, -1.0);
        }
        for i in 5..8 {
            b.push(i, i - 1, -1.0);
        }
        let m = b.build().unwrap();
        let p = rcm(&m);
        let mut sorted = p.perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>(), "valid permutation");
    }

    #[test]
    fn level_order_sorts_by_level() {
        let m = gen::level_structured(&gen::LevelSpec::new(500, 20, 2000, 3));
        let p = level_order(&m, Triangle::Lower);
        let pm = permute_lower(&m, &p);
        let ls = LevelSets::analyze(&pm, Triangle::Lower);
        // after level ordering, level_of must be non-decreasing in index
        for w in ls.level_of.windows(2) {
            assert!(w[0] <= w[1] || w[1] >= w[0].saturating_sub(1));
        }
        pm.validate_triangular(Triangle::Lower).unwrap();
    }

    #[test]
    fn permute_lower_keeps_solvable_triangle() {
        let m = gen::banded_lower(300, 10, 4.0, 7);
        let p = rcm(&m);
        let pm = permute_lower(&m, &p);
        pm.validate_triangular(Triangle::Lower).unwrap();
        assert_eq!(pm.nnz(), m.nnz());
        // reordering changes but never destroys the level structure
        let s = TriStats::compute(&pm, Triangle::Lower);
        assert!(s.levels >= 1);
    }
}
