//! Compressed sparse row storage.
//!
//! CSR is used by the factorization kernels ([`crate::factor`]) and by
//! row-oriented analysis; the solvers themselves consume CSC. A CSR
//! matrix is represented as the transpose-of-CSC trick: the same arrays
//! with rows and columns swapped, so conversion is a single transpose
//! pass.

use crate::csc::CscMatrix;
use crate::error::MatrixError;
use crate::Idx;

/// A validated compressed-sparse-row matrix over `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<Idx>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Build from raw parts, validating invariants (mirrors CSC).
    pub fn try_new(
        n: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<Idx>,
        values: Vec<f64>,
    ) -> Result<Self, MatrixError> {
        // Validate by viewing the arrays as a CSC matrix (same invariants).
        CscMatrix::try_new(n, row_ptr, col_idx, values).map(|m| {
            let (n, row_ptr, col_idx, values) = Self::into_csc_parts(m);
            CsrMatrix { n, row_ptr, col_idx, values }
        })
    }

    fn into_csc_parts(m: CscMatrix) -> (usize, Vec<usize>, Vec<Idx>, Vec<f64>) {
        let n = m.n();
        let col_ptr = m.col_ptr().to_vec();
        let row_idx = m.row_idx().to_vec();
        let values = m.values().to_vec();
        (n, col_ptr, row_idx, values)
    }

    /// Convert from CSC (one transpose pass, O(n + nnz)).
    pub fn from_csc(csc: &CscMatrix) -> Self {
        let t = csc.transpose();
        CsrMatrix {
            n: t.n(),
            row_ptr: t.col_ptr().to_vec(),
            col_idx: t.row_idx().to_vec(),
            values: t.values().to_vec(),
        }
    }

    /// Convert to CSC (one transpose pass).
    pub fn to_csc(&self) -> CscMatrix {
        // Reinterpret self's arrays as a CSC matrix (which is our
        // transpose) and transpose it back into a genuine CSC layout.
        CscMatrix::from_parts_unchecked(
            self.n,
            self.row_ptr.clone(),
            self.col_idx.clone(),
            self.values.clone(),
        )
        .transpose()
    }

    /// Matrix dimension.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Stored entry count.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Row pointer array (`n + 1` entries).
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column indices, row-major.
    #[inline]
    pub fn col_idx(&self) -> &[Idx] {
        &self.col_idx
    }

    /// Stored values, row-major.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable values (structure fixed).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Iterate `(col, value)` of row `i` in ascending column order.
    #[inline]
    pub fn row(&self, i: usize) -> impl Iterator<Item = (Idx, f64)> + '_ {
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        self.col_idx[lo..hi].iter().zip(&self.values[lo..hi]).map(|(&c, &v)| (c, v))
    }

    /// Value at `(row, col)` if stored.
    pub fn get(&self, row: usize, col: usize) -> Option<f64> {
        let (lo, hi) = (self.row_ptr[row], self.row_ptr[row + 1]);
        self.col_idx[lo..hi].binary_search(&(col as Idx)).ok().map(|k| self.values[lo + k])
    }

    /// `y = A x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n];
        self.matvec_into(x, &mut y);
        y
    }

    /// Allocation-free `y = A x`: each row is a gather-dot over its
    /// stored entries. Row-major SpMV writes `y` sequentially, which is
    /// the cache-friendly orientation for the Krylov recurrences.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n, "input length mismatch");
        assert_eq!(y.len(), self.n, "output length mismatch");
        for i in 0..self.n {
            let mut acc = 0.0;
            for (c, v) in self.row(i) {
                acc += v * x[c as usize];
            }
            y[i] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::TripletBuilder;

    fn sample() -> CscMatrix {
        let mut b = TripletBuilder::new(3);
        b.push(0, 0, 1.0);
        b.push(1, 0, 2.0);
        b.push(1, 1, 3.0);
        b.push(2, 0, 4.0);
        b.push(2, 2, 5.0);
        b.build().unwrap()
    }

    #[test]
    fn csc_csr_roundtrip() {
        let csc = sample();
        let csr = CsrMatrix::from_csc(&csc);
        assert_eq!(csr.nnz(), csc.nnz());
        assert_eq!(csr.to_csc(), csc);
    }

    #[test]
    fn row_iteration_matches_get() {
        let csr = CsrMatrix::from_csc(&sample());
        let row2: Vec<_> = csr.row(2).collect();
        assert_eq!(row2, vec![(0, 4.0), (2, 5.0)]);
        assert_eq!(csr.get(2, 0), Some(4.0));
        assert_eq!(csr.get(0, 2), None);
    }

    #[test]
    fn matvec_agrees_with_csc() {
        let csc = sample();
        let csr = CsrMatrix::from_csc(&csc);
        let x = vec![1.0, -2.0, 0.5];
        assert_eq!(csc.matvec(&x), csr.matvec(&x));
    }

    #[test]
    fn try_new_validates() {
        let e = CsrMatrix::try_new(2, vec![0, 2, 2], vec![1, 0], vec![1.0, 1.0]);
        assert!(e.is_err());
        let ok = CsrMatrix::try_new(2, vec![0, 1, 2], vec![0, 1], vec![1.0, 1.0]);
        assert!(ok.is_ok());
    }
}
