//! Factorization substrate — the MA48 stand-in.
//!
//! The paper factorizes its SuiteSparse inputs with MA48 (HSL) to obtain
//! the lower-triangular `L` that SpTRSV solves (§VI-A). MA48 is
//! proprietary Fortran; we provide the two standard open alternatives
//! used throughout the SpTRSV literature:
//!
//! * [`ilu0`] — incomplete LU with zero fill-in. Preserves the sparsity
//!   pattern of `A`, which is exactly what the paper's structural
//!   metrics (levels, parallelism) are computed from.
//! * [`CscMatrix::triangular_part`] — the `tril(A)`/`triu(A)` trick.
//!
//! Both produce a solvable `(L, U)` pair whose level structure matches
//! the input's dependency pattern, which is the property the
//! experiments rely on (see DESIGN.md §1).

use crate::csc::CscMatrix;
use crate::csr::CsrMatrix;
use crate::error::MatrixError;
use crate::Triangle;

/// Result of an (incomplete) LU factorization: `A ≈ L · U` with `L`
/// unit-lower-triangular (unit diagonal stored explicitly) and `U`
/// upper triangular.
#[derive(Debug, Clone)]
pub struct LuFactors {
    /// Lower factor, unit diagonal stored, CSC.
    pub l: CscMatrix,
    /// Upper factor, CSC.
    pub u: CscMatrix,
}

/// ILU(0): incomplete LU restricted to the sparsity pattern of `A`.
///
/// Standard IKJ formulation on CSR. Zero or absent diagonal pivots are
/// replaced by `pivot_fill` (a small diagonal shift keeps the factor
/// solvable; the paper's experiments only need structural fidelity).
///
/// # Errors
/// A zero or non-finite `pivot_fill` is rejected as
/// [`MatrixError::InvalidArgument`] — zero would reintroduce the
/// singular pivots the fill exists to repair, and a NaN/∞ fill would
/// poison every downstream elimination; both are caller mistakes, not
/// internal invariants, so they surface as typed errors rather than
/// panics.
pub fn ilu0(a: &CscMatrix, pivot_fill: f64) -> Result<LuFactors, MatrixError> {
    if pivot_fill == 0.0 || !pivot_fill.is_finite() {
        return Err(MatrixError::InvalidArgument { what: "pivot_fill", value: pivot_fill });
    }
    let n = a.n();
    // Ensure a full diagonal so pivots exist in the pattern.
    let csr = CsrMatrix::from_csc(&with_full_diagonal(a, pivot_fill));
    let row_ptr = csr.row_ptr().to_vec();
    let col_idx = csr.col_idx().to_vec();
    let mut val = csr.values().to_vec();

    // diag_pos[i] = position of a_ii within row i.
    let mut diag_pos = vec![usize::MAX; n];
    for i in 0..n {
        for k in row_ptr[i]..row_ptr[i + 1] {
            if col_idx[k] as usize == i {
                diag_pos[i] = k;
                break;
            }
        }
        if diag_pos[i] == usize::MAX {
            return Err(MatrixError::MissingDiagonal(i));
        }
    }

    // Scatter map: column -> position in the current row (usize::MAX = absent).
    let mut pos_of = vec![usize::MAX; n];
    for i in 0..n {
        let (lo, hi) = (row_ptr[i], row_ptr[i + 1]);
        for k in lo..hi {
            pos_of[col_idx[k] as usize] = k;
        }
        // Eliminate using rows k < i that appear in row i's pattern.
        for kk in lo..hi {
            let k = col_idx[kk] as usize;
            if k >= i {
                break; // columns sorted: done with the strictly-lower part
            }
            let mut pivot = val[diag_pos[k]];
            if pivot == 0.0 {
                pivot = pivot_fill;
            }
            let factor = val[kk] / pivot;
            val[kk] = factor;
            // Row k's upper part updates row i where the pattern matches.
            for kj in diag_pos[k] + 1..row_ptr[k + 1] {
                let j = col_idx[kj] as usize;
                let p = pos_of[j];
                if p != usize::MAX {
                    val[p] -= factor * val[kj];
                }
            }
        }
        if val[diag_pos[i]] == 0.0 {
            val[diag_pos[i]] = pivot_fill;
        }
        for k in lo..hi {
            pos_of[col_idx[k] as usize] = usize::MAX;
        }
    }

    // Split the combined factor into L (unit diag) and U.
    let combined = CsrMatrix::try_new(n, row_ptr, col_idx, val)?.to_csc();
    let mut l = combined.triangular_part(Triangle::Lower, 1.0);
    // Force L's diagonal to exactly 1 (unit lower factor).
    set_diagonal(&mut l, 1.0);
    let u = combined.triangular_part(Triangle::Upper, pivot_fill);
    l.validate_triangular(Triangle::Lower)?;
    u.validate_triangular(Triangle::Upper)?;
    Ok(LuFactors { l, u })
}

/// Findings per category an audit keeps before it stops recording (the
/// counts stay exact; only the located examples are capped).
pub const AUDIT_MAX_FINDINGS: usize = 16;

/// Result of a build-time numeric/structural sweep over a factor —
/// the guardrail between a factorization and the thousands of warm
/// solves amortized over it. A NaN produced by one bad pivot poisons
/// *every* subsequent solve bit-identically, so the sweep runs once at
/// engine build (where the cost is amortized away) instead of per
/// solve.
///
/// Findings are recorded up to [`AUDIT_MAX_FINDINGS`] per category
/// (`truncated` reports whether any list hit the cap); the `*_count`
/// totals are always exact.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FactorAudit {
    /// Diagonal entries that are exactly zero (singular pivot rows).
    pub zero_diagonals: Vec<usize>,
    /// Diagonal entries that are NaN or infinite.
    pub nonfinite_diagonals: Vec<usize>,
    /// Off-diagonal `(row, col)` entries that are NaN or infinite.
    pub nonfinite_offdiagonals: Vec<(usize, usize)>,
    /// `(row, col)` pairs stored more than once within a column —
    /// structurally malformed storage that would double-count updates.
    pub duplicate_entries: Vec<(usize, usize)>,
    /// Exact total of offending entries across all categories (the
    /// example lists above are capped, this count is not).
    pub finding_count: usize,
    /// Whether any example list hit [`AUDIT_MAX_FINDINGS`].
    pub truncated: bool,
}

impl FactorAudit {
    /// `true` when the sweep found nothing — the factor is safe to
    /// amortize warm solves over.
    pub fn is_clean(&self) -> bool {
        self.finding_count == 0
    }

    /// The most severe finding as a typed error (`None` when clean):
    /// non-finite values first (they poison silently), then zero
    /// diagonals (they fail loudly at solve time), then duplicates.
    pub fn first_error(&self) -> Option<MatrixError> {
        if let Some(&i) = self.nonfinite_diagonals.first() {
            return Some(MatrixError::NonFiniteValue { row: i, col: i });
        }
        if let Some(&(r, c)) = self.nonfinite_offdiagonals.first() {
            return Some(MatrixError::NonFiniteValue { row: r, col: c });
        }
        if let Some(&i) = self.zero_diagonals.first() {
            return Some(MatrixError::ZeroDiagonal(i));
        }
        if let Some(&(_, c)) = self.duplicate_entries.first() {
            return Some(MatrixError::UnsortedIndices { outer: c });
        }
        None
    }
}

/// Sweep a (triangular) factor for the numeric and structural hazards
/// that would poison warm solves: zero or non-finite diagonals,
/// non-finite off-diagonals, and duplicated entries within a column.
/// One `O(nnz)` pass; see [`FactorAudit`] for the reporting contract.
pub fn audit_factor(m: &CscMatrix) -> FactorAudit {
    let n = m.n();
    let mut audit = FactorAudit::default();
    let record_cap = |list_len: usize| list_len < AUDIT_MAX_FINDINGS;
    for j in 0..n {
        let mut prev_row: Option<u32> = None;
        for (r, v) in m.col(j) {
            let row = r as usize;
            if !v.is_finite() {
                audit.finding_count += 1;
                if row == j {
                    if record_cap(audit.nonfinite_diagonals.len()) {
                        audit.nonfinite_diagonals.push(row);
                    } else {
                        audit.truncated = true;
                    }
                } else if record_cap(audit.nonfinite_offdiagonals.len()) {
                    audit.nonfinite_offdiagonals.push((row, j));
                } else {
                    audit.truncated = true;
                }
            } else if row == j && v == 0.0 {
                audit.finding_count += 1;
                if record_cap(audit.zero_diagonals.len()) {
                    audit.zero_diagonals.push(row);
                } else {
                    audit.truncated = true;
                }
            }
            if prev_row == Some(r) {
                audit.finding_count += 1;
                if record_cap(audit.duplicate_entries.len()) {
                    audit.duplicate_entries.push((row, j));
                } else {
                    audit.truncated = true;
                }
            }
            prev_row = Some(r);
        }
    }
    audit
}

/// Copy of `a` with every missing diagonal entry inserted as `fill`.
fn with_full_diagonal(a: &CscMatrix, fill: f64) -> CscMatrix {
    let n = a.n();
    let mut b = crate::build::TripletBuilder::with_capacity(n, a.nnz() + n);
    for j in 0..n {
        let mut saw = false;
        for (r, v) in a.col(j) {
            if r as usize == j {
                saw = true;
                b.push(r as usize, j, if v == 0.0 { fill } else { v });
            } else {
                b.push(r as usize, j, v);
            }
        }
        if !saw {
            b.push(j, j, fill);
        }
    }
    b.build().expect("diagonal completion preserves validity")
}

fn set_diagonal(m: &mut CscMatrix, v: f64) {
    let n = m.n();
    for j in 0..n {
        let lo = m.col_ptr()[j];
        if m.row_idx()[lo] as usize == j {
            m.values_mut()[lo] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::TripletBuilder;
    use crate::gen;

    /// Dense-LU reference on a small matrix, no pivoting, to compare
    /// ILU(0) against on a full-pattern input (where ILU(0) == LU).
    fn dense_lu(a: &CscMatrix) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let n = a.n();
        let mut m = vec![vec![0.0; n]; n];
        for j in 0..n {
            for (r, v) in a.col(j) {
                m[r as usize][j] = v;
            }
        }
        for k in 0..n {
            for i in k + 1..n {
                m[i][k] /= m[k][k];
                for j in k + 1..n {
                    m[i][j] -= m[i][k] * m[k][j];
                }
            }
        }
        let mut l = vec![vec![0.0; n]; n];
        let mut u = vec![vec![0.0; n]; n];
        for i in 0..n {
            l[i][i] = 1.0;
            for j in 0..n {
                if j < i {
                    l[i][j] = m[i][j];
                } else {
                    u[i][j] = m[i][j];
                }
            }
        }
        (l, u)
    }

    fn dense_full(n: usize, seed: u64) -> CscMatrix {
        let mut rng = desim::Pcg32::seed_from_u64(seed);
        let mut b = TripletBuilder::new(n);
        for i in 0..n {
            for j in 0..n {
                let v = if i == j {
                    n as f64 + rng.next_f64() // diagonally dominant
                } else {
                    rng.range_f64(-1.0, 1.0)
                };
                b.push(i, j, v);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn ilu0_on_full_pattern_equals_lu() {
        let a = dense_full(8, 42);
        let f = ilu0(&a, 1e-8).unwrap();
        let (dl, du) = dense_lu(&a);
        for i in 0..8 {
            for j in 0..8 {
                let lv = f.l.get(i, j).unwrap_or(0.0);
                let uv = f.u.get(i, j).unwrap_or(0.0);
                assert!((lv - dl[i][j]).abs() < 1e-9, "L[{i}][{j}]: {lv} vs {}", dl[i][j]);
                assert!((uv - du[i][j]).abs() < 1e-9, "U[{i}][{j}]: {uv} vs {}", du[i][j]);
            }
        }
    }

    #[test]
    fn ilu0_preserves_pattern() {
        let a = gen::grid_laplacian(8, 8);
        let f = ilu0(&a, 1e-8).unwrap();
        // L ∪ U pattern (minus the unit diagonal of L) must be within A's
        // pattern plus the diagonal.
        for j in 0..a.n() {
            for (r, _) in f.l.col(j) {
                let r = r as usize;
                assert!(r == j || a.get(r, j).is_some(), "fill-in at L({r},{j}) violates ILU(0)");
            }
            for (r, _) in f.u.col(j) {
                let r = r as usize;
                assert!(r == j || a.get(r, j).is_some());
            }
        }
    }

    #[test]
    fn ilu0_factors_are_solvable_triangles() {
        let a = gen::grid_laplacian(10, 7);
        let f = ilu0(&a, 1e-8).unwrap();
        f.l.validate_triangular(Triangle::Lower).unwrap();
        f.u.validate_triangular(Triangle::Upper).unwrap();
        assert!(f.l.col(0).next().unwrap().1 == 1.0, "unit diagonal");
    }

    #[test]
    fn ilu0_exact_for_tridiagonal() {
        // Tridiagonal: no fill-in exists, so ILU(0) is the exact LU and
        // L·U must reproduce A.
        let n = 16;
        let mut b = TripletBuilder::new(n);
        for i in 0..n {
            b.push(i, i, 4.0);
            if i > 0 {
                b.push(i, i - 1, -1.0);
                b.push(i - 1, i, -1.0);
            }
        }
        let a = b.build().unwrap();
        let f = ilu0(&a, 1e-8).unwrap();
        // multiply L*U densely and compare
        let n = a.n();
        for i in 0..n {
            for j in 0..n {
                let mut lu = 0.0;
                for k in 0..n {
                    lu += f.l.get(i, k).unwrap_or(0.0) * f.u.get(k, j).unwrap_or(0.0);
                }
                let av = a.get(i, j).unwrap_or(0.0);
                assert!((lu - av).abs() < 1e-10, "LU({i},{j})={lu} vs A={av}");
            }
        }
    }

    #[test]
    fn audit_passes_clean_factors() {
        let a = gen::grid_laplacian(8, 8);
        let f = ilu0(&a, 1e-8).unwrap();
        let audit = audit_factor(&f.l);
        assert!(audit.is_clean());
        assert!(audit.first_error().is_none());
        assert!(!audit.truncated);
    }

    #[test]
    fn audit_finds_nonfinite_and_zero_diagonals() {
        let mut b = TripletBuilder::new(3);
        b.push(0, 0, 1.0);
        b.push(1, 0, f64::NAN);
        b.push(1, 1, 0.0);
        b.push(2, 2, f64::INFINITY);
        let m = b.build().unwrap();
        let audit = audit_factor(&m);
        assert_eq!(audit.zero_diagonals, vec![1]);
        assert_eq!(audit.nonfinite_diagonals, vec![2]);
        assert_eq!(audit.nonfinite_offdiagonals, vec![(1, 0)]);
        assert_eq!(audit.finding_count, 3);
        // severity order: non-finite beats zero-diagonal
        assert!(matches!(audit.first_error(), Some(MatrixError::NonFiniteValue { .. })));
    }

    #[test]
    fn audit_counts_past_the_example_cap() {
        let n = AUDIT_MAX_FINDINGS + 8;
        let mut b = TripletBuilder::new(n);
        for i in 0..n {
            b.push(i, i, f64::NAN);
        }
        let m = b.build().unwrap();
        let audit = audit_factor(&m);
        assert_eq!(audit.nonfinite_diagonals.len(), AUDIT_MAX_FINDINGS);
        assert_eq!(audit.finding_count, n, "counts stay exact past the cap");
        assert!(audit.truncated);
    }

    #[test]
    fn ilu0_rejects_bad_pivot_fill() {
        let a = gen::grid_laplacian(4, 4);
        for bad in [0.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = ilu0(&a, bad).unwrap_err();
            assert!(
                matches!(err, MatrixError::InvalidArgument { what: "pivot_fill", .. }),
                "pivot_fill={bad}: {err:?}"
            );
        }
        // valid fills (including negative) still factor
        ilu0(&a, -1e-8).unwrap();
    }

    #[test]
    fn ilu0_handles_missing_diagonal() {
        let mut b = TripletBuilder::new(3);
        b.push(0, 0, 2.0);
        b.push(1, 0, 1.0);
        // (1,1) missing
        b.push(2, 2, 3.0);
        let a = b.build().unwrap();
        let f = ilu0(&a, 1e-4).unwrap();
        f.l.validate_triangular(Triangle::Lower).unwrap();
        f.u.validate_triangular(Triangle::Upper).unwrap();
    }
}
