//! Factorization substrate — the MA48 stand-in.
//!
//! The paper factorizes its SuiteSparse inputs with MA48 (HSL) to obtain
//! the lower-triangular `L` that SpTRSV solves (§VI-A). MA48 is
//! proprietary Fortran; we provide the two standard open alternatives
//! used throughout the SpTRSV literature:
//!
//! * [`ilu0`] — incomplete LU with zero fill-in. Preserves the sparsity
//!   pattern of `A`, which is exactly what the paper's structural
//!   metrics (levels, parallelism) are computed from.
//! * [`CscMatrix::triangular_part`] — the `tril(A)`/`triu(A)` trick.
//!
//! Both produce a solvable `(L, U)` pair whose level structure matches
//! the input's dependency pattern, which is the property the
//! experiments rely on (see DESIGN.md §1).
//!
//! ## Refactorization: new values, recorded pattern
//!
//! Time-stepping and transient workloads refactor the *same* sparsity
//! pattern with new numeric values every few steps. [`ilu0`] therefore
//! records its elimination pattern (the combined-factor structure,
//! diagonal positions, and the scatter maps between `A`, the combined
//! factor, and the split `L`/`U`) inside the returned [`LuFactors`],
//! and [`ilu0_refactor`] replays the numeric elimination over that
//! record with **zero symbolic work** — no diagonal search, no pattern
//! matching, no triangular split. The refreshed factors are
//! bit-identical to a fresh [`ilu0`] on the new values; a matrix whose
//! pattern drifted from the record is rejected with a typed
//! [`MatrixError::StructureMismatch`] before anything is mutated.

use crate::csc::CscMatrix;
use crate::csr::CsrMatrix;
use crate::error::MatrixError;
use crate::Triangle;

/// Result of an (incomplete) LU factorization: `A ≈ L · U` with `L`
/// unit-lower-triangular (unit diagonal stored explicitly) and `U`
/// upper triangular, plus the recorded elimination pattern that lets
/// [`ilu0_refactor`] refresh the values without re-doing any symbolic
/// work.
#[derive(Debug, Clone)]
pub struct LuFactors {
    /// Lower factor, unit diagonal stored, CSC.
    pub l: CscMatrix,
    /// Upper factor, CSC.
    pub u: CscMatrix,
    /// The recorded elimination pattern (see [`ilu0_refactor`]).
    pattern: ElimPattern,
}

/// The symbolic record of one [`ilu0`] run: everything the numeric
/// elimination needs that does not depend on the values. Stored inside
/// [`LuFactors`] so [`ilu0_refactor`] can replay the factorization
/// over new values with zero pattern work.
#[derive(Debug, Clone)]
struct ElimPattern {
    /// Dimension.
    n: usize,
    /// Combined-factor CSR row pointers (the diagonal-completed
    /// pattern of `A`).
    row_ptr: Vec<usize>,
    /// Combined-factor CSR column indices.
    col_idx: Vec<u32>,
    /// Position of `a_ii` within row `i` of the combined factor.
    diag_pos: Vec<usize>,
    /// Combined position → position in `A`'s CSC value array;
    /// `usize::MAX` marks a diagonal the completion inserted (its seed
    /// value is `pivot_fill`, not an entry of `A`).
    from_a: Vec<usize>,
    /// `L` CSC value position → combined position; `usize::MAX` marks
    /// the unit diagonal (always exactly `1.0`).
    l_from: Vec<usize>,
    /// `U` CSC value position → combined position.
    u_from: Vec<usize>,
    /// The pivot repair value the original factorization used.
    pivot_fill: f64,
    /// `A`'s stored-entry count, part of the structure-identity check.
    a_nnz: usize,
}

impl ElimPattern {
    /// Verify `a` has exactly the recorded sparsity pattern — an exact
    /// O(nnz) check, not a hash compare. Every recorded `A`-position
    /// must still name the same `(row, col)` in `a`, and `a` must have
    /// no entries beyond the recorded ones.
    fn check_structure(&self, a: &CscMatrix) -> Result<(), MatrixError> {
        let drift = MatrixError::StructureMismatch { what: "ILU(0) elimination" };
        if a.n() != self.n || a.nnz() != self.a_nnz {
            return Err(drift);
        }
        let col_ptr = a.col_ptr();
        let row_idx = a.row_idx();
        let mut mapped = 0usize;
        for i in 0..self.n {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let p = self.from_a[k];
                if p == usize::MAX {
                    continue; // inserted diagonal: no counterpart in A
                }
                let j = self.col_idx[k] as usize;
                if p < col_ptr[j] || p >= col_ptr[j + 1] || row_idx[p] as usize != i {
                    return Err(drift);
                }
                mapped += 1;
            }
        }
        // the map is injective ((row, col) pairs are unique), so full
        // coverage of a's entries follows from the count alone
        if mapped != a.nnz() {
            return Err(drift);
        }
        Ok(())
    }
}

/// ILU(0): incomplete LU restricted to the sparsity pattern of `A`.
///
/// Standard IKJ formulation on CSR. Zero or absent diagonal pivots are
/// replaced by `pivot_fill` (a small diagonal shift keeps the factor
/// solvable; the paper's experiments only need structural fidelity).
///
/// # Errors
/// A zero or non-finite `pivot_fill` is rejected as
/// [`MatrixError::InvalidArgument`] — zero would reintroduce the
/// singular pivots the fill exists to repair, and a NaN/∞ fill would
/// poison every downstream elimination; both are caller mistakes, not
/// internal invariants, so they surface as typed errors rather than
/// panics.
pub fn ilu0(a: &CscMatrix, pivot_fill: f64) -> Result<LuFactors, MatrixError> {
    if pivot_fill == 0.0 || !pivot_fill.is_finite() {
        return Err(MatrixError::InvalidArgument { what: "pivot_fill", value: pivot_fill });
    }
    let n = a.n();
    // Ensure a full diagonal so pivots exist in the pattern.
    let csr = CsrMatrix::from_csc(&with_full_diagonal(a, pivot_fill));
    let row_ptr = csr.row_ptr().to_vec();
    let col_idx = csr.col_idx().to_vec();
    let mut val = csr.values().to_vec();

    // diag_pos[i] = position of a_ii within row i.
    let mut diag_pos = vec![usize::MAX; n];
    for i in 0..n {
        for k in row_ptr[i]..row_ptr[i + 1] {
            if col_idx[k] as usize == i {
                diag_pos[i] = k;
                break;
            }
        }
        if diag_pos[i] == usize::MAX {
            return Err(MatrixError::MissingDiagonal(i));
        }
    }

    // Scatter map: column -> position in the current row (usize::MAX = absent).
    let mut pos_of = vec![usize::MAX; n];
    for i in 0..n {
        let (lo, hi) = (row_ptr[i], row_ptr[i + 1]);
        for k in lo..hi {
            pos_of[col_idx[k] as usize] = k;
        }
        // Eliminate using rows k < i that appear in row i's pattern.
        for kk in lo..hi {
            let k = col_idx[kk] as usize;
            if k >= i {
                break; // columns sorted: done with the strictly-lower part
            }
            let mut pivot = val[diag_pos[k]];
            if pivot == 0.0 {
                pivot = pivot_fill;
            }
            let factor = val[kk] / pivot;
            val[kk] = factor;
            // Row k's upper part updates row i where the pattern matches.
            for kj in diag_pos[k] + 1..row_ptr[k + 1] {
                let j = col_idx[kj] as usize;
                let p = pos_of[j];
                if p != usize::MAX {
                    val[p] -= factor * val[kj];
                }
            }
        }
        if val[diag_pos[i]] == 0.0 {
            val[diag_pos[i]] = pivot_fill;
        }
        for k in lo..hi {
            pos_of[col_idx[k] as usize] = usize::MAX;
        }
    }

    // Record where each combined entry came from in A — the numeric
    // seed map a refactorization replays instead of re-matching the
    // patterns.
    let from_a = map_from_a(a, n, &row_ptr, &col_idx);

    // Split the combined factor into L (unit diag) and U.
    let combined = CsrMatrix::try_new(n, row_ptr.clone(), col_idx.clone(), val)?.to_csc();
    let mut l = combined.triangular_part(Triangle::Lower, 1.0);
    // Force L's diagonal to exactly 1 (unit lower factor).
    set_diagonal(&mut l, 1.0);
    let u = combined.triangular_part(Triangle::Upper, pivot_fill);
    l.validate_triangular(Triangle::Lower)?;
    u.validate_triangular(Triangle::Upper)?;
    let l_from = map_into_combined(&l, &row_ptr, &col_idx, true);
    let u_from = map_into_combined(&u, &row_ptr, &col_idx, false);
    let pattern = ElimPattern {
        n,
        row_ptr,
        col_idx,
        diag_pos,
        from_a,
        l_from,
        u_from,
        pivot_fill,
        a_nnz: a.nnz(),
    };
    Ok(LuFactors { l, u, pattern })
}

/// Recompute the values of an existing ILU(0) factorization for a
/// matrix with the **same sparsity pattern** but new values — the
/// time-stepping refresh path.
///
/// Replays the numeric IKJ elimination over the pattern [`ilu0`]
/// recorded (combined structure, diagonal positions, scatter maps), so
/// no symbolic work happens: no diagonal search, no pattern matching,
/// no triangular re-split, no validation sweep of the outputs. The
/// refreshed `f.l`/`f.u` values are **bit-identical** to a fresh
/// `ilu0(a, pivot_fill)` with the original `pivot_fill`, including the
/// zero-pivot repairs.
///
/// # Errors
/// A matrix whose dimension or sparsity pattern differs from the
/// recorded one is rejected as [`MatrixError::StructureMismatch`]
/// **before** any factor value is touched, so `f` is left exactly as
/// it was on failure (strong exception guarantee).
pub fn ilu0_refactor(f: &mut LuFactors, a: &CscMatrix) -> Result<(), MatrixError> {
    let LuFactors { l, u, pattern } = f;
    pattern.check_structure(a)?;
    let n = pattern.n;
    let a_vals = a.values();

    // Numeric seed: pull A's values through the recorded map, applying
    // the same diagonal repair the original diagonal completion did
    // (absent diagonal → pivot_fill, present-but-zero → pivot_fill).
    let mut val = vec![0.0f64; pattern.col_idx.len()];
    for i in 0..n {
        for k in pattern.row_ptr[i]..pattern.row_ptr[i + 1] {
            let src = pattern.from_a[k];
            val[k] = if src == usize::MAX { pattern.pivot_fill } else { a_vals[src] };
        }
        let dk = pattern.diag_pos[i];
        if val[dk] == 0.0 {
            val[dk] = pattern.pivot_fill;
        }
    }

    // Replay the elimination — the identical loop `ilu0` runs, over the
    // identical pattern, so every value comes out bit-identical.
    let mut pos_of = vec![usize::MAX; n];
    for i in 0..n {
        let (lo, hi) = (pattern.row_ptr[i], pattern.row_ptr[i + 1]);
        for k in lo..hi {
            pos_of[pattern.col_idx[k] as usize] = k;
        }
        for kk in lo..hi {
            let k = pattern.col_idx[kk] as usize;
            if k >= i {
                break;
            }
            let mut pivot = val[pattern.diag_pos[k]];
            if pivot == 0.0 {
                pivot = pattern.pivot_fill;
            }
            let factor = val[kk] / pivot;
            val[kk] = factor;
            for kj in pattern.diag_pos[k] + 1..pattern.row_ptr[k + 1] {
                let j = pattern.col_idx[kj] as usize;
                let p = pos_of[j];
                if p != usize::MAX {
                    val[p] -= factor * val[kj];
                }
            }
        }
        if val[pattern.diag_pos[i]] == 0.0 {
            val[pattern.diag_pos[i]] = pattern.pivot_fill;
        }
        for k in lo..hi {
            pos_of[pattern.col_idx[k] as usize] = usize::MAX;
        }
    }

    // Scatter the combined values into the split factors in place.
    for (dst, &src) in l.values_mut().iter_mut().zip(&pattern.l_from) {
        *dst = if src == usize::MAX { 1.0 } else { val[src] };
    }
    for (dst, &src) in u.values_mut().iter_mut().zip(&pattern.u_from) {
        *dst = if src == usize::MAX { pattern.pivot_fill } else { val[src] };
    }
    Ok(())
}

/// For each combined-CSR position, the position of the same `(row,
/// col)` entry in `a`'s CSC value array (`usize::MAX` for diagonals the
/// completion inserted).
fn map_from_a(a: &CscMatrix, n: usize, row_ptr: &[usize], col_idx: &[u32]) -> Vec<usize> {
    let col_ptr = a.col_ptr();
    let row_idx = a.row_idx();
    let mut from_a = vec![usize::MAX; col_idx.len()];
    for i in 0..n {
        for k in row_ptr[i]..row_ptr[i + 1] {
            let j = col_idx[k] as usize;
            let col = &row_idx[col_ptr[j]..col_ptr[j + 1]];
            if let Ok(off) = col.binary_search(&(i as u32)) {
                from_a[k] = col_ptr[j] + off;
            } else {
                debug_assert_eq!(i, j, "only diagonals are inserted by completion");
            }
        }
    }
    from_a
}

/// For each CSC value position of a split factor, the combined-CSR
/// position holding the same `(row, col)` entry; for the unit-lower
/// factor the diagonal maps to `usize::MAX` (it is pinned to `1.0`,
/// not read from the combined factor).
fn map_into_combined(
    factor: &CscMatrix,
    row_ptr: &[usize],
    col_idx: &[u32],
    unit_diagonal: bool,
) -> Vec<usize> {
    let col_ptr = factor.col_ptr();
    let row_idx = factor.row_idx();
    let mut map = vec![usize::MAX; factor.nnz()];
    for j in 0..factor.n() {
        for p in col_ptr[j]..col_ptr[j + 1] {
            let i = row_idx[p] as usize;
            if unit_diagonal && i == j {
                continue;
            }
            let row = &col_idx[row_ptr[i]..row_ptr[i + 1]];
            let off = row
                .binary_search(&(j as u32))
                .expect("split factor entries exist in the combined pattern");
            map[p] = row_ptr[i] + off;
        }
    }
    map
}

/// Findings per category an audit keeps before it stops recording (the
/// counts stay exact; only the located examples are capped).
pub const AUDIT_MAX_FINDINGS: usize = 16;

/// Result of a build-time numeric/structural sweep over a factor —
/// the guardrail between a factorization and the thousands of warm
/// solves amortized over it. A NaN produced by one bad pivot poisons
/// *every* subsequent solve bit-identically, so the sweep runs once at
/// engine build (where the cost is amortized away) instead of per
/// solve.
///
/// Findings are recorded up to [`AUDIT_MAX_FINDINGS`] per category
/// (`truncated` reports whether any list hit the cap); the `*_count`
/// totals are always exact.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FactorAudit {
    /// Diagonal entries that are exactly zero (singular pivot rows).
    pub zero_diagonals: Vec<usize>,
    /// Diagonal entries that are NaN or infinite.
    pub nonfinite_diagonals: Vec<usize>,
    /// Off-diagonal `(row, col)` entries that are NaN or infinite.
    pub nonfinite_offdiagonals: Vec<(usize, usize)>,
    /// `(row, col)` pairs stored more than once within a column —
    /// structurally malformed storage that would double-count updates.
    pub duplicate_entries: Vec<(usize, usize)>,
    /// Exact total of offending entries across all categories (the
    /// example lists above are capped, this count is not).
    pub finding_count: usize,
    /// Whether any example list hit [`AUDIT_MAX_FINDINGS`].
    pub truncated: bool,
}

impl FactorAudit {
    /// `true` when the sweep found nothing — the factor is safe to
    /// amortize warm solves over.
    pub fn is_clean(&self) -> bool {
        self.finding_count == 0
    }

    /// The most severe finding as a typed error (`None` when clean):
    /// non-finite values first (they poison silently), then zero
    /// diagonals (they fail loudly at solve time), then duplicates.
    pub fn first_error(&self) -> Option<MatrixError> {
        if let Some(&i) = self.nonfinite_diagonals.first() {
            return Some(MatrixError::NonFiniteValue { row: i, col: i });
        }
        if let Some(&(r, c)) = self.nonfinite_offdiagonals.first() {
            return Some(MatrixError::NonFiniteValue { row: r, col: c });
        }
        if let Some(&i) = self.zero_diagonals.first() {
            return Some(MatrixError::ZeroDiagonal(i));
        }
        if let Some(&(_, c)) = self.duplicate_entries.first() {
            return Some(MatrixError::UnsortedIndices { outer: c });
        }
        None
    }
}

/// Sweep a (triangular) factor for the numeric and structural hazards
/// that would poison warm solves: zero or non-finite diagonals,
/// non-finite off-diagonals, and duplicated entries within a column.
/// One `O(nnz)` pass; see [`FactorAudit`] for the reporting contract.
pub fn audit_factor(m: &CscMatrix) -> FactorAudit {
    let n = m.n();
    let mut audit = FactorAudit::default();
    let record_cap = |list_len: usize| list_len < AUDIT_MAX_FINDINGS;
    for j in 0..n {
        let mut prev_row: Option<u32> = None;
        for (r, v) in m.col(j) {
            let row = r as usize;
            if !v.is_finite() {
                audit.finding_count += 1;
                if row == j {
                    if record_cap(audit.nonfinite_diagonals.len()) {
                        audit.nonfinite_diagonals.push(row);
                    } else {
                        audit.truncated = true;
                    }
                } else if record_cap(audit.nonfinite_offdiagonals.len()) {
                    audit.nonfinite_offdiagonals.push((row, j));
                } else {
                    audit.truncated = true;
                }
            } else if row == j && v == 0.0 {
                audit.finding_count += 1;
                if record_cap(audit.zero_diagonals.len()) {
                    audit.zero_diagonals.push(row);
                } else {
                    audit.truncated = true;
                }
            }
            if prev_row == Some(r) {
                audit.finding_count += 1;
                if record_cap(audit.duplicate_entries.len()) {
                    audit.duplicate_entries.push((row, j));
                } else {
                    audit.truncated = true;
                }
            }
            prev_row = Some(r);
        }
    }
    audit
}

/// Copy of `a` with every missing diagonal entry inserted as `fill`.
fn with_full_diagonal(a: &CscMatrix, fill: f64) -> CscMatrix {
    let n = a.n();
    let mut b = crate::build::TripletBuilder::with_capacity(n, a.nnz() + n);
    for j in 0..n {
        let mut saw = false;
        for (r, v) in a.col(j) {
            if r as usize == j {
                saw = true;
                b.push(r as usize, j, if v == 0.0 { fill } else { v });
            } else {
                b.push(r as usize, j, v);
            }
        }
        if !saw {
            b.push(j, j, fill);
        }
    }
    b.build().expect("diagonal completion preserves validity")
}

fn set_diagonal(m: &mut CscMatrix, v: f64) {
    let n = m.n();
    for j in 0..n {
        let lo = m.col_ptr()[j];
        if m.row_idx()[lo] as usize == j {
            m.values_mut()[lo] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::TripletBuilder;
    use crate::gen;

    /// Dense-LU reference on a small matrix, no pivoting, to compare
    /// ILU(0) against on a full-pattern input (where ILU(0) == LU).
    fn dense_lu(a: &CscMatrix) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let n = a.n();
        let mut m = vec![vec![0.0; n]; n];
        for j in 0..n {
            for (r, v) in a.col(j) {
                m[r as usize][j] = v;
            }
        }
        for k in 0..n {
            for i in k + 1..n {
                m[i][k] /= m[k][k];
                for j in k + 1..n {
                    m[i][j] -= m[i][k] * m[k][j];
                }
            }
        }
        let mut l = vec![vec![0.0; n]; n];
        let mut u = vec![vec![0.0; n]; n];
        for i in 0..n {
            l[i][i] = 1.0;
            for j in 0..n {
                if j < i {
                    l[i][j] = m[i][j];
                } else {
                    u[i][j] = m[i][j];
                }
            }
        }
        (l, u)
    }

    fn dense_full(n: usize, seed: u64) -> CscMatrix {
        let mut rng = desim::Pcg32::seed_from_u64(seed);
        let mut b = TripletBuilder::new(n);
        for i in 0..n {
            for j in 0..n {
                let v = if i == j {
                    n as f64 + rng.next_f64() // diagonally dominant
                } else {
                    rng.range_f64(-1.0, 1.0)
                };
                b.push(i, j, v);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn ilu0_on_full_pattern_equals_lu() {
        let a = dense_full(8, 42);
        let f = ilu0(&a, 1e-8).unwrap();
        let (dl, du) = dense_lu(&a);
        for i in 0..8 {
            for j in 0..8 {
                let lv = f.l.get(i, j).unwrap_or(0.0);
                let uv = f.u.get(i, j).unwrap_or(0.0);
                assert!((lv - dl[i][j]).abs() < 1e-9, "L[{i}][{j}]: {lv} vs {}", dl[i][j]);
                assert!((uv - du[i][j]).abs() < 1e-9, "U[{i}][{j}]: {uv} vs {}", du[i][j]);
            }
        }
    }

    #[test]
    fn ilu0_preserves_pattern() {
        let a = gen::grid_laplacian(8, 8);
        let f = ilu0(&a, 1e-8).unwrap();
        // L ∪ U pattern (minus the unit diagonal of L) must be within A's
        // pattern plus the diagonal.
        for j in 0..a.n() {
            for (r, _) in f.l.col(j) {
                let r = r as usize;
                assert!(r == j || a.get(r, j).is_some(), "fill-in at L({r},{j}) violates ILU(0)");
            }
            for (r, _) in f.u.col(j) {
                let r = r as usize;
                assert!(r == j || a.get(r, j).is_some());
            }
        }
    }

    #[test]
    fn ilu0_factors_are_solvable_triangles() {
        let a = gen::grid_laplacian(10, 7);
        let f = ilu0(&a, 1e-8).unwrap();
        f.l.validate_triangular(Triangle::Lower).unwrap();
        f.u.validate_triangular(Triangle::Upper).unwrap();
        assert!(f.l.col(0).next().unwrap().1 == 1.0, "unit diagonal");
    }

    #[test]
    fn ilu0_exact_for_tridiagonal() {
        // Tridiagonal: no fill-in exists, so ILU(0) is the exact LU and
        // L·U must reproduce A.
        let n = 16;
        let mut b = TripletBuilder::new(n);
        for i in 0..n {
            b.push(i, i, 4.0);
            if i > 0 {
                b.push(i, i - 1, -1.0);
                b.push(i - 1, i, -1.0);
            }
        }
        let a = b.build().unwrap();
        let f = ilu0(&a, 1e-8).unwrap();
        // multiply L*U densely and compare
        let n = a.n();
        for i in 0..n {
            for j in 0..n {
                let mut lu = 0.0;
                for k in 0..n {
                    lu += f.l.get(i, k).unwrap_or(0.0) * f.u.get(k, j).unwrap_or(0.0);
                }
                let av = a.get(i, j).unwrap_or(0.0);
                assert!((lu - av).abs() < 1e-10, "LU({i},{j})={lu} vs A={av}");
            }
        }
    }

    #[test]
    fn audit_passes_clean_factors() {
        let a = gen::grid_laplacian(8, 8);
        let f = ilu0(&a, 1e-8).unwrap();
        let audit = audit_factor(&f.l);
        assert!(audit.is_clean());
        assert!(audit.first_error().is_none());
        assert!(!audit.truncated);
    }

    #[test]
    fn audit_finds_nonfinite_and_zero_diagonals() {
        let mut b = TripletBuilder::new(3);
        b.push(0, 0, 1.0);
        b.push(1, 0, f64::NAN);
        b.push(1, 1, 0.0);
        b.push(2, 2, f64::INFINITY);
        let m = b.build().unwrap();
        let audit = audit_factor(&m);
        assert_eq!(audit.zero_diagonals, vec![1]);
        assert_eq!(audit.nonfinite_diagonals, vec![2]);
        assert_eq!(audit.nonfinite_offdiagonals, vec![(1, 0)]);
        assert_eq!(audit.finding_count, 3);
        // severity order: non-finite beats zero-diagonal
        assert!(matches!(audit.first_error(), Some(MatrixError::NonFiniteValue { .. })));
    }

    #[test]
    fn audit_counts_past_the_example_cap() {
        let n = AUDIT_MAX_FINDINGS + 8;
        let mut b = TripletBuilder::new(n);
        for i in 0..n {
            b.push(i, i, f64::NAN);
        }
        let m = b.build().unwrap();
        let audit = audit_factor(&m);
        assert_eq!(audit.nonfinite_diagonals.len(), AUDIT_MAX_FINDINGS);
        assert_eq!(audit.finding_count, n, "counts stay exact past the cap");
        assert!(audit.truncated);
    }

    #[test]
    fn ilu0_rejects_bad_pivot_fill() {
        let a = gen::grid_laplacian(4, 4);
        for bad in [0.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = ilu0(&a, bad).unwrap_err();
            assert!(
                matches!(err, MatrixError::InvalidArgument { what: "pivot_fill", .. }),
                "pivot_fill={bad}: {err:?}"
            );
        }
        // valid fills (including negative) still factor
        ilu0(&a, -1e-8).unwrap();
    }

    #[test]
    fn refactor_matches_fresh_ilu0_bitwise() {
        let a1 = gen::grid_laplacian(10, 9);
        let mut a2 = a1.clone();
        for (i, v) in a2.values_mut().iter_mut().enumerate() {
            *v *= 1.0 + 0.01 * ((i % 7) as f64);
        }
        let mut f = ilu0(&a1, 1e-8).unwrap();
        ilu0_refactor(&mut f, &a2).unwrap();
        let fresh = ilu0(&a2, 1e-8).unwrap();
        assert_eq!(f.l.values(), fresh.l.values(), "L values must be bit-identical");
        assert_eq!(f.u.values(), fresh.u.values(), "U values must be bit-identical");
        // refreshing back to the original values restores the original factor
        let orig = ilu0(&a1, 1e-8).unwrap();
        ilu0_refactor(&mut f, &a1).unwrap();
        assert_eq!(f.l.values(), orig.l.values());
        assert_eq!(f.u.values(), orig.u.values());
    }

    #[test]
    fn refactor_replays_pivot_repair() {
        // missing diagonal (1,1) plus a value refresh that zeroes the
        // (0,0) pivot: both repairs must replay exactly as a fresh
        // factorization would perform them
        let build = |d00: f64| {
            let mut b = TripletBuilder::new(3);
            b.push(0, 0, d00);
            b.push(1, 0, 1.0);
            b.push(2, 2, 3.0);
            b.build().unwrap()
        };
        let a1 = build(2.0);
        let a2 = build(0.0);
        let mut f = ilu0(&a1, 1e-4).unwrap();
        ilu0_refactor(&mut f, &a2).unwrap();
        let fresh = ilu0(&a2, 1e-4).unwrap();
        assert_eq!(f.l.values(), fresh.l.values());
        assert_eq!(f.u.values(), fresh.u.values());
        f.l.validate_triangular(Triangle::Lower).unwrap();
        f.u.validate_triangular(Triangle::Upper).unwrap();
    }

    #[test]
    fn refactor_rejects_pattern_drift_untouched() {
        let a = gen::grid_laplacian(8, 8);
        let mut f = ilu0(&a, 1e-8).unwrap();
        let (l_before, u_before) = (f.l.values().to_vec(), f.u.values().to_vec());
        // different dimension and different same-dimension pattern both drift
        for other in [gen::grid_laplacian(8, 7), gen::banded_lower(64, 5, 3.0, 9)] {
            let err = ilu0_refactor(&mut f, &other).unwrap_err();
            assert!(matches!(err, MatrixError::StructureMismatch { .. }), "{err:?}");
            assert!(err.to_string().contains("identical structure"), "{err}");
        }
        assert_eq!(f.l.values(), &l_before[..], "failed refresh must not touch L");
        assert_eq!(f.u.values(), &u_before[..], "failed refresh must not touch U");
    }

    #[test]
    fn ilu0_handles_missing_diagonal() {
        let mut b = TripletBuilder::new(3);
        b.push(0, 0, 2.0);
        b.push(1, 0, 1.0);
        // (1,1) missing
        b.push(2, 2, 3.0);
        let a = b.build().unwrap();
        let f = ilu0(&a, 1e-4).unwrap();
        f.l.validate_triangular(Triangle::Lower).unwrap();
        f.u.validate_triangular(Triangle::Upper).unwrap();
    }
}
