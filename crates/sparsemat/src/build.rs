//! COO (triplet) assembly into validated CSC.
//!
//! The builder accepts entries in any order, sums duplicates (the
//! Matrix Market convention for assembled matrices) and produces a
//! sorted, validated [`CscMatrix`].

use crate::csc::CscMatrix;
use crate::error::MatrixError;
use crate::Idx;

/// Accumulates `(row, col, value)` triplets for an `n × n` matrix.
#[derive(Debug, Clone)]
pub struct TripletBuilder {
    n: usize,
    entries: Vec<(Idx, Idx, f64)>, // (col, row, value) for column-major sort
}

impl TripletBuilder {
    /// New builder for an `n × n` matrix.
    pub fn new(n: usize) -> Self {
        TripletBuilder { n, entries: Vec::new() }
    }

    /// New builder with capacity for `cap` triplets.
    pub fn with_capacity(n: usize, cap: usize) -> Self {
        TripletBuilder { n, entries: Vec::with_capacity(cap) }
    }

    /// Dimension this builder assembles for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of triplets pushed so far (before duplicate summing).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no triplets have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Add one entry; duplicates are summed at build time.
    #[inline]
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        self.entries.push((col as Idx, row as Idx, value));
    }

    /// Assemble into CSC: sorts column-major, sums duplicates, validates.
    pub fn build(mut self) -> Result<CscMatrix, MatrixError> {
        for &(c, r, _) in &self.entries {
            if r as usize >= self.n || c as usize >= self.n {
                return Err(MatrixError::IndexOutOfBounds {
                    row: r as usize,
                    col: c as usize,
                    n: self.n,
                });
            }
        }
        self.entries.sort_unstable_by_key(|a| (a.0, a.1));

        let mut col_ptr = vec![0usize; self.n + 1];
        let mut row_idx: Vec<Idx> = Vec::with_capacity(self.entries.len());
        let mut values: Vec<f64> = Vec::with_capacity(self.entries.len());

        // Sorted column-major, so duplicates are adjacent.
        let mut prev: Option<(Idx, Idx)> = None;
        for &(c, r, v) in &self.entries {
            if prev == Some((c, r)) {
                *values.last_mut().expect("duplicate follows an entry") += v;
            } else {
                row_idx.push(r);
                values.push(v);
                col_ptr[c as usize + 1] += 1;
                prev = Some((c, r));
            }
        }
        for j in 0..self.n {
            col_ptr[j + 1] += col_ptr[j];
        }
        CscMatrix::try_new(self.n, col_ptr, row_idx, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_sorted_csc() {
        let mut b = TripletBuilder::new(3);
        b.push(2, 1, 4.0);
        b.push(0, 0, 1.0);
        b.push(1, 1, 3.0);
        b.push(2, 0, 2.0);
        let m = b.build().unwrap();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(0, 0), Some(1.0));
        assert_eq!(m.get(2, 0), Some(2.0));
        assert_eq!(m.get(1, 1), Some(3.0));
        assert_eq!(m.get(2, 1), Some(4.0));
        m.validate().unwrap();
    }

    #[test]
    fn sums_duplicates() {
        let mut b = TripletBuilder::new(2);
        b.push(1, 0, 1.0);
        b.push(1, 0, 2.5);
        b.push(0, 0, 1.0);
        let m = b.build().unwrap();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(1, 0), Some(3.5));
    }

    #[test]
    fn duplicate_detection_does_not_merge_across_columns() {
        // Same row index, adjacent columns — must stay distinct entries.
        let mut b = TripletBuilder::new(3);
        b.push(2, 0, 1.0);
        b.push(2, 1, 2.0);
        b.push(2, 2, 3.0);
        let m = b.build().unwrap();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(2, 0), Some(1.0));
        assert_eq!(m.get(2, 1), Some(2.0));
        assert_eq!(m.get(2, 2), Some(3.0));
    }

    #[test]
    fn rejects_out_of_bounds() {
        let mut b = TripletBuilder::new(2);
        b.push(2, 0, 1.0);
        assert!(matches!(b.build(), Err(MatrixError::IndexOutOfBounds { .. })));
    }

    #[test]
    fn empty_build_is_valid() {
        let m = TripletBuilder::new(3).build().unwrap();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.n(), 3);
    }

    #[test]
    fn capacity_and_len() {
        let mut b = TripletBuilder::with_capacity(4, 16);
        assert!(b.is_empty());
        b.push(0, 0, 1.0);
        assert_eq!(b.len(), 1);
        assert_eq!(b.n(), 4);
    }
}
