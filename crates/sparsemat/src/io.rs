//! Matrix Market (`.mtx`) reader and writer.
//!
//! Supports the coordinate format with `real` / `integer` / `pattern`
//! fields and `general` / `symmetric` symmetry — enough to load the
//! SuiteSparse matrices the paper evaluates when they are available on
//! disk. Pattern entries read as `1.0`; symmetric inputs are expanded
//! to full storage.

use crate::build::TripletBuilder;
use crate::csc::CscMatrix;
use crate::error::MatrixError;
use std::io::{BufRead, BufReader, Read, Write};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    Real,
    Integer,
    Pattern,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Symmetry {
    General,
    Symmetric,
    SkewSymmetric,
}

/// Read a Matrix Market coordinate matrix from any reader.
///
/// Rectangular inputs are rejected (the solvers need square systems).
pub fn read_matrix_market<R: Read>(reader: R) -> Result<CscMatrix, MatrixError> {
    let mut lines = BufReader::new(reader).lines();

    let header = lines
        .next()
        .ok_or_else(|| MatrixError::Parse("empty file".into()))?
        .map_err(MatrixError::from)?;
    let h: Vec<String> = header.split_whitespace().map(|t| t.to_ascii_lowercase()).collect();
    if h.len() < 5 || h[0] != "%%matrixmarket" || h[1] != "matrix" {
        return Err(MatrixError::Parse(format!("bad header: {header}")));
    }
    if h[2] != "coordinate" {
        return Err(MatrixError::Parse(format!("unsupported format: {}", h[2])));
    }
    let field = match h[3].as_str() {
        "real" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        other => return Err(MatrixError::Parse(format!("unsupported field: {other}"))),
    };
    let symmetry = match h[4].as_str() {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        "skew-symmetric" => Symmetry::SkewSymmetric,
        other => return Err(MatrixError::Parse(format!("unsupported symmetry: {other}"))),
    };

    // Skip comments, find the size line.
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line.map_err(MatrixError::from)?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some(t.to_string());
        break;
    }
    let size_line = size_line.ok_or_else(|| MatrixError::Parse("missing size line".into()))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse::<usize>().map_err(|e| MatrixError::Parse(format!("size: {e}"))))
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(MatrixError::Parse(format!("bad size line: {size_line}")));
    }
    let (rows, cols, nnz) = (dims[0], dims[1], dims[2]);
    if rows != cols {
        return Err(MatrixError::Parse(format!(
            "matrix is {rows}x{cols}; only square systems are supported"
        )));
    }

    let mut b = TripletBuilder::with_capacity(
        rows,
        if symmetry == Symmetry::General { nnz } else { nnz * 2 },
    );
    let mut seen = 0usize;
    for line in lines {
        let line = line.map_err(MatrixError::from)?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let r: usize = it
            .next()
            .ok_or_else(|| MatrixError::Parse("short entry line".into()))?
            .parse()
            .map_err(|e| MatrixError::Parse(format!("row: {e}")))?;
        let c: usize = it
            .next()
            .ok_or_else(|| MatrixError::Parse("short entry line".into()))?
            .parse()
            .map_err(|e| MatrixError::Parse(format!("col: {e}")))?;
        let v: f64 = match field {
            Field::Pattern => 1.0,
            Field::Real | Field::Integer => it
                .next()
                .ok_or_else(|| MatrixError::Parse("missing value".into()))?
                .parse()
                .map_err(|e| MatrixError::Parse(format!("value: {e}")))?,
        };
        if r == 0 || c == 0 {
            return Err(MatrixError::Parse("matrix market indices are 1-based".into()));
        }
        let (r0, c0) = (r - 1, c - 1);
        b.push(r0, c0, v);
        match symmetry {
            Symmetry::General => {}
            Symmetry::Symmetric => {
                if r0 != c0 {
                    b.push(c0, r0, v);
                }
            }
            Symmetry::SkewSymmetric => {
                if r0 == c0 {
                    // A = -Aᵀ forces a zero diagonal; a nonzero
                    // explicit diagonal entry contradicts the declared
                    // symmetry, so accepting it would silently build a
                    // matrix that is not skew-symmetric
                    if v != 0.0 {
                        return Err(MatrixError::Parse(format!(
                            "skew-symmetric matrix has nonzero diagonal entry {v} at ({r}, {c})"
                        )));
                    }
                } else {
                    b.push(c0, r0, -v);
                }
            }
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(MatrixError::Parse(format!("expected {nnz} entries, found {seen}")));
    }
    b.build()
}

/// Read a Matrix Market file from a path.
pub fn read_matrix_market_file(path: &std::path::Path) -> Result<CscMatrix, MatrixError> {
    read_matrix_market(std::fs::File::open(path)?)
}

/// Write `m` in Matrix Market coordinate/real/general format.
pub fn write_matrix_market<W: Write>(m: &CscMatrix, mut w: W) -> Result<(), MatrixError> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by sparsemat")?;
    writeln!(w, "{} {} {}", m.n(), m.n(), m.nnz())?;
    for j in 0..m.n() {
        for (r, v) in m.col(j) {
            writeln!(w, "{} {} {:.17e}", r + 1, j + 1, v)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "%%MatrixMarket matrix coordinate real general\n\
% a comment\n\
3 3 4\n\
1 1 2.0\n\
2 1 -1.0\n\
2 2 3.0\n\
3 3 4.5\n";

    #[test]
    fn reads_general_real() {
        let m = read_matrix_market(SAMPLE.as_bytes()).unwrap();
        assert_eq!(m.n(), 3);
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(0, 0), Some(2.0));
        assert_eq!(m.get(1, 0), Some(-1.0));
        assert_eq!(m.get(2, 2), Some(4.5));
    }

    #[test]
    fn reads_pattern() {
        let src = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 1\n";
        let m = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(m.get(0, 0), Some(1.0));
        assert_eq!(m.get(1, 0), Some(1.0));
    }

    #[test]
    fn expands_symmetric() {
        let src = "%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n1 1 5.0\n2 1 7.0\n";
        let m = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 1), Some(7.0));
        assert_eq!(m.get(1, 0), Some(7.0));
    }

    #[test]
    fn expands_skew_symmetric() {
        let src = "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 7.0\n";
        let m = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(m.get(1, 0), Some(7.0));
        assert_eq!(m.get(0, 1), Some(-7.0));
    }

    #[test]
    fn rejects_nonzero_skew_symmetric_diagonal() {
        // regression: a nonzero explicit diagonal entry used to be
        // accepted silently, producing a matrix with A != -Aᵀ
        let src = "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 2\n1 1 3.0\n2 1 7.0\n";
        let err = read_matrix_market(src.as_bytes()).unwrap_err();
        assert!(matches!(err, MatrixError::Parse(ref msg) if msg.contains("skew-symmetric")));
        // an explicit *zero* diagonal entry is consistent and stays legal
        let src = "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 2\n1 1 0.0\n2 1 7.0\n";
        let m = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(m.get(1, 0), Some(7.0));
        assert_eq!(m.get(0, 1), Some(-7.0));
    }

    #[test]
    fn roundtrip_write_read() {
        let m = read_matrix_market(SAMPLE.as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_matrix_market(&m, &mut buf).unwrap();
        let m2 = read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(m, m2);
    }

    #[test]
    fn rejects_rectangular() {
        let src = "%%MatrixMarket matrix coordinate real general\n2 3 1\n1 1 1.0\n";
        assert!(read_matrix_market(src.as_bytes()).is_err());
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_matrix_market("%%NotMM foo\n1 1 0\n".as_bytes()).is_err());
        assert!(read_matrix_market(
            "%%MatrixMarket matrix array real general\n1 1\n1.0\n".as_bytes()
        )
        .is_err());
    }

    #[test]
    fn rejects_wrong_count() {
        let src = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_matrix_market(src.as_bytes()).is_err());
    }

    #[test]
    fn rejects_zero_based_indices() {
        let src = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        assert!(read_matrix_market(src.as_bytes()).is_err());
    }

    #[test]
    fn integer_field_parses() {
        let src = "%%MatrixMarket matrix coordinate integer general\n2 2 1\n2 1 7\n";
        let m = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(m.get(1, 0), Some(7.0));
    }
}
