//! Error types for matrix construction, validation and I/O.

use std::fmt;

/// Everything that can go wrong building, validating or reading a
/// sparse matrix.
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixError {
    /// An index exceeded the declared dimension.
    IndexOutOfBounds {
        /// Offending row index.
        row: usize,
        /// Offending column index.
        col: usize,
        /// Declared dimension.
        n: usize,
    },
    /// `col_ptr`/`row_ptr` is not monotonically non-decreasing or has
    /// the wrong length/terminator.
    MalformedPointers(String),
    /// Indices within a column/row are unsorted or duplicated.
    UnsortedIndices {
        /// The column (CSC) or row (CSR) where the violation occurred.
        outer: usize,
    },
    /// A triangular matrix is missing a diagonal entry.
    MissingDiagonal(usize),
    /// A diagonal entry is exactly zero — the system is singular.
    ZeroDiagonal(usize),
    /// The matrix is not triangular in the direction requested.
    NotTriangular {
        /// Which triangle was expected.
        expected: &'static str,
        /// Row of the violating entry.
        row: usize,
        /// Column of the violating entry.
        col: usize,
    },
    /// A stored value is NaN or infinite — a factor carrying it would
    /// poison every solve that touches the entry. Surfaced by the
    /// build-time [`crate::factor::audit_factor`] sweep.
    NonFiniteValue {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
    },
    /// A matrix handed to a value-refresh path does not have the
    /// sparsity pattern the recorded analysis was built for — in-place
    /// refresh requires an identical structure.
    StructureMismatch {
        /// Which recorded pattern the matrix drifted from.
        what: &'static str,
    },
    /// A caller-supplied scalar argument (e.g. the ILU(0) pivot fill)
    /// is outside its valid domain.
    InvalidArgument {
        /// Which argument was rejected.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// Matrix Market parsing failure.
    Parse(String),
    /// Underlying I/O failure (message only, to keep the error `Clone`).
    Io(String),
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::IndexOutOfBounds { row, col, n } => {
                write!(f, "index ({row}, {col}) out of bounds for dimension {n}")
            }
            MatrixError::MalformedPointers(msg) => write!(f, "malformed pointer array: {msg}"),
            MatrixError::UnsortedIndices { outer } => {
                write!(f, "unsorted or duplicate indices in column/row {outer}")
            }
            MatrixError::MissingDiagonal(i) => write!(f, "missing diagonal entry at {i}"),
            MatrixError::ZeroDiagonal(i) => write!(f, "zero diagonal entry at {i} (singular)"),
            MatrixError::NotTriangular { expected, row, col } => {
                write!(f, "entry ({row}, {col}) violates {expected} triangular structure")
            }
            MatrixError::NonFiniteValue { row, col } => {
                write!(f, "non-finite value at ({row}, {col}) would poison every dependent solve")
            }
            MatrixError::StructureMismatch { what } => {
                write!(f, "sparsity pattern drifted from the recorded {what} pattern — in-place refresh requires an identical structure")
            }
            MatrixError::InvalidArgument { what, value } => {
                write!(f, "invalid {what}: {value} (must be finite and nonzero)")
            }
            MatrixError::Parse(msg) => write!(f, "matrix market parse error: {msg}"),
            MatrixError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for MatrixError {}

impl From<std::io::Error> for MatrixError {
    fn from(e: std::io::Error) -> Self {
        MatrixError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = MatrixError::IndexOutOfBounds { row: 5, col: 6, n: 4 };
        assert!(e.to_string().contains("(5, 6)"));
        let e = MatrixError::ZeroDiagonal(3);
        assert!(e.to_string().contains("singular"));
        let e = MatrixError::NotTriangular { expected: "lower", row: 1, col: 2 };
        assert!(e.to_string().contains("lower"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: MatrixError = io.into();
        assert!(matches!(e, MatrixError::Io(_)));
    }
}
