//! Compressed sparse column storage.
//!
//! CSC is the format the paper's algorithms consume (§II-A): column `j`
//! of a lower-triangular `L` lists, in ascending row order, the
//! diagonal `l_jj` followed by the entries `l_ij (i > j)` that component
//! `x_j` must update. Algorithms 2 and 3 both rely on
//! `val[col_ptr[j]]` being the diagonal, which the sorted-rows
//! invariant guarantees.

use crate::error::MatrixError;
use crate::{Idx, Triangle};

/// A validated compressed-sparse-column matrix over `f64`.
///
/// Invariants (checked by [`CscMatrix::try_new`] / [`CscMatrix::validate`]):
/// * `col_ptr.len() == n + 1`, `col_ptr\[0\] == 0`, non-decreasing,
///   `col_ptr[n] == row_idx.len() == values.len()`;
/// * within each column, row indices are strictly increasing (sorted,
///   no duplicates) and `< n`.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    n: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<Idx>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Build from raw parts, validating every invariant.
    pub fn try_new(
        n: usize,
        col_ptr: Vec<usize>,
        row_idx: Vec<Idx>,
        values: Vec<f64>,
    ) -> Result<Self, MatrixError> {
        let m = CscMatrix { n, col_ptr, row_idx, values };
        m.validate()?;
        Ok(m)
    }

    /// Build from raw parts without validation.
    ///
    /// Intended for generators that construct invariant-respecting data
    /// by design; debug builds still verify.
    pub fn from_parts_unchecked(
        n: usize,
        col_ptr: Vec<usize>,
        row_idx: Vec<Idx>,
        values: Vec<f64>,
    ) -> Self {
        let m = CscMatrix { n, col_ptr, row_idx, values };
        debug_assert!(m.validate().is_ok(), "from_parts_unchecked violated invariants");
        m
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        CscMatrix {
            n,
            col_ptr: (0..=n).collect(),
            row_idx: (0..n as Idx).collect(),
            values: vec![1.0; n],
        }
    }

    /// Check all structural invariants.
    pub fn validate(&self) -> Result<(), MatrixError> {
        if self.col_ptr.len() != self.n + 1 {
            return Err(MatrixError::MalformedPointers(format!(
                "col_ptr len {} != n+1 = {}",
                self.col_ptr.len(),
                self.n + 1
            )));
        }
        if self.col_ptr[0] != 0 {
            return Err(MatrixError::MalformedPointers("col_ptr[0] != 0".into()));
        }
        if *self.col_ptr.last().unwrap() != self.row_idx.len()
            || self.row_idx.len() != self.values.len()
        {
            return Err(MatrixError::MalformedPointers(format!(
                "col_ptr end {} vs row_idx {} vs values {}",
                self.col_ptr.last().unwrap(),
                self.row_idx.len(),
                self.values.len()
            )));
        }
        for j in 0..self.n {
            let (lo, hi) = (self.col_ptr[j], self.col_ptr[j + 1]);
            if lo > hi {
                return Err(MatrixError::MalformedPointers(format!(
                    "col_ptr decreases at column {j}"
                )));
            }
            let mut prev: Option<Idx> = None;
            for &r in &self.row_idx[lo..hi] {
                if r as usize >= self.n {
                    return Err(MatrixError::IndexOutOfBounds {
                        row: r as usize,
                        col: j,
                        n: self.n,
                    });
                }
                if let Some(p) = prev {
                    if r <= p {
                        return Err(MatrixError::UnsortedIndices { outer: j });
                    }
                }
                prev = Some(r);
            }
        }
        Ok(())
    }

    /// Matrix dimension.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// The column pointer array (`n + 1` entries).
    #[inline]
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// Row indices, column-major.
    #[inline]
    pub fn row_idx(&self) -> &[Idx] {
        &self.row_idx
    }

    /// Stored values, column-major.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to values (structure stays fixed).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Number of stored entries in column `j`.
    #[inline]
    pub fn col_nnz(&self, j: usize) -> usize {
        self.col_ptr[j + 1] - self.col_ptr[j]
    }

    /// Iterate `(row, value)` pairs of column `j` in ascending row order.
    #[inline]
    pub fn col(&self, j: usize) -> impl Iterator<Item = (Idx, f64)> + '_ {
        let (lo, hi) = (self.col_ptr[j], self.col_ptr[j + 1]);
        self.row_idx[lo..hi].iter().zip(&self.values[lo..hi]).map(|(&r, &v)| (r, v))
    }

    /// Value at `(row, col)`, or `None` when not stored. O(log nnz_col).
    pub fn get(&self, row: usize, col: usize) -> Option<f64> {
        let (lo, hi) = (self.col_ptr[col], self.col_ptr[col + 1]);
        let seg = &self.row_idx[lo..hi];
        seg.binary_search(&(row as Idx)).ok().map(|k| self.values[lo + k])
    }

    /// True when every stored entry satisfies `row >= col`.
    pub fn is_lower_triangular(&self) -> bool {
        (0..self.n).all(|j| self.col(j).all(|(r, _)| r as usize >= j))
    }

    /// True when every stored entry satisfies `row <= col`.
    pub fn is_upper_triangular(&self) -> bool {
        (0..self.n).all(|j| self.col(j).all(|(r, _)| r as usize <= j))
    }

    /// Verify this matrix is a valid *solvable* triangular factor:
    /// correct triangle, full nonzero diagonal.
    pub fn validate_triangular(&self, tri: Triangle) -> Result<(), MatrixError> {
        for j in 0..self.n {
            let (lo, hi) = (self.col_ptr[j], self.col_ptr[j + 1]);
            if lo == hi {
                return Err(MatrixError::MissingDiagonal(j));
            }
            // Diagonal is first (lower) or last (upper) thanks to sorting.
            let diag_pos = match tri {
                Triangle::Lower => lo,
                Triangle::Upper => hi - 1,
            };
            if self.row_idx[diag_pos] as usize != j {
                return Err(MatrixError::MissingDiagonal(j));
            }
            if self.values[diag_pos] == 0.0 {
                return Err(MatrixError::ZeroDiagonal(j));
            }
            for &r in &self.row_idx[lo..hi] {
                let bad = match tri {
                    Triangle::Lower => (r as usize) < j,
                    Triangle::Upper => (r as usize) > j,
                };
                if bad {
                    return Err(MatrixError::NotTriangular {
                        expected: tri.name(),
                        row: r as usize,
                        col: j,
                    });
                }
            }
        }
        Ok(())
    }

    /// Diagonal entries as a dense vector (0.0 where absent).
    pub fn diagonal(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.n];
        for j in 0..self.n {
            if let Some(v) = self.get(j, j) {
                d[j] = v;
            }
        }
        d
    }

    /// `y = A x` (dense vector in/out).
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n];
        self.matvec_into(x, &mut y);
        y
    }

    /// Allocation-free `y = A x`: scatter each column's entries into the
    /// caller's output buffer. This is the SpMV kernel the Krylov
    /// recurrences call every iteration, so it must not touch the heap.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n, "input length mismatch");
        assert_eq!(y.len(), self.n, "output length mismatch");
        y.fill(0.0);
        for j in 0..self.n {
            let xj = x[j];
            if xj == 0.0 {
                continue;
            }
            let (lo, hi) = (self.col_ptr[j], self.col_ptr[j + 1]);
            for k in lo..hi {
                y[self.row_idx[k] as usize] += self.values[k] * xj;
            }
        }
    }

    /// Transpose (also CSC↔CSR conversion workhorse). O(n + nnz).
    pub fn transpose(&self) -> CscMatrix {
        let n = self.n;
        let nnz = self.nnz();
        let mut counts = vec![0usize; n + 1];
        for &r in &self.row_idx {
            counts[r as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let col_ptr = counts.clone();
        let mut next = counts;
        let mut row_idx = vec![0 as Idx; nnz];
        let mut values = vec![0.0; nnz];
        for j in 0..n {
            for k in self.col_ptr[j]..self.col_ptr[j + 1] {
                let r = self.row_idx[k] as usize;
                let dst = next[r];
                next[r] += 1;
                row_idx[dst] = j as Idx;
                values[dst] = self.values[k];
            }
        }
        // Columns of the transpose are filled in ascending original-column
        // order, so they are already sorted.
        CscMatrix { n, col_ptr, row_idx, values }
    }

    /// Extract the requested triangle *including* the diagonal. Missing
    /// diagonal entries are inserted with value `diag_fill` so the
    /// result is always a solvable factor (the "tril(A)" trick common in
    /// SpTRSV studies when no factorization is available).
    pub fn triangular_part(&self, tri: Triangle, diag_fill: f64) -> CscMatrix {
        let n = self.n;
        let mut col_ptr = Vec::with_capacity(n + 1);
        let mut row_idx = Vec::new();
        let mut values = Vec::new();
        col_ptr.push(0);
        for j in 0..n {
            let mut saw_diag = false;
            let keep = |r: usize| match tri {
                Triangle::Lower => r >= j,
                Triangle::Upper => r <= j,
            };
            // For Upper we may need to inject the diagonal after all r < j.
            let mut pending: Vec<(Idx, f64)> = Vec::new();
            for (r, v) in self.col(j) {
                let r_us = r as usize;
                if keep(r_us) {
                    if r_us == j {
                        saw_diag = true;
                        pending.push((r, if v == 0.0 { diag_fill } else { v }));
                    } else {
                        pending.push((r, v));
                    }
                }
            }
            if !saw_diag {
                pending.push((j as Idx, diag_fill));
                pending.sort_unstable_by_key(|&(r, _)| r);
            }
            for (r, v) in pending {
                row_idx.push(r);
                values.push(v);
            }
            col_ptr.push(row_idx.len());
        }
        CscMatrix { n, col_ptr, row_idx, values }
    }

    /// In-degree of every component for a given triangle: the number of
    /// *off-diagonal* stored entries in each row. This is the quantity
    /// the synchronization-free algorithms pre-compute (Alg. 2 lines
    /// 6–9, Alg. 3 lines 13–15).
    pub fn in_degrees(&self, tri: Triangle) -> Vec<u32> {
        let mut deg = vec![0u32; self.n];
        for j in 0..self.n {
            for (r, _) in self.col(j) {
                let r = r as usize;
                let off_diag = match tri {
                    Triangle::Lower => r > j,
                    Triangle::Upper => r < j,
                };
                if off_diag {
                    deg[r] += 1;
                }
            }
        }
        deg
    }

    /// Bytes needed to store this matrix in device memory (CSC arrays
    /// only), used by the simulator's capacity accounting.
    pub fn device_bytes(&self) -> u64 {
        (self.col_ptr.len() * std::mem::size_of::<usize>()
            + self.row_idx.len() * std::mem::size_of::<Idx>()
            + self.values.len() * std::mem::size_of::<f64>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 8×8 lower-triangular example of Fig. 1a (pattern only; values
    /// chosen arbitrarily nonzero). Columns list diag + dependents;
    /// reproduces Fig. 1b's level sets {0},{1,3,5},{2,4},{6},{7}.
    pub fn fig1_matrix() -> CscMatrix {
        let cols: Vec<Vec<u32>> = vec![
            vec![0, 1, 3, 5, 7],
            vec![1, 2],
            vec![2],
            vec![3, 4, 7],
            vec![4, 6, 7],
            vec![5, 6],
            vec![6, 7],
            vec![7],
        ];
        let mut col_ptr = vec![0usize];
        let mut row_idx = Vec::new();
        let mut values = Vec::new();
        for c in &cols {
            for &r in c {
                row_idx.push(r);
                values.push(1.0 + r as f64);
            }
            col_ptr.push(row_idx.len());
        }
        CscMatrix::try_new(8, col_ptr, row_idx, values).unwrap()
    }

    #[test]
    fn identity_roundtrips() {
        let i = CscMatrix::identity(4);
        assert_eq!(i.n(), 4);
        assert_eq!(i.nnz(), 4);
        assert!(i.is_lower_triangular());
        assert!(i.is_upper_triangular());
        assert_eq!(i.get(2, 2), Some(1.0));
        assert_eq!(i.get(1, 2), None);
        i.validate_triangular(Triangle::Lower).unwrap();
    }

    #[test]
    fn fig1_structure() {
        let m = fig1_matrix();
        assert_eq!(m.n(), 8);
        assert_eq!(m.nnz(), 19);
        assert!(m.is_lower_triangular());
        assert!(!m.is_upper_triangular());
        m.validate_triangular(Triangle::Lower).unwrap();
        // x7's column dependencies include x0, x3 and x4 (§II-A)
        let deg = m.in_degrees(Triangle::Lower);
        assert_eq!(deg[7], 4);
        assert_eq!(deg[0], 0);
        assert_eq!(deg[4], 1); // from col 3
    }

    #[test]
    fn validation_catches_unsorted() {
        let e = CscMatrix::try_new(2, vec![0, 2, 2], vec![1, 0], vec![1.0, 1.0]);
        assert!(matches!(e, Err(MatrixError::UnsortedIndices { outer: 0 })));
    }

    #[test]
    fn validation_catches_duplicates() {
        let e = CscMatrix::try_new(2, vec![0, 2, 2], vec![0, 0], vec![1.0, 1.0]);
        assert!(matches!(e, Err(MatrixError::UnsortedIndices { outer: 0 })));
    }

    #[test]
    fn validation_catches_out_of_bounds() {
        let e = CscMatrix::try_new(2, vec![0, 1, 2], vec![0, 5], vec![1.0, 1.0]);
        assert!(matches!(e, Err(MatrixError::IndexOutOfBounds { .. })));
    }

    #[test]
    fn validation_catches_bad_pointers() {
        let e = CscMatrix::try_new(2, vec![0, 2], vec![0, 1], vec![1.0, 1.0]);
        assert!(matches!(e, Err(MatrixError::MalformedPointers(_))));
        let e = CscMatrix::try_new(2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]);
        assert!(matches!(e, Err(MatrixError::MalformedPointers(_))));
    }

    #[test]
    fn triangular_validation_catches_zero_diag() {
        let m = CscMatrix::try_new(2, vec![0, 1, 2], vec![0, 1], vec![0.0, 1.0]).unwrap();
        assert!(matches!(
            m.validate_triangular(Triangle::Lower),
            Err(MatrixError::ZeroDiagonal(0))
        ));
    }

    #[test]
    fn triangular_validation_catches_missing_diag() {
        let m = CscMatrix::try_new(2, vec![0, 1, 2], vec![1, 1], vec![3.0, 1.0]).unwrap();
        assert!(matches!(
            m.validate_triangular(Triangle::Lower),
            Err(MatrixError::MissingDiagonal(0))
        ));
    }

    #[test]
    fn matvec_against_dense() {
        let m = fig1_matrix();
        let x: Vec<f64> = (0..8).map(|i| (i + 1) as f64).collect();
        let y = m.matvec(&x);
        // dense check
        let mut expect = vec![0.0; 8];
        for j in 0..8 {
            for (r, v) in m.col(j) {
                expect[r as usize] += v * x[j];
            }
        }
        assert_eq!(y, expect);
    }

    #[test]
    fn transpose_involution() {
        let m = fig1_matrix();
        let tt = m.transpose().transpose();
        assert_eq!(m, tt);
    }

    #[test]
    fn transpose_flips_triangle() {
        let m = fig1_matrix();
        let t = m.transpose();
        assert!(t.is_upper_triangular());
        t.validate_triangular(Triangle::Upper).unwrap();
        assert_eq!(m.get(7, 0), t.get(0, 7));
    }

    #[test]
    fn triangular_part_extracts_and_fills() {
        // General 3x3 with empty diagonal at (1,1)
        let mut b = crate::build::TripletBuilder::new(3);
        b.push(0, 0, 2.0);
        b.push(2, 0, -1.0);
        b.push(0, 1, 5.0); // upper entry, dropped for Lower
        b.push(2, 1, 4.0);
        b.push(2, 2, 3.0);
        let a = b.build().unwrap();
        let l = a.triangular_part(Triangle::Lower, 1.0);
        l.validate_triangular(Triangle::Lower).unwrap();
        assert_eq!(l.get(1, 1), Some(1.0), "diag filled");
        assert_eq!(l.get(0, 1), None, "upper entry dropped");
        assert_eq!(l.get(2, 1), Some(4.0));
        let u = a.triangular_part(Triangle::Upper, 1.0);
        u.validate_triangular(Triangle::Upper).unwrap();
        assert_eq!(u.get(0, 1), Some(5.0));
        assert_eq!(u.get(2, 1), None);
    }

    #[test]
    fn device_bytes_accounting() {
        let m = CscMatrix::identity(10);
        let expect = 11 * 8 + 10 * 4 + 10 * 8;
        assert_eq!(m.device_bytes(), expect as u64);
    }
}
