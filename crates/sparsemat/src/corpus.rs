//! The Table-I analog corpus.
//!
//! The paper evaluates 16 SuiteSparse matrices (Table I). Shipping
//! those inputs (up to 21.6 GB for twitter7) is impossible here, so for
//! each one we generate a *structural analog* with
//! [`crate::gen::level_structured`]: the dependency metric
//! (`nnz/rows`) is preserved exactly, the parallelism metric
//! (`rows/levels`) is preserved up to the row-count cap, and the
//! dependency locality is chosen per matrix class (road network, mesh,
//! social graph, circuit, …). Row counts are capped so that the
//! discrete-event simulations complete in seconds; every experiment
//! reports ratios, which the paper's own analysis ties to these two
//! metrics (§VI-D), not to absolute sizes.
//!
//! Note on Table I as printed: the `shipsec1` and `copter2` rows list
//! `#Rows` larger than `#Non-Zeros`, which is impossible for a matrix
//! with a full diagonal — the two columns are evidently swapped in the
//! paper (SuiteSparse confirms shipsec1 has 140,874 rows and copter2
//! has 55,476 rows). We un-swap them here.

use crate::csc::CscMatrix;
use crate::gen::{level_structured, LevelSpec};
use crate::levels::TriStats;
use crate::Triangle;

/// Table-I statistics as printed in the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperStats {
    /// "#Rows".
    pub rows: usize,
    /// "#Non-Zeros".
    pub nnz: usize,
    /// "#Levels".
    pub levels: usize,
    /// "Parallelism" (avg components per level).
    pub parallelism: f64,
}

impl PaperStats {
    /// The paper's dependency metric `nnz / rows` (§VI-D).
    pub fn dependency(&self) -> f64 {
        self.nnz as f64 / self.rows as f64
    }
}

/// One corpus entry: a named synthetic analog plus both stat blocks.
#[derive(Debug, Clone)]
pub struct NamedMatrix {
    /// SuiteSparse name of the matrix this analog stands in for.
    pub name: &'static str,
    /// Structural class used to pick generation locality.
    pub class: &'static str,
    /// The generated lower-triangular factor.
    pub matrix: CscMatrix,
    /// Table I as printed (corrected for the swapped rows, see module docs).
    pub paper: PaperStats,
    /// Measured statistics of the generated analog.
    pub achieved: TriStats,
}

/// name, class, rows, nnz, levels, parallelism, locality
const TABLE1: &[(&str, &str, usize, usize, usize, f64, f64)] = &[
    ("belgium_osm", "road", 1_441_295, 2_991_265, 631, 2_284.0, 0.95),
    ("chipcool0", "mesh", 20_082, 150_616, 534, 38.0, 0.90),
    ("citationCiteseer", "citation", 268_495, 1_425_142, 102, 2_632.0, 0.40),
    ("dblp-2010", "citation", 326_186, 1_133_886, 1_562, 209.0, 0.40),
    ("dc2", "circuit", 116_835, 441_781, 14, 8_345.0, 0.70),
    ("delaunay_n20", "mesh", 1_048_576, 4_194_262, 788, 1_331.0, 0.90),
    ("nlpkkt160", "optimization", 8_345_600, 118_931_856, 2, 4_172_800.0, 0.60),
    ("pkustk14", "mesh", 151_926, 7_494_215, 1_075, 141.0, 0.90),
    ("powersim", "circuit", 15_838, 40_673, 24, 660.0, 0.70),
    ("roadNet-CA", "road", 1_971_281, 4_737_888, 364, 5_416.0, 0.95),
    ("webbase-1M", "web", 1_000_005, 2_348_442, 512, 1_953.0, 0.35),
    ("Wordnet3", "lexical", 82_670, 176_821, 37, 2_234.0, 0.40),
    // rows/nnz un-swapped relative to the printed table:
    ("shipsec1", "mesh", 140_874, 7_813_404, 2_100, 67.0, 0.90),
    ("copter2", "mesh", 55_476, 759_952, 190, 291.0, 0.90),
    ("twitter7", "social", 41_652_230, 475_658_233, 18_116, 2_299.0, 0.30),
    ("uk-2005", "web", 39_459_925, 473_261_087, 2_838, 1_390_413.0, 0.30),
];

/// Default row cap for analogs (keeps DES runs in seconds).
pub const DEFAULT_ROW_CAP: usize = 30_000;
/// Default nnz cap for analogs.
pub const DEFAULT_NNZ_CAP: usize = 600_000;

/// Scaled generation parameters derived from a Table-I row.
#[allow(clippy::too_many_arguments)] // mirrors the Table-I column list
fn analog_spec(
    rows: usize,
    nnz: usize,
    levels: usize,
    parallelism: f64,
    locality: f64,
    row_cap: usize,
    nnz_cap: usize,
    seed: u64,
) -> LevelSpec {
    let dep = nnz as f64 / rows as f64;
    let by_nnz = (nnz_cap as f64 / dep).floor() as usize;
    let n = rows.min(row_cap).min(by_nnz.max(1_000));
    let levels_scaled = if n == rows {
        levels // un-scaled matrix keeps its exact level count
    } else {
        // preserve parallelism = rows / levels at the reduced size
        ((n as f64 / parallelism).round() as usize).clamp(2, n / 2)
    };
    LevelSpec {
        n,
        levels: levels_scaled,
        nnz_target: (n as f64 * dep).round() as usize,
        locality,
        window_frac: 0.006,
        seed,
    }
}

/// Generate one analog from its Table-I row index.
fn generate(k: usize, row_cap: usize, nnz_cap: usize) -> NamedMatrix {
    let (name, class, rows, nnz, levels, par, locality) = TABLE1[k];
    let spec =
        analog_spec(rows, nnz, levels, par, locality, row_cap, nnz_cap, 0xC0FFEE ^ (k as u64) << 8);
    let matrix = level_structured(&spec);
    let achieved = TriStats::compute(&matrix, Triangle::Lower);
    NamedMatrix {
        name,
        class,
        matrix,
        paper: PaperStats { rows, nnz, levels, parallelism: par },
        achieved,
    }
}

/// Generate the full 16-matrix corpus at the default caps.
pub fn corpus() -> Vec<NamedMatrix> {
    corpus_scaled(DEFAULT_ROW_CAP, DEFAULT_NNZ_CAP)
}

/// Generate the corpus with custom row/nnz caps (smaller caps for unit
/// tests, larger for high-fidelity runs).
pub fn corpus_scaled(row_cap: usize, nnz_cap: usize) -> Vec<NamedMatrix> {
    (0..TABLE1.len()).map(|k| generate(k, row_cap, nnz_cap)).collect()
}

/// Fetch one analog by SuiteSparse name at the default caps.
pub fn by_name(name: &str) -> Option<NamedMatrix> {
    by_name_scaled(name, DEFAULT_ROW_CAP, DEFAULT_NNZ_CAP)
}

/// Fetch one analog by name with custom caps.
pub fn by_name_scaled(name: &str, row_cap: usize, nnz_cap: usize) -> Option<NamedMatrix> {
    TABLE1.iter().position(|row| row.0 == name).map(|k| generate(k, row_cap, nnz_cap))
}

/// One SPD corpus entry for the preconditioned-Krylov experiments.
#[derive(Debug, Clone)]
pub struct SpdMatrix {
    /// Short descriptive name.
    pub name: &'static str,
    /// Structural class (mirrors the Table-I classes).
    pub class: &'static str,
    /// The generated symmetric positive-definite system.
    pub matrix: CscMatrix,
}

/// The SPD corpus: symmetric positive-definite systems spanning the
/// structural classes of Table I, sized for the preconditioned-Krylov
/// experiments (PCG/BiCGSTAB with an ILU(0)
/// `PreconditionerEngine` — the paper's §I workload, where SpTRSV is
/// applied inside every iteration).
///
/// Every matrix is strictly diagonally dominant and symmetric (SPD by
/// Gershgorin), deterministic for a fixed build, and its lower
/// triangle inherits the level structure of the triangular generator
/// it was symmetrized from — so the preconditioner solves exercise the
/// same dependency shapes as the SpTRSV experiments.
pub fn spd_corpus() -> Vec<SpdMatrix> {
    use crate::gen;
    vec![
        SpdMatrix { name: "grid2d-48", class: "mesh", matrix: gen::grid_laplacian(48, 48) },
        SpdMatrix { name: "grid2d-wide", class: "mesh", matrix: gen::grid_laplacian(96, 24) },
        SpdMatrix {
            name: "band-spd",
            class: "power-grid",
            matrix: gen::spd_banded(2_000, 16, 5.0, 21),
        },
        SpdMatrix {
            name: "levels-spd",
            class: "factor-like",
            matrix: gen::spd_structured(&gen::LevelSpec::new(1_800, 30, 7_200, 33)),
        },
        SpdMatrix {
            name: "scalefree-spd",
            class: "social",
            matrix: gen::spd_from_lower(&gen::rmat_lower(1 << 11, 10_000, 5), 13),
        },
    ]
}

/// Name of the deep/narrow chain-fusion corpus entry (see
/// [`deep_narrow_entry`]).
pub const DEEP_NARROW_NAME: &str = "deep-chain";

/// The deep/narrow chain-fusion workload. Not a Table-I row (the
/// 16-matrix analog corpus is untouched): this entry stands in for the
/// ILU(0)/Cholesky factors whose level profile is thousands of narrow
/// levels, where per-level synchronization dominates the solve and
/// chain-fused scheduling pays off. `paper` holds the design targets
/// the generator was pointed at rather than printed Table-I numbers.
pub fn deep_narrow_entry() -> NamedMatrix {
    let (depth, width, fill) = (2_500usize, 6usize, 3.2f64);
    let rows = depth * width;
    let matrix = crate::gen::deep_narrow(depth, width, fill, 0xDEE9);
    let achieved = TriStats::compute(&matrix, Triangle::Lower);
    NamedMatrix {
        name: DEEP_NARROW_NAME,
        class: "factor-deep",
        matrix,
        paper: PaperStats {
            rows,
            nnz: (rows as f64 * fill).round() as usize,
            levels: depth,
            parallelism: width as f64,
        },
        achieved,
    }
}

/// The four representative matrices of the Fig. 3 UM-thrashing study.
pub fn fig3_names() -> &'static [&'static str] {
    &["belgium_osm", "chipcool0", "nlpkkt160", "pkustk14"]
}

/// The five matrices highlighted in the Fig. 10 scalability study.
pub fn fig10_names() -> &'static [&'static str] {
    &["belgium_osm", "delaunay_n20", "nlpkkt160", "powersim", "Wordnet3"]
}

/// All corpus names in Table-I order.
pub fn all_names() -> Vec<&'static str> {
    TABLE1.iter().map(|r| r.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_sixteen_matrices() {
        let names = all_names();
        assert_eq!(names.len(), 16);
        assert!(names.contains(&"nlpkkt160"));
        assert!(names.contains(&"twitter7"));
    }

    #[test]
    fn small_corpus_generates_and_validates() {
        // tiny caps so this unit test stays fast
        let c = corpus_scaled(2_000, 40_000);
        assert_eq!(c.len(), 16);
        for m in &c {
            m.matrix.validate_triangular(Triangle::Lower).unwrap();
            assert!(m.achieved.rows >= 1_000, "{}: too small", m.name);
            assert!(m.achieved.rows <= 2_000, "{}: cap violated", m.name);
        }
    }

    #[test]
    fn dependency_metric_is_preserved() {
        let c = corpus_scaled(2_000, 40_000);
        for m in &c {
            let paper_dep = m.paper.dependency();
            let got = m.achieved.dependency;
            // generator dedup can lose a bit; 25% tolerance
            assert!(
                (got - paper_dep).abs() / paper_dep < 0.25,
                "{}: dependency {} vs paper {}",
                m.name,
                got,
                paper_dep
            );
        }
    }

    #[test]
    fn unscaled_matrices_keep_exact_level_counts() {
        // powersim fits under the default caps un-scaled.
        let m = by_name("powersim").unwrap();
        assert_eq!(m.achieved.rows, 15_838);
        assert_eq!(m.achieved.levels, 24);
        let err = (m.achieved.nnz as f64 - m.paper.nnz as f64).abs() / m.paper.nnz as f64;
        assert!(err < 0.05, "nnz {} vs paper {}", m.achieved.nnz, m.paper.nnz);
    }

    #[test]
    fn scaled_matrices_preserve_parallelism_ordering() {
        let c = corpus_scaled(2_000, 40_000);
        let find = |n: &str| c.iter().find(|m| m.name == n).unwrap();
        // nlpkkt160 must remain far more parallel than chipcool0
        let hi = find("nlpkkt160").achieved.parallelism;
        let lo = find("chipcool0").achieved.parallelism;
        assert!(hi > 15.0 * lo, "parallelism ordering lost: {hi} vs {lo}");
    }

    #[test]
    fn spd_corpus_entries_are_spd_shaped() {
        let c = spd_corpus();
        assert!(c.len() >= 5);
        for e in &c {
            assert_eq!(e.matrix, e.matrix.transpose(), "{} not symmetric", e.name);
            for i in 0..e.matrix.n() {
                assert!(e.matrix.get(i, i).unwrap() > 0.0, "{} diag {i}", e.name);
            }
        }
    }

    #[test]
    fn deep_narrow_entry_matches_its_design_targets() {
        let e = deep_narrow_entry();
        assert_eq!(e.name, DEEP_NARROW_NAME);
        e.matrix.validate_triangular(Triangle::Lower).unwrap();
        assert_eq!(e.achieved.levels, e.paper.levels, "depth is exact");
        assert_eq!(e.achieved.rows, e.paper.rows);
        assert!(e.achieved.parallelism <= 8.0, "parallelism {}", e.achieved.parallelism);
        // Table-I corpus is untouched by the extra entry
        assert_eq!(all_names().len(), 16);
        assert!(!all_names().contains(&DEEP_NARROW_NAME));
    }

    #[test]
    fn by_name_unknown_is_none() {
        assert!(by_name("not-a-matrix").is_none());
    }

    #[test]
    fn subsets_are_members_of_corpus() {
        let names = all_names();
        for n in fig3_names().iter().chain(fig10_names()) {
            assert!(names.contains(n), "{n} missing from corpus");
        }
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = by_name_scaled("dc2", 2_000, 40_000).unwrap();
        let b = by_name_scaled("dc2", 2_000, 40_000).unwrap();
        assert_eq!(a.matrix, b.matrix);
    }
}
