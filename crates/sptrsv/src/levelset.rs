//! Level-set solver — the cuSPARSE `csrsv2()` stand-in (§II-B).
//!
//! Naumov's method \[5\]: an analysis phase derives the level sets; the
//! solve phase launches one kernel per level and synchronizes between
//! levels. Within a level every component is independent, so warps
//! contend only for execution lanes. The per-level launch + barrier
//! cost is what makes this baseline collapse on deep level structures
//! (thousands of levels), exactly the weakness the paper's
//! synchronization-free design removes.

use desim::SimTime;
use mgpu_sim::Machine;
use sparsemat::{CscMatrix, LevelSets, Triangle};

/// Per-nonzero cost of the csrsv2 analysis sweep, ns. The analysis
/// builds the dependency DAG and its topological levels on the device;
/// public profiling consistently puts it at a multiple of the solve
/// sweep, hence 3× the solve's per-nnz streaming cost.
const ANALYSIS_PER_NNZ_NS: u64 = 18;
/// Per-level bookkeeping cost during analysis, ns.
const ANALYSIS_PER_LEVEL_NS: u64 = 800;

/// Outcome of a level-set run (mirrors [`crate::exec::ExecOutcome`]).
#[derive(Debug, Clone)]
pub struct LevelSetOutcome {
    /// Solution vector.
    pub x: Vec<f64>,
    /// Analysis-phase completion time.
    pub analysis_end: SimTime,
    /// End of the last level's barrier.
    pub makespan: SimTime,
    /// Number of levels executed.
    pub levels: usize,
}

/// Run the level-set solver on GPU 0 of `machine`, analyzing the level
/// sets first. Callers that solve the same factor repeatedly should
/// analyze once and use [`run_with_levels`] (what the
/// build-once/solve-many engine does; it also keeps the decomposition's
/// flat `level_comps` order as its warm-replay schedule, shared via
/// [`sparsemat::LevelSets::level_comps_shared`] rather than copied).
///
/// Numerics are computed exactly (level order is a valid topological
/// order); virtual time advances through per-level kernel launches,
/// execution-lane contention and inter-level barriers.
pub fn run(m: &CscMatrix, b: &[f64], machine: &mut Machine, tri: Triangle) -> LevelSetOutcome {
    let ls = LevelSets::analyze(m, tri);
    run_with_levels(m, b, machine, tri, &ls)
}

/// Run the level-set solver against a prebuilt decomposition. Performs
/// zero level-set construction; the virtual analysis-phase charge (the
/// device-side csrsv2 analysis kernel) is still modeled so timelines
/// match the one-shot path.
pub fn run_with_levels(
    m: &CscMatrix,
    b: &[f64],
    machine: &mut Machine,
    tri: Triangle,
    ls: &LevelSets,
) -> LevelSetOutcome {
    let n = m.n();
    assert_eq!(b.len(), n, "rhs length mismatch");
    let gpu = 0;
    let spec = machine.config().gpu.clone();

    let analysis_ns = spec.launch_ns
        + m.nnz() as u64 * ANALYSIS_PER_NNZ_NS / spec.exec_lanes as u64
        + ls.n_levels() as u64 * ANALYSIS_PER_LEVEL_NS;
    let analysis_end = SimTime::ZERO.after(analysis_ns);

    machine.account_alloc(gpu, m.device_bytes() + n as u64 * 8 * 3);
    let spill = machine.spill_ratio(gpu);

    let mut x = vec![0.0; n];
    let mut left_sum = vec![0.0; n];
    let col_ptr = m.col_ptr();
    let row_idx = m.row_idx();
    let values = m.values();

    let mut t = analysis_end;
    for level in ls.iter_levels() {
        let t_start = machine.launch_kernel(gpu, t);
        let mut level_end = t_start;
        for &c in level {
            let j = c as usize;
            let (lo, hi) = (col_ptr[j], col_ptr[j + 1]);
            let col_nnz = (hi - lo) as u64;

            // numerics
            let diag = match tri {
                Triangle::Lower => values[lo],
                Triangle::Upper => values[hi - 1],
            };
            let xj = (b[j] - left_sum[j]) / diag;
            x[j] = xj;
            let (ulo, uhi) = match tri {
                Triangle::Lower => (lo + 1, hi),
                Triangle::Upper => (lo, hi - 1),
            };
            for k in ulo..uhi {
                left_sum[row_idx[k] as usize] += values[k] * xj;
            }

            // timing
            let mut start = t_start;
            if spill > 0.0 {
                let spilled = (col_nnz as f64 * 12.0 * spill) as u64;
                if spilled > 0 {
                    start = machine.host_transfer(gpu, spilled, start);
                }
            }
            let dur = spec.solve_ns
                + col_nnz.div_ceil(32) * spec.per_nnz_ns
                + (col_nnz.saturating_sub(1)).div_ceil(32) * spec.atomic_ns;
            level_end = level_end.max(machine.exec(gpu, start, dur));
        }
        t = level_end.after(spec.level_sync_ns);
    }

    LevelSetOutcome { x, analysis_end, makespan: t, levels: ls.n_levels() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{reference, verify};
    use mgpu_sim::MachineConfig;
    use sparsemat::gen;

    #[test]
    fn matches_reference_lower() {
        let m = gen::level_structured(&gen::LevelSpec::new(1000, 25, 4000, 3));
        let (_, b) = verify::rhs_for(&m, 42);
        let mut machine = Machine::new(MachineConfig::dgx1(1));
        let out = run(&m, &b, &mut machine, Triangle::Lower);
        let r = reference::solve_lower(&m, &b).unwrap();
        assert!(verify::rel_inf_diff(&out.x, &r) < 1e-10);
        assert_eq!(out.levels, 25);
    }

    #[test]
    fn matches_reference_upper() {
        let u = gen::banded_lower(400, 5, 3.0, 7).transpose();
        let (_, b) = verify::rhs_for(&u, 1);
        let mut machine = Machine::new(MachineConfig::dgx1(1));
        let out = run(&u, &b, &mut machine, Triangle::Upper);
        let r = reference::solve_upper(&u, &b).unwrap();
        assert!(verify::rel_inf_diff(&out.x, &r) < 1e-10);
    }

    #[test]
    fn deep_levels_cost_more_than_wide_levels() {
        // same size, same nnz: the chain (n levels) must be far slower
        // than a shallow matrix — the csrsv2 pathology.
        let chain = gen::chain(2000);
        let wide = gen::level_structured(&gen::LevelSpec::new(2000, 4, chain.nnz(), 5));
        let (_, bc) = verify::rhs_for(&chain, 2);
        let (_, bw) = verify::rhs_for(&wide, 2);
        let mut m1 = Machine::new(MachineConfig::dgx1(1));
        let mut m2 = Machine::new(MachineConfig::dgx1(1));
        let deep = run(&chain, &bc, &mut m1, Triangle::Lower);
        let shallow = run(&wide, &bw, &mut m2, Triangle::Lower);
        let solve_deep = deep.makespan - deep.analysis_end;
        let solve_shallow = shallow.makespan - shallow.analysis_end;
        assert!(solve_deep > 20 * solve_shallow, "deep {solve_deep} vs shallow {solve_shallow}");
    }

    #[test]
    fn analysis_cost_scales_with_levels() {
        let shallow = gen::level_structured(&gen::LevelSpec::new(1000, 2, 3000, 1));
        let deep = gen::level_structured(&gen::LevelSpec::new(1000, 400, 3000, 1));
        let (_, b1) = verify::rhs_for(&shallow, 1);
        let (_, b2) = verify::rhs_for(&deep, 1);
        let mut m1 = Machine::new(MachineConfig::dgx1(1));
        let mut m2 = Machine::new(MachineConfig::dgx1(1));
        let a = run(&shallow, &b1, &mut m1, Triangle::Lower);
        let c = run(&deep, &b2, &mut m2, Triangle::Lower);
        assert!(c.analysis_end > a.analysis_end);
    }
}
