//! Preconditioned Krylov subsystem: the workload SpTRSV exists for.
//!
//! The paper's motivation (§I) is not the isolated triangular solve —
//! it is the *preconditioned iterative solver*: Krylov methods (CG,
//! BiCGSTAB, GMRES) whose every iteration applies `M⁻¹ = (LU)⁻¹` via
//! one forward and one backward substitution against the **same**
//! ILU/IC factors. That is why the §II-B analysis/solve split matters:
//! the analysis phase is paid once per factorization, while the solve
//! phase runs hundreds of times per linear system. The related SpTRSV
//! literature (Li's CUDA triangular-solve study, the fine-grained
//! domain-decomposition work) evaluates in exactly this setting —
//! SpTRSV inside a preconditioner loop, not standalone.
//!
//! This module closes that loop for the repository:
//!
//! * [`PreconditionerEngine`] — the first **multi-engine composition**
//!   in the codebase: two [`SolverEngine`]s (unit-lower `L` forward
//!   solve, upper `U` backward solve) built over **one shared**
//!   [`EngineResources`] (worker pool + workspace free-list, see
//!   [`SolverEngine::build_shared`]), with a zero-allocation warm
//!   [`PreconditionerEngine::apply_into`] path and a fused-panel
//!   [`PreconditionerEngine::apply_batch_into`] for multi-RHS
//!   preconditioning (block Krylov / multiple probing vectors).
//! * [`pcg`] / [`bicgstab`] — Krylov drivers that use the engine pair
//!   as `M⁻¹`, with per-iteration residual histories in the returned
//!   [`KrylovReport`].
//! * [`SpMv`] — the sparse matrix-vector product the Krylov
//!   recurrences need, implemented allocation-free for both
//!   [`CscMatrix`] and [`CsrMatrix`].
//!
//! ## Bitwise reproducibility of the Krylov trajectory
//!
//! Preconditioner applications replay the engines' flat dependency
//! adjacency ([`crate::exec::ExecAnalysis`]) along the **natural
//! substitution order** (ascending columns for `L`, descending for
//! `U`) — the one topological order whose floating-point operation
//! sequence coincides exactly with the serial reference (Algorithm 1).
//! [`PreconditionerEngine::apply_into`] is therefore **bit-identical**
//! to [`crate::reference::solve_lower`] followed by
//! [`crate::reference::solve_upper`] (property-tested), and the whole
//! Krylov iteration history is reproducible to the last bit across
//! runs. The level-major canonical order the engines use for their own
//! warm tiers re-associates per-row partial sums, which is fine for a
//! verified solve but would perturb the Krylov trajectory relative to
//! the reference — so the preconditioner path pins the natural order
//! instead, while still reusing the engines' analysis, calibration
//! reports and shared resources. The batched path runs the same
//! operation sequence through the fused panel kernels
//! ([`crate::exec::ExecAnalysis::replay_panel`], lanes never mix), so
//! every batched application is bit-identical to the scalar one.
//!
//! ## Amortization, demonstrated end-to-end
//!
//! `BENCH_engine.json` (section `pcg_ilu0`, emitted by
//! `cargo bench -p sptrsv-bench --bench engine`) runs PCG+ILU(0) twice
//! — once rebuilding the analysis every application (the cold
//! baseline) and once on a warm [`PreconditionerEngine`] — and records
//! the speedup of amortizing the analysis across the iteration loop.

use crate::engine::{EngineResources, RecyclePool, RefreshReport, SolverEngine};
use crate::exec::ReplayWorkspace;
use crate::fault::{self, FaultSite};
use crate::solver::{SolveError, SolveOptions};
use mgpu_sim::MachineConfig;
use sparsemat::factor::LuFactors;
use sparsemat::{CscMatrix, CsrMatrix, Triangle};
use std::sync::Arc;

/// Reusable scratch for the preconditioner's warm apply paths. Buffers
/// grow on first use and are retained, so a workspace reused across
/// applications of one [`PreconditionerEngine`] allocates nothing
/// after warm-up (proven by the allocation-counter test).
#[derive(Debug, Default)]
pub struct ApplyWorkspace {
    /// The intermediate `y = L⁻¹ r` between the two solves.
    mid: Vec<f64>,
    /// Per-RHS intermediates for the batched apply.
    mids: Vec<Vec<f64>>,
    /// `left_sum` scratch shared by both replays.
    scratch: Vec<f64>,
    /// Interleaved panel buffers for the fused batched apply.
    panel: ReplayWorkspace,
}

impl ApplyWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> ApplyWorkspace {
        ApplyWorkspace::default()
    }
}

/// A sparse linear operator `y = A x` for the Krylov recurrences.
///
/// Implemented allocation-free for [`CscMatrix`] (column scatter) and
/// [`CsrMatrix`] (row gather); the drivers are generic over it so a
/// caller can hand whichever orientation it already holds — or any
/// matrix-free operator.
pub trait SpMv {
    /// Operator dimension (square).
    fn dim(&self) -> usize;
    /// Compute `y = A x` into the caller's buffer without allocating.
    fn spmv_into(&self, x: &[f64], y: &mut [f64]);
}

impl SpMv for CscMatrix {
    fn dim(&self) -> usize {
        self.n()
    }

    fn spmv_into(&self, x: &[f64], y: &mut [f64]) {
        self.matvec_into(x, y);
    }
}

impl SpMv for CsrMatrix {
    fn dim(&self) -> usize {
        self.n()
    }

    fn spmv_into(&self, x: &[f64], y: &mut [f64]) {
        self.matvec_into(x, y);
    }
}

/// An ILU/IC-style preconditioner `M⁻¹ = (L U)⁻¹` as a pair of warm
/// [`SolverEngine`]s over one shared [`EngineResources`].
///
/// Build once per factorization ([`PreconditionerEngine::build`] /
/// [`PreconditionerEngine::from_ilu0`]); apply arbitrarily many times.
/// Warm applications perform zero heap allocation
/// ([`PreconditionerEngine::apply_into`] with a reusable
/// [`ApplyWorkspace`], proven by the allocation-counter test) and are
/// bit-identical to the serial reference solve pair (see the module
/// docs on ordering).
#[derive(Debug)]
pub struct PreconditionerEngine<'m> {
    fwd: SolverEngine<'m>,
    bwd: SolverEngine<'m>,
    /// Natural forward-substitution order (`0..n`): the replay order
    /// whose FP sequence equals `reference::solve_lower`.
    fwd_order: Vec<u32>,
    /// Natural backward-substitution order (`n..0`).
    bwd_order: Vec<u32>,
    /// Recycled apply workspaces for the allocating convenience paths
    /// and the Krylov drivers; the same poison-recovering free-list as
    /// the engines' workspace pool — one panicked apply must not brick
    /// the preconditioner.
    apply_pool: RecyclePool<ApplyWorkspace>,
}

impl<'m> PreconditionerEngine<'m> {
    /// Build the engine pair for a unit-lower `l` and upper `u` factor.
    ///
    /// Both engines are built from `opts` with the triangle overridden
    /// per side (`Lower` for `l`, `Upper` for `u`) and share one
    /// [`EngineResources`] — one worker pool, one workspace free-list —
    /// so the interleaved forward/backward applications of a Krylov
    /// loop never spawn duplicate threads or scratch.
    ///
    /// # Errors
    /// Factor validation failures surface as the engines' build errors;
    /// factors of different dimensions are a
    /// [`SolveError::ShapeMismatch`].
    pub fn build(
        l: &'m CscMatrix,
        u: &'m CscMatrix,
        machine_cfg: MachineConfig,
        opts: &SolveOptions,
    ) -> Result<PreconditionerEngine<'m>, SolveError> {
        if l.n() != u.n() {
            return Err(SolveError::ShapeMismatch { what: "upper factor", n: l.n(), got: u.n() });
        }
        let resources = Arc::new(EngineResources::new());
        let fwd_opts = SolveOptions { triangle: Triangle::Lower, ..opts.clone() };
        let bwd_opts = SolveOptions { triangle: Triangle::Upper, ..opts.clone() };
        let fwd =
            SolverEngine::build_shared(l, machine_cfg.clone(), &fwd_opts, Arc::clone(&resources))?;
        let bwd = SolverEngine::build_shared(u, machine_cfg, &bwd_opts, resources)?;
        let n = l.n() as u32;
        Ok(PreconditionerEngine {
            fwd,
            bwd,
            fwd_order: (0..n).collect(),
            bwd_order: (0..n).rev().collect(),
            apply_pool: RecyclePool::default(),
        })
    }

    /// [`PreconditionerEngine::build`] directly from an
    /// [`sparsemat::factor::ilu0`] result.
    pub fn from_ilu0(
        f: &'m LuFactors,
        machine_cfg: MachineConfig,
        opts: &SolveOptions,
    ) -> Result<PreconditionerEngine<'m>, SolveError> {
        PreconditionerEngine::build(&f.l, &f.u, machine_cfg, opts)
    }

    /// System dimension.
    #[inline]
    pub fn n(&self) -> usize {
        self.fwd.matrix().n()
    }

    /// The forward (lower-`L`) engine — e.g. for its calibration report.
    #[inline]
    pub fn forward(&self) -> &SolverEngine<'m> {
        &self.fwd
    }

    /// The backward (upper-`U`) engine.
    #[inline]
    pub fn backward(&self) -> &SolverEngine<'m> {
        &self.bwd
    }

    /// In-place value refresh of **both** factors from a new
    /// [`LuFactors`] over the same sparsity pattern — zero symbolic
    /// work, see [`SolverEngine::refresh_values`]. The workload this
    /// exists for: a time-stepper or quasi-Newton loop refactors the
    /// same pattern every few steps, and the Krylov iterations in
    /// between must not re-pay two analysis phases.
    ///
    /// The refresh is **pair-atomic**. Both sides are validated before
    /// either mutates (a failed side is a typed error with both
    /// engines untouched — strong exception guarantee), and the commit
    /// holds both numeric write locks across both swaps, so no
    /// application — scalar or batched, in flight or arriving — can
    /// ever observe a new-`L`/old-`U` mix. In-flight applications hold
    /// read guards on both sides and finish against the old epoch
    /// undisturbed; the commit waits for them at the apply boundary.
    pub fn refresh(&self, f: &LuFactors) -> Result<(RefreshReport, RefreshReport), SolveError> {
        let l_audit = self.fwd.validate_refresh(&f.l)?;
        let u_audit = self.bwd.validate_refresh(&f.u)?;
        // one probe for the whole pair, after validation and before
        // any lock or mutation: an injected mid-refresh crash leaves
        // both sides serving the old epoch
        fault::fire_panic(FaultSite::ValueRefresh);
        // fwd-then-bwd, the same order appliers take read guards
        let mut lg = self.fwd.lock_numeric_mut();
        let mut ug = self.bwd.lock_numeric_mut();
        let l = self.fwd.commit_refresh_locked(&mut lg, &f.l, l_audit);
        let u = self.bwd.commit_refresh_locked(&mut ug, &f.u, u_audit);
        Ok((l, u))
    }

    /// Apply `z = M⁻¹ r` (forward solve on `L`, then backward solve on
    /// `U`), allocating the result — convenience for callers outside a
    /// hot loop. Scratch comes from the engine's recycled workspace
    /// pool, so repeated calls stop allocating scratch after warm-up.
    pub fn apply(&self, r: &[f64]) -> Result<Vec<f64>, SolveError> {
        let mut z = vec![0.0; self.n()];
        let mut ws = self.take_apply_workspace();
        let out = self.apply_into(r, &mut z, &mut ws);
        self.put_apply_workspace(ws);
        out.map(|()| z)
    }

    /// Zero-allocation warm application `z = M⁻¹ r`: replay the two
    /// flat adjacencies in natural substitution order into the caller's
    /// buffers. After `ws` has grown to the system dimension this
    /// performs **zero** heap allocation, and the result is
    /// bit-identical to [`crate::reference::solve_lower`] followed by
    /// [`crate::reference::solve_upper`] on the same factors.
    pub fn apply_into(
        &self,
        r: &[f64],
        z: &mut [f64],
        ws: &mut ApplyWorkspace,
    ) -> Result<(), SolveError> {
        let n = self.n();
        if r.len() != n {
            return Err(SolveError::DimensionMismatch {
                n,
                rhs: r.len(),
                index: None,
                buffer: "r",
            });
        }
        if z.len() != n {
            return Err(SolveError::OutputLength { n, out: z.len(), buffer: "z" });
        }
        ws.mid.resize(n, 0.0);
        ws.scratch.resize(n, 0.0);
        // both guards up front (fwd then bwd, the crate-wide order):
        // the whole application runs against one consistent L/U value
        // epoch — a concurrent pair refresh waits for both
        let fa = self.fwd.analysis();
        let ba = self.bwd.analysis();
        fa.replay_into(&self.fwd_order, r, &mut ws.scratch, &mut ws.mid);
        ba.replay_into(&self.bwd_order, &ws.mid, &mut ws.scratch, z);
        Ok(())
    }

    /// Batched warm application `Z = M⁻¹ R` over the **fused panel
    /// kernels**: both factor adjacencies are streamed once per
    /// [`crate::exec::PANEL_K`]-wide block of residuals instead of once
    /// per vector — the multi-RHS preconditioning path for block
    /// Krylov methods and batched serving. Per vector the result is
    /// bit-identical to [`PreconditionerEngine::apply_into`] (panel
    /// lanes never mix), and steady-state calls allocate nothing once
    /// `ws` has grown to the batch shape.
    ///
    /// # Errors
    /// Every residual is length-checked up front (a bad vector names
    /// its batch index); `zs` must hold exactly one vector per
    /// residual.
    pub fn apply_batch_into(
        &self,
        rs: &[Vec<f64>],
        zs: &mut [Vec<f64>],
        ws: &mut ApplyWorkspace,
    ) -> Result<(), SolveError> {
        let n = self.n();
        if let Some((k, r)) = rs.iter().enumerate().find(|(_, r)| r.len() != n) {
            return Err(SolveError::DimensionMismatch {
                n,
                rhs: r.len(),
                index: Some(k),
                buffer: "r",
            });
        }
        if zs.len() != rs.len() {
            return Err(SolveError::OutputLength { n: rs.len(), out: zs.len(), buffer: "zs" });
        }
        self.apply_batch_prevalidated(rs, zs, ws)
    }

    /// The batched-apply body with per-residual validation already done
    /// — the entry point for the [`crate::serve`] dispatcher, which
    /// length-checks every request once at admission and must not
    /// re-pay a validation sweep per coalesced lane. Dimension
    /// discipline is the caller's obligation (`debug_assert`ed);
    /// results are exactly [`PreconditionerEngine::apply_batch_into`]'s.
    pub(crate) fn apply_batch_prevalidated(
        &self,
        rs: &[Vec<f64>],
        zs: &mut [Vec<f64>],
        ws: &mut ApplyWorkspace,
    ) -> Result<(), SolveError> {
        let n = self.n();
        debug_assert!(rs.iter().all(|r| r.len() == n), "prevalidated residual length");
        debug_assert_eq!(rs.len(), zs.len(), "prevalidated output count");
        if rs.is_empty() {
            return Ok(());
        }
        while ws.mids.len() < rs.len() {
            ws.mids.push(Vec::new());
        }
        let ApplyWorkspace { mids, panel, .. } = ws;
        let mids = &mut mids[..rs.len()];
        // both guards up front, same order and rationale as
        // `apply_into`: one L/U value epoch per batched application
        let fa = self.fwd.analysis();
        let ba = self.bwd.analysis();
        fa.replay_panel(&self.fwd_order, rs, panel, mids);
        ba.replay_panel(&self.bwd_order, mids, panel, zs);
        Ok(())
    }

    /// Self-contained application `z = M⁻¹ r` with engine-pooled
    /// scratch — the [`Precondition`] entry point the Krylov drivers
    /// call. Identical numerics to
    /// [`PreconditionerEngine::apply_into`]; steady-state calls stop
    /// allocating once the recycled workspace pool has warmed up.
    pub fn apply_assign(&self, r: &[f64], z: &mut [f64]) -> Result<(), SolveError> {
        let mut ws = self.take_apply_workspace();
        let out = self.apply_into(r, z, &mut ws);
        self.put_apply_workspace(ws);
        out
    }

    /// Pop a recycled apply workspace (or a fresh one on first use).
    /// Pair with [`PreconditionerEngine::put_apply_workspace`] to keep
    /// steady-state callers allocation-free without threading a
    /// workspace through every call site.
    pub fn take_apply_workspace(&self) -> ApplyWorkspace {
        self.apply_pool.take()
    }

    /// Return a workspace to the recycle pool.
    pub fn put_apply_workspace(&self, ws: ApplyWorkspace) {
        self.apply_pool.put(ws);
    }
}

/// A preconditioner application `z = M⁻¹ r` as the Krylov drivers see
/// it — the seam that lets one PCG/BiCGSTAB loop run over either a
/// locally held [`PreconditionerEngine`] or a shared
/// [`crate::serve::ServedPreconditioner`] (whose applications are
/// coalesced with foreground traffic into fused panels by a
/// [`crate::serve::SolverService`]). Both implementations replay the
/// same natural-substitution-order operation sequence, so the Krylov
/// trajectory is bit-identical whichever one a caller hands in.
pub trait Precondition {
    /// System dimension (square).
    fn dim(&self) -> usize;
    /// Apply `z = M⁻¹ r` into the caller's buffer (`z.len() == dim()`).
    fn precondition_into(&self, r: &[f64], z: &mut [f64]) -> Result<(), SolveError>;
}

impl Precondition for PreconditionerEngine<'_> {
    fn dim(&self) -> usize {
        self.n()
    }

    fn precondition_into(&self, r: &[f64], z: &mut [f64]) -> Result<(), SolveError> {
        self.apply_assign(r, z)
    }
}

/// Options for the Krylov drivers.
#[derive(Debug, Clone)]
pub struct KrylovOptions {
    /// Iteration cap; hitting it returns a report with
    /// `converged == false` (not an error).
    pub max_iterations: usize,
    /// Convergence threshold on the relative residual `‖r‖₂ / ‖b‖₂`.
    pub rel_tol: f64,
}

impl Default for KrylovOptions {
    fn default() -> Self {
        KrylovOptions { max_iterations: 500, rel_tol: 1e-8 }
    }
}

/// Result of a Krylov solve: the iterate plus the convergence record.
#[derive(Debug, Clone)]
pub struct KrylovReport {
    /// The final iterate.
    pub x: Vec<f64>,
    /// Whether the relative residual reached `rel_tol`.
    pub converged: bool,
    /// Iterations performed.
    pub iterations: usize,
    /// Relative residual `‖r‖₂ / ‖b‖₂` per iteration;
    /// `residual_history[0]` is the initial residual (1.0 for a zero
    /// initial guess), one entry appended per iteration.
    pub residual_history: Vec<f64>,
    /// Which driver produced this report (`"pcg"` / `"bicgstab"`).
    pub method: &'static str,
}

impl KrylovReport {
    /// The last recorded relative residual.
    pub fn final_rel_residual(&self) -> f64 {
        *self.residual_history.last().unwrap_or(&0.0)
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

fn check_dims(
    a: &(impl SpMv + ?Sized),
    b: &[f64],
    m: &(impl Precondition + ?Sized),
) -> Result<usize, SolveError> {
    let n = m.dim();
    if a.dim() != n {
        return Err(SolveError::ShapeMismatch { what: "operator", n, got: a.dim() });
    }
    if b.len() != n {
        return Err(SolveError::DimensionMismatch { n, rhs: b.len(), index: None, buffer: "b" });
    }
    Ok(n)
}

/// Preconditioned conjugate gradients: solve `A x = b` for symmetric
/// positive-definite `A` with `m` as `M⁻¹`, from a zero initial guess.
///
/// Every iteration performs one [`SpMv::spmv_into`] and one warm
/// [`PreconditionerEngine::apply_into`] (two triangular solves on the
/// shared engine pair) — the paper's §I workload, end to end. The
/// trajectory is deterministic to the bit for fixed inputs.
///
/// # Errors
/// Dimension mismatches are typed errors up front; a collapsed
/// recurrence denominator (`pᵀAp` or `rᵀz` zero/non-finite — typically
/// an operator or preconditioner that is not positive definite) is
/// [`SolveError::Breakdown`]. Running out of iterations is **not** an
/// error: the report says `converged == false`.
pub fn pcg<A: SpMv + ?Sized, M: Precondition + ?Sized>(
    a: &A,
    b: &[f64],
    m: &M,
    opts: &KrylovOptions,
) -> Result<KrylovReport, SolveError> {
    check_dims(a, b, m)?;
    pcg_inner(a, b, m, opts)
}

fn pcg_inner<A: SpMv + ?Sized, M: Precondition + ?Sized>(
    a: &A,
    b: &[f64],
    m: &M,
    opts: &KrylovOptions,
) -> Result<KrylovReport, SolveError> {
    let n = m.dim();
    let mut x = vec![0.0f64; n];
    let b_norm = norm(b);
    let mut history = Vec::with_capacity(opts.max_iterations + 1);
    if b_norm == 0.0 {
        history.push(0.0);
        return Ok(KrylovReport {
            x,
            converged: true,
            iterations: 0,
            residual_history: history,
            method: "pcg",
        });
    }
    history.push(1.0);
    let mut r = b.to_vec();
    let mut z = vec![0.0f64; n];
    let mut ap = vec![0.0f64; n];
    m.precondition_into(&r, &mut z)?;
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut converged = false;
    let mut iterations = 0usize;
    for k in 0..opts.max_iterations {
        a.spmv_into(&p, &mut ap);
        let pap = dot(&p, &ap);
        if pap == 0.0 || !pap.is_finite() {
            return Err(SolveError::Breakdown { method: "pcg", iteration: k });
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rel = norm(&r) / b_norm;
        history.push(rel);
        iterations = k + 1;
        if rel <= opts.rel_tol {
            converged = true;
            break;
        }
        if k + 1 == opts.max_iterations {
            break; // budget exhausted: the next direction would be discarded
        }
        m.precondition_into(&r, &mut z)?;
        let rz_next = dot(&r, &z);
        // rz guards the division below; rz_next would stall the next
        // search direction — both are breakdowns *now*, not next round
        if rz == 0.0 || rz_next == 0.0 || !rz_next.is_finite() {
            return Err(SolveError::Breakdown { method: "pcg", iteration: k });
        }
        let beta = rz_next / rz;
        rz = rz_next;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    Ok(KrylovReport { x, converged, iterations, residual_history: history, method: "pcg" })
}

/// Preconditioned BiCGSTAB: solve `A x = b` for general (possibly
/// nonsymmetric) `A` with `m` as `M⁻¹`, from a zero initial guess.
///
/// Two [`SpMv::spmv_into`]s and two warm preconditioner applications
/// per iteration (van der Vorst's stabilized bi-conjugate gradients).
/// The half-step check means convergence can land mid-iteration; the
/// residual history records whichever residual ended the iteration.
///
/// # Errors
/// Same contract as [`pcg`]: typed dimension errors up front,
/// [`SolveError::Breakdown`] on a collapsed denominator (`ρ`, `r̂ᵀv`,
/// `tᵀt` or `ω` zero/non-finite), and an exhausted iteration budget is
/// reported, not raised.
pub fn bicgstab<A: SpMv + ?Sized, M: Precondition + ?Sized>(
    a: &A,
    b: &[f64],
    m: &M,
    opts: &KrylovOptions,
) -> Result<KrylovReport, SolveError> {
    check_dims(a, b, m)?;
    bicgstab_inner(a, b, m, opts)
}

fn bicgstab_inner<A: SpMv + ?Sized, M: Precondition + ?Sized>(
    a: &A,
    b: &[f64],
    m: &M,
    opts: &KrylovOptions,
) -> Result<KrylovReport, SolveError> {
    let n = m.dim();
    let mut x = vec![0.0f64; n];
    let b_norm = norm(b);
    let mut history = Vec::with_capacity(opts.max_iterations + 1);
    if b_norm == 0.0 {
        history.push(0.0);
        return Ok(KrylovReport {
            x,
            converged: true,
            iterations: 0,
            residual_history: history,
            method: "bicgstab",
        });
    }
    history.push(1.0);
    let mut r = b.to_vec();
    let r_hat = b.to_vec();
    let (mut rho, mut alpha, mut omega) = (1.0f64, 1.0f64, 1.0f64);
    let mut p = vec![0.0f64; n];
    let mut v = vec![0.0f64; n];
    let mut p_hat = vec![0.0f64; n];
    let mut s = vec![0.0f64; n];
    let mut s_hat = vec![0.0f64; n];
    let mut t = vec![0.0f64; n];
    let mut converged = false;
    let mut iterations = 0usize;
    for k in 0..opts.max_iterations {
        let rho_next = dot(&r_hat, &r);
        if rho_next == 0.0 || !rho_next.is_finite() {
            return Err(SolveError::Breakdown { method: "bicgstab", iteration: k });
        }
        let beta = (rho_next / rho) * (alpha / omega);
        rho = rho_next;
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        m.precondition_into(&p, &mut p_hat)?;
        a.spmv_into(&p_hat, &mut v);
        let rv = dot(&r_hat, &v);
        if rv == 0.0 || !rv.is_finite() {
            return Err(SolveError::Breakdown { method: "bicgstab", iteration: k });
        }
        alpha = rho / rv;
        for i in 0..n {
            s[i] = r[i] - alpha * v[i];
        }
        iterations = k + 1;
        // half-step convergence: x + α p̂ may already be good enough
        let s_rel = norm(&s) / b_norm;
        if s_rel <= opts.rel_tol {
            for i in 0..n {
                x[i] += alpha * p_hat[i];
            }
            history.push(s_rel);
            converged = true;
            break;
        }
        m.precondition_into(&s, &mut s_hat)?;
        a.spmv_into(&s_hat, &mut t);
        let tt = dot(&t, &t);
        if tt == 0.0 || !tt.is_finite() {
            return Err(SolveError::Breakdown { method: "bicgstab", iteration: k });
        }
        omega = dot(&t, &s) / tt;
        if omega == 0.0 || !omega.is_finite() {
            return Err(SolveError::Breakdown { method: "bicgstab", iteration: k });
        }
        for i in 0..n {
            x[i] += alpha * p_hat[i] + omega * s_hat[i];
            r[i] = s[i] - omega * t[i];
        }
        let rel = norm(&r) / b_norm;
        history.push(rel);
        if rel <= opts.rel_tol {
            converged = true;
            break;
        }
    }
    Ok(KrylovReport { x, converged, iterations, residual_history: history, method: "bicgstab" })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use crate::solver::SolverKind;
    use sparsemat::factor::ilu0;
    use sparsemat::gen;

    fn opts(kind: SolverKind) -> SolveOptions {
        SolveOptions { kind, verify: false, ..SolveOptions::default() }
    }

    #[test]
    fn apply_matches_reference_pair() {
        let a = gen::grid_laplacian(12, 9);
        let f = ilu0(&a, 1e-8).unwrap();
        let pre = PreconditionerEngine::from_ilu0(
            &f,
            MachineConfig::dgx1(4),
            &opts(SolverKind::ZeroCopy { per_gpu: 8 }),
        )
        .unwrap();
        let r: Vec<f64> = (0..a.n()).map(|i| ((i % 13) as f64) - 6.0).collect();
        let z = pre.apply(&r).unwrap();
        let y = reference::solve_lower(&f.l, &r).unwrap();
        let expect = reference::solve_upper(&f.u, &y).unwrap();
        assert_eq!(z, expect, "apply must be bit-identical to the reference pair");
    }

    #[test]
    fn mismatched_factor_dims_are_rejected() {
        let l = gen::banded_lower(16, 4, 3.0, 1);
        let u = gen::banded_lower(20, 4, 3.0, 2).transpose();
        let err =
            PreconditionerEngine::build(&l, &u, MachineConfig::dgx1(2), &opts(SolverKind::Serial))
                .unwrap_err();
        assert!(matches!(err, SolveError::ShapeMismatch { what: "upper factor", n: 16, got: 20 }));
        assert!(err.to_string().contains("upper factor"), "{err}");
    }

    #[test]
    fn batch_apply_names_offending_index() {
        let a = gen::grid_laplacian(6, 6);
        let f = ilu0(&a, 1e-8).unwrap();
        let pre =
            PreconditionerEngine::from_ilu0(&f, MachineConfig::dgx1(2), &opts(SolverKind::Serial))
                .unwrap();
        let rs = vec![vec![1.0; 36], vec![1.0; 7], vec![1.0; 36]];
        let mut zs = vec![Vec::new(); 3];
        let mut ws = pre.take_apply_workspace();
        let err = pre.apply_batch_into(&rs, &mut zs, &mut ws).unwrap_err();
        assert!(
            matches!(err, SolveError::DimensionMismatch { n: 36, rhs: 7, index: Some(1), .. }),
            "{err:?}"
        );
    }

    #[test]
    fn pcg_handles_zero_rhs() {
        let a = gen::grid_laplacian(5, 5);
        let f = ilu0(&a, 1e-8).unwrap();
        let pre =
            PreconditionerEngine::from_ilu0(&f, MachineConfig::dgx1(2), &opts(SolverKind::Serial))
                .unwrap();
        let rep = pcg(&a, &vec![0.0; a.n()], &pre, &KrylovOptions::default()).unwrap();
        assert!(rep.converged);
        assert_eq!(rep.iterations, 0);
        assert!(rep.x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn unconverged_is_reported_not_raised() {
        let a = gen::grid_laplacian(16, 16);
        let f = ilu0(&a, 1e-8).unwrap();
        let pre =
            PreconditionerEngine::from_ilu0(&f, MachineConfig::dgx1(2), &opts(SolverKind::Serial))
                .unwrap();
        let b = vec![1.0; a.n()];
        let tight = KrylovOptions { max_iterations: 2, rel_tol: 1e-14 };
        let rep = pcg(&a, &b, &pre, &tight).unwrap();
        assert!(!rep.converged);
        assert_eq!(rep.iterations, 2);
        assert_eq!(rep.residual_history.len(), 3);
    }
}
