//! Async batched serving front-end: deadline-aware right-hand-side
//! coalescing over the warm engines.
//!
//! The paper's premise is that analysis is paid once and the solve
//! phase replays thousands of times; the engine tiers (PR 1–4) made
//! the replay cheap, and the fused panel kernels made it ~K× cheaper
//! per RHS when K right-hand sides run together. What was missing is
//! the layer that *finds* those K right-hand sides: real serving
//! traffic arrives one request at a time, from many client threads,
//! each wanting its own answer back. [`SolverService`] is that layer —
//! a thread-based, std-only dispatcher that coalesces concurrent
//! independent requests into fused [`crate::exec::PANEL_K`]-lane
//! panels, the same amortize-the-schedule idea that makes multi-RHS
//! replay several times faster than a per-RHS loop.
//!
//! ## Queueing model
//!
//! Clients call [`SolverService::submit`] (or
//! [`SolverService::submit_with_deadline`]) from any number of
//! threads. Each accepted request is copied into a recycled slot,
//! appended to a FIFO queue, and acknowledged with a [`Ticket`] — a
//! future-like handle with [`Ticket::wait`], [`Ticket::try_wait`] and
//! [`Ticket::wait_timeout`]. A single dispatcher thread (owned by the
//! service, started by [`SolverService::run`]) pops requests in FIFO
//! order, groups up to [`ServiceConfig::max_lanes`] of them, and runs
//! the group through the engine's fused panel kernel
//! ([`SolverEngine::panel_into_prevalidated`] — lengths were validated
//! once at admission, so dispatch never re-pays a per-lane validation
//! sweep). Results are written back into the slots and the tickets
//! are woken.
//!
//! Because the panel kernels never mix lanes, **every result is
//! bit-identical to a serial [`SolverEngine::solve`] of the same
//! right-hand side, regardless of how requests were coalesced** — the
//! service inherits the repository's strongest invariant for free,
//! and the stress tests assert it across every interleaving they can
//! provoke.
//!
//! ## Deadline semantics
//!
//! The dispatcher flushes a partial panel when the first of these
//! fires:
//!
//! * **Full** — [`ServiceConfig::max_lanes`] requests are queued;
//! * **Linger** — the oldest queued request has waited
//!   [`ServiceConfig::max_linger`];
//! * **Deadline** — some request in the next panel has a deadline `d`
//!   and `d - est` is due, where `est` is an exponential moving
//!   average of recent panel solve times (deadline *slack*: the flush
//!   happens early enough that the solve can still finish by `d`);
//! * **Hint** — a client called [`SolverService::flush`];
//! * **Shutdown** — the service is draining.
//!
//! Latency-sensitive singletons therefore flush almost immediately
//! (submit with a tight deadline), while throughput floods fill whole
//! panels; both get correct answers, and [`ServiceReport`] records
//! which trigger fired how often.
//!
//! ## Backpressure contract
//!
//! The queue is bounded in **requests** and **bytes**
//! ([`ServiceConfig::max_queue_requests`] /
//! [`ServiceConfig::max_queue_bytes`]). `submit` never blocks: a full
//! queue returns [`ServeError::QueueFull`] (with the observed depth)
//! and a stopping service returns [`ServeError::ShuttingDown`], both
//! typed — the caller decides whether to retry, shed, or escalate.
//! Queue-depth and byte high-water marks land in the final
//! [`ServiceReport`].
//!
//! ## Shutdown
//!
//! [`SolverService::run`] drives the whole lifecycle: it starts the
//! dispatcher, hands the caller a `&SolverService` to share with any
//! client threads (the service is `Sync`; spawn clients with
//! `std::thread::scope` and they may all submit concurrently), and on
//! return from the closure initiates shutdown: further submits are
//! rejected, queued work is **drained** (solved and completed) by
//! default or rejected with [`ServeError::ShuttingDown`] when
//! [`ServiceConfig::drain_on_shutdown`] is false, and the dispatcher
//! is joined before `run` returns the closure's result plus the final
//! [`ServiceReport`]. The scoped shape is what lets the service stay
//! entirely safe Rust: tickets and the dispatcher borrow the service,
//! and the borrow provably outlives both.
//!
//! ## Zero allocation in steady state
//!
//! Slots (request/result buffers + completion state) are recycled
//! through a free list, panel group buffers are preallocated at
//! dispatcher start, and the dispatch path runs the engines'
//! allocation-free panel kernels — so once the service has warmed up,
//! a submit→dispatch→wait cycle performs **zero** heap allocation
//! (proved by the counting-allocator test in
//! `crates/sptrsv/tests/alloc_free.rs`). Groups wider than
//! `2 × PANEL_K` lanes (a non-default [`ServiceConfig::max_lanes`])
//! dispatch through the pooled batch tier instead, which allocates
//! its chunk tasks per dispatch — documented trade, not default.
//!
//! ## Value-refresh lifecycle
//!
//! [`SolverService::refresh_solver`] (or
//! [`SolverService::refresh_preconditioner`] for a
//! preconditioner-backed service) swaps new numeric values into the
//! warm engine **while traffic is flowing** — no re-analysis, no
//! service restart, no queue drain. The quiesce point is the engine's
//! own numeric lock: every panel solve holds a read guard for the
//! duration of the panel, and the refresh commit takes the write
//! guard, so the swap waits for the in-flight panel, blocks the next
//! one, and every ticket resolves against **exactly one value epoch**
//! (old or new, never a mix). Validation — structure identity plus the
//! factor audit — happens before any mutation, so a rejected refresh
//! (structure drift → [`SolveError::StructureMismatch`], a non-finite
//! or zero pivot → the audit's typed error) leaves the engine serving
//! the old values untouched; an injected mid-refresh panic
//! ([`crate::fault::FaultSite::ValueRefresh`]) surfaces to the
//! refresher as a typed [`ServeError::Retryable`] with the old epoch
//! still live and bit-identical. [`ServiceReport::value_refreshes`]
//! and [`ServiceReport::refresh_failures`] count both outcomes.
//!
//! ## Failure modes and containment
//!
//! Every fault the [`crate::fault`] plane can inject (and the real
//! failure it stands in for) has a designed containment boundary, a
//! typed client-visible outcome, and a counter that proves it fired —
//! the chaos suite (`tests/chaos.rs`) asserts all three columns for
//! 64 seeded plans:
//!
//! | Fault site ([`crate::fault::FaultSite`]) | Containment boundary | Client sees | Counter | Telemetry signal |
//! |---|---|---|---|---|
//! | `WorkerSpawn` | pool `ensure_threads` under-provisions; sharded tier declines and replays serially (bit-identical) | nothing — correct results, less parallelism | [`ServiceReport::spawn_shortfalls`] | `engine.solve.serial` spans replace `exec.sharded.chain` spans |
//! | `WorkerTaskPanic` | worker-loop `catch_unwind`; batch tier converts to an error for that panel | [`ServeError::Solve`] / [`ServeError::DispatcherPanicked`] on the panel | [`ServiceReport::failed`], breaker counters | `serve.panel` span present, `serve_solve_ns` sample still recorded |
//! | `DispatcherPanic` | supervisor in `dispatcher_loop`: in-flight panel failed `Retryable`, dispatcher restarted with backoff ([`SolverService::run_supervised`]) | [`ServeError::Retryable`]; resubmit succeeds | [`ServiceReport::dispatcher_restarts`] | gap in `serve.panel` spans across the restart |
//! | `PanelSolve` (kernel panic) | per-panel `catch_unwind` in `run_group`; [`BREAKER_TRIP_PANELS`] consecutive failures open the circuit breaker → per-request serial solves | [`ServeError::DispatcherPanicked`] on failed panels, then plain results (degraded, bit-identical) | [`ServiceReport::breaker_trips`], [`ServiceReport::degraded_solves`] | `engine.solve.serial` spans inside `serve.panel` while the breaker is open |
//! | `AdmissionAlloc` | admission control sheds exactly like a full queue | [`ServeError::QueueFull`]; [`SolverService::submit_with_retry`] absorbs it | [`ServiceReport::admission_shed`] | `serve.admit` span with no matching `serve.ticket` instant |
//! | `RhsCorruptNonFinite` | post-admission corruption; the output scan ([`ServiceConfig::scan_outputs`]) quarantines the lane and re-solves its panel-mates | [`SolveError::NonFinite`] on the one poisoned request; mates get bit-identical results | [`ServiceReport::poisoned_lanes`], [`ServiceReport::panel_retries`] | extra `serve.panel` span for the retry |
//! | `ValueRefresh` | probe fires before the first mutation; `catch_unwind` in the refresh entry points — the old value epoch keeps serving | [`ServeError::Retryable`] to the refresher only; in-flight tickets unaffected | [`ServiceReport::refresh_failures`] | `engine.refresh.values` span with no `value_refresh_ns` sample |
//!
//! Finite-but-wrong inputs are cheaper to stop earlier: submits scan
//! the right-hand side at admission (typed [`SolveError::NonFinite`],
//! `buffer: "b"`), and [`SolverEngine::build`] audits the factor for
//! non-finite entries before any service can be built over it.
//!
//! ## Pool-worker clients
//!
//! Clients may submit (and wait) from inside the engine's own
//! [`crate::pool`] worker tasks — e.g. a batched job that wants a few
//! extra solves served on the side. The dispatcher is its own OS
//! thread and never requires the submitting thread's cooperation, and
//! when a wide group does use the worker pool it goes through
//! `scope_run`, whose helping submitter executes its own jobs instead
//! of waiting on occupied workers — so a full pool of blocked clients
//! cannot deadlock the service (regression-tested).

use crate::engine::{EngineResources, RefreshReport, SolveWorkspace, SolverEngine};
use crate::exec::PANEL_K;
use crate::fault::{self, FaultSite};
use crate::krylov::{ApplyWorkspace, Precondition, PreconditionerEngine};
use crate::solver::SolveError;
use crate::telemetry::{self, Gauge, Hist, Site, SpanGuard, TelemetryReport};
use sparsemat::factor::LuFactors;
use sparsemat::CscMatrix;
use std::collections::VecDeque;
use std::mem;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Everything that can go wrong between a client and the service.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Admission control refused the request: the queue is at its
    /// request or byte bound. `submit` never blocks — the caller
    /// chooses between retrying, shedding load, and escalating.
    QueueFull {
        /// Requests queued at the moment of rejection.
        depth: usize,
        /// Payload bytes queued at the moment of rejection.
        bytes: usize,
    },
    /// The service is shutting down: either the submit arrived after
    /// shutdown began, or the request was still queued at shutdown and
    /// [`ServiceConfig::drain_on_shutdown`] is off.
    ShuttingDown,
    /// The service configuration cannot work (e.g. a zero queue bound,
    /// which would reject every request).
    InvalidConfig {
        /// Which knob is broken.
        what: &'static str,
    },
    /// The dispatcher could not be spawned (thread creation failed) —
    /// reported as a typed error instead of a panic.
    Spawn,
    /// The underlying engine rejected or failed the coalesced solve;
    /// every request of the affected panel receives the same error.
    Solve(SolveError),
    /// The dispatcher caught a panic from the solve kernel. The panel's
    /// requests are failed with this error and the service keeps
    /// serving — one poisoned group must not brick the front-end.
    DispatcherPanicked,
    /// The request was accepted but its dispatcher died before (or
    /// while) solving it: under
    /// [`SolverService::run_supervised`] the dispatcher restarted, or
    /// the service aborted after exhausting its restart budget. The
    /// right-hand side was never partially consumed, so resubmitting
    /// is safe — which is exactly what
    /// [`SolverService::submit_with_retry`] and
    /// [`ServedPreconditioner`] do.
    Retryable {
        /// What interrupted the request.
        reason: &'static str,
    },
    /// A client-side retry loop ([`SolverService::submit_with_retry`],
    /// [`ServedPreconditioner`], the fleet's build pool) exhausted its
    /// [`RetryPolicy`] — attempt cap or overall deadline — without the
    /// retried condition clearing. Typed so a caller can tell "the
    /// queue never drained" apart from a single shed, and bounded so a
    /// retry loop can never spin forever.
    RetryExhausted {
        /// Attempts actually made (≥ 1) before giving up.
        attempts: u32,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull { depth, bytes } => write!(
                f,
                "serving queue is full ({depth} requests / {bytes} bytes queued); retry or shed"
            ),
            ServeError::ShuttingDown => write!(f, "the serving front-end is shutting down"),
            ServeError::InvalidConfig { what } => {
                write!(f, "invalid service configuration: {what}")
            }
            ServeError::Spawn => write!(f, "could not spawn the service dispatcher thread"),
            ServeError::Solve(e) => write!(f, "serving dispatch failed: {e}"),
            ServeError::DispatcherPanicked => {
                write!(f, "the dispatcher caught a panic while solving this panel")
            }
            ServeError::Retryable { reason } => {
                write!(f, "request interrupted ({reason}); safe to resubmit")
            }
            ServeError::RetryExhausted { attempts } => {
                write!(f, "retry budget exhausted after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Solve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SolveError> for ServeError {
    fn from(e: SolveError) -> Self {
        ServeError::Solve(e)
    }
}

impl From<ServeError> for SolveError {
    /// Collapse a serving failure into the solver error vocabulary —
    /// what a [`ServedPreconditioner`] reports to its Krylov driver.
    fn from(e: ServeError) -> Self {
        match e {
            ServeError::Solve(e) => e,
            ServeError::QueueFull { .. } => SolveError::Rejected { reason: "queue full" },
            ServeError::ShuttingDown => SolveError::Rejected { reason: "shutting down" },
            ServeError::InvalidConfig { .. } => {
                SolveError::Rejected { reason: "invalid service configuration" }
            }
            ServeError::Spawn => SolveError::Rejected { reason: "dispatcher spawn failed" },
            ServeError::DispatcherPanicked => {
                SolveError::Rejected { reason: "dispatcher panicked" }
            }
            ServeError::Retryable { .. } => {
                SolveError::Rejected { reason: "request interrupted by a dispatcher restart" }
            }
            ServeError::RetryExhausted { .. } => {
                SolveError::Rejected { reason: "retry budget exhausted" }
            }
        }
    }
}

/// Tuning knobs for a [`SolverService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Most requests coalesced into one dispatched panel. Defaults to
    /// [`PANEL_K`] — the fused kernels' native width, and the widest
    /// group that stays on the allocation-free dispatch path. `0` is
    /// clamped to 1.
    pub max_lanes: usize,
    /// Admission bound on queued (not yet dispatched) requests.
    pub max_queue_requests: usize,
    /// Admission bound on queued payload bytes (`n × 8` per request).
    pub max_queue_bytes: usize,
    /// Longest a queued request may wait for its panel to fill before
    /// the dispatcher flushes a partial one. Clamped to one hour.
    /// `Duration::ZERO` is a valid, documented setting: every flush
    /// plan is already due, so each request is dispatched immediately
    /// in whatever partial panel is queued — maximum latency priority,
    /// minimum coalescing.
    pub max_linger: Duration,
    /// On shutdown, solve what is still queued (`true`, default) or
    /// complete it with [`ServeError::ShuttingDown`] (`false`).
    pub drain_on_shutdown: bool,
    /// Scan every successful panel's outputs for non-finite values and
    /// fail only the poisoned lanes with [`SolveError::NonFinite`]
    /// (`buffer: "x"`), re-solving the clean lanes so they are never
    /// collateral damage. Off by default: the scan is an `O(n)` pass
    /// per lane, and a finite factor plus finite right-hand sides
    /// cannot produce non-finite outputs.
    pub scan_outputs: bool,
    /// Under [`SolverService::run_supervised`]: most dispatcher
    /// restarts before the service gives up, aborts queued work with
    /// [`ServeError::Retryable`], and re-raises the panic. Ignored by
    /// plain [`SolverService::run`], which never restarts.
    pub max_dispatcher_restarts: u32,
    /// Base delay of the supervised restart backoff; doubles per
    /// consecutive restart (with deterministic jitter, capped at
    /// 100 ms). Clamped to one second.
    pub restart_backoff: Duration,
    /// Seed for the restart backoff jitter — supervision is as
    /// reproducible as everything else in this repository.
    pub supervision_seed: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_lanes: PANEL_K,
            max_queue_requests: 1024,
            max_queue_bytes: 256 << 20,
            max_linger: Duration::from_micros(200),
            drain_on_shutdown: true,
            scan_outputs: false,
            max_dispatcher_restarts: 8,
            restart_backoff: Duration::from_micros(50),
            supervision_seed: 0,
        }
    }
}

impl ServiceConfig {
    /// Clamp the self-healable knobs (a zero lane count means one
    /// lane; a multi-hour linger is capped) and reject the
    /// unserviceable ones with a typed error — a zero queue bound, or
    /// a byte bound smaller than one `n`-length right-hand side, would
    /// silently reject every request forever, which is a configuration
    /// bug, not a load condition.
    fn validated(&self, n: usize) -> Result<ServiceConfig, ServeError> {
        if self.max_queue_requests == 0 {
            return Err(ServeError::InvalidConfig { what: "max_queue_requests must be ≥ 1" });
        }
        if self.max_queue_bytes == 0 {
            return Err(ServeError::InvalidConfig { what: "max_queue_bytes must be ≥ 1" });
        }
        if self.max_queue_bytes < n * mem::size_of::<f64>() {
            return Err(ServeError::InvalidConfig {
                what: "max_queue_bytes is smaller than one right-hand side — admits nothing",
            });
        }
        let mut cfg = self.clone();
        cfg.max_lanes = cfg.max_lanes.max(1);
        cfg.max_linger = cfg.max_linger.min(Duration::from_secs(3600));
        cfg.restart_backoff = cfg.restart_backoff.min(Duration::from_secs(1));
        Ok(cfg)
    }
}

/// Coarse service condition, computed on demand by
/// [`SolverService::health`] from the live counters — what an external
/// load balancer would poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceHealth {
    /// Accepting and serving normally.
    Ok,
    /// Serving, but impaired: the circuit breaker is open (panels run
    /// on the degraded per-request serial path) or the dispatcher
    /// restarted within the last few panels.
    Degraded {
        /// Why the service is degraded.
        reason: &'static str,
    },
    /// Shutdown has begun; submits are rejected while queued work
    /// drains.
    Draining,
}

/// Client-side retry schedule for [`SolverService::submit_with_retry`]
/// and [`ServedPreconditioner`]: bounded attempts with deterministic
/// seeded exponential backoff, so retry storms are impossible and every
/// test run replays the same schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (clamped to ≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base_backoff: Duration,
    /// Upper bound on a single backoff sleep.
    pub max_backoff: Duration,
    /// Overall wall-clock deadline across ALL attempts: once this much
    /// time has elapsed since the first attempt, the loop stops
    /// retrying even with attempts left and returns
    /// [`ServeError::RetryExhausted`]. The second jaw of the vise —
    /// `max_attempts` bounds the count, this bounds the wall-clock, so
    /// a retry loop can never spin forever against a queue that never
    /// drains (however generous the attempt cap).
    pub max_elapsed: Duration,
    /// Jitter seed — same seed, same schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_micros(20),
            max_backoff: Duration::from_millis(5),
            max_elapsed: Duration::from_secs(2),
            seed: 0x5EED,
        }
    }
}

/// Run `op` under `policy`: retry while the error satisfies
/// `retryable`, sleeping the deterministic jittered backoff between
/// attempts; give up with [`ServeError::RetryExhausted`] (carrying the
/// attempts actually made) once the attempt cap or the overall
/// `max_elapsed` deadline is hit. Non-retryable outcomes — success or
/// any other error — return immediately.
pub(crate) fn run_retry<T>(
    policy: &RetryPolicy,
    retryable: impl Fn(&ServeError) -> bool,
    mut op: impl FnMut() -> Result<T, ServeError>,
) -> Result<T, ServeError> {
    let attempts_cap = policy.max_attempts.max(1);
    let deadline = Instant::now() + policy.max_elapsed;
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        match op() {
            Err(e) if retryable(&e) => {
                if attempt >= attempts_cap || Instant::now() >= deadline {
                    return Err(ServeError::RetryExhausted { attempts: attempt });
                }
                std::thread::sleep(backoff_delay(
                    policy.base_backoff,
                    policy.max_backoff,
                    policy.seed,
                    attempt,
                ));
            }
            other => return other,
        }
    }
}

/// Deterministic jittered exponential backoff: `base · 2^(attempt-1)`
/// capped at `cap`, then jittered into `[d/2, d]` by a split-mix hash
/// of `(seed, attempt)` — full determinism, no thundering herd.
pub(crate) fn backoff_delay(base: Duration, cap: Duration, seed: u64, attempt: u32) -> Duration {
    let shift = attempt.saturating_sub(1).min(20);
    let exp = base.checked_mul(1u32 << shift).unwrap_or(cap).min(cap);
    let ns = exp.as_nanos() as u64;
    if ns == 0 {
        return Duration::ZERO;
    }
    let mut s = seed ^ (u64::from(attempt) << 32) ^ 0x9E37_79B9_7F4A_7C15;
    let r = desim::rng::split_mix64(&mut s);
    Duration::from_nanos(ns / 2 + r % (ns / 2 + 1))
}

/// Consecutive whole-panel failures that trip the circuit breaker onto
/// the degraded per-request serial path.
pub const BREAKER_TRIP_PANELS: u32 = 3;

/// Degraded panels the breaker serves before probing the fused panel
/// path again (closing the breaker).
pub const BREAKER_COOLDOWN_PANELS: u32 = 16;

/// Panels after a supervised dispatcher restart during which
/// [`SolverService::health`] still reports `Degraded`.
pub const HEALTH_RECOVERY_PANELS: u64 = 4;

/// The warm engine a service dispatches to: a single triangular
/// [`SolverEngine`] or an L/U [`PreconditionerEngine`] pair. Both
/// expose the fused-panel batch path the dispatcher coalesces into.
#[derive(Debug, Clone, Copy)]
pub enum ServiceEngine<'e, 'm> {
    /// One triangular factor: panels run
    /// [`SolverEngine::solve_panel_into`]'s kernel along the engine's
    /// canonical warm order — results bit-identical to
    /// [`SolverEngine::solve`].
    Solver(&'e SolverEngine<'m>),
    /// An L/U pair: panels run
    /// [`PreconditionerEngine::apply_batch_into`]'s kernel along the
    /// natural substitution order — results bit-identical to
    /// [`PreconditionerEngine::apply_into`], so a Krylov trajectory
    /// fed through the service is reproducible to the bit.
    Preconditioner(&'e PreconditionerEngine<'m>),
}

impl ServiceEngine<'_, '_> {
    /// System dimension requests must match.
    pub fn n(&self) -> usize {
        match self {
            ServiceEngine::Solver(e) => e.matrix().n(),
            ServiceEngine::Preconditioner(p) => p.n(),
        }
    }

    /// The shared engine resources behind this service (a
    /// preconditioner pair shares one set).
    fn resources(&self) -> &EngineResources {
        match self {
            ServiceEngine::Solver(e) => e.resources(),
            ServiceEngine::Preconditioner(p) => p.forward().resources(),
        }
    }
}

/// Where a request currently is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Recycled / freshly initialized; not visible to the dispatcher.
    Idle,
    /// Accepted and waiting in the FIFO.
    Queued,
    /// Moved into a panel; the dispatcher owns the buffers.
    InFlight,
    /// Completed (result or error present); the ticket may collect.
    Done,
}

/// Completion state + recycled buffers of one request. Shared between
/// exactly one [`Ticket`] and the dispatcher via `Arc`.
#[derive(Debug)]
struct Slot {
    st: Mutex<SlotState>,
    cv: Condvar,
}

#[derive(Debug)]
struct SlotState {
    phase: Phase,
    /// Request payload; moved into the panel group for the solve and
    /// moved back afterwards so the capacity is never lost.
    rhs: Vec<f64>,
    /// Result buffer, same recycling discipline.
    out: Vec<f64>,
    /// The panel's error, if it failed; cloned into every member.
    err: Option<ServeError>,
    /// The ticket was dropped before collecting — whoever finishes
    /// with the slot last returns it to the free list.
    abandoned: bool,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            st: Mutex::new(SlotState {
                phase: Phase::Idle,
                rhs: Vec::new(),
                out: Vec::new(),
                err: None,
                abandoned: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, SlotState> {
        self.st.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A queued request: the slot plus the scheduling metadata the
/// dispatcher reads on every wake (kept out of the slot mutex so flush
/// planning never nests slot locks under the queue lock).
#[derive(Debug)]
struct Pending {
    slot: Arc<Slot>,
    submitted_at: Instant,
    deadline: Option<Instant>,
    bytes: usize,
}

/// What made the dispatcher flush a panel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlushCause {
    Full,
    Linger,
    Deadline,
    Hint,
    Shutdown,
}

#[derive(Debug, Default)]
struct QueueState {
    pending: VecDeque<Pending>,
    /// Payload bytes currently queued (admission accounting).
    bytes: usize,
    shutdown: bool,
    flush_hint: bool,
    /// Recycled slots; every steady-state submit pops one here.
    free: Vec<Arc<Slot>>,
    stats: ServiceReport,
    /// Mirror of the dispatcher's breaker state, readable by
    /// [`SolverService::health`] without touching dispatcher locals.
    breaker_open: bool,
    /// Panels completed since the last supervised dispatcher restart
    /// (or since start); drives the `Degraded → Ok` health recovery.
    panels_since_restart: u64,
}

/// The client-facing shared state: FIFO + free list behind one mutex,
/// and the condvar that wakes the dispatcher. Split from
/// [`SolverService`] so a [`Ticket`] needs only this one borrow.
#[derive(Debug, Default)]
struct Shared {
    q: Mutex<QueueState>,
    dispatch_cv: Condvar,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.q.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Counters the service maintains while running and returns from
/// [`SolverService::run`] (snapshot any time via
/// [`SolverService::stats`]). All `*_ns` fields are wall-clock
/// nanoseconds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceReport {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests completed with a solution (includes drained ones).
    pub served: u64,
    /// Requests completed with an engine error or dispatcher panic.
    pub failed: u64,
    /// Submits rejected by admission control (queue full).
    pub rejected_full: u64,
    /// Submits rejected because shutdown had begun.
    pub rejected_shutdown: u64,
    /// Requests still queued at shutdown and completed with
    /// [`ServeError::ShuttingDown`] (only when draining is off).
    pub shutdown_rejected: u64,
    /// Requests still queued at shutdown and solved during the drain
    /// (a subset of `served`).
    pub drained: u64,
    /// Panels dispatched.
    pub panels: u64,
    /// Total lanes across all panels (`mean_fill` = this / `panels`).
    pub fill_sum: u64,
    /// Widest panel dispatched.
    pub max_fill: usize,
    /// Flushes triggered by a full panel.
    pub full_flushes: u64,
    /// Flushes triggered by the oldest request's linger expiring.
    pub linger_flushes: u64,
    /// Flushes triggered by a request's deadline slack expiring.
    pub deadline_flushes: u64,
    /// Flushes triggered by [`SolverService::flush`].
    pub hint_flushes: u64,
    /// Requests whose deadline had already passed when their panel
    /// completed.
    pub deadline_misses: u64,
    /// Most requests ever queued at once.
    pub queue_depth_high_water: usize,
    /// Most payload bytes ever queued at once.
    pub queue_bytes_high_water: usize,
    /// Sum over completed requests of (dispatch start − submit).
    pub wait_ns_total: u64,
    /// Worst single-request wait.
    pub max_wait_ns: u64,
    /// Sum over panels of the panel solve wall-clock.
    pub solve_ns_total: u64,
    /// Dispatcher panics recovered by a supervised restart
    /// ([`SolverService::run_supervised`]); the in-flight panel's
    /// requests were completed with [`ServeError::Retryable`].
    pub dispatcher_restarts: u64,
    /// Panels re-solved after the output scan excluded a poisoned
    /// lane ([`ServiceConfig::scan_outputs`]).
    pub panel_retries: u64,
    /// Lanes failed with [`SolveError::NonFinite`] by the post-solve
    /// output scan.
    pub poisoned_lanes: u64,
    /// Lanes served on the degraded per-request serial path while the
    /// circuit breaker was open — still bit-identical to a serial
    /// solve, just without panel fusion.
    pub degraded_solves: u64,
    /// Times the circuit breaker opened after
    /// [`BREAKER_TRIP_PANELS`] consecutive whole-panel failures.
    pub breaker_trips: u64,
    /// Admissible submits shed by injected allocation-pressure faults
    /// ([`crate::fault::FaultSite::AdmissionAlloc`]); a subset of
    /// `rejected_full`.
    pub admission_shed: u64,
    /// Worker-pool spawn shortfalls observed by this service's engine
    /// during the run — each one degraded a sharded solve to the
    /// bit-identical serial replay.
    pub spawn_shortfalls: u64,
    /// In-place value refreshes committed through
    /// [`SolverService::refresh_solver`] /
    /// [`SolverService::refresh_preconditioner`] while the service was
    /// live.
    pub value_refreshes: u64,
    /// Refresh attempts that did not commit — rejected up front
    /// (structure drift, non-finite or zero pivots) or interrupted by
    /// a panic before the first mutation. The old value epoch kept
    /// serving in every case.
    pub refresh_failures: u64,
    /// Span/event digest from the [`crate::telemetry`] plane, captured
    /// when this snapshot was taken. `TelemetryReport::default()`
    /// (disabled, empty) unless [`crate::telemetry::set_enabled`] was
    /// armed.
    pub telemetry: TelemetryReport,
}

impl ServiceReport {
    /// Mean lanes per dispatched panel — the coalescing win; 1.0 means
    /// the service degenerated to a per-request loop.
    pub fn mean_fill(&self) -> f64 {
        if self.panels == 0 {
            0.0
        } else {
            self.fill_sum as f64 / self.panels as f64
        }
    }

    /// Mean time a completed request spent queued before dispatch.
    pub fn mean_wait_ns(&self) -> f64 {
        let done = self.served + self.failed + self.shutdown_rejected;
        if done == 0 {
            0.0
        } else {
            self.wait_ns_total as f64 / done as f64
        }
    }

    /// Mean wall-clock of one panel solve.
    pub fn mean_panel_solve_ns(&self) -> f64 {
        if self.panels == 0 {
            0.0
        } else {
            self.solve_ns_total as f64 / self.panels as f64
        }
    }
}

/// Reusable dispatcher scratch: one workspace per engine flavor, grown
/// once, reused for every panel.
#[derive(Debug, Default)]
struct DispatchWorkspace {
    solve: SolveWorkspace,
    apply: ApplyWorkspace,
}

/// Everything a dispatcher incarnation owns. Living outside
/// `dispatch()` lets a supervised restart recover the in-flight group
/// (its `Pending`s are here, not lost in a dead stack frame) and keep
/// the warmed buffers.
#[derive(Debug)]
struct DispatchState {
    group: Vec<Pending>,
    bs: Vec<Vec<f64>>,
    outs: Vec<Vec<f64>>,
    /// Per-lane completion error for the current group; `None` = lane
    /// succeeded. Sized to the group on every dispatch.
    lane_err: Vec<Option<ServeError>>,
    ws: DispatchWorkspace,
    /// EWMA of recent panel solve wall-clock, the `est` in the
    /// deadline-slack rule; starts at zero so the first deadline
    /// submission flushes no later than its deadline.
    est_solve: Duration,
    /// Consecutive whole-panel failures; trips the breaker at
    /// [`BREAKER_TRIP_PANELS`].
    consec_panel_failures: u32,
    /// Circuit breaker: while open, panels bypass the fused kernels
    /// and run per-request serial solves (bit-identical, slower).
    breaker_open: bool,
    /// Degraded panels served since the breaker opened; closes it at
    /// [`BREAKER_COOLDOWN_PANELS`].
    degraded_panels: u32,
}

impl DispatchState {
    fn new(lanes: usize) -> DispatchState {
        DispatchState {
            group: Vec::with_capacity(lanes),
            bs: Vec::with_capacity(lanes),
            outs: Vec::with_capacity(lanes),
            lane_err: Vec::with_capacity(lanes),
            ws: DispatchWorkspace::default(),
            est_solve: Duration::ZERO,
            consec_panel_failures: 0,
            breaker_open: false,
            degraded_panels: 0,
        }
    }
}

/// The serving front-end: a bounded FIFO of right-hand sides, a
/// dispatcher that coalesces them into fused panels over a warm
/// engine, and [`Ticket`]s that hand results back to the submitting
/// threads. See the [module docs](self) for the queueing model,
/// deadline semantics and backpressure contract.
///
/// Constructed only through [`SolverService::run`] (or the
/// [`serve_solver`] / [`serve_preconditioner`] conveniences), which
/// scopes the dispatcher thread to the engine's lifetime — the reason
/// this subsystem contains no `unsafe`.
#[derive(Debug)]
pub struct SolverService<'e, 'm> {
    engine: ServiceEngine<'e, 'm>,
    cfg: ServiceConfig,
    shared: Shared,
    /// Engine-pool spawn shortfalls at service start; the report shows
    /// the delta accrued during this run.
    shortfall_base: u64,
}

impl<'e, 'm> SolverService<'e, 'm> {
    /// Run a service over `engine` for the duration of `body`.
    ///
    /// Starts the dispatcher, calls `body` with the service handle
    /// (share it across client threads with `std::thread::scope` —
    /// the service is `Sync`), then shuts down: queued work is
    /// drained or rejected per [`ServiceConfig::drain_on_shutdown`],
    /// the dispatcher is joined, and the closure's result is returned
    /// together with the final [`ServiceReport`]. A panic in `body`
    /// still shuts the dispatcher down cleanly before resuming the
    /// panic.
    pub fn run<R>(
        engine: ServiceEngine<'e, 'm>,
        config: &ServiceConfig,
        body: impl FnOnce(&SolverService<'e, 'm>) -> R,
    ) -> Result<(R, ServiceReport), ServeError> {
        SolverService::run_inner(engine, config, false, body)
    }

    /// [`SolverService::run`] under supervision: a dispatcher panic no
    /// longer kills the service. The supervisor completes the panicked
    /// panel's requests with [`ServeError::Retryable`], restarts the
    /// dispatcher after a seeded-exponential backoff
    /// ([`ServiceConfig::restart_backoff`] /
    /// [`ServiceConfig::supervision_seed`]), and keeps serving — up to
    /// [`ServiceConfig::max_dispatcher_restarts`] times, after which
    /// remaining queued work is failed with `Retryable` and the
    /// original panic resumes. [`ServiceReport::dispatcher_restarts`]
    /// counts the recoveries; [`SolverService::health`] reports
    /// `Degraded` for a few panels after each one.
    pub fn run_supervised<R>(
        engine: ServiceEngine<'e, 'm>,
        config: &ServiceConfig,
        body: impl FnOnce(&SolverService<'e, 'm>) -> R,
    ) -> Result<(R, ServiceReport), ServeError> {
        SolverService::run_inner(engine, config, true, body)
    }

    fn run_inner<R>(
        engine: ServiceEngine<'e, 'm>,
        config: &ServiceConfig,
        supervised: bool,
        body: impl FnOnce(&SolverService<'e, 'm>) -> R,
    ) -> Result<(R, ServiceReport), ServeError> {
        let cfg = config.validated(engine.n())?;
        let shortfall_base = engine.resources().spawn_shortfalls();
        let svc = SolverService { engine, cfg, shared: Shared::default(), shortfall_base };
        std::thread::scope(|s| {
            let dispatcher = std::thread::Builder::new()
                .name("sptrsv-dispatch".into())
                .spawn_scoped(s, || svc.dispatcher_loop(supervised))
                .map_err(|_| ServeError::Spawn)?;
            let out = catch_unwind(AssertUnwindSafe(|| body(&svc)));
            svc.shutdown();
            let joined = dispatcher.join();
            let r = match out {
                Ok(r) => r,
                Err(p) => resume_unwind(p),
            };
            if let Err(p) = joined {
                resume_unwind(p);
            }
            // snapshot after the join, not from the dispatcher's exit:
            // a client may race one last (rejected) submit against the
            // dispatcher observing the drained queue, and the final
            // report must count it
            Ok((r, svc.stats()))
        })
    }

    /// The dimension every submitted right-hand side must have.
    pub fn n(&self) -> usize {
        self.engine.n()
    }

    /// The engine this service dispatches to.
    pub fn engine(&self) -> ServiceEngine<'e, 'm> {
        self.engine
    }

    /// Submit a right-hand side with no deadline: it rides whatever
    /// panel it lands in, waiting at most
    /// [`ServiceConfig::max_linger`] for the panel to fill.
    ///
    /// Never blocks. Admission control answers immediately with
    /// [`ServeError::QueueFull`] / [`ServeError::ShuttingDown`]; a
    /// wrong-length `b` is a typed [`ServeError::Solve`] naming the
    /// buffer, and a `b` containing NaN/±∞ is rejected at the door
    /// with [`SolveError::NonFinite`] — one poisoned request must
    /// never reach a coalesced panel.
    #[must_use = "the Ticket is the only way to collect this request's result"]
    pub fn submit(&self, b: &[f64]) -> Result<Ticket<'_>, ServeError> {
        self.submit_inner(b, None)
    }

    /// [`SolverService::submit`] with bounded client-side retries on
    /// [`ServeError::QueueFull`]: sleeps the policy's deterministic
    /// jittered exponential backoff between attempts, giving the
    /// dispatcher time to drain. Any other outcome (success or a
    /// non-retryable error) returns immediately; exhausting the
    /// policy's attempt cap **or** its overall `max_elapsed` deadline
    /// returns [`ServeError::RetryExhausted`] with the attempts made —
    /// the loop can never spin forever against a queue that never
    /// drains.
    #[must_use = "the Ticket is the only way to collect this request's result"]
    pub fn submit_with_retry(
        &self,
        b: &[f64],
        policy: &RetryPolicy,
    ) -> Result<Ticket<'_>, ServeError> {
        run_retry(policy, |e| matches!(e, ServeError::QueueFull { .. }), || self.submit(b))
    }

    /// [`SolverService::submit`] with a completion deadline: the
    /// dispatcher flushes this request's panel early enough (by its
    /// running estimate of a panel solve) to finish by `deadline`
    /// instead of lingering for more lanes. The deadline is
    /// best-effort — [`ServiceReport::deadline_misses`] counts the
    /// ones that completed late.
    #[must_use = "the Ticket is the only way to collect this request's result"]
    pub fn submit_with_deadline(
        &self,
        b: &[f64],
        deadline: Instant,
    ) -> Result<Ticket<'_>, ServeError> {
        self.submit_inner(b, Some(deadline))
    }

    fn submit_inner(&self, b: &[f64], deadline: Option<Instant>) -> Result<Ticket<'_>, ServeError> {
        let _admit = SpanGuard::enter(Site::ServeAdmit);
        let n = self.n();
        if b.len() != n {
            return Err(ServeError::Solve(SolveError::DimensionMismatch {
                n,
                rhs: b.len(),
                index: None,
                buffer: "b",
            }));
        }
        // admission guardrail: one NaN lane would propagate through a
        // fused panel's shared schedule replay, so reject it before it
        // can ride with anyone (no lock held — pure read of `b`)
        if let Some(index) = b.iter().position(|v| !v.is_finite()) {
            return Err(ServeError::Solve(SolveError::NonFinite { buffer: "b", index }));
        }
        let bytes = n * mem::size_of::<f64>();
        let mut q = self.shared.lock();
        if q.shutdown {
            q.stats.rejected_shutdown += 1;
            return Err(ServeError::ShuttingDown);
        }
        if q.pending.len() >= self.cfg.max_queue_requests
            || q.bytes.saturating_add(bytes) > self.cfg.max_queue_bytes
        {
            q.stats.rejected_full += 1;
            return Err(ServeError::QueueFull { depth: q.pending.len(), bytes: q.bytes });
        }
        if fault::fire(FaultSite::AdmissionAlloc) {
            // injected allocation pressure: shed exactly like a full
            // queue so clients exercise their QueueFull handling
            q.stats.rejected_full += 1;
            q.stats.admission_shed += 1;
            return Err(ServeError::QueueFull { depth: q.pending.len(), bytes: q.bytes });
        }
        let slot = q.free.pop().unwrap_or_else(|| Arc::new(Slot::new()));
        {
            let mut st = slot.lock();
            st.phase = Phase::Queued;
            st.rhs.clear();
            st.rhs.extend_from_slice(b);
            if fault::fire(FaultSite::RhsCorruptNonFinite) && !st.rhs.is_empty() {
                // post-admission corruption: models a bit-flip between
                // the scan and the solve; only the output scan can
                // catch it now
                let mid = st.rhs.len() / 2;
                st.rhs[mid] = f64::NAN;
            }
            st.err = None;
            st.abandoned = false;
        }
        let ticket = Ticket { slot: Some(Arc::clone(&slot)), shared: &self.shared };
        q.pending.push_back(Pending { slot, submitted_at: Instant::now(), deadline, bytes });
        q.bytes += bytes;
        q.stats.submitted += 1;
        q.stats.queue_depth_high_water = q.stats.queue_depth_high_water.max(q.pending.len());
        q.stats.queue_bytes_high_water = q.stats.queue_bytes_high_water.max(q.bytes);
        telemetry::gauge_set(Gauge::ServeQueueDepth, q.pending.len() as u64);
        self.shared.dispatch_cv.notify_one();
        Ok(ticket)
    }

    /// Ask the dispatcher to flush the current partial panel now
    /// instead of lingering for more lanes — a latency hint, not a
    /// barrier (the flushed requests still complete asynchronously).
    pub fn flush(&self) {
        let mut q = self.shared.lock();
        q.flush_hint = true;
        self.shared.dispatch_cv.notify_one();
    }

    /// Begin shutdown: subsequent submits are rejected with
    /// [`ServeError::ShuttingDown`]; already-queued work is drained or
    /// rejected per the config. Idempotent; called automatically when
    /// the [`SolverService::run`] closure returns.
    pub fn shutdown(&self) {
        let mut q = self.shared.lock();
        q.shutdown = true;
        self.shared.dispatch_cv.notify_one();
    }

    /// Requests currently queued (excludes in-flight panels).
    pub fn queue_depth(&self) -> usize {
        self.shared.lock().pending.len()
    }

    /// A point-in-time copy of the service counters. When the
    /// [`crate::telemetry`] plane is armed the snapshot carries a
    /// [`TelemetryReport`] digest of the spans recorded so far.
    pub fn stats(&self) -> ServiceReport {
        let mut s = self.shared.lock().stats.clone();
        s.spawn_shortfalls =
            self.engine.resources().spawn_shortfalls().saturating_sub(self.shortfall_base);
        s.telemetry = telemetry::report();
        s
    }

    /// Coarse service condition for external pollers (a load balancer,
    /// a supervisor, the chaos harness): `Draining` once shutdown
    /// begins, `Degraded` while the circuit breaker is open or within
    /// [`HEALTH_RECOVERY_PANELS`] panels of a supervised dispatcher
    /// restart, `Ok` otherwise.
    pub fn health(&self) -> ServiceHealth {
        let q = self.shared.lock();
        if q.shutdown {
            return ServiceHealth::Draining;
        }
        if q.breaker_open {
            return ServiceHealth::Degraded {
                reason: "circuit breaker open: panels degraded to per-request serial solves",
            };
        }
        if q.stats.dispatcher_restarts > 0 && q.panels_since_restart < HEALTH_RECOVERY_PANELS {
            return ServiceHealth::Degraded { reason: "dispatcher recently restarted" };
        }
        ServiceHealth::Ok
    }

    // ---- value refresh ----------------------------------------------

    /// Swap new numeric values into the backing [`SolverEngine`]
    /// **while the service keeps serving** — see the
    /// [value-refresh lifecycle](self#value-refresh-lifecycle). `m2`
    /// must have the exact sparsity pattern the engine was built for;
    /// only its values may differ. The commit quiesces at a panel
    /// boundary (the engine's numeric write lock waits out the
    /// in-flight panel), so every ticket resolves against exactly one
    /// value epoch.
    ///
    /// # Errors
    ///
    /// * [`ServeError::InvalidConfig`] — the service is
    ///   preconditioner-backed; use
    ///   [`SolverService::refresh_preconditioner`].
    /// * [`ServeError::Solve`] wrapping
    ///   [`SolveError::StructureMismatch`] or a factor-audit error —
    ///   the refresh was rejected before any mutation.
    /// * [`ServeError::Retryable`] — an injected
    ///   [`crate::fault::FaultSite::ValueRefresh`] panic interrupted
    ///   the refresh before commit; the old epoch is intact and the
    ///   call is safe to retry.
    pub fn refresh_solver(&self, m2: &CscMatrix) -> Result<RefreshReport, ServeError> {
        let ServiceEngine::Solver(e) = self.engine else {
            return Err(ServeError::InvalidConfig {
                what: "refresh_solver needs a solver-backed service; \
                       use refresh_preconditioner",
            });
        };
        self.record_refresh(catch_unwind(AssertUnwindSafe(|| e.refresh_values(m2))))
    }

    /// [`SolverService::refresh_solver`] for a preconditioner-backed
    /// service: refresh the `L` and `U` engines pair-atomically from a
    /// refactored [`LuFactors`]. No application ever observes a
    /// new-`L`/old-`U` mix — both commits happen under both engines'
    /// write locks, which is also the panel-boundary quiesce point.
    ///
    /// # Errors
    ///
    /// Same surface as [`SolverService::refresh_solver`], validated
    /// for both triangles before either is touched.
    pub fn refresh_preconditioner(
        &self,
        f: &LuFactors,
    ) -> Result<(RefreshReport, RefreshReport), ServeError> {
        let ServiceEngine::Preconditioner(p) = self.engine else {
            return Err(ServeError::InvalidConfig {
                what: "refresh_preconditioner needs a preconditioner-backed service; \
                       use refresh_solver",
            });
        };
        self.record_refresh(catch_unwind(AssertUnwindSafe(|| p.refresh(f))))
    }

    /// Map a caught refresh outcome to the service error surface and
    /// bump the matching counter. A panic payload is dropped, not
    /// resumed: the engine's refresh probe fires before the first
    /// mutation, so the old epoch is intact and the failure is typed
    /// [`ServeError::Retryable`].
    fn record_refresh<T>(
        &self,
        caught: std::thread::Result<Result<T, SolveError>>,
    ) -> Result<T, ServeError> {
        let out = match caught {
            Ok(Ok(v)) => Ok(v),
            Ok(Err(e)) => Err(ServeError::Solve(e)),
            Err(_) => Err(ServeError::Retryable {
                reason: "value refresh interrupted before commit; the old epoch is intact",
            }),
        };
        let mut q = self.shared.lock();
        match &out {
            Ok(_) => q.stats.value_refreshes += 1,
            Err(_) => q.stats.refresh_failures += 1,
        }
        out
    }

    // ---- dispatcher -------------------------------------------------

    /// The dispatcher thread body plus its supervisor. Unsupervised, a
    /// panic that escapes `dispatch` (only possible from completion
    /// bookkeeping or an injected [`FaultSite::DispatcherPanic`] — the
    /// solve itself is caught per panel) aborts the service: every
    /// queued request completes with [`ServeError::Retryable`] and the
    /// panic resumes on the joining thread. Supervised, the in-flight
    /// group is recovered the same way but the dispatcher restarts
    /// after a seeded backoff and keeps serving.
    fn dispatcher_loop(&self, supervised: bool) {
        let mut st = DispatchState::new(self.cfg.max_lanes);
        let mut restarts = 0u32;
        loop {
            let caught = catch_unwind(AssertUnwindSafe(|| self.dispatch(&mut st)));
            let payload = match caught {
                Ok(()) => return,
                Err(p) => p,
            };
            let failed = self.recover_inflight(&mut st);
            if supervised && restarts < self.cfg.max_dispatcher_restarts {
                restarts += 1;
                {
                    let mut q = self.shared.lock();
                    q.stats.dispatcher_restarts += 1;
                    q.stats.failed += failed;
                    q.panels_since_restart = 0;
                }
                std::thread::sleep(backoff_delay(
                    self.cfg.restart_backoff,
                    Duration::from_millis(100),
                    self.cfg.supervision_seed,
                    restarts,
                ));
                continue;
            }
            self.shared.lock().stats.failed += failed;
            self.abort_service();
            resume_unwind(payload);
        }
    }

    /// One dispatcher incarnation: wait for work, decide when to
    /// flush, run the panel, complete the tickets — until shutdown
    /// with an empty queue.
    fn dispatch(&self, st: &mut DispatchState) {
        while let Some(cause) = self.next_group(&mut st.group, st.est_solve) {
            fault::fire_panic(FaultSite::DispatcherPanic);
            self.run_group(st, cause);
        }
    }

    /// After a dispatcher panic: complete whatever the dead
    /// incarnation had popped but not finished with
    /// [`ServeError::Retryable`], reset the (possibly mid-mutation)
    /// scratch, and return how many requests were failed.
    fn recover_inflight(&self, st: &mut DispatchState) -> u64 {
        let mut failed = 0u64;
        for p in st.group.drain(..) {
            let abandoned = {
                let mut s = p.slot.lock();
                if s.phase == Phase::Done {
                    // completed before the panic landed; nothing to do
                    false
                } else {
                    s.err = Some(ServeError::Retryable {
                        reason: "dispatcher restarted while the request was in flight",
                    });
                    s.phase = Phase::Done;
                    p.slot.cv.notify_all();
                    failed += 1;
                    s.abandoned
                }
            };
            if abandoned {
                self.shared.lock().free.push(p.slot);
            }
        }
        st.bs.clear();
        st.outs.clear();
        st.lane_err.clear();
        st.ws = DispatchWorkspace::default();
        failed
    }

    /// Terminal failure path: reject future submits and complete
    /// everything still queued with [`ServeError::Retryable`], so no
    /// ticket ever hangs on a dead dispatcher.
    fn abort_service(&self) {
        let mut q = self.shared.lock();
        q.shutdown = true;
        while let Some(p) = q.pending.pop_front() {
            q.bytes -= p.bytes;
            let abandoned = {
                let mut s = p.slot.lock();
                s.err = Some(ServeError::Retryable {
                    reason: "service aborted after repeated dispatcher panics",
                });
                s.phase = Phase::Done;
                p.slot.cv.notify_all();
                s.abandoned
            };
            q.stats.failed += 1;
            if abandoned {
                q.free.push(p.slot);
            }
        }
    }

    /// Block until a panel should be dispatched, then move up to
    /// `max_lanes` requests from the FIFO into `group`. Returns `None`
    /// exactly once: shutdown with an empty queue.
    fn next_group(&self, group: &mut Vec<Pending>, est_solve: Duration) -> Option<FlushCause> {
        let lanes = self.cfg.max_lanes;
        let mut q = self.shared.lock();
        let cause = loop {
            let depth = q.pending.len();
            // shutdown wins over every other trigger: once it is
            // observed, EVERY remaining group carries Shutdown — so a
            // full panel still queued is drained (and counted in
            // `drained`) or rejected per the config, exactly like a
            // partial one
            if q.shutdown {
                if depth == 0 {
                    return None;
                }
                break FlushCause::Shutdown;
            }
            if depth >= lanes {
                break FlushCause::Full;
            }
            if depth == 0 {
                q.flush_hint = false;
                q = self.shared.dispatch_cv.wait(q).unwrap_or_else(PoisonError::into_inner);
                continue;
            }
            if q.flush_hint {
                q.flush_hint = false;
                break FlushCause::Hint;
            }
            let now = Instant::now();
            let (at, cause) = flush_plan(&q, lanes, self.cfg.max_linger, est_solve, now);
            if at <= now {
                break cause;
            }
            q = self
                .shared
                .dispatch_cv
                .wait_timeout(q, at - now)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        };
        // a pop consumes any pending flush hint whatever the cause:
        // the hint asked for "what is queued now", and leaving it set
        // would spuriously flush the NEXT, unrelated partial panel
        q.flush_hint = false;
        for _ in 0..lanes.min(q.pending.len()) {
            let p = q.pending.pop_front().expect("depth checked");
            q.bytes -= p.bytes;
            group.push(p);
        }
        telemetry::instant(Site::ServeFlush, cause as u64);
        telemetry::gauge_set(Gauge::ServeQueueDepth, q.pending.len() as u64);
        Some(cause)
    }

    /// Solve one flushed group and complete its tickets. Engine errors
    /// and kernel panics fail the panel's requests with a typed error;
    /// the dispatcher itself survives either. Repeated whole-panel
    /// failures trip the circuit breaker onto the degraded per-request
    /// serial path; [`ServiceConfig::scan_outputs`] additionally
    /// quarantines non-finite lanes and retries their panel-mates.
    fn run_group(&self, st: &mut DispatchState, cause: FlushCause) {
        let dispatch_start = Instant::now();
        let mut wait_ns = 0u64;
        let mut max_wait = 0u64;
        for p in st.group.iter() {
            let mut s = p.slot.lock();
            s.phase = Phase::InFlight;
            st.bs.push(mem::take(&mut s.rhs));
            st.outs.push(mem::take(&mut s.out));
            drop(s);
            let w = dispatch_start.saturating_duration_since(p.submitted_at).as_nanos() as u64;
            // per-ticket queue-wait split: the span-derived half of the
            // admission→dispatch latency budget (solve half below)
            telemetry::observe(Hist::ServeQueueWaitNs, w);
            telemetry::instant(Site::ServeTicket, w);
            wait_ns += w;
            max_wait = max_wait.max(w);
        }
        let fill = st.group.len();
        st.lane_err.clear();
        st.lane_err.resize(fill, None);

        let reject = cause == FlushCause::Shutdown && !self.cfg.drain_on_shutdown;
        let panel_span = SpanGuard::enter_on(!reject, Site::ServePanel);
        let mut solve_ns = 0u64;
        let mut poisoned = 0u64;
        let mut retries = 0u64;
        let mut breaker_tripped = false;
        let mut breaker_closed = false;
        let mut degraded = 0u64;
        if reject {
            for e in st.lane_err.iter_mut() {
                *e = Some(ServeError::ShuttingDown);
            }
        } else if st.breaker_open {
            // degraded mode: per-request serial solves, each behind its
            // own catch_unwind — bit-identical results, no panel fusion,
            // no shared blast radius
            let t0 = Instant::now();
            poisoned += self.solve_degraded(st);
            solve_ns = t0.elapsed().as_nanos() as u64;
            degraded = fill as u64;
            st.degraded_panels += 1;
            if st.degraded_panels >= BREAKER_COOLDOWN_PANELS {
                st.breaker_open = false;
                st.degraded_panels = 0;
                st.consec_panel_failures = 0;
                breaker_closed = true;
            }
        } else {
            let t0 = Instant::now();
            let solved = catch_unwind(AssertUnwindSafe(|| {
                self.solve_group(&st.bs, &mut st.outs, &mut st.ws)
            }));
            let took = t0.elapsed();
            solve_ns = took.as_nanos() as u64;
            // EWMA with 1/4 weight on the newest sample: stable under
            // jitter, adapts within a few panels
            st.est_solve = (st.est_solve * 3 + took) / 4;
            let panel_err: Option<ServeError> = match solved {
                Ok(Ok(())) => None,
                Ok(Err(e)) => Some(ServeError::Solve(e)),
                Err(_) => {
                    // the workspace may be mid-mutation; replace it
                    // rather than trust it (allocates, but only on the
                    // panic path)
                    st.ws = DispatchWorkspace::default();
                    Some(ServeError::DispatcherPanicked)
                }
            };
            if let Some(e) = panel_err {
                for l in st.lane_err.iter_mut() {
                    *l = Some(e.clone());
                }
                st.consec_panel_failures += 1;
                if st.consec_panel_failures >= BREAKER_TRIP_PANELS {
                    st.breaker_open = true;
                    st.degraded_panels = 0;
                    breaker_tripped = true;
                }
            } else {
                st.consec_panel_failures = 0;
                if self.cfg.scan_outputs {
                    let (p, r) = self.scan_and_retry(st);
                    poisoned += p;
                    retries += r;
                }
            }
        }
        drop(panel_span);
        if !reject {
            telemetry::observe(Hist::ServeSolveNs, solve_ns);
        }

        let completed_at = Instant::now();
        let mut misses = 0u64;
        let mut served = 0u64;
        let mut failed = 0u64;
        let mut shutdown_rej = 0u64;
        let mut lane_err = mem::take(&mut st.lane_err);
        for (i, (p, (rhs, out))) in
            st.group.drain(..).zip(st.bs.drain(..).zip(st.outs.drain(..))).enumerate()
        {
            if p.deadline.is_some_and(|d| completed_at > d) {
                misses += 1;
            }
            let err = lane_err[i].take();
            match &err {
                None => served += 1,
                Some(ServeError::ShuttingDown) => shutdown_rej += 1,
                Some(_) => failed += 1,
            }
            let abandoned = {
                let mut s = p.slot.lock();
                s.rhs = rhs;
                s.out = out;
                s.err = err;
                s.phase = Phase::Done;
                p.slot.cv.notify_all();
                s.abandoned
            };
            if abandoned {
                // the ticket is gone; the dispatcher recycles
                self.shared.lock().free.push(p.slot);
            }
        }
        st.lane_err = lane_err;

        let mut q = self.shared.lock();
        if breaker_tripped {
            q.breaker_open = true;
            q.stats.breaker_trips += 1;
        }
        if breaker_closed {
            q.breaker_open = false;
        }
        q.panels_since_restart += 1;
        let s = &mut q.stats;
        s.panels += 1;
        s.fill_sum += fill as u64;
        s.max_fill = s.max_fill.max(fill);
        s.deadline_misses += misses;
        s.wait_ns_total += wait_ns;
        s.max_wait_ns = s.max_wait_ns.max(max_wait);
        s.solve_ns_total += solve_ns;
        s.poisoned_lanes += poisoned;
        s.panel_retries += retries;
        s.degraded_solves += degraded;
        match cause {
            FlushCause::Full => s.full_flushes += 1,
            FlushCause::Linger => s.linger_flushes += 1,
            FlushCause::Deadline => s.deadline_flushes += 1,
            FlushCause::Hint => s.hint_flushes += 1,
            FlushCause::Shutdown => {}
        }
        s.served += served;
        s.failed += failed;
        s.shutdown_rejected += shutdown_rej;
        if cause == FlushCause::Shutdown {
            s.drained += served;
        }
    }

    /// Run one coalesced panel through the engine. Groups at or under
    /// `2 × PANEL_K` lanes stay on the single-thread fused kernels
    /// (allocation-free); wider solver groups go through the pooled
    /// batch tier, trading per-dispatch task allocation for cores.
    fn solve_group(
        &self,
        bs: &[Vec<f64>],
        outs: &mut [Vec<f64>],
        ws: &mut DispatchWorkspace,
    ) -> Result<(), SolveError> {
        fault::fire_panic(FaultSite::PanelSolve);
        match self.engine {
            ServiceEngine::Solver(e) => {
                if bs.len() > 2 * PANEL_K {
                    e.solve_batch_into(bs, outs)
                } else {
                    e.panel_into_prevalidated(bs, outs, &mut ws.solve)
                }
            }
            ServiceEngine::Preconditioner(p) => p.apply_batch_prevalidated(bs, outs, &mut ws.apply),
        }
    }

    /// Breaker-open dispatch: solve each lane independently through
    /// the engines' serial paths, one `catch_unwind` per lane. Note
    /// the injected [`FaultSite::PanelSolve`] probe lives in
    /// [`SolverService::solve_group`], which this path bypasses — so a
    /// plan that keeps killing the fused path cannot also kill the
    /// degraded path, and the service keeps serving. Returns the count
    /// of lanes quarantined by the output scan.
    fn solve_degraded(&self, st: &mut DispatchState) -> u64 {
        let n = self.n();
        let mut poisoned = 0u64;
        for i in 0..st.bs.len() {
            st.outs[i].resize(n, 0.0);
            let solved = match self.engine {
                ServiceEngine::Solver(e) => catch_unwind(AssertUnwindSafe(|| {
                    e.solve_into(&st.bs[i], &mut st.outs[i], &mut st.ws.solve)
                })),
                ServiceEngine::Preconditioner(p) => catch_unwind(AssertUnwindSafe(|| {
                    p.apply_into(&st.bs[i], &mut st.outs[i], &mut st.ws.apply)
                })),
            };
            st.lane_err[i] = match solved {
                Ok(Ok(())) => {
                    if self.cfg.scan_outputs {
                        if let Some(index) = st.outs[i].iter().position(|v| !v.is_finite()) {
                            poisoned += 1;
                            Some(ServeError::Solve(SolveError::NonFinite { buffer: "x", index }))
                        } else {
                            None
                        }
                    } else {
                        None
                    }
                }
                Ok(Err(e)) => Some(ServeError::Solve(e)),
                Err(_) => {
                    st.ws = DispatchWorkspace::default();
                    Some(ServeError::DispatcherPanicked)
                }
            };
        }
        poisoned
    }

    /// Post-solve guardrail ([`ServiceConfig::scan_outputs`]): scan
    /// each successful lane's output for non-finite values, fail the
    /// poisoned lanes with [`SolveError::NonFinite`] (`buffer: "x"`),
    /// and re-solve the clean panel-mates so a corrupted lane is never
    /// collateral damage. Loops until a scan comes back clean; each
    /// iteration quarantines at least one lane, so it terminates.
    fn scan_and_retry(&self, st: &mut DispatchState) -> (u64, u64) {
        let mut poisoned = 0u64;
        let mut retries = 0u64;
        loop {
            let mut newly = false;
            for i in 0..st.outs.len() {
                if st.lane_err[i].is_some() {
                    continue;
                }
                if let Some(index) = st.outs[i].iter().position(|v| !v.is_finite()) {
                    st.lane_err[i] =
                        Some(ServeError::Solve(SolveError::NonFinite { buffer: "x", index }));
                    poisoned += 1;
                    newly = true;
                }
            }
            if !newly {
                return (poisoned, retries);
            }
            let clean: Vec<usize> =
                (0..st.outs.len()).filter(|&i| st.lane_err[i].is_none()).collect();
            if clean.is_empty() {
                return (poisoned, retries);
            }
            // retry the surviving lanes as a smaller panel (allocates
            // the sub-panel views; acceptable on this exceptional path)
            let sub_bs: Vec<Vec<f64>> = clean.iter().map(|&i| mem::take(&mut st.bs[i])).collect();
            let mut sub_outs: Vec<Vec<f64>> =
                clean.iter().map(|&i| mem::take(&mut st.outs[i])).collect();
            retries += 1;
            let solved = catch_unwind(AssertUnwindSafe(|| {
                self.solve_group(&sub_bs, &mut sub_outs, &mut st.ws)
            }));
            for ((&i, b), out) in clean.iter().zip(sub_bs).zip(sub_outs) {
                st.bs[i] = b;
                st.outs[i] = out;
            }
            match solved {
                Ok(Ok(())) => {} // rescan on the next loop iteration
                Ok(Err(e)) => {
                    for &i in &clean {
                        st.lane_err[i] = Some(ServeError::Solve(e.clone()));
                    }
                    return (poisoned, retries);
                }
                Err(_) => {
                    st.ws = DispatchWorkspace::default();
                    for &i in &clean {
                        st.lane_err[i] = Some(ServeError::DispatcherPanicked);
                    }
                    return (poisoned, retries);
                }
            }
        }
    }
}

/// When (and why) the next flush should happen, given a non-empty,
/// non-full queue: the oldest request's linger expiry, tightened by
/// the deadline slack (`deadline − est_solve`) of every request that
/// would ride the next panel.
fn flush_plan(
    q: &QueueState,
    lanes: usize,
    max_linger: Duration,
    est_solve: Duration,
    now: Instant,
) -> (Instant, FlushCause) {
    let oldest = q.pending.front().expect("flush_plan needs a non-empty queue");
    let mut at = oldest
        .submitted_at
        .checked_add(max_linger)
        .unwrap_or_else(|| now + Duration::from_secs(3600));
    let mut cause = FlushCause::Linger;
    for p in q.pending.iter().take(lanes) {
        if let Some(d) = p.deadline {
            let cutoff = d.checked_sub(est_solve).unwrap_or(now);
            if cutoff < at {
                at = cutoff;
                cause = FlushCause::Deadline;
            }
        }
    }
    (at, cause)
}

/// The future-like handle [`SolverService::submit`] returns: exactly
/// one of [`Ticket::wait`] / [`Ticket::try_wait`] /
/// [`Ticket::wait_timeout`] collects the result (the consuming
/// signatures make double-collection unrepresentable). Dropping a
/// ticket abandons the request — the solve may still run, but its
/// result is recycled instead of delivered.
#[derive(Debug)]
#[must_use = "dropping a Ticket abandons its request; wait/try_wait/wait_timeout collect it"]
pub struct Ticket<'s> {
    /// `Some` until the result is collected or the ticket dropped.
    slot: Option<Arc<Slot>>,
    shared: &'s Shared,
}

impl<'s> Ticket<'s> {
    /// Block until the request completes; returns the solution vector
    /// or the panel's error. Allocation note: the returned vector is
    /// the slot's buffer, so the slot regrows on its next reuse —
    /// steady-state-allocation-free callers want
    /// [`Ticket::wait_into`].
    pub fn wait(mut self) -> Result<Vec<f64>, ServeError> {
        let slot = self.slot.take().expect("ticket not yet collected");
        let mut st = slot.lock();
        while st.phase != Phase::Done {
            st = slot.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        let res = match st.err.take() {
            Some(e) => Err(e),
            None => Ok(mem::take(&mut st.out)),
        };
        st.phase = Phase::Idle;
        drop(st);
        self.recycle(slot);
        res
    }

    /// Block until completion and copy the solution into `out`,
    /// keeping every buffer recycled — the zero-allocation collection
    /// path (proved by the counting-allocator test).
    pub fn wait_into(mut self, out: &mut [f64]) -> Result<(), ServeError> {
        let slot = self.slot.take().expect("ticket not yet collected");
        let mut st = slot.lock();
        while st.phase != Phase::Done {
            st = slot.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        let res = match st.err.take() {
            Some(e) => Err(e),
            None if out.len() == st.out.len() => {
                out.copy_from_slice(&st.out);
                Ok(())
            }
            None => Err(ServeError::Solve(SolveError::OutputLength {
                n: st.out.len(),
                out: out.len(),
                buffer: "out",
            })),
        };
        st.phase = Phase::Idle;
        drop(st);
        self.recycle(slot);
        res
    }

    /// Non-blocking poll: `Ok(result)` if the request has completed,
    /// `Err(self)` (the ticket, returned for another try) if it is
    /// still queued or in flight.
    pub fn try_wait(self) -> Result<Result<Vec<f64>, ServeError>, Ticket<'s>> {
        self.wait_timeout(Duration::ZERO)
    }

    /// Deadline-aware wait: block at most `timeout`. `Ok(result)` on
    /// completion; `Err(self)` if the timeout expired first — the
    /// ticket comes back so the caller can keep waiting, poll again
    /// later, or drop it to abandon the request.
    pub fn wait_timeout(
        mut self,
        timeout: Duration,
    ) -> Result<Result<Vec<f64>, ServeError>, Ticket<'s>> {
        let slot = self.slot.take().expect("ticket not yet collected");
        let deadline = Instant::now().checked_add(timeout);
        let mut st = slot.lock();
        while st.phase != Phase::Done {
            let left = deadline
                .map(|d| d.saturating_duration_since(Instant::now()))
                .unwrap_or(Duration::MAX);
            if left.is_zero() {
                drop(st);
                self.slot = Some(slot);
                return Err(self);
            }
            st = slot.cv.wait_timeout(st, left).unwrap_or_else(PoisonError::into_inner).0;
        }
        let res = match st.err.take() {
            Some(e) => Err(e),
            None => Ok(mem::take(&mut st.out)),
        };
        st.phase = Phase::Idle;
        drop(st);
        self.recycle(slot);
        Ok(res)
    }

    /// Return a finished slot to the service free list.
    fn recycle(&self, slot: Arc<Slot>) {
        self.shared.lock().free.push(slot);
    }
}

impl Drop for Ticket<'_> {
    fn drop(&mut self) {
        let Some(slot) = self.slot.take() else { return };
        let recycle_now = {
            let mut st = slot.lock();
            match st.phase {
                // the dispatcher still owns (or will own) the slot:
                // flag it and let the dispatcher recycle at completion
                Phase::Queued | Phase::InFlight => {
                    st.abandoned = true;
                    false
                }
                // completed but uncollected, or already collected —
                // nothing else references the slot
                Phase::Done | Phase::Idle => {
                    st.phase = Phase::Idle;
                    st.err = None;
                    true
                }
            }
        };
        if recycle_now {
            self.shared.lock().free.push(slot);
        }
    }
}

/// Run a [`SolverService`] over a triangular [`SolverEngine`] —
/// results bit-identical to [`SolverEngine::solve`] per request.
pub fn serve_solver<'e, 'm, R>(
    engine: &'e SolverEngine<'m>,
    config: &ServiceConfig,
    body: impl FnOnce(&SolverService<'e, 'm>) -> R,
) -> Result<(R, ServiceReport), ServeError> {
    SolverService::run(ServiceEngine::Solver(engine), config, body)
}

/// Run a [`SolverService`] over a [`PreconditionerEngine`] pair —
/// results bit-identical to [`PreconditionerEngine::apply_into`] per
/// request, so Krylov trajectories fed through the service are
/// reproducible to the bit.
pub fn serve_preconditioner<'e, 'm, R>(
    pre: &'e PreconditionerEngine<'m>,
    config: &ServiceConfig,
    body: impl FnOnce(&SolverService<'e, 'm>) -> R,
) -> Result<(R, ServiceReport), ServeError> {
    SolverService::run(ServiceEngine::Preconditioner(pre), config, body)
}

/// A [`Precondition`] implementation that routes every application
/// through a shared preconditioner-backed [`SolverService`] — the
/// handle that lets a PCG/BiCGSTAB loop share one service (and one
/// warm engine pair) with foreground traffic, its applications
/// coalesced into the same fused panels.
///
/// Each application submits with a deadline of `now + slack`
/// ([`ServedPreconditioner::with_slack`]; zero by default), so a
/// sequential Krylov loop is flushed promptly together with whatever
/// foreground requests are already queued, instead of lingering a full
/// [`ServiceConfig::max_linger`] per iteration.
#[derive(Debug, Clone, Copy)]
pub struct ServedPreconditioner<'a, 'e, 'm> {
    svc: &'a SolverService<'e, 'm>,
    slack: Duration,
    retry: RetryPolicy,
}

impl<'a, 'e, 'm> ServedPreconditioner<'a, 'e, 'm> {
    /// Wrap a preconditioner-backed service with zero deadline slack
    /// (lowest latency per application). A solver-backed service is a
    /// typed error: applying `M⁻¹` through a single-triangle engine
    /// would silently solve only half the preconditioner.
    pub fn new(
        svc: &'a SolverService<'e, 'm>,
    ) -> Result<ServedPreconditioner<'a, 'e, 'm>, ServeError> {
        ServedPreconditioner::with_slack(svc, Duration::ZERO)
    }

    /// [`ServedPreconditioner::new`] with a deadline slack: each
    /// application may linger up to `slack` so concurrent traffic can
    /// coalesce into its panel — throughput for latency, bit-identical
    /// results either way.
    pub fn with_slack(
        svc: &'a SolverService<'e, 'm>,
        slack: Duration,
    ) -> Result<ServedPreconditioner<'a, 'e, 'm>, ServeError> {
        match svc.engine {
            ServiceEngine::Preconditioner(_) => {
                Ok(ServedPreconditioner { svc, slack, retry: RetryPolicy::default() })
            }
            ServiceEngine::Solver(_) => Err(ServeError::InvalidConfig {
                what: "ServedPreconditioner needs a preconditioner-backed service",
            }),
        }
    }

    /// Override the transient-failure retry schedule. Each Krylov
    /// application retries [`ServeError::QueueFull`] and
    /// [`ServeError::Retryable`] (the two outcomes that mean "the
    /// request never ran — try again") up to the policy's attempt
    /// budget; everything else surfaces immediately.
    pub fn with_retry(mut self, retry: RetryPolicy) -> ServedPreconditioner<'a, 'e, 'm> {
        self.retry = retry;
        self
    }
}

impl Precondition for ServedPreconditioner<'_, '_, '_> {
    fn dim(&self) -> usize {
        self.svc.n()
    }

    fn precondition_into(&self, r: &[f64], z: &mut [f64]) -> Result<(), SolveError> {
        run_retry(
            &self.retry,
            |e| matches!(e, ServeError::QueueFull { .. } | ServeError::Retryable { .. }),
            || {
                let deadline = Instant::now() + self.slack;
                self.svc.submit_with_deadline(r, deadline).and_then(|ticket| ticket.wait_into(z))
            },
        )
        .map_err(SolveError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_policy(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            base_backoff: Duration::from_micros(1),
            max_backoff: Duration::from_micros(10),
            ..RetryPolicy::default()
        }
    }

    /// Satellite regression: a queue that never drains cannot spin the
    /// retry loop forever — exhaustion is typed and carries the
    /// attempts actually made.
    #[test]
    fn run_retry_attempt_cap_returns_typed_exhaustion() {
        let mut calls = 0u32;
        let r: Result<(), ServeError> = run_retry(
            &fast_policy(5),
            |e| matches!(e, ServeError::QueueFull { .. }),
            || {
                calls += 1;
                Err(ServeError::QueueFull { depth: 1, bytes: 8 })
            },
        );
        assert_eq!(r, Err(ServeError::RetryExhausted { attempts: 5 }));
        assert_eq!(calls, 5, "exactly max_attempts attempts were made");
    }

    /// The overall deadline is the second jaw: with a huge attempt cap
    /// and a zero deadline, exactly one attempt is made.
    #[test]
    fn run_retry_deadline_beats_attempt_cap() {
        let policy = RetryPolicy { max_elapsed: Duration::ZERO, ..fast_policy(u32::MAX) };
        let mut calls = 0u32;
        let r: Result<(), ServeError> = run_retry(
            &policy,
            |e| matches!(e, ServeError::QueueFull { .. }),
            || {
                calls += 1;
                Err(ServeError::QueueFull { depth: 1, bytes: 8 })
            },
        );
        assert_eq!(r, Err(ServeError::RetryExhausted { attempts: 1 }));
        assert_eq!(calls, 1, "a zero deadline still permits the first attempt");
    }

    /// Success and non-retryable errors pass through untouched — no
    /// sleeping, no rewrapping.
    #[test]
    fn run_retry_passes_through_non_retryable_outcomes() {
        let ok: Result<u32, ServeError> = run_retry(&fast_policy(3), |_| true, || Ok(42));
        assert_eq!(ok, Ok(42));
        let err: Result<(), ServeError> = run_retry(
            &fast_policy(3),
            |e| matches!(e, ServeError::QueueFull { .. }),
            || Err(ServeError::ShuttingDown),
        );
        assert_eq!(err, Err(ServeError::ShuttingDown));
    }

    /// A retryable error that clears mid-schedule succeeds without
    /// reporting exhaustion.
    #[test]
    fn run_retry_recovers_when_the_condition_clears() {
        let mut calls = 0u32;
        let r = run_retry(
            &fast_policy(4),
            |e| matches!(e, ServeError::QueueFull { .. }),
            || {
                calls += 1;
                if calls < 3 {
                    Err(ServeError::QueueFull { depth: 9, bytes: 72 })
                } else {
                    Ok("drained")
                }
            },
        );
        assert_eq!(r, Ok("drained"));
        assert_eq!(calls, 3);
    }

    #[test]
    fn zero_attempt_policy_is_clamped_to_one() {
        let mut calls = 0u32;
        let r: Result<(), ServeError> = run_retry(
            &fast_policy(0),
            |_| true,
            || {
                calls += 1;
                Err(ServeError::QueueFull { depth: 1, bytes: 8 })
            },
        );
        assert_eq!(r, Err(ServeError::RetryExhausted { attempts: 1 }));
        assert_eq!(calls, 1);
    }
}
