//! Async batched serving front-end: deadline-aware right-hand-side
//! coalescing over the warm engines.
//!
//! The paper's premise is that analysis is paid once and the solve
//! phase replays thousands of times; the engine tiers (PR 1–4) made
//! the replay cheap, and the fused panel kernels made it ~K× cheaper
//! per RHS when K right-hand sides run together. What was missing is
//! the layer that *finds* those K right-hand sides: real serving
//! traffic arrives one request at a time, from many client threads,
//! each wanting its own answer back. [`SolverService`] is that layer —
//! a thread-based, std-only dispatcher that coalesces concurrent
//! independent requests into fused [`crate::exec::PANEL_K`]-lane
//! panels, the same amortize-the-schedule idea that makes multi-RHS
//! replay several times faster than a per-RHS loop.
//!
//! ## Queueing model
//!
//! Clients call [`SolverService::submit`] (or
//! [`SolverService::submit_with_deadline`]) from any number of
//! threads. Each accepted request is copied into a recycled slot,
//! appended to a FIFO queue, and acknowledged with a [`Ticket`] — a
//! future-like handle with [`Ticket::wait`], [`Ticket::try_wait`] and
//! [`Ticket::wait_timeout`]. A single dispatcher thread (owned by the
//! service, started by [`SolverService::run`]) pops requests in FIFO
//! order, groups up to [`ServiceConfig::max_lanes`] of them, and runs
//! the group through the engine's fused panel kernel
//! ([`SolverEngine::panel_into_prevalidated`] — lengths were validated
//! once at admission, so dispatch never re-pays a per-lane validation
//! sweep). Results are written back into the slots and the tickets
//! are woken.
//!
//! Because the panel kernels never mix lanes, **every result is
//! bit-identical to a serial [`SolverEngine::solve`] of the same
//! right-hand side, regardless of how requests were coalesced** — the
//! service inherits the repository's strongest invariant for free,
//! and the stress tests assert it across every interleaving they can
//! provoke.
//!
//! ## Deadline semantics
//!
//! The dispatcher flushes a partial panel when the first of these
//! fires:
//!
//! * **Full** — [`ServiceConfig::max_lanes`] requests are queued;
//! * **Linger** — the oldest queued request has waited
//!   [`ServiceConfig::max_linger`];
//! * **Deadline** — some request in the next panel has a deadline `d`
//!   and `d - est` is due, where `est` is an exponential moving
//!   average of recent panel solve times (deadline *slack*: the flush
//!   happens early enough that the solve can still finish by `d`);
//! * **Hint** — a client called [`SolverService::flush`];
//! * **Shutdown** — the service is draining.
//!
//! Latency-sensitive singletons therefore flush almost immediately
//! (submit with a tight deadline), while throughput floods fill whole
//! panels; both get correct answers, and [`ServiceReport`] records
//! which trigger fired how often.
//!
//! ## Backpressure contract
//!
//! The queue is bounded in **requests** and **bytes**
//! ([`ServiceConfig::max_queue_requests`] /
//! [`ServiceConfig::max_queue_bytes`]). `submit` never blocks: a full
//! queue returns [`ServeError::QueueFull`] (with the observed depth)
//! and a stopping service returns [`ServeError::ShuttingDown`], both
//! typed — the caller decides whether to retry, shed, or escalate.
//! Queue-depth and byte high-water marks land in the final
//! [`ServiceReport`].
//!
//! ## Shutdown
//!
//! [`SolverService::run`] drives the whole lifecycle: it starts the
//! dispatcher, hands the caller a `&SolverService` to share with any
//! client threads (the service is `Sync`; spawn clients with
//! `std::thread::scope` and they may all submit concurrently), and on
//! return from the closure initiates shutdown: further submits are
//! rejected, queued work is **drained** (solved and completed) by
//! default or rejected with [`ServeError::ShuttingDown`] when
//! [`ServiceConfig::drain_on_shutdown`] is false, and the dispatcher
//! is joined before `run` returns the closure's result plus the final
//! [`ServiceReport`]. The scoped shape is what lets the service stay
//! entirely safe Rust: tickets and the dispatcher borrow the service,
//! and the borrow provably outlives both.
//!
//! ## Zero allocation in steady state
//!
//! Slots (request/result buffers + completion state) are recycled
//! through a free list, panel group buffers are preallocated at
//! dispatcher start, and the dispatch path runs the engines'
//! allocation-free panel kernels — so once the service has warmed up,
//! a submit→dispatch→wait cycle performs **zero** heap allocation
//! (proved by the counting-allocator test in
//! `crates/sptrsv/tests/alloc_free.rs`). Groups wider than
//! `2 × PANEL_K` lanes (a non-default [`ServiceConfig::max_lanes`])
//! dispatch through the pooled batch tier instead, which allocates
//! its chunk tasks per dispatch — documented trade, not default.
//!
//! ## Pool-worker clients
//!
//! Clients may submit (and wait) from inside the engine's own
//! [`crate::pool`] worker tasks — e.g. a batched job that wants a few
//! extra solves served on the side. The dispatcher is its own OS
//! thread and never requires the submitting thread's cooperation, and
//! when a wide group does use the worker pool it goes through
//! `scope_run`, whose helping submitter executes its own jobs instead
//! of waiting on occupied workers — so a full pool of blocked clients
//! cannot deadlock the service (regression-tested).

use crate::engine::{SolveWorkspace, SolverEngine};
use crate::exec::PANEL_K;
use crate::krylov::{ApplyWorkspace, Precondition, PreconditionerEngine};
use crate::solver::SolveError;
use std::collections::VecDeque;
use std::mem;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Everything that can go wrong between a client and the service.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Admission control refused the request: the queue is at its
    /// request or byte bound. `submit` never blocks — the caller
    /// chooses between retrying, shedding load, and escalating.
    QueueFull {
        /// Requests queued at the moment of rejection.
        depth: usize,
        /// Payload bytes queued at the moment of rejection.
        bytes: usize,
    },
    /// The service is shutting down: either the submit arrived after
    /// shutdown began, or the request was still queued at shutdown and
    /// [`ServiceConfig::drain_on_shutdown`] is off.
    ShuttingDown,
    /// The service configuration cannot work (e.g. a zero queue bound,
    /// which would reject every request).
    InvalidConfig {
        /// Which knob is broken.
        what: &'static str,
    },
    /// The dispatcher could not be spawned (thread creation failed) —
    /// reported as a typed error instead of a panic.
    Spawn,
    /// The underlying engine rejected or failed the coalesced solve;
    /// every request of the affected panel receives the same error.
    Solve(SolveError),
    /// The dispatcher caught a panic from the solve kernel. The panel's
    /// requests are failed with this error and the service keeps
    /// serving — one poisoned group must not brick the front-end.
    DispatcherPanicked,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull { depth, bytes } => write!(
                f,
                "serving queue is full ({depth} requests / {bytes} bytes queued); retry or shed"
            ),
            ServeError::ShuttingDown => write!(f, "the serving front-end is shutting down"),
            ServeError::InvalidConfig { what } => {
                write!(f, "invalid service configuration: {what}")
            }
            ServeError::Spawn => write!(f, "could not spawn the service dispatcher thread"),
            ServeError::Solve(e) => write!(f, "serving dispatch failed: {e}"),
            ServeError::DispatcherPanicked => {
                write!(f, "the dispatcher caught a panic while solving this panel")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SolveError> for ServeError {
    fn from(e: SolveError) -> Self {
        ServeError::Solve(e)
    }
}

impl From<ServeError> for SolveError {
    /// Collapse a serving failure into the solver error vocabulary —
    /// what a [`ServedPreconditioner`] reports to its Krylov driver.
    fn from(e: ServeError) -> Self {
        match e {
            ServeError::Solve(e) => e,
            ServeError::QueueFull { .. } => SolveError::Rejected { reason: "queue full" },
            ServeError::ShuttingDown => SolveError::Rejected { reason: "shutting down" },
            ServeError::InvalidConfig { .. } => {
                SolveError::Rejected { reason: "invalid service configuration" }
            }
            ServeError::Spawn => SolveError::Rejected { reason: "dispatcher spawn failed" },
            ServeError::DispatcherPanicked => {
                SolveError::Rejected { reason: "dispatcher panicked" }
            }
        }
    }
}

/// Tuning knobs for a [`SolverService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Most requests coalesced into one dispatched panel. Defaults to
    /// [`PANEL_K`] — the fused kernels' native width, and the widest
    /// group that stays on the allocation-free dispatch path. `0` is
    /// clamped to 1.
    pub max_lanes: usize,
    /// Admission bound on queued (not yet dispatched) requests.
    pub max_queue_requests: usize,
    /// Admission bound on queued payload bytes (`n × 8` per request).
    pub max_queue_bytes: usize,
    /// Longest a queued request may wait for its panel to fill before
    /// the dispatcher flushes a partial one. Clamped to one hour.
    pub max_linger: Duration,
    /// On shutdown, solve what is still queued (`true`, default) or
    /// complete it with [`ServeError::ShuttingDown`] (`false`).
    pub drain_on_shutdown: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_lanes: PANEL_K,
            max_queue_requests: 1024,
            max_queue_bytes: 256 << 20,
            max_linger: Duration::from_micros(200),
            drain_on_shutdown: true,
        }
    }
}

impl ServiceConfig {
    /// Clamp the self-healable knobs (a zero lane count means one
    /// lane; a multi-hour linger is capped) and reject the
    /// unserviceable ones with a typed error — a zero queue bound
    /// would silently reject every request, which is a configuration
    /// bug, not a load condition.
    fn validated(&self) -> Result<ServiceConfig, ServeError> {
        if self.max_queue_requests == 0 {
            return Err(ServeError::InvalidConfig { what: "max_queue_requests must be ≥ 1" });
        }
        if self.max_queue_bytes == 0 {
            return Err(ServeError::InvalidConfig { what: "max_queue_bytes must be ≥ 1" });
        }
        let mut cfg = self.clone();
        cfg.max_lanes = cfg.max_lanes.max(1);
        cfg.max_linger = cfg.max_linger.min(Duration::from_secs(3600));
        Ok(cfg)
    }
}

/// The warm engine a service dispatches to: a single triangular
/// [`SolverEngine`] or an L/U [`PreconditionerEngine`] pair. Both
/// expose the fused-panel batch path the dispatcher coalesces into.
#[derive(Debug, Clone, Copy)]
pub enum ServiceEngine<'e, 'm> {
    /// One triangular factor: panels run
    /// [`SolverEngine::solve_panel_into`]'s kernel along the engine's
    /// canonical warm order — results bit-identical to
    /// [`SolverEngine::solve`].
    Solver(&'e SolverEngine<'m>),
    /// An L/U pair: panels run
    /// [`PreconditionerEngine::apply_batch_into`]'s kernel along the
    /// natural substitution order — results bit-identical to
    /// [`PreconditionerEngine::apply_into`], so a Krylov trajectory
    /// fed through the service is reproducible to the bit.
    Preconditioner(&'e PreconditionerEngine<'m>),
}

impl ServiceEngine<'_, '_> {
    /// System dimension requests must match.
    pub fn n(&self) -> usize {
        match self {
            ServiceEngine::Solver(e) => e.matrix().n(),
            ServiceEngine::Preconditioner(p) => p.n(),
        }
    }
}

/// Where a request currently is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Recycled / freshly initialized; not visible to the dispatcher.
    Idle,
    /// Accepted and waiting in the FIFO.
    Queued,
    /// Moved into a panel; the dispatcher owns the buffers.
    InFlight,
    /// Completed (result or error present); the ticket may collect.
    Done,
}

/// Completion state + recycled buffers of one request. Shared between
/// exactly one [`Ticket`] and the dispatcher via `Arc`.
#[derive(Debug)]
struct Slot {
    st: Mutex<SlotState>,
    cv: Condvar,
}

#[derive(Debug)]
struct SlotState {
    phase: Phase,
    /// Request payload; moved into the panel group for the solve and
    /// moved back afterwards so the capacity is never lost.
    rhs: Vec<f64>,
    /// Result buffer, same recycling discipline.
    out: Vec<f64>,
    /// The panel's error, if it failed; cloned into every member.
    err: Option<ServeError>,
    /// The ticket was dropped before collecting — whoever finishes
    /// with the slot last returns it to the free list.
    abandoned: bool,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            st: Mutex::new(SlotState {
                phase: Phase::Idle,
                rhs: Vec::new(),
                out: Vec::new(),
                err: None,
                abandoned: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, SlotState> {
        self.st.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A queued request: the slot plus the scheduling metadata the
/// dispatcher reads on every wake (kept out of the slot mutex so flush
/// planning never nests slot locks under the queue lock).
#[derive(Debug)]
struct Pending {
    slot: Arc<Slot>,
    submitted_at: Instant,
    deadline: Option<Instant>,
    bytes: usize,
}

/// What made the dispatcher flush a panel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlushCause {
    Full,
    Linger,
    Deadline,
    Hint,
    Shutdown,
}

#[derive(Debug, Default)]
struct QueueState {
    pending: VecDeque<Pending>,
    /// Payload bytes currently queued (admission accounting).
    bytes: usize,
    shutdown: bool,
    flush_hint: bool,
    /// Recycled slots; every steady-state submit pops one here.
    free: Vec<Arc<Slot>>,
    stats: ServiceReport,
}

/// The client-facing shared state: FIFO + free list behind one mutex,
/// and the condvar that wakes the dispatcher. Split from
/// [`SolverService`] so a [`Ticket`] needs only this one borrow.
#[derive(Debug, Default)]
struct Shared {
    q: Mutex<QueueState>,
    dispatch_cv: Condvar,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.q.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Counters the service maintains while running and returns from
/// [`SolverService::run`] (snapshot any time via
/// [`SolverService::stats`]). All `*_ns` fields are wall-clock
/// nanoseconds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceReport {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests completed with a solution (includes drained ones).
    pub served: u64,
    /// Requests completed with an engine error or dispatcher panic.
    pub failed: u64,
    /// Submits rejected by admission control (queue full).
    pub rejected_full: u64,
    /// Submits rejected because shutdown had begun.
    pub rejected_shutdown: u64,
    /// Requests still queued at shutdown and completed with
    /// [`ServeError::ShuttingDown`] (only when draining is off).
    pub shutdown_rejected: u64,
    /// Requests still queued at shutdown and solved during the drain
    /// (a subset of `served`).
    pub drained: u64,
    /// Panels dispatched.
    pub panels: u64,
    /// Total lanes across all panels (`mean_fill` = this / `panels`).
    pub fill_sum: u64,
    /// Widest panel dispatched.
    pub max_fill: usize,
    /// Flushes triggered by a full panel.
    pub full_flushes: u64,
    /// Flushes triggered by the oldest request's linger expiring.
    pub linger_flushes: u64,
    /// Flushes triggered by a request's deadline slack expiring.
    pub deadline_flushes: u64,
    /// Flushes triggered by [`SolverService::flush`].
    pub hint_flushes: u64,
    /// Requests whose deadline had already passed when their panel
    /// completed.
    pub deadline_misses: u64,
    /// Most requests ever queued at once.
    pub queue_depth_high_water: usize,
    /// Most payload bytes ever queued at once.
    pub queue_bytes_high_water: usize,
    /// Sum over completed requests of (dispatch start − submit).
    pub wait_ns_total: u64,
    /// Worst single-request wait.
    pub max_wait_ns: u64,
    /// Sum over panels of the panel solve wall-clock.
    pub solve_ns_total: u64,
}

impl ServiceReport {
    /// Mean lanes per dispatched panel — the coalescing win; 1.0 means
    /// the service degenerated to a per-request loop.
    pub fn mean_fill(&self) -> f64 {
        if self.panels == 0 {
            0.0
        } else {
            self.fill_sum as f64 / self.panels as f64
        }
    }

    /// Mean time a completed request spent queued before dispatch.
    pub fn mean_wait_ns(&self) -> f64 {
        let done = self.served + self.failed + self.shutdown_rejected;
        if done == 0 {
            0.0
        } else {
            self.wait_ns_total as f64 / done as f64
        }
    }

    /// Mean wall-clock of one panel solve.
    pub fn mean_panel_solve_ns(&self) -> f64 {
        if self.panels == 0 {
            0.0
        } else {
            self.solve_ns_total as f64 / self.panels as f64
        }
    }
}

/// Reusable dispatcher scratch: one workspace per engine flavor, grown
/// once, reused for every panel.
#[derive(Debug, Default)]
struct DispatchWorkspace {
    solve: SolveWorkspace,
    apply: ApplyWorkspace,
}

/// The serving front-end: a bounded FIFO of right-hand sides, a
/// dispatcher that coalesces them into fused panels over a warm
/// engine, and [`Ticket`]s that hand results back to the submitting
/// threads. See the [module docs](self) for the queueing model,
/// deadline semantics and backpressure contract.
///
/// Constructed only through [`SolverService::run`] (or the
/// [`serve_solver`] / [`serve_preconditioner`] conveniences), which
/// scopes the dispatcher thread to the engine's lifetime — the reason
/// this subsystem contains no `unsafe`.
#[derive(Debug)]
pub struct SolverService<'e, 'm> {
    engine: ServiceEngine<'e, 'm>,
    cfg: ServiceConfig,
    shared: Shared,
}

impl<'e, 'm> SolverService<'e, 'm> {
    /// Run a service over `engine` for the duration of `body`.
    ///
    /// Starts the dispatcher, calls `body` with the service handle
    /// (share it across client threads with `std::thread::scope` —
    /// the service is `Sync`), then shuts down: queued work is
    /// drained or rejected per [`ServiceConfig::drain_on_shutdown`],
    /// the dispatcher is joined, and the closure's result is returned
    /// together with the final [`ServiceReport`]. A panic in `body`
    /// still shuts the dispatcher down cleanly before resuming the
    /// panic.
    pub fn run<R>(
        engine: ServiceEngine<'e, 'm>,
        config: &ServiceConfig,
        body: impl FnOnce(&SolverService<'e, 'm>) -> R,
    ) -> Result<(R, ServiceReport), ServeError> {
        let cfg = config.validated()?;
        let svc = SolverService { engine, cfg, shared: Shared::default() };
        std::thread::scope(|s| {
            let dispatcher = std::thread::Builder::new()
                .name("sptrsv-dispatch".into())
                .spawn_scoped(s, || svc.dispatch())
                .map_err(|_| ServeError::Spawn)?;
            let out = catch_unwind(AssertUnwindSafe(|| body(&svc)));
            svc.shutdown();
            let joined = dispatcher.join();
            let r = match out {
                Ok(r) => r,
                Err(p) => resume_unwind(p),
            };
            if let Err(p) = joined {
                resume_unwind(p);
            }
            // snapshot after the join, not from the dispatcher's exit:
            // a client may race one last (rejected) submit against the
            // dispatcher observing the drained queue, and the final
            // report must count it
            Ok((r, svc.stats()))
        })
    }

    /// The dimension every submitted right-hand side must have.
    pub fn n(&self) -> usize {
        self.engine.n()
    }

    /// The engine this service dispatches to.
    pub fn engine(&self) -> ServiceEngine<'e, 'm> {
        self.engine
    }

    /// Submit a right-hand side with no deadline: it rides whatever
    /// panel it lands in, waiting at most
    /// [`ServiceConfig::max_linger`] for the panel to fill.
    ///
    /// Never blocks. Admission control answers immediately with
    /// [`ServeError::QueueFull`] / [`ServeError::ShuttingDown`]; a
    /// wrong-length `b` is a typed [`ServeError::Solve`] naming the
    /// buffer.
    pub fn submit(&self, b: &[f64]) -> Result<Ticket<'_>, ServeError> {
        self.submit_inner(b, None)
    }

    /// [`SolverService::submit`] with a completion deadline: the
    /// dispatcher flushes this request's panel early enough (by its
    /// running estimate of a panel solve) to finish by `deadline`
    /// instead of lingering for more lanes. The deadline is
    /// best-effort — [`ServiceReport::deadline_misses`] counts the
    /// ones that completed late.
    pub fn submit_with_deadline(
        &self,
        b: &[f64],
        deadline: Instant,
    ) -> Result<Ticket<'_>, ServeError> {
        self.submit_inner(b, Some(deadline))
    }

    fn submit_inner(&self, b: &[f64], deadline: Option<Instant>) -> Result<Ticket<'_>, ServeError> {
        let n = self.n();
        if b.len() != n {
            return Err(ServeError::Solve(SolveError::DimensionMismatch {
                n,
                rhs: b.len(),
                index: None,
                buffer: "b",
            }));
        }
        let bytes = n * mem::size_of::<f64>();
        let mut q = self.shared.lock();
        if q.shutdown {
            q.stats.rejected_shutdown += 1;
            return Err(ServeError::ShuttingDown);
        }
        if q.pending.len() >= self.cfg.max_queue_requests
            || q.bytes.saturating_add(bytes) > self.cfg.max_queue_bytes
        {
            q.stats.rejected_full += 1;
            return Err(ServeError::QueueFull { depth: q.pending.len(), bytes: q.bytes });
        }
        let slot = q.free.pop().unwrap_or_else(|| Arc::new(Slot::new()));
        {
            let mut st = slot.lock();
            st.phase = Phase::Queued;
            st.rhs.clear();
            st.rhs.extend_from_slice(b);
            st.err = None;
            st.abandoned = false;
        }
        let ticket = Ticket { slot: Some(Arc::clone(&slot)), shared: &self.shared };
        q.pending.push_back(Pending { slot, submitted_at: Instant::now(), deadline, bytes });
        q.bytes += bytes;
        q.stats.submitted += 1;
        q.stats.queue_depth_high_water = q.stats.queue_depth_high_water.max(q.pending.len());
        q.stats.queue_bytes_high_water = q.stats.queue_bytes_high_water.max(q.bytes);
        self.shared.dispatch_cv.notify_one();
        Ok(ticket)
    }

    /// Ask the dispatcher to flush the current partial panel now
    /// instead of lingering for more lanes — a latency hint, not a
    /// barrier (the flushed requests still complete asynchronously).
    pub fn flush(&self) {
        let mut q = self.shared.lock();
        q.flush_hint = true;
        self.shared.dispatch_cv.notify_one();
    }

    /// Begin shutdown: subsequent submits are rejected with
    /// [`ServeError::ShuttingDown`]; already-queued work is drained or
    /// rejected per the config. Idempotent; called automatically when
    /// the [`SolverService::run`] closure returns.
    pub fn shutdown(&self) {
        let mut q = self.shared.lock();
        q.shutdown = true;
        self.shared.dispatch_cv.notify_one();
    }

    /// Requests currently queued (excludes in-flight panels).
    pub fn queue_depth(&self) -> usize {
        self.shared.lock().pending.len()
    }

    /// A point-in-time copy of the service counters.
    pub fn stats(&self) -> ServiceReport {
        self.shared.lock().stats.clone()
    }

    // ---- dispatcher -------------------------------------------------

    /// The dispatcher thread body: wait for work, decide when to
    /// flush, run the panel, complete the tickets — until shutdown
    /// with an empty queue.
    fn dispatch(&self) {
        let lanes = self.cfg.max_lanes;
        let mut group: Vec<Pending> = Vec::with_capacity(lanes);
        let mut bs: Vec<Vec<f64>> = Vec::with_capacity(lanes);
        let mut outs: Vec<Vec<f64>> = Vec::with_capacity(lanes);
        let mut ws = DispatchWorkspace::default();
        // EWMA of recent panel solve wall-clock, the `est` in the
        // deadline-slack rule; starts at zero so the first deadline
        // submission flushes no later than its deadline.
        let mut est_solve = Duration::ZERO;
        while let Some(cause) = self.next_group(&mut group, est_solve) {
            self.run_group(&mut group, &mut bs, &mut outs, &mut ws, &mut est_solve, cause);
        }
    }

    /// Block until a panel should be dispatched, then move up to
    /// `max_lanes` requests from the FIFO into `group`. Returns `None`
    /// exactly once: shutdown with an empty queue.
    fn next_group(&self, group: &mut Vec<Pending>, est_solve: Duration) -> Option<FlushCause> {
        let lanes = self.cfg.max_lanes;
        let mut q = self.shared.lock();
        let cause = loop {
            let depth = q.pending.len();
            // shutdown wins over every other trigger: once it is
            // observed, EVERY remaining group carries Shutdown — so a
            // full panel still queued is drained (and counted in
            // `drained`) or rejected per the config, exactly like a
            // partial one
            if q.shutdown {
                if depth == 0 {
                    return None;
                }
                break FlushCause::Shutdown;
            }
            if depth >= lanes {
                break FlushCause::Full;
            }
            if depth == 0 {
                q.flush_hint = false;
                q = self.shared.dispatch_cv.wait(q).unwrap_or_else(PoisonError::into_inner);
                continue;
            }
            if q.flush_hint {
                q.flush_hint = false;
                break FlushCause::Hint;
            }
            let now = Instant::now();
            let (at, cause) = flush_plan(&q, lanes, self.cfg.max_linger, est_solve, now);
            if at <= now {
                break cause;
            }
            q = self
                .shared
                .dispatch_cv
                .wait_timeout(q, at - now)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        };
        // a pop consumes any pending flush hint whatever the cause:
        // the hint asked for "what is queued now", and leaving it set
        // would spuriously flush the NEXT, unrelated partial panel
        q.flush_hint = false;
        for _ in 0..lanes.min(q.pending.len()) {
            let p = q.pending.pop_front().expect("depth checked");
            q.bytes -= p.bytes;
            group.push(p);
        }
        Some(cause)
    }

    /// Solve one flushed group and complete its tickets. Engine errors
    /// and kernel panics fail the panel's requests with a typed error;
    /// the dispatcher itself survives either.
    fn run_group(
        &self,
        group: &mut Vec<Pending>,
        bs: &mut Vec<Vec<f64>>,
        outs: &mut Vec<Vec<f64>>,
        ws: &mut DispatchWorkspace,
        est_solve: &mut Duration,
        cause: FlushCause,
    ) {
        let dispatch_start = Instant::now();
        let mut wait_ns = 0u64;
        let mut max_wait = 0u64;
        for p in group.iter() {
            let mut st = p.slot.lock();
            st.phase = Phase::InFlight;
            bs.push(mem::take(&mut st.rhs));
            outs.push(mem::take(&mut st.out));
            drop(st);
            let w = dispatch_start.saturating_duration_since(p.submitted_at).as_nanos() as u64;
            wait_ns += w;
            max_wait = max_wait.max(w);
        }

        let reject = cause == FlushCause::Shutdown && !self.cfg.drain_on_shutdown;
        let mut solve_ns = 0u64;
        let outcome: Option<ServeError> = if reject {
            Some(ServeError::ShuttingDown)
        } else {
            let t0 = Instant::now();
            let solved = catch_unwind(AssertUnwindSafe(|| self.solve_group(bs, outs, ws)));
            let took = t0.elapsed();
            solve_ns = took.as_nanos() as u64;
            // EWMA with 1/4 weight on the newest sample: stable under
            // jitter, adapts within a few panels
            *est_solve = (*est_solve * 3 + took) / 4;
            match solved {
                Ok(Ok(())) => None,
                Ok(Err(e)) => Some(ServeError::Solve(e)),
                Err(_) => {
                    // the workspace may be mid-mutation; replace it
                    // rather than trust it (allocates, but only on the
                    // panic path)
                    *ws = DispatchWorkspace::default();
                    Some(ServeError::DispatcherPanicked)
                }
            }
        };

        let completed_at = Instant::now();
        let fill = group.len();
        let mut misses = 0u64;
        for (p, (rhs, out)) in group.drain(..).zip(bs.drain(..).zip(outs.drain(..))) {
            if p.deadline.is_some_and(|d| completed_at > d) {
                misses += 1;
            }
            let abandoned = {
                let mut st = p.slot.lock();
                st.rhs = rhs;
                st.out = out;
                st.err = outcome.clone();
                st.phase = Phase::Done;
                p.slot.cv.notify_all();
                st.abandoned
            };
            if abandoned {
                // the ticket is gone; the dispatcher recycles
                self.shared.lock().free.push(p.slot);
            }
        }

        let mut q = self.shared.lock();
        let s = &mut q.stats;
        s.panels += 1;
        s.fill_sum += fill as u64;
        s.max_fill = s.max_fill.max(fill);
        s.deadline_misses += misses;
        s.wait_ns_total += wait_ns;
        s.max_wait_ns = s.max_wait_ns.max(max_wait);
        s.solve_ns_total += solve_ns;
        match cause {
            FlushCause::Full => s.full_flushes += 1,
            FlushCause::Linger => s.linger_flushes += 1,
            FlushCause::Deadline => s.deadline_flushes += 1,
            FlushCause::Hint => s.hint_flushes += 1,
            FlushCause::Shutdown => {}
        }
        if reject {
            s.shutdown_rejected += fill as u64;
        } else if outcome.is_none() {
            s.served += fill as u64;
            if cause == FlushCause::Shutdown {
                s.drained += fill as u64;
            }
        } else {
            s.failed += fill as u64;
        }
    }

    /// Run one coalesced panel through the engine. Groups at or under
    /// `2 × PANEL_K` lanes stay on the single-thread fused kernels
    /// (allocation-free); wider solver groups go through the pooled
    /// batch tier, trading per-dispatch task allocation for cores.
    fn solve_group(
        &self,
        bs: &[Vec<f64>],
        outs: &mut [Vec<f64>],
        ws: &mut DispatchWorkspace,
    ) -> Result<(), SolveError> {
        match self.engine {
            ServiceEngine::Solver(e) => {
                if bs.len() > 2 * PANEL_K {
                    e.solve_batch_into(bs, outs)
                } else {
                    e.panel_into_prevalidated(bs, outs, &mut ws.solve)
                }
            }
            ServiceEngine::Preconditioner(p) => p.apply_batch_prevalidated(bs, outs, &mut ws.apply),
        }
    }
}

/// When (and why) the next flush should happen, given a non-empty,
/// non-full queue: the oldest request's linger expiry, tightened by
/// the deadline slack (`deadline − est_solve`) of every request that
/// would ride the next panel.
fn flush_plan(
    q: &QueueState,
    lanes: usize,
    max_linger: Duration,
    est_solve: Duration,
    now: Instant,
) -> (Instant, FlushCause) {
    let oldest = q.pending.front().expect("flush_plan needs a non-empty queue");
    let mut at = oldest
        .submitted_at
        .checked_add(max_linger)
        .unwrap_or_else(|| now + Duration::from_secs(3600));
    let mut cause = FlushCause::Linger;
    for p in q.pending.iter().take(lanes) {
        if let Some(d) = p.deadline {
            let cutoff = d.checked_sub(est_solve).unwrap_or(now);
            if cutoff < at {
                at = cutoff;
                cause = FlushCause::Deadline;
            }
        }
    }
    (at, cause)
}

/// The future-like handle [`SolverService::submit`] returns: exactly
/// one of [`Ticket::wait`] / [`Ticket::try_wait`] /
/// [`Ticket::wait_timeout`] collects the result (the consuming
/// signatures make double-collection unrepresentable). Dropping a
/// ticket abandons the request — the solve may still run, but its
/// result is recycled instead of delivered.
#[derive(Debug)]
pub struct Ticket<'s> {
    /// `Some` until the result is collected or the ticket dropped.
    slot: Option<Arc<Slot>>,
    shared: &'s Shared,
}

impl<'s> Ticket<'s> {
    /// Block until the request completes; returns the solution vector
    /// or the panel's error. Allocation note: the returned vector is
    /// the slot's buffer, so the slot regrows on its next reuse —
    /// steady-state-allocation-free callers want
    /// [`Ticket::wait_into`].
    pub fn wait(mut self) -> Result<Vec<f64>, ServeError> {
        let slot = self.slot.take().expect("ticket not yet collected");
        let mut st = slot.lock();
        while st.phase != Phase::Done {
            st = slot.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        let res = match st.err.take() {
            Some(e) => Err(e),
            None => Ok(mem::take(&mut st.out)),
        };
        st.phase = Phase::Idle;
        drop(st);
        self.recycle(slot);
        res
    }

    /// Block until completion and copy the solution into `out`,
    /// keeping every buffer recycled — the zero-allocation collection
    /// path (proved by the counting-allocator test).
    pub fn wait_into(mut self, out: &mut [f64]) -> Result<(), ServeError> {
        let slot = self.slot.take().expect("ticket not yet collected");
        let mut st = slot.lock();
        while st.phase != Phase::Done {
            st = slot.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        let res = match st.err.take() {
            Some(e) => Err(e),
            None if out.len() == st.out.len() => {
                out.copy_from_slice(&st.out);
                Ok(())
            }
            None => Err(ServeError::Solve(SolveError::OutputLength {
                n: st.out.len(),
                out: out.len(),
                buffer: "out",
            })),
        };
        st.phase = Phase::Idle;
        drop(st);
        self.recycle(slot);
        res
    }

    /// Non-blocking poll: `Ok(result)` if the request has completed,
    /// `Err(self)` (the ticket, returned for another try) if it is
    /// still queued or in flight.
    pub fn try_wait(self) -> Result<Result<Vec<f64>, ServeError>, Ticket<'s>> {
        self.wait_timeout(Duration::ZERO)
    }

    /// Deadline-aware wait: block at most `timeout`. `Ok(result)` on
    /// completion; `Err(self)` if the timeout expired first — the
    /// ticket comes back so the caller can keep waiting, poll again
    /// later, or drop it to abandon the request.
    pub fn wait_timeout(
        mut self,
        timeout: Duration,
    ) -> Result<Result<Vec<f64>, ServeError>, Ticket<'s>> {
        let slot = self.slot.take().expect("ticket not yet collected");
        let deadline = Instant::now().checked_add(timeout);
        let mut st = slot.lock();
        while st.phase != Phase::Done {
            let left = deadline
                .map(|d| d.saturating_duration_since(Instant::now()))
                .unwrap_or(Duration::MAX);
            if left.is_zero() {
                drop(st);
                self.slot = Some(slot);
                return Err(self);
            }
            st = slot.cv.wait_timeout(st, left).unwrap_or_else(PoisonError::into_inner).0;
        }
        let res = match st.err.take() {
            Some(e) => Err(e),
            None => Ok(mem::take(&mut st.out)),
        };
        st.phase = Phase::Idle;
        drop(st);
        self.recycle(slot);
        Ok(res)
    }

    /// Return a finished slot to the service free list.
    fn recycle(&self, slot: Arc<Slot>) {
        self.shared.lock().free.push(slot);
    }
}

impl Drop for Ticket<'_> {
    fn drop(&mut self) {
        let Some(slot) = self.slot.take() else { return };
        let recycle_now = {
            let mut st = slot.lock();
            match st.phase {
                // the dispatcher still owns (or will own) the slot:
                // flag it and let the dispatcher recycle at completion
                Phase::Queued | Phase::InFlight => {
                    st.abandoned = true;
                    false
                }
                // completed but uncollected, or already collected —
                // nothing else references the slot
                Phase::Done | Phase::Idle => {
                    st.phase = Phase::Idle;
                    st.err = None;
                    true
                }
            }
        };
        if recycle_now {
            self.shared.lock().free.push(slot);
        }
    }
}

/// Run a [`SolverService`] over a triangular [`SolverEngine`] —
/// results bit-identical to [`SolverEngine::solve`] per request.
pub fn serve_solver<'e, 'm, R>(
    engine: &'e SolverEngine<'m>,
    config: &ServiceConfig,
    body: impl FnOnce(&SolverService<'e, 'm>) -> R,
) -> Result<(R, ServiceReport), ServeError> {
    SolverService::run(ServiceEngine::Solver(engine), config, body)
}

/// Run a [`SolverService`] over a [`PreconditionerEngine`] pair —
/// results bit-identical to [`PreconditionerEngine::apply_into`] per
/// request, so Krylov trajectories fed through the service are
/// reproducible to the bit.
pub fn serve_preconditioner<'e, 'm, R>(
    pre: &'e PreconditionerEngine<'m>,
    config: &ServiceConfig,
    body: impl FnOnce(&SolverService<'e, 'm>) -> R,
) -> Result<(R, ServiceReport), ServeError> {
    SolverService::run(ServiceEngine::Preconditioner(pre), config, body)
}

/// A [`Precondition`] implementation that routes every application
/// through a shared preconditioner-backed [`SolverService`] — the
/// handle that lets a PCG/BiCGSTAB loop share one service (and one
/// warm engine pair) with foreground traffic, its applications
/// coalesced into the same fused panels.
///
/// Each application submits with a deadline of `now + slack`
/// ([`ServedPreconditioner::with_slack`]; zero by default), so a
/// sequential Krylov loop is flushed promptly together with whatever
/// foreground requests are already queued, instead of lingering a full
/// [`ServiceConfig::max_linger`] per iteration.
#[derive(Debug, Clone, Copy)]
pub struct ServedPreconditioner<'a, 'e, 'm> {
    svc: &'a SolverService<'e, 'm>,
    slack: Duration,
}

impl<'a, 'e, 'm> ServedPreconditioner<'a, 'e, 'm> {
    /// Wrap a preconditioner-backed service with zero deadline slack
    /// (lowest latency per application). A solver-backed service is a
    /// typed error: applying `M⁻¹` through a single-triangle engine
    /// would silently solve only half the preconditioner.
    pub fn new(
        svc: &'a SolverService<'e, 'm>,
    ) -> Result<ServedPreconditioner<'a, 'e, 'm>, ServeError> {
        ServedPreconditioner::with_slack(svc, Duration::ZERO)
    }

    /// [`ServedPreconditioner::new`] with a deadline slack: each
    /// application may linger up to `slack` so concurrent traffic can
    /// coalesce into its panel — throughput for latency, bit-identical
    /// results either way.
    pub fn with_slack(
        svc: &'a SolverService<'e, 'm>,
        slack: Duration,
    ) -> Result<ServedPreconditioner<'a, 'e, 'm>, ServeError> {
        match svc.engine {
            ServiceEngine::Preconditioner(_) => Ok(ServedPreconditioner { svc, slack }),
            ServiceEngine::Solver(_) => Err(ServeError::InvalidConfig {
                what: "ServedPreconditioner needs a preconditioner-backed service",
            }),
        }
    }
}

impl Precondition for ServedPreconditioner<'_, '_, '_> {
    fn dim(&self) -> usize {
        self.svc.n()
    }

    fn precondition_into(&self, r: &[f64], z: &mut [f64]) -> Result<(), SolveError> {
        let deadline = Instant::now() + self.slack;
        let ticket = self.svc.submit_with_deadline(r, deadline).map_err(SolveError::from)?;
        ticket.wait_into(z).map_err(SolveError::from)
    }
}
