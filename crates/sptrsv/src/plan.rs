//! Data distribution and the malleable task pool (§V).
//!
//! A plan maps every solution component to `(gpu, kernel, launch
//! position)`:
//!
//! * [`Partition::Blocked`] — the baseline layout: contiguous blocks of
//!   components, block `g` on GPU `g`, one kernel per GPU. §V shows why
//!   this is pathological: dependencies in a triangular system are
//!   unidirectional, so larger-ID GPUs mostly wait.
//! * [`Partition::Tasks`] — the paper's task pool: components are cut
//!   into equal component-tasks which are dealt to GPUs round-robin;
//!   each task launches as its own kernel. Smaller-ID components spread
//!   across all GPUs, so every GPU starts working immediately.
//!
//! Launch order respects substitution order (ascending for `Lx = b`,
//! descending for `Ux = b`), which — together with FIFO warp-slot
//! admission — guarantees the synchronization-free executor cannot
//! deadlock on occupancy (a dependency's warp is always admitted no
//! later than its dependents').

use mgpu_sim::GpuId;
use sparsemat::{CscMatrix, Triangle};
use std::cell::Cell;

thread_local! {
    /// Per-thread count of [`ExecutionPlan::build`] invocations. The
    /// build-once/solve-many engine tests read this to prove warm
    /// solves construct **zero** plans; thread-local so parallel tests
    /// cannot perturb each other's measurements.
    static BUILD_INVOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// How many times [`ExecutionPlan::build`] has run on this thread.
pub fn build_invocations() -> u64 {
    BUILD_INVOCATIONS.with(Cell::get)
}

/// How components are distributed over GPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partition {
    /// Contiguous blocks, one per GPU, one kernel each (baseline §II).
    Blocked,
    /// `per_gpu` tasks per GPU, dealt round-robin (§V).
    Tasks {
        /// Tasks assigned to each GPU.
        per_gpu: u32,
    },
    /// A fixed *total* task count dealt round-robin (the Fig. 10
    /// scalability study fixes 32 total tasks).
    TotalTasks {
        /// Total task count across all GPUs.
        total: u32,
    },
}

/// One kernel launch: a contiguous range of launch positions.
#[derive(Debug, Clone)]
pub struct KernelDesc {
    /// GPU the kernel runs on.
    pub gpu: GpuId,
    /// Components in launch order (substitution order within the task).
    pub comps: Vec<u32>,
}

/// A complete component→GPU/kernel mapping.
///
/// Besides driving the simulated executor, the ownership map seeds the
/// host-side warm path: [`crate::schedule::Schedule`] — the Schedule
/// IR built once at engine-build time — groups each level's components
/// by their owning GPU before cutting it into worker shards and fusing
/// runs of narrow levels into chains, so the chain-parallel replay's
/// owner-computes layout ([`crate::exec::ShardedReplay`] steps that
/// schedule) mirrors the data distribution the plan gives the machine.
#[derive(Debug, Clone)]
pub struct ExecutionPlan {
    /// Owning GPU per component.
    pub owner: Vec<GpuId>,
    /// Kernel index (into `kernels`) per component.
    pub kernel_of: Vec<u32>,
    /// All kernels; launch order per GPU is their order of appearance.
    pub kernels: Vec<KernelDesc>,
    /// Number of GPUs in the plan.
    pub gpus: usize,
    /// The partition that produced this plan.
    pub partition: Partition,
}

impl ExecutionPlan {
    /// Build a plan for `n` components on `gpus` devices.
    ///
    /// Components are first arranged in substitution order (ascending
    /// for lower, descending for upper), then cut into tasks of equal
    /// size and dealt to GPUs.
    pub fn build(n: usize, gpus: usize, partition: Partition, tri: Triangle) -> ExecutionPlan {
        BUILD_INVOCATIONS.with(|c| c.set(c.get() + 1));
        assert!(gpus >= 1, "need at least one GPU");
        // task counts are user-visible knobs (`SolverKind::ZeroCopy`
        // et al. flow straight into here), so degenerate zeros clamp
        // to the minimum viable layout instead of panicking; `gpus`
        // by contrast comes from the validated machine, an internal
        // invariant
        let total_tasks = match partition {
            Partition::Blocked => gpus as u32,
            Partition::Tasks { per_gpu } => per_gpu.max(1) * gpus as u32,
            Partition::TotalTasks { total } => total.max(gpus as u32).max(1),
        };
        let total_tasks = (total_tasks as usize).min(n.max(1));
        let task_size = n.div_ceil(total_tasks);

        let mut owner = vec![0 as GpuId; n];
        let mut kernel_of = vec![0u32; n];
        let mut kernels: Vec<KernelDesc> = Vec::with_capacity(total_tasks);

        // Substitution order: position p corresponds to component
        // ord(p).
        let ord = |p: usize| -> u32 {
            match tri {
                Triangle::Lower => p as u32,
                Triangle::Upper => (n - 1 - p) as u32,
            }
        };

        for t in 0..total_tasks {
            let gpu = t % gpus;
            let lo = t * task_size;
            let hi = ((t + 1) * task_size).min(n);
            if lo >= hi {
                break;
            }
            let comps: Vec<u32> = (lo..hi).map(ord).collect();
            let k = kernels.len() as u32;
            for &c in &comps {
                owner[c as usize] = gpu;
                kernel_of[c as usize] = k;
            }
            kernels.push(KernelDesc { gpu, comps });
        }

        // Per-GPU launch order must follow ascending task id; kernels
        // are already in that order globally, and per GPU the subsequence
        // is ascending too.
        ExecutionPlan { owner, kernel_of, kernels, gpus, partition }
    }

    /// Number of components per GPU.
    pub fn comps_per_gpu(&self) -> Vec<usize> {
        let mut c = vec![0usize; self.gpus];
        for &g in &self.owner {
            c[g] += 1;
        }
        c
    }

    /// Count of matrix entries whose producer and consumer live on
    /// different GPUs — the communication volume a layout induces.
    pub fn cross_gpu_edges(&self, m: &CscMatrix, tri: Triangle) -> u64 {
        let mut cross = 0;
        for j in 0..m.n() {
            let gj = self.owner[j];
            for (r, _) in m.col(j) {
                let r = r as usize;
                let is_dep = match tri {
                    Triangle::Lower => r > j,
                    Triangle::Upper => r < j,
                };
                if is_dep && self.owner[r] != gj {
                    cross += 1;
                }
            }
        }
        cross
    }

    /// Device bytes a GPU must hold for its share: owned columns,
    /// plus x, b and the intermediate arrays. The symmetric-heap
    /// design replicates the size-`n` system arrays on every PE
    /// (Algorithm 3 lines 9–12).
    pub fn device_bytes(&self, m: &CscMatrix, gpu: GpuId, replicated_arrays: bool) -> u64 {
        let mut nnz_owned = 0u64;
        let mut cols_owned = 0u64;
        for j in 0..m.n() {
            if self.owner[j] == gpu {
                nnz_owned += m.col_nnz(j) as u64;
                cols_owned += 1;
            }
        }
        let n = m.n() as u64;
        let matrix_bytes = nnz_owned * (4 + 8) + (cols_owned + 1) * 8;
        let vec_bytes = cols_owned * 8 * 2; // x and b shares
        let arrays = if replicated_arrays {
            n * (4 + 8) // s.in_degree + s.left_sum, full size on every PE
        } else {
            cols_owned * (4 + 8) + n * (4 + 8) / self.gpus as u64
        };
        matrix_bytes + vec_bytes + arrays
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::gen;

    #[test]
    fn blocked_partition_is_contiguous() {
        let p = ExecutionPlan::build(100, 4, Partition::Blocked, Triangle::Lower);
        assert_eq!(p.kernels.len(), 4);
        assert_eq!(p.owner[0], 0);
        assert_eq!(p.owner[24], 0);
        assert_eq!(p.owner[25], 1);
        assert_eq!(p.owner[99], 3);
        assert_eq!(p.comps_per_gpu(), vec![25, 25, 25, 25]);
    }

    #[test]
    fn tasks_deal_round_robin() {
        let p = ExecutionPlan::build(80, 4, Partition::Tasks { per_gpu: 2 }, Triangle::Lower);
        assert_eq!(p.kernels.len(), 8);
        // task size 10: comps 0..10 -> gpu0, 10..20 -> gpu1, ... 40..50 -> gpu0
        assert_eq!(p.owner[0], 0);
        assert_eq!(p.owner[10], 1);
        assert_eq!(p.owner[39], 3);
        assert_eq!(p.owner[40], 0);
        assert_eq!(p.comps_per_gpu(), vec![20, 20, 20, 20]);
    }

    #[test]
    fn total_tasks_override() {
        let p = ExecutionPlan::build(96, 4, Partition::TotalTasks { total: 32 }, Triangle::Lower);
        assert_eq!(p.kernels.len(), 32);
        assert_eq!(p.kernels[0].comps.len(), 3);
    }

    #[test]
    fn upper_triangle_launches_descending() {
        let p = ExecutionPlan::build(10, 2, Partition::Blocked, Triangle::Upper);
        // first kernel (gpu 0) carries the highest indices, descending
        assert_eq!(p.kernels[0].comps, vec![9, 8, 7, 6, 5]);
        assert_eq!(p.owner[9], 0);
        assert_eq!(p.owner[0], 1);
    }

    #[test]
    fn uneven_sizes_cover_all_components() {
        let p = ExecutionPlan::build(103, 4, Partition::Tasks { per_gpu: 8 }, Triangle::Lower);
        let total: usize = p.kernels.iter().map(|k| k.comps.len()).sum();
        assert_eq!(total, 103);
        let mut seen = [false; 103];
        for k in &p.kernels {
            for &c in &k.comps {
                assert!(!seen[c as usize], "component {c} appears twice");
                seen[c as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn zero_task_counts_clamp_instead_of_panicking() {
        // `per_gpu` / `total` arrive from public SolveOptions — a
        // degenerate zero must degrade, not panic
        let p = ExecutionPlan::build(40, 4, Partition::Tasks { per_gpu: 0 }, Triangle::Lower);
        assert_eq!(p.kernels.len(), 4);
        let total: usize = p.kernels.iter().map(|k| k.comps.len()).sum();
        assert_eq!(total, 40);
        let p = ExecutionPlan::build(40, 4, Partition::TotalTasks { total: 0 }, Triangle::Lower);
        let total: usize = p.kernels.iter().map(|k| k.comps.len()).sum();
        assert_eq!(total, 40);
    }

    #[test]
    fn more_gpus_than_components_degrades_gracefully() {
        let p = ExecutionPlan::build(2, 4, Partition::Blocked, Triangle::Lower);
        let total: usize = p.kernels.iter().map(|k| k.comps.len()).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn task_layout_reduces_tail_waiting_ownership_skew() {
        // With blocked layout all early components (level 0 heavy) sit on
        // GPU 0; with tasks they spread. Measure ownership of the first
        // quarter of components.
        let n = 1000;
        let blocked = ExecutionPlan::build(n, 4, Partition::Blocked, Triangle::Lower);
        let tasks = ExecutionPlan::build(n, 4, Partition::Tasks { per_gpu: 8 }, Triangle::Lower);
        let spread = |p: &ExecutionPlan| {
            let mut gpus_seen = std::collections::HashSet::new();
            for c in 0..n / 4 {
                gpus_seen.insert(p.owner[c]);
            }
            gpus_seen.len()
        };
        assert_eq!(spread(&blocked), 1, "blocked: early components on one GPU");
        assert_eq!(spread(&tasks), 4, "tasks: early components on all GPUs");
    }

    #[test]
    fn cross_edges_counted() {
        let m = gen::chain(10); // each comp depends on the previous
        let p2 = ExecutionPlan::build(10, 2, Partition::Blocked, Triangle::Lower);
        // only the 4->5 edge crosses
        assert_eq!(p2.cross_gpu_edges(&m, Triangle::Lower), 1);
        let p_rr = ExecutionPlan::build(10, 2, Partition::Tasks { per_gpu: 5 }, Triangle::Lower);
        // task size 1: every edge crosses
        assert_eq!(p_rr.cross_gpu_edges(&m, Triangle::Lower), 9);
    }

    #[test]
    fn device_bytes_accounts_replication() {
        let m = gen::banded_lower(1000, 8, 4.0, 3);
        let p = ExecutionPlan::build(1000, 4, Partition::Blocked, Triangle::Lower);
        let rep = p.device_bytes(&m, 0, true);
        let unrep = p.device_bytes(&m, 0, false);
        assert!(rep > unrep, "symmetric heap replicates the system arrays");
    }
}
