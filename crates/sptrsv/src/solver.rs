//! High-level solver API.
//!
//! [`solve`] ties together a triangular matrix, a right-hand side, a
//! machine configuration and a solver variant; it validates inputs,
//! enforces the hardware constraints the paper reports (NVSHMEM
//! requires all-pairs P2P), runs the simulation, verifies the solution
//! against the serial reference and returns a [`SolveReport`].
//!
//! Both [`solve`] and [`solve_multi_rhs`] are thin wrappers over
//! [`SolverEngine`]: they build the engine (the one-time analysis
//! phase) and immediately solve. Callers that solve against the same
//! factor repeatedly should hold the engine instead — see
//! [`crate::engine`] for the three warm tiers (zero-allocation single
//! solves, the fused multi-RHS panel, and pooled batches).

use crate::engine::SolverEngine;
use crate::exec::ExecError;
use crate::report::SolveReport;
use desim::SimTime;
use mgpu_sim::MachineConfig;
use sparsemat::{CscMatrix, MatrixError, Triangle};

/// Which solver variant to run — the paper's design-space points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverKind {
    /// Serial host reference (Algorithm 1).
    Serial,
    /// Level-set solver, single GPU (cuSPARSE csrsv2 stand-in).
    LevelSet,
    /// Synchronization-free single-GPU solver (Liu et al. \[2\]).
    SyncFree,
    /// Algorithm 2: multi-GPU with Unified Memory, blocked layout.
    Unified,
    /// Algorithm 2 + the task pool ("4GPU-Unified+8task" in Fig. 7).
    UnifiedTasks {
        /// Tasks per GPU.
        per_gpu: u32,
    },
    /// Algorithm 3 with the baseline blocked ("continued") layout
    /// ("4GPU-Shmem" in Fig. 7).
    ShmemBlocked,
    /// The naive Get-Update-Put NVSHMEM design §IV-A rejects
    /// (distributed arrays, fenced wire round trips per update).
    ShmemNaive,
    /// The paper's proposed design: Algorithm 3 + round-robin task
    /// pool ("4GPU-Zerocopy").
    ZeroCopy {
        /// Tasks per GPU (the Fig. 9 sensitivity knob; 8 in Fig. 7).
        per_gpu: u32,
    },
    /// Zero-copy with a fixed *total* task count (Fig. 10 fixes 32).
    ZeroCopyTotal {
        /// Total tasks across all GPUs.
        total: u32,
    },
}

impl SolverKind {
    /// Human-readable label for reports.
    pub fn label(&self) -> String {
        match self {
            SolverKind::Serial => "serial".into(),
            SolverKind::LevelSet => "csrsv2".into(),
            SolverKind::SyncFree => "syncfree-1gpu".into(),
            SolverKind::Unified => "unified".into(),
            SolverKind::UnifiedTasks { per_gpu } => format!("unified+{per_gpu}t"),
            SolverKind::ShmemBlocked => "shmem".into(),
            SolverKind::ShmemNaive => "shmem-gup".into(),
            SolverKind::ZeroCopy { per_gpu } => format!("zerocopy-{per_gpu}t"),
            SolverKind::ZeroCopyTotal { total } => format!("zerocopy-total{total}"),
        }
    }
}

/// Options for [`solve`].
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Solver variant.
    pub kind: SolverKind,
    /// Which triangle the matrix represents.
    pub triangle: Triangle,
    /// Compare against the serial reference and fail on mismatch.
    pub verify: bool,
    /// Enable the r.in_degree poll-caching optimization (§IV-B).
    pub poll_caching: bool,
    /// Gather left_sum from all PEs (Alg. 3) vs only dependency owners.
    pub gather_all_pes: bool,
    /// Minimum rows a level must offer **each** worker before the
    /// engine's auto-heuristic adds that worker to the sharded warm
    /// tier. Below this the per-level barrier overhead outweighs the
    /// parallel substitution work. Default
    /// [`crate::schedule::SHARD_MIN_ROWS_PER_WORKER`].
    pub shard_min_rows_per_worker: usize,
    /// Minimum average rows per synchronization step (levels, after
    /// chain fusion collapses narrow runs) for the auto-heuristic to
    /// pick the sharded tier at all. Factors deeper than they are wide
    /// replay serially unless fusion shrinks the step count. Default
    /// [`crate::schedule::SHARD_MIN_AVG_LEVEL_WIDTH`].
    pub shard_min_avg_level_width: usize,
    /// Levels at most this wide fuse with adjacent narrow levels into
    /// a single-worker **chain** with no internal barriers (the warm
    /// path's Schedule IR). `0` disables fusion — every level is its
    /// own chain, reproducing the per-level barrier schedule. Default
    /// [`crate::schedule::CHAIN_WIDTH_THRESHOLD`].
    pub chain_width_threshold: usize,
}

impl SolveOptions {
    /// The Schedule IR tuning these options describe — handed to
    /// [`crate::schedule::Schedule::build`] at engine-build time.
    pub fn schedule_tuning(&self) -> crate::schedule::ScheduleTuning {
        crate::schedule::ScheduleTuning {
            shard_min_rows_per_worker: self.shard_min_rows_per_worker,
            shard_min_avg_level_width: self.shard_min_avg_level_width,
            chain_width_threshold: self.chain_width_threshold,
        }
    }
}

impl Default for SolveOptions {
    fn default() -> Self {
        let tuning = crate::schedule::ScheduleTuning::default();
        SolveOptions {
            kind: SolverKind::ZeroCopy { per_gpu: 8 },
            triangle: Triangle::Lower,
            verify: true,
            poll_caching: true,
            gather_all_pes: true,
            shard_min_rows_per_worker: tuning.shard_min_rows_per_worker,
            shard_min_avg_level_width: tuning.shard_min_avg_level_width,
            chain_width_threshold: tuning.chain_width_threshold,
        }
    }
}

/// Everything that can go wrong in a solve.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The matrix failed triangular validation.
    Matrix(MatrixError),
    /// NVSHMEM variants need all-pairs P2P; this machine doesn't have it
    /// (e.g. more than 4 GPUs of a DGX-1 — the paper's own constraint).
    NotP2p {
        /// GPUs requested.
        gpus: usize,
    },
    /// The dataflow stalled (plan/launch-order bug).
    Exec(ExecError),
    /// Verification against the serial reference failed.
    Verification {
        /// Measured max relative error.
        rel_err: f64,
    },
    /// Right-hand side length does not match the matrix.
    DimensionMismatch {
        /// Matrix dimension.
        n: usize,
        /// RHS length.
        rhs: usize,
        /// Position of the offending vector within a batch (`None` for
        /// single-RHS entry points). Batch entry points validate every
        /// right-hand side *before* any work starts, so a bad vector
        /// names its index up front instead of failing mid-batch.
        index: Option<usize>,
        /// Which argument was wrong, in the caller's vocabulary
        /// (`"rhs"` for the solver entry points, `"r"` for the
        /// preconditioner residual, `"b"` for the Krylov right-hand
        /// side) — every buffer is validated up front so the Display
        /// can point at the argument instead of a downstream slice
        /// panic pointing at a kernel line.
        buffer: &'static str,
    },
    /// A companion object of a composed solve — the upper factor of a
    /// preconditioner pair, the operator of a Krylov solve — has a
    /// different dimension than the system. Distinct from
    /// [`SolveError::DimensionMismatch`], which is about right-hand
    /// side / output lengths.
    ShapeMismatch {
        /// What disagreed (`"upper factor"`, `"operator"`).
        what: &'static str,
        /// The system dimension.
        n: usize,
        /// The companion's dimension.
        got: usize,
    },
    /// A value refresh was handed a matrix whose sparsity pattern
    /// differs from the one the engine's analysis was built for. The
    /// structural state of an engine is immutable — only values can be
    /// refreshed in place; a pattern change requires a rebuild. Carries
    /// the two structure hashes (see
    /// [`sparsemat::FactorFingerprint::structure_hash`]) so logs can
    /// name both identities.
    StructureMismatch {
        /// Structure hash the engine was built for.
        expected: u64,
        /// Structure hash of the rejected matrix.
        got: u64,
    },
    /// A serving front-end ([`crate::serve`]) refused or abandoned the
    /// request — admission control (queue full), shutdown, or a
    /// dispatcher that died mid-solve. Carried through [`SolveError`]
    /// so a Krylov driver running over a
    /// [`crate::serve::ServedPreconditioner`] surfaces the rejection
    /// as a typed error instead of a panic.
    Rejected {
        /// Why the service refused (`"queue full"`, `"shutting down"`,
        /// `"dispatcher panicked"`).
        reason: &'static str,
    },
    /// A Krylov recurrence denominator collapsed (zero or non-finite) —
    /// the method cannot continue from this state. For PCG this usually
    /// means the operator or preconditioner is not positive definite.
    Breakdown {
        /// Which Krylov method broke down (`"pcg"` / `"bicgstab"`).
        method: &'static str,
        /// Iteration at which the breakdown occurred.
        iteration: usize,
    },
    /// A vector carried a NaN or infinity. Raised by the serving
    /// front-end's admission scan (`buffer = "b"`: the client's
    /// right-hand side was bad on arrival) and by its opt-in post-solve
    /// output scan (`buffer = "x"`: the value went non-finite between
    /// admission and completion — a corrupted buffer or a poisoned
    /// factor). Containment is per ticket: one tenant's NaN fails only
    /// its own request, never its panel-mates.
    NonFinite {
        /// Which vector carried the non-finite value, in the caller's
        /// vocabulary (`"b"` for the submitted right-hand side, `"x"`
        /// for the computed solution).
        buffer: &'static str,
        /// Index of the first non-finite entry.
        index: usize,
    },
    /// Caller-provided output storage does not match what the solve
    /// needs (the `*_into` warm-solve APIs): a single-solve output
    /// buffer whose length is not the matrix dimension, or a batch
    /// `outs` that does not hold one vector per right-hand side.
    OutputLength {
        /// Entries (single solve) or output vectors (batch) needed.
        n: usize,
        /// Entries / vectors the caller provided.
        out: usize,
        /// Which output argument was wrong (`"out"` / `"outs"` for the
        /// engine tiers, `"z"` / `"zs"` for the preconditioner).
        buffer: &'static str,
    },
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Matrix(e) => write!(f, "matrix error: {e}"),
            SolveError::NotP2p { gpus } => write!(
                f,
                "NVSHMEM requires all-pairs P2P; the requested {gpus}-GPU span is not fully connected"
            ),
            SolveError::Exec(e) => write!(f, "execution error: {e}"),
            SolveError::Verification { rel_err } => {
                write!(f, "verification failed: relative error {rel_err:.3e}")
            }
            SolveError::DimensionMismatch { n, rhs, index, buffer } => match index {
                Some(k) => {
                    write!(f, "matrix is {n}x{n} but {buffer} #{k} of the batch has {rhs} entries")
                }
                None => write!(f, "matrix is {n}x{n} but {buffer} has {rhs} entries"),
            },
            SolveError::ShapeMismatch { what, n, got } => {
                write!(f, "the {what} is {got}x{got} but the system dimension is {n}")
            }
            SolveError::StructureMismatch { expected, got } => {
                write!(
                    f,
                    "value refresh requires an identical sparsity pattern: engine structure {expected:016x}, incoming {got:016x} — rebuild instead"
                )
            }
            SolveError::Rejected { reason } => {
                write!(f, "the serving front-end rejected the solve: {reason}")
            }
            SolveError::Breakdown { method, iteration } => {
                write!(f, "{method} breakdown at iteration {iteration}: recurrence denominator is zero or non-finite")
            }
            SolveError::NonFinite { buffer, index } => {
                write!(f, "non-finite value in `{buffer}` at index {index}")
            }
            SolveError::OutputLength { n, out, buffer } => {
                write!(f, "the solve needs {n} entries (or vectors) in output buffer `{buffer}` but the caller provided {out}")
            }
        }
    }
}

impl std::error::Error for SolveError {
    /// The underlying cause, for `anyhow`-style chain printing: a
    /// matrix validation failure or an executor stall; every other
    /// variant is a root cause itself.
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SolveError::Matrix(e) => Some(e),
            SolveError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MatrixError> for SolveError {
    fn from(e: MatrixError) -> Self {
        SolveError::Matrix(e)
    }
}

/// Solve `m · x = b` with the requested variant on the given machine.
///
/// One-shot convenience: builds a [`SolverEngine`] (the analysis
/// phase), solves once, and drops it. Hold the engine yourself when the
/// same factor is solved repeatedly.
pub fn solve(
    m: &CscMatrix,
    b: &[f64],
    machine_cfg: MachineConfig,
    opts: &SolveOptions,
) -> Result<SolveReport, SolveError> {
    // reject a bad RHS before paying for the analysis phase
    if b.len() != m.n() {
        return Err(SolveError::DimensionMismatch {
            n: m.n(),
            rhs: b.len(),
            index: None,
            buffer: "rhs",
        });
    }
    SolverEngine::build(m, machine_cfg, opts)?.solve(b)
}

/// Result of a multi-right-hand-side solve (the Liu et al. \[2\]
/// setting: one analysis, many solves).
#[derive(Debug, Clone)]
pub struct MultiRhsReport {
    /// Per-RHS reports (x vectors, per-solve stats).
    pub reports: Vec<SolveReport>,
    /// End-to-end virtual time with the analysis phase charged once:
    /// the dependency structure (in-degrees, levels) depends only on
    /// the matrix, so repeated solves reuse it — the amortization
    /// argument §II-B makes against per-solve preprocessing.
    pub total: SimTime,
}

impl MultiRhsReport {
    /// What the same solves would cost if each re-ran the analysis.
    pub fn unamortized_total(&self) -> SimTime {
        SimTime::from_ns(self.reports.iter().map(|r| r.timings.total.as_ns()).sum())
    }
}

/// Solve `m · X = B` for several right-hand sides with one analysis
/// phase. Every solution is individually verified per `opts.verify`.
///
/// Engine-backed: the level sets, plan and dependency adjacency are
/// built exactly once, then reused for every right-hand side.
pub fn solve_multi_rhs(
    m: &CscMatrix,
    bs: &[Vec<f64>],
    machine_cfg: MachineConfig,
    opts: &SolveOptions,
) -> Result<MultiRhsReport, SolveError> {
    if let Some((k, b)) = bs.iter().enumerate().find(|(_, b)| b.len() != m.n()) {
        return Err(SolveError::DimensionMismatch {
            n: m.n(),
            rhs: b.len(),
            index: Some(k),
            buffer: "rhs",
        });
    }
    SolverEngine::build(m, machine_cfg, opts)?.solve_multi_rhs(bs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{reference, verify};
    use sparsemat::gen;

    fn small() -> (CscMatrix, Vec<f64>) {
        let m = gen::level_structured(&gen::LevelSpec::new(900, 18, 3600, 4));
        let (_, b) = verify::rhs_for(&m, 42);
        (m, b)
    }

    #[test]
    fn all_variants_solve_and_verify() {
        let (m, b) = small();
        for kind in [
            SolverKind::Serial,
            SolverKind::LevelSet,
            SolverKind::SyncFree,
            SolverKind::Unified,
            SolverKind::UnifiedTasks { per_gpu: 8 },
            SolverKind::ShmemBlocked,
            SolverKind::ShmemNaive,
            SolverKind::ZeroCopy { per_gpu: 8 },
            SolverKind::ZeroCopyTotal { total: 32 },
        ] {
            let opts = SolveOptions { kind, ..SolveOptions::default() };
            let r = solve(&m, &b, MachineConfig::dgx1(4), &opts)
                .unwrap_or_else(|e| panic!("{kind:?} failed: {e}"));
            assert!(r.verified_rel_err.unwrap_or(0.0) <= verify::DEFAULT_TOL, "{kind:?}");
        }
    }

    #[test]
    fn shmem_refuses_non_p2p_span() {
        let (m, b) = small();
        let opts =
            SolveOptions { kind: SolverKind::ZeroCopy { per_gpu: 8 }, ..SolveOptions::default() };
        let err = solve(&m, &b, MachineConfig::dgx1(8), &opts).unwrap_err();
        assert!(matches!(err, SolveError::NotP2p { gpus: 8 }));
        // but unified memory is allowed on 8 GPUs (host staging)
        let opts = SolveOptions { kind: SolverKind::Unified, ..SolveOptions::default() };
        solve(&m, &b, MachineConfig::dgx1(8), &opts).unwrap();
    }

    #[test]
    fn dgx2_allows_sixteen_gpu_zero_copy() {
        let (m, b) = small();
        let opts = SolveOptions {
            kind: SolverKind::ZeroCopyTotal { total: 32 },
            ..SolveOptions::default()
        };
        let r = solve(&m, &b, MachineConfig::dgx2(16), &opts).unwrap();
        assert_eq!(r.gpus, 16);
    }

    #[test]
    fn dimension_mismatch_detected() {
        let (m, _) = small();
        let opts = SolveOptions::default();
        let err = solve(&m, &[1.0, 2.0], MachineConfig::dgx1(4), &opts).unwrap_err();
        assert!(matches!(err, SolveError::DimensionMismatch { .. }));
    }

    #[test]
    fn non_triangular_rejected() {
        let a = gen::grid_laplacian(8, 8); // symmetric, not triangular
        let b = vec![1.0; a.n()];
        let err = solve(&a, &b, MachineConfig::dgx1(2), &SolveOptions::default()).unwrap_err();
        assert!(matches!(err, SolveError::Matrix(_)));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SolverKind::ZeroCopy { per_gpu: 8 }.label(), "zerocopy-8t");
        assert_eq!(SolverKind::UnifiedTasks { per_gpu: 4 }.label(), "unified+4t");
        assert_eq!(SolverKind::LevelSet.label(), "csrsv2");
    }

    #[test]
    fn multi_rhs_amortizes_analysis() {
        let (m, _) = small();
        let bs: Vec<Vec<f64>> = (0..4)
            .map(|k| {
                let (_, b) = verify::rhs_for(&m, 100 + k);
                b
            })
            .collect();
        let opts = SolveOptions { kind: SolverKind::Unified, ..SolveOptions::default() };
        let multi = solve_multi_rhs(&m, &bs, MachineConfig::dgx1(4), &opts).unwrap();
        assert_eq!(multi.reports.len(), 4);
        assert!(
            multi.total < multi.unamortized_total(),
            "shared analysis must save time: {} vs {}",
            multi.total,
            multi.unamortized_total()
        );
        for (k, r) in multi.reports.iter().enumerate() {
            let expected = reference::solve_lower(&m, &bs[k]).unwrap();
            assert!(verify::rel_inf_diff(&r.x, &expected) < 1e-8);
        }
    }

    #[test]
    fn naive_gup_verifies_but_loses_badly() {
        let (m, b) = small();
        let naive = solve(
            &m,
            &b,
            MachineConfig::dgx1(4),
            &SolveOptions { kind: SolverKind::ShmemNaive, ..SolveOptions::default() },
        )
        .unwrap();
        assert!(naive.verified_rel_err.unwrap() < 1e-8);
        let zerocopy = solve(
            &m,
            &b,
            MachineConfig::dgx1(4),
            &SolveOptions { kind: SolverKind::ZeroCopy { per_gpu: 8 }, ..SolveOptions::default() },
        )
        .unwrap();
        assert!(
            zerocopy.speedup_over(&naive) > 3.0,
            "§IV-A: fenced get-update-put must lose decisively"
        );
        assert!(naive.stats.shmem.fences > 0);
        assert!(naive.stats.shmem.quiets > 0);
    }

    #[test]
    fn report_cross_edges_depend_on_partition() {
        let (m, b) = small();
        let blocked = solve(
            &m,
            &b,
            MachineConfig::dgx1(4),
            &SolveOptions { kind: SolverKind::ShmemBlocked, ..SolveOptions::default() },
        )
        .unwrap();
        let tasked = solve(
            &m,
            &b,
            MachineConfig::dgx1(4),
            &SolveOptions { kind: SolverKind::ZeroCopy { per_gpu: 16 }, ..SolveOptions::default() },
        )
        .unwrap();
        assert!(tasked.cross_edges > blocked.cross_edges);
        assert!(tasked.kernels > blocked.kernels);
    }
}
