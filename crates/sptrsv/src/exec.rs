//! The synchronization-free dataflow executor.
//!
//! All sync-free variants share one control flow — the two phases of
//! Liu et al. \[2\] that the paper builds on:
//!
//! 1. **lock-wait**: a warp owns one component and spins until the
//!    component's in-degree is satisfied;
//! 2. **solve-update**: it solves `x_i` and publishes
//!    `l_ri · x_i` into the `left_sum` of every dependent `r`,
//!    decrementing their outstanding in-degrees.
//!
//! What differs between Algorithm 2 (Unified Memory), Algorithm 3
//! (NVSHMEM zero-copy) and the single-GPU solver is *where the
//! intermediate arrays live and what publishing/detecting costs*:
//!
//! | backend    | publish to remote component     | dependency detection        |
//! |------------|---------------------------------|-----------------------------|
//! | SingleGpu  | n/a                             | local spin poll             |
//! | Unified    | system atomic on a UM page      | spin poll on a UM page      |
//! |            | (faults, migration, bounce)     | (page bounces back, faults) |
//! | Shmem      | device atomic on the *producer's* | warp-parallel one-sided     |
//! |            | own symmetric heap copy — zero  | gets + shuffle reduction,   |
//! |            | wire traffic at publish time    | r.in_degree poll caching    |
//!
//! The executor runs real `f64` numerics as virtual time advances; the
//! returned `x` is bit-stable for a fixed seed and is verified against
//! the serial reference by the caller.

use crate::plan::ExecutionPlan;
use crate::Backend;
use desim::{EventQueue, SimTime};
use mgpu_sim::{um::UmRange, GpuId, Machine};
use sparsemat::{CscMatrix, Triangle};

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Communication backend.
    pub backend: Backend,
    /// Which triangle is being solved.
    pub triangle: Triangle,
    /// Gather `left_sum` from every PE (Algorithm 3 lines 24–26) rather
    /// than only from PEs that actually hold dependencies.
    pub gather_all_pes: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            backend: Backend::SingleGpu,
            triangle: Triangle::Lower,
            gather_all_pes: true,
        }
    }
}

/// Result of an executor run.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// The solution vector.
    pub x: Vec<f64>,
    /// When the analysis phase (in-degree setup) completed.
    pub analysis_end: SimTime,
    /// When the last warp retired.
    pub makespan: SimTime,
    /// Events processed by the calendar.
    pub events: u64,
}

/// Executor failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The dataflow stalled: `unsolved` components never became ready.
    /// Indicates a plan whose launch order violates substitution order.
    Deadlock {
        /// Number of unsolved components at stall time.
        unsolved: usize,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Deadlock { unsolved } => {
                write!(f, "dataflow deadlock: {unsolved} components unsolved")
            }
        }
    }
}

impl std::error::Error for ExecError {}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Kernel `k` became schedulable.
    Kernel(u32),
    /// Component acquired its warp slot.
    Slot(u32),
    /// One dependency of the component became durable; payload carries
    /// the producing GPU.
    Dep(u32, u8),
    /// Dependencies visible; run gather + solve + update.
    Wake(u32),
    /// Updates durable; warp retires and frees its slot.
    Retire(u32),
}

// component flag bits
const HAS_SLOT: u8 = 1;
const BLOCKED: u8 = 2;
const SATISFIED: u8 = 4;
const DONE: u8 = 8;
const WATCHING: u8 = 16;
const POLLING: u8 = 32;

struct ExecState<'m> {
    m: &'m CscMatrix,
    plan: &'m ExecutionPlan,
    cfg: ExecConfig,
    remaining: Vec<u32>,
    left_sum: Vec<f64>,
    x: Vec<f64>,
    b: Vec<f64>,
    flags: Vec<u8>,
    /// While BLOCKED: block start. After SATISFIED: satisfaction time.
    aux: Vec<SimTime>,
    last_src: Vec<u8>,
    remote_mask: Vec<u16>,
    peers_of: Vec<Vec<GpuId>>,
    // Unified-memory array mappings (None for other backends)
    indeg_um: Option<UmRange>,
    leftsum_um: Option<UmRange>,
    done_count: usize,
    makespan: SimTime,
}

impl<'m> ExecState<'m> {
    fn indeg_page(&self, c: u32) -> usize {
        self.indeg_um
            .as_ref()
            .expect("unified backend")
            .page_of(c as u64 * 4)
    }

    fn leftsum_page(&self, c: u32) -> usize {
        self.leftsum_um
            .as_ref()
            .expect("unified backend")
            .page_of(c as u64 * 8)
    }

    /// Off-diagonal entries of component `c`'s column — its update list.
    fn updates_of(&self, c: u32) -> (&[u32], &[f64]) {
        let j = c as usize;
        let (lo, hi) = (self.m.col_ptr()[j], self.m.col_ptr()[j + 1]);
        match self.cfg.triangle {
            Triangle::Lower => (&self.m.row_idx()[lo + 1..hi], &self.m.values()[lo + 1..hi]),
            Triangle::Upper => (&self.m.row_idx()[lo..hi - 1], &self.m.values()[lo..hi - 1]),
        }
    }

    fn diag_of(&self, c: u32) -> f64 {
        let j = c as usize;
        match self.cfg.triangle {
            Triangle::Lower => self.m.values()[self.m.col_ptr()[j]],
            Triangle::Upper => self.m.values()[self.m.col_ptr()[j + 1] - 1],
        }
    }
}

/// Run the synchronization-free solver on `machine`.
///
/// `plan` must order launches in substitution order (guaranteed by
/// [`ExecutionPlan::build`]); otherwise the run can deadlock, which is
/// detected and reported rather than hanging.
pub fn run(
    m: &CscMatrix,
    b: &[f64],
    plan: &ExecutionPlan,
    machine: &mut Machine,
    cfg: ExecConfig,
) -> Result<ExecOutcome, ExecError> {
    let n = m.n();
    assert_eq!(b.len(), n, "rhs length mismatch");
    assert_eq!(plan.owner.len(), n, "plan size mismatch");
    if n == 0 {
        return Ok(ExecOutcome {
            x: Vec::new(),
            analysis_end: SimTime::ZERO,
            makespan: SimTime::ZERO,
            events: 0,
        });
    }

    let tri = cfg.triangle;
    let gpus = plan.gpus;
    let remaining = m.in_degrees(tri);

    // --- source-GPU masks for each component's dependencies -----------
    let mut remote_mask = vec![0u16; n];
    for j in 0..n {
        let gj = plan.owner[j];
        for (r, _) in m.col(j) {
            let r = r as usize;
            let is_dep = match tri {
                Triangle::Lower => r > j,
                Triangle::Upper => r < j,
            };
            if is_dep && plan.owner[r] != gj {
                remote_mask[r] |= 1 << gj;
            }
        }
    }
    let peers_of: Vec<Vec<GpuId>> = if matches!(cfg.backend, Backend::Shmem { .. }) {
        (0..n)
            .map(|i| {
                if cfg.gather_all_pes {
                    (0..gpus).filter(|&g| g != plan.owner[i]).collect()
                } else {
                    (0..gpus)
                        .filter(|&g| remote_mask[i] & (1 << g) != 0)
                        .collect()
                }
            })
            .collect()
    } else {
        vec![Vec::new(); n]
    };

    // --- device memory accounting --------------------------------------
    let replicated = matches!(cfg.backend, Backend::Shmem { .. });
    for g in 0..gpus {
        machine.account_alloc(g, plan.device_bytes(m, g, replicated));
    }

    // --- unified-memory allocations -------------------------------------
    let (indeg_um, leftsum_um) = if matches!(cfg.backend, Backend::Unified) {
        (
            Some(machine.um_alloc(n as u64 * 4)),
            Some(machine.um_alloc(n as u64 * 8)),
        )
    } else {
        (None, None)
    };

    // --- analysis phase: in-degree setup --------------------------------
    let spec = machine.config().gpu.clone();
    let mut nnz_per_gpu = vec![0u64; gpus];
    for j in 0..n {
        nnz_per_gpu[plan.owner[j]] += m.col_nnz(j) as u64;
    }
    let mut t_ready = vec![SimTime::ZERO; gpus];
    for g in 0..gpus {
        // one setup kernel: atomics over the local nonzeros, warp-wide
        let warp_ops = nnz_per_gpu[g].div_ceil(32);
        let dur = warp_ops * spec.atomic_ns / spec.exec_lanes as u64 + spec.launch_ns;
        t_ready[g] = SimTime::ZERO.after(dur);
    }
    if let (Some(ri), Some(rl)) = (indeg_um, leftsum_um) {
        // Algorithm 2 memsets both managed arrays (lines 4–5) and
        // computes the *global* in-degree with system-wide atomics
        // (lines 6–9). The sweeps are dense and in address order, so
        // the driver coalesces migrations; each GPU still drags the
        // arrays through its own memory once.
        for g in 0..gpus {
            t_ready[g] = machine.um_bulk_sweep(g, &ri, t_ready[g]);
            t_ready[g] = machine.um_bulk_sweep(g, &rl, t_ready[g]);
        }
    }
    let analysis_end = t_ready.iter().copied().max().unwrap_or(SimTime::ZERO);

    // --- schedule kernel launches ---------------------------------------
    let mut q: EventQueue<Ev> = EventQueue::with_capacity(n * 2 + m.nnz());
    for (k, kd) in plan.kernels.iter().enumerate() {
        let at = machine.launch_kernel(kd.gpu, t_ready[kd.gpu]);
        q.schedule_at(at, Ev::Kernel(k as u32));
    }

    let mut st = ExecState {
        m,
        plan,
        cfg,
        remaining,
        left_sum: vec![0.0; n],
        x: vec![0.0; n],
        b: b.to_vec(),
        flags: vec![0u8; n],
        aux: vec![SimTime::ZERO; n],
        last_src: vec![0u8; n],
        remote_mask,
        peers_of,
        indeg_um,
        leftsum_um,
        done_count: 0,
        makespan: SimTime::ZERO,
    };
    // components with no dependencies are satisfied from the start
    for i in 0..n {
        if st.remaining[i] == 0 {
            st.flags[i] |= SATISFIED;
        }
    }

    // --- main event loop --------------------------------------------------
    let mut events = 0u64;
    while let Some((now, ev)) = q.pop() {
        events += 1;
        match ev {
            Ev::Kernel(k) => on_kernel(&mut st, machine, &mut q, now, k),
            Ev::Slot(c) => on_slot(&mut st, machine, &mut q, now, c),
            Ev::Dep(c, src) => on_dep(&mut st, machine, &mut q, now, c, src),
            Ev::Wake(c) => on_wake(&mut st, machine, &mut q, now, c),
            Ev::Retire(c) => on_retire(&mut st, machine, &mut q, now, c),
        }
    }

    if st.done_count != n {
        return Err(ExecError::Deadlock { unsolved: n - st.done_count });
    }
    Ok(ExecOutcome {
        x: st.x,
        analysis_end,
        makespan: st.makespan,
        events,
    })
}

fn on_kernel(st: &mut ExecState, machine: &mut Machine, q: &mut EventQueue<Ev>, now: SimTime, k: u32) {
    // Clone the component list cheaply via indices to appease borrows.
    let kd = &st.plan.kernels[k as usize];
    let gpu = kd.gpu;
    let comps: Vec<u32> = kd.comps.clone();
    for c in comps {
        if machine.try_warp_slot(gpu) {
            q.schedule_at(now, Ev::Slot(c));
        } else {
            machine.enqueue_warp(gpu, c as u64);
        }
    }
}

fn on_slot(st: &mut ExecState, machine: &mut Machine, q: &mut EventQueue<Ev>, now: SimTime, c: u32) {
    let i = c as usize;
    st.flags[i] |= HAS_SLOT;
    if st.flags[i] & SATISFIED != 0 {
        schedule_wake(st, machine, q, now, c);
    } else {
        st.flags[i] |= BLOCKED;
        st.aux[i] = now;
        // a warp spinning on remote state loads the fabric (GUP
        // detection is owner-local, so it does not poll the wire)
        if st.remote_mask[i] != 0
            && !matches!(st.cfg.backend, Backend::SingleGpu | Backend::ShmemGup)
        {
            machine.polling_started();
            st.flags[i] |= POLLING;
        }
        if matches!(st.cfg.backend, Backend::Unified) {
            machine.um_watch(st.plan.owner[i], st.indeg_page(c));
            st.flags[i] |= WATCHING;
        }
    }
}

fn on_dep(
    st: &mut ExecState,
    machine: &mut Machine,
    q: &mut EventQueue<Ev>,
    now: SimTime,
    c: u32,
    src: u8,
) {
    let i = c as usize;
    debug_assert!(st.remaining[i] > 0, "dep underflow at {c}");
    st.remaining[i] -= 1;
    if st.remaining[i] > 0 {
        return;
    }
    st.last_src[i] = src;
    if st.flags[i] & BLOCKED != 0 {
        // account the poll traffic spent while blocked
        match st.cfg.backend {
            Backend::Shmem { poll_caching } => {
                let waited = now - st.aux[i];
                let period = machine.remote_poll_period_ns().max(1);
                let rounds = waited / period;
                let peers = st.remote_mask[i].count_ones() as u64;
                if peers > 0 && rounds > 0 {
                    let polled = if poll_caching {
                        // satisfied peers drop out of the loop roughly
                        // linearly over the wait
                        rounds * peers.div_ceil(2)
                    } else {
                        rounds * peers
                    };
                    machine.record_polling(rounds, peers, polled);
                }
            }
            Backend::Unified => {
                // spin polls of s.in_degree feed the UVM access
                // counters; sustained waiting drags the page to the
                // poller (then the loop runs locally)
                let waited = now - st.aux[i];
                let period = machine.um_poll_period_ns().max(1);
                let rounds = (waited / period).min(u32::MAX as u64) as u32;
                let page = st.indeg_page(c);
                let gpu = st.plan.owner[i];
                if let Some(done) = machine.um_poll_pressure(gpu, page, rounds, now) {
                    st.aux[i] = done.max(now);
                }
            }
            Backend::SingleGpu | Backend::ShmemGup => {}
        }
        if st.flags[i] & POLLING != 0 {
            machine.polling_stopped();
            st.flags[i] &= !POLLING;
        }
        st.flags[i] &= !BLOCKED;
        st.flags[i] |= SATISFIED;
        st.aux[i] = st.aux[i].max(now);
        schedule_wake(st, machine, q, st.aux[i], c);
    } else {
        st.flags[i] |= SATISFIED;
        st.aux[i] = now;
    }
}

/// Compute when the waiting warp *observes* satisfaction and schedule
/// its wake. `base` is when the last dependency became durable (or when
/// the slot was granted, if later).
fn schedule_wake(st: &mut ExecState, machine: &mut Machine, q: &mut EventQueue<Ev>, base: SimTime, c: u32) {
    let i = c as usize;
    let gpu = st.plan.owner[i];
    let spec = machine.config().gpu.clone();
    let wake_at = match st.cfg.backend {
        Backend::SingleGpu | Backend::ShmemGup => {
            base.after(spec.poll_ns / 2 + machine.jitter(spec.poll_ns / 2 + 1))
        }
        Backend::Shmem { .. } => {
            let src = st.last_src[i] as GpuId;
            if src == gpu || st.remaining[i] == 0 && st.remote_mask[i] == 0 {
                base.after(spec.poll_ns / 2 + machine.jitter(spec.poll_ns / 2 + 1))
            } else {
                // next poll round issues a get that sees the zero
                let period = machine.remote_poll_period_ns();
                let probe = base.after(machine.jitter(period + 1));
                machine.shmem_get(gpu, src, 4, probe)
            }
        }
        Backend::Unified => {
            let page = st.indeg_page(c);
            machine.um_visible_at(gpu, page, base)
        }
    };
    q.schedule_at(wake_at.max(base), Ev::Wake(c));
}

fn on_wake(st: &mut ExecState, machine: &mut Machine, q: &mut EventQueue<Ev>, now: SimTime, c: u32) {
    let i = c as usize;
    let gpu = st.plan.owner[i];
    let spec = machine.config().gpu.clone();
    debug_assert_eq!(st.remaining[i], 0, "woke before satisfaction");

    if st.flags[i] & WATCHING != 0 {
        machine.um_unwatch(gpu, st.indeg_page(c));
        st.flags[i] &= !WATCHING;
    }

    // --- gather phase ---------------------------------------------------
    let t_gather = match st.cfg.backend {
        Backend::SingleGpu | Backend::ShmemGup => now,
        Backend::Shmem { .. } => {
            if st.peers_of[i].is_empty() {
                now
            } else {
                let peers = std::mem::take(&mut st.peers_of[i]);
                let t = machine.shmem_gather_reduce(gpu, &peers, 8, now);
                st.peers_of[i] = peers;
                t
            }
        }
        Backend::Unified => {
            // read the system-wide left_sum entry (Alg. 2 line 19)
            let page = st.leftsum_page(c);
            machine.um_read(gpu, page, now)
        }
    };

    // --- solve phase ------------------------------------------------------
    let col_nnz = st.m.col_nnz(i) as u64;
    let mut t = t_gather;
    let spill = machine.spill_ratio(gpu);
    if spill > 0.0 {
        // out-of-core: the spilled fraction of this column streams from
        // host over PCIe before the warp can proceed
        let col_bytes = col_nnz * 12;
        let spilled = (col_bytes as f64 * spill) as u64;
        if spilled > 0 {
            t = machine.host_transfer(gpu, spilled, t);
        }
    }
    let solve_dur = spec.solve_ns + col_nnz.div_ceil(32) * spec.per_nnz_ns;
    let t_solve = machine.exec(gpu, t, solve_dur);

    let xi = (st.b[i] - st.left_sum[i]) / st.diag_of(c);
    st.x[i] = xi;

    // --- update phase -------------------------------------------------------
    let (rows, vals) = st.updates_of(c);
    let k_total = rows.len() as u64;
    let rows: Vec<u32> = rows.to_vec();
    let vals: Vec<f64> = vals.to_vec();
    let t_upd = if k_total > 0 {
        machine.exec(gpu, t_solve, k_total.div_ceil(32) * spec.atomic_ns)
    } else {
        t_solve
    };

    let mut retire_at = t_upd;
    let mut gup_cursor = t_upd; // naive GUP round trips serialize per warp
    for (r, v) in rows.iter().zip(&vals) {
        let r = *r;
        let contrib = *v * xi;
        st.left_sum[r as usize] += contrib;
        let target_gpu = st.plan.owner[r as usize];
        let durable_at = if target_gpu == gpu {
            t_upd
        } else {
            match st.cfg.backend {
                // zero-copy: remote publishes are atomics on the
                // producer's OWN heap copy — local cost, no wire traffic
                Backend::Shmem { .. } | Backend::SingleGpu => t_upd,
                // naive Get-Update-Put: two serialized wire round trips
                // (left_sum, then in_degree) with a fence after each —
                // the restriction cascade §IV-A describes
                Backend::ShmemGup => {
                    let h = target_gpu;
                    let t_get = machine.shmem_get(gpu, h, 8, gup_cursor);
                    let t_put = machine.shmem_put(gpu, h, 8, t_get);
                    let t_f1 = machine.shmem_fence(t_put);
                    let t_put2 = machine.shmem_put(gpu, h, 4, t_f1);
                    let t_f2 = machine.shmem_fence(t_put2);
                    gup_cursor = t_f2;
                    t_f2
                }
                Backend::Unified => {
                    // two system-wide atomics (s.left_sum, then
                    // s.in_degree), issued by parallel threads of the
                    // warp; the warp only pays issue cost, durability
                    // rides the fabric / async migration machinery.
                    // The decrement must not be observed before the
                    // partial sum it guards, hence the max.
                    let p1 = st.leftsum_page(r);
                    let p2 = st.indeg_page(r);
                    let (f1, d1) = machine.um_write(gpu, p1, t_upd);
                    // both atomics are in flight concurrently (distinct
                    // pages); issue order is preserved, wire latencies
                    // overlap
                    let (f2, d2) = machine.um_write(gpu, p2, t_upd.max(f1));
                    retire_at = retire_at.max(f1).max(f2);
                    d1.max(d2)
                }
            }
        };
        if target_gpu == gpu || matches!(st.cfg.backend, Backend::ShmemGup) {
            retire_at = retire_at.max(durable_at);
        }
        q.schedule_at(durable_at, Ev::Dep(r, gpu as u8));
    }
    if matches!(st.cfg.backend, Backend::ShmemGup) && gup_cursor > t_upd {
        retire_at = retire_at.max(machine.shmem_quiet(gup_cursor));
    }

    q.schedule_at(retire_at, Ev::Retire(c));
}

fn on_retire(st: &mut ExecState, machine: &mut Machine, q: &mut EventQueue<Ev>, now: SimTime, c: u32) {
    let i = c as usize;
    let gpu = st.plan.owner[i];
    st.flags[i] |= DONE;
    st.done_count += 1;
    st.makespan = st.makespan.max(now);
    if let Some(next) = machine.release_warp(gpu) {
        q.schedule_at(now, Ev::Slot(next as u32));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Partition;
    use crate::reference;
    use crate::verify;
    use mgpu_sim::MachineConfig;
    use sparsemat::gen;

    fn run_case(
        m: &CscMatrix,
        gpus: usize,
        backend: Backend,
        partition: Partition,
    ) -> (ExecOutcome, Vec<f64>) {
        let (_, b) = verify::rhs_for(m, 42);
        let plan = ExecutionPlan::build(m.n(), gpus, partition, Triangle::Lower);
        let mut machine = Machine::new(MachineConfig::dgx1(gpus.max(1)));
        let cfg = ExecConfig { backend, triangle: Triangle::Lower, gather_all_pes: true };
        let out = run(m, &b, &plan, &mut machine, cfg).expect("no deadlock");
        let reference = reference::solve_lower(m, &b).unwrap();
        (out, reference)
    }

    #[test]
    fn single_gpu_matches_reference() {
        let m = gen::banded_lower(800, 8, 4.0, 3);
        let (out, r) = run_case(&m, 1, Backend::SingleGpu, Partition::Blocked);
        assert!(verify::rel_inf_diff(&out.x, &r) < verify::DEFAULT_TOL);
        assert!(out.makespan > SimTime::ZERO);
    }

    #[test]
    fn shmem_multi_gpu_matches_reference() {
        let m = gen::level_structured(&gen::LevelSpec::new(1200, 30, 5000, 7));
        for gpus in [2usize, 3, 4] {
            let (out, r) = run_case(&m, gpus, Backend::Shmem { poll_caching: true }, Partition::Tasks { per_gpu: 8 });
            assert!(
                verify::rel_inf_diff(&out.x, &r) < verify::DEFAULT_TOL,
                "gpus={gpus}"
            );
        }
    }

    #[test]
    fn unified_multi_gpu_matches_reference() {
        let m = gen::level_structured(&gen::LevelSpec::new(600, 15, 2400, 9));
        let (out, r) = run_case(&m, 4, Backend::Unified, Partition::Blocked);
        assert!(verify::rel_inf_diff(&out.x, &r) < verify::DEFAULT_TOL);
    }

    #[test]
    fn unified_generates_page_faults_shmem_does_not() {
        let m = gen::level_structured(&gen::LevelSpec::new(800, 20, 3200, 5));
        let (_, b) = verify::rhs_for(&m, 42);
        let plan = ExecutionPlan::build(m.n(), 4, Partition::Blocked, Triangle::Lower);

        let mut um_machine = Machine::new(MachineConfig::dgx1(4));
        run(&m, &b, &plan, &mut um_machine, ExecConfig {
            backend: Backend::Unified,
            ..ExecConfig::default()
        })
        .unwrap();
        let um_stats = um_machine.stats();
        assert!(um_stats.total_um_faults() > 0, "UM must fault");
        assert!(
            um_stats.um_remote_ops + um_stats.um_migrations > 100,
            "UM must push traffic through the fabric"
        );

        let mut sh_machine = Machine::new(MachineConfig::dgx1(4));
        run(&m, &b, &plan, &mut sh_machine, ExecConfig {
            backend: Backend::Shmem { poll_caching: true },
            ..ExecConfig::default()
        })
        .unwrap();
        let s = sh_machine.stats();
        assert_eq!(s.total_um_faults(), 0, "zero-copy must not touch UM");
        assert!(s.shmem.gets > 0, "zero-copy communicates via gets");
    }

    #[test]
    fn zero_copy_beats_unified_on_makespan() {
        // The headline claim (Fig. 7): same matrix, same machine,
        // zero-copy finishes faster than the UM design. Needs enough
        // work per GPU to amortize the task kernels (crossover ~n=6k).
        let m = gen::level_structured(&gen::LevelSpec::new(8000, 25, 32000, 11));
        let (_, b) = verify::rhs_for(&m, 1);
        let mut um = Machine::new(MachineConfig::dgx1(4));
        let plan_b = ExecutionPlan::build(m.n(), 4, Partition::Blocked, Triangle::Lower);
        let um_out = run(&m, &b, &plan_b, &mut um, ExecConfig {
            backend: Backend::Unified,
            ..ExecConfig::default()
        })
        .unwrap();

        let mut zc = Machine::new(MachineConfig::dgx1(4));
        let plan_t = ExecutionPlan::build(m.n(), 4, Partition::Tasks { per_gpu: 8 }, Triangle::Lower);
        let zc_out = run(&m, &b, &plan_t, &mut zc, ExecConfig {
            backend: Backend::Shmem { poll_caching: true },
            ..ExecConfig::default()
        })
        .unwrap();
        assert!(
            zc_out.makespan < um_out.makespan,
            "zerocopy {} vs unified {}",
            zc_out.makespan,
            um_out.makespan
        );
    }

    #[test]
    fn upper_triangle_solves() {
        let l = gen::banded_lower(500, 6, 3.0, 13);
        let u = l.transpose();
        let (_, b) = verify::rhs_for(&u, 3);
        let plan = ExecutionPlan::build(u.n(), 2, Partition::Tasks { per_gpu: 4 }, Triangle::Upper);
        let mut machine = Machine::new(MachineConfig::dgx1(2));
        let out = run(&u, &b, &plan, &mut machine, ExecConfig {
            backend: Backend::Shmem { poll_caching: true },
            triangle: Triangle::Upper,
            gather_all_pes: true,
        })
        .unwrap();
        let r = reference::solve_upper(&u, &b).unwrap();
        assert!(verify::rel_inf_diff(&out.x, &r) < verify::DEFAULT_TOL);
    }

    #[test]
    fn chain_is_fully_sequential() {
        // n-level chain: makespan must scale ~linearly with n
        let m1 = gen::chain(100);
        let m2 = gen::chain(200);
        let (o1, _) = run_case(&m1, 1, Backend::SingleGpu, Partition::Blocked);
        let (o2, _) = run_case(&m2, 1, Backend::SingleGpu, Partition::Blocked);
        let ratio = o2.makespan.as_ns() as f64 / o1.makespan.as_ns() as f64;
        assert!((1.6..2.6).contains(&ratio), "chain should scale linearly: {ratio}");
    }

    #[test]
    fn diagonal_matrix_is_embarrassingly_parallel() {
        let m = gen::diagonal(4000, 3);
        let (out, r) = run_case(&m, 1, Backend::SingleGpu, Partition::Blocked);
        assert!(verify::rel_inf_diff(&out.x, &r) < 1e-12);
        // no dependencies: every component solves without Dep events
        assert!(out.events >= 4000 * 2);
    }

    #[test]
    fn deterministic_runs() {
        let m = gen::level_structured(&gen::LevelSpec::new(700, 12, 2800, 21));
        let (a, _) = run_case(&m, 4, Backend::Shmem { poll_caching: true }, Partition::Tasks { per_gpu: 8 });
        let (b, _) = run_case(&m, 4, Backend::Shmem { poll_caching: true }, Partition::Tasks { per_gpu: 8 });
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.events, b.events);
        assert_eq!(a.x, b.x);
    }

    #[test]
    fn empty_matrix_is_trivial() {
        let m = sparsemat::TripletBuilder::new(0).build().unwrap();
        let plan = ExecutionPlan::build(0, 1, Partition::Blocked, Triangle::Lower);
        let mut machine = Machine::new(MachineConfig::dgx1(1));
        let out = run(&m, &[], &plan, &mut machine, ExecConfig::default()).unwrap();
        assert!(out.x.is_empty());
    }

    #[test]
    fn poll_caching_reduces_poll_gets() {
        let m = gen::level_structured(&gen::LevelSpec::new(1000, 40, 4000, 31));
        let (_, b) = verify::rhs_for(&m, 42);
        let plan = ExecutionPlan::build(m.n(), 4, Partition::Tasks { per_gpu: 8 }, Triangle::Lower);
        let mut cached = Machine::new(MachineConfig::dgx1(4));
        run(&m, &b, &plan, &mut cached, ExecConfig {
            backend: Backend::Shmem { poll_caching: true },
            ..ExecConfig::default()
        })
        .unwrap();
        let mut raw = Machine::new(MachineConfig::dgx1(4));
        run(&m, &b, &plan, &mut raw, ExecConfig {
            backend: Backend::Shmem { poll_caching: false },
            ..ExecConfig::default()
        })
        .unwrap();
        let c = cached.stats().shmem;
        let r = raw.stats().shmem;
        assert!(c.poll_gets < r.poll_gets, "caching must cut poll traffic: {} vs {}", c.poll_gets, r.poll_gets);
        assert!(c.poll_gets_saved > 0);
    }
}
