//! The synchronization-free dataflow executor.
//!
//! All sync-free variants share one control flow — the two phases of
//! Liu et al. \[2\] that the paper builds on:
//!
//! 1. **lock-wait**: a warp owns one component and spins until the
//!    component's in-degree is satisfied;
//! 2. **solve-update**: it solves `x_i` and publishes
//!    `l_ri · x_i` into the `left_sum` of every dependent `r`,
//!    decrementing their outstanding in-degrees.
//!
//! What differs between Algorithm 2 (Unified Memory), Algorithm 3
//! (NVSHMEM zero-copy) and the single-GPU solver is *where the
//! intermediate arrays live and what publishing/detecting costs*:
//!
//! | backend    | publish to remote component     | dependency detection        |
//! |------------|---------------------------------|-----------------------------|
//! | SingleGpu  | n/a                             | local spin poll             |
//! | Unified    | system atomic on a UM page      | spin poll on a UM page      |
//! |            | (faults, migration, bounce)     | (page bounces back, faults) |
//! | Shmem      | device atomic on the *producer's* | warp-parallel one-sided     |
//! |            | own symmetric heap copy — zero  | gets + shuffle reduction,   |
//! |            | wire traffic at publish time    | r.in_degree poll caching    |
//!
//! ## Analysis / solve separation
//!
//! Everything that depends only on the *structure* — in-degrees,
//! remote-source masks, gather peer lists, per-component update lists,
//! diagonal extraction — lives in [`ExecAnalysis`], built once and
//! reused across solves (the amortization §II-B argues for). The
//! per-component data is stored flat, CSR-style (`(ptr, data)` pairs),
//! so the solve-phase event handlers walk contiguous memory and
//! allocate nothing. [`run`] is the one-shot convenience that builds
//! the analysis and immediately solves; the build-once/solve-many
//! engine ([`crate::engine::SolverEngine`]) holds an `ExecAnalysis`
//! across calls.
//!
//! The executor runs real `f64` numerics as virtual time advances; the
//! returned `x` is bit-stable for a fixed seed and is verified against
//! the serial reference by the caller.
//!
//! ## Canonical order & why chain fusion is bit-identical
//!
//! Every warm tier executes the same **canonical order**: the
//! level-major component order recorded in the engine's
//! [`crate::schedule::Schedule`] (components grouped by level,
//! owner-grouped within each level). Floating-point addition is not
//! associative, so bit-identity across tiers holds iff every tier (a)
//! solves each row from the same partial sum and (b) accumulates each
//! row's partial sum in the same source order. Both are properties of
//! the canonical order, not of the execution strategy — which is what
//! lets [`ShardedReplay`] mix per-chain strategies freely:
//!
//! | chain kind | who solves a row          | who accumulates into a row         | source order        |
//! |------------|---------------------------|------------------------------------|---------------------|
//! | serial     | the one thread            | the one thread, inline             | canonical           |
//! | fused      | worker 0, whole chain     | worker 0, inline at each source    | canonical           |
//! | wide level | owner shard's worker      | target shard's worker, from its    | canonical (buckets  |
//! |            | (phase A)                 | `(level, shard)` bucket (phase B)  | filled canonically) |
//!
//! Three invariants make every cell of that table produce identical
//! bits:
//!
//! 1. **one writer per row** — each row's `x` is written by exactly
//!    one worker, and each row's `left_sum` is accumulated by exactly
//!    one worker per chain (owner-computes for wide levels, worker 0
//!    for fused chains), with barriers ordering chains;
//! 2. **canonical accumulation order** — update buckets are filled in
//!    canonical source order at build time, and a fused chain applies
//!    updates inline while walking the canonical order, so a target
//!    row's partial sum always accumulates in exactly the serial
//!    replay's source order;
//! 3. **identical per-row arithmetic** — all paths compute
//!    `x_i = (b_i − left_sum_i) / diag_i` then
//!    `left_sum_r += l_ri · x_i` with the same operand values, since
//!    (1) and (2) pin both operand sources.
//!
//! A fused chain is the degenerate case where "one worker" owns
//! *every* row of a run of levels: within the chain, each row's
//! dependencies are either in earlier chains (published before the
//! chain's opening barrier) or earlier in the canonical walk (applied
//! inline before the row is reached) — so no internal barrier is
//! needed and the operation sequence is literally the serial replay's
//! subsequence for those levels. That is why chain-fused execution is
//! bit-identical *by construction* for every worker count, fused or
//! not, before and after a value refresh.

use crate::plan::ExecutionPlan;
use crate::pool::{DisjointSlice, RegionBarrier, WorkerPool};
use crate::schedule::Schedule;
use crate::telemetry::{Hist, Site, SpanGuard, Stopwatch};
use crate::Backend;
use desim::{EventQueue, SimTime};
use mgpu_sim::{um::UmRange, GpuId, Machine};
use sparsemat::{CscMatrix, LevelSets, Triangle};
use std::cell::Cell;
use std::sync::Arc;

thread_local! {
    /// Per-thread count of [`ExecAnalysis::build`] invocations. The
    /// engine tests read this to prove warm solves build **zero**
    /// adjacency; thread-local so parallel tests cannot perturb each
    /// other's measurements.
    static ANALYSIS_BUILDS: Cell<u64> = const { Cell::new(0) };
}

/// How many times [`ExecAnalysis::build`] has run on this thread.
pub fn analysis_builds() -> u64 {
    ANALYSIS_BUILDS.with(Cell::get)
}

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Communication backend.
    pub backend: Backend,
    /// Which triangle is being solved.
    pub triangle: Triangle,
    /// Gather `left_sum` from every PE (Algorithm 3 lines 24–26) rather
    /// than only from PEs that actually hold dependencies.
    pub gather_all_pes: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig { backend: Backend::SingleGpu, triangle: Triangle::Lower, gather_all_pes: true }
    }
}

/// The structure-only preprocessing of one `(matrix, plan, config)`
/// triple, stored flat for cache-linear solve-phase iteration.
///
/// Nothing in here depends on the right-hand side or on machine state,
/// so one analysis serves arbitrarily many solves — including
/// concurrent batched solves, which share it immutably.
#[derive(Debug, Clone)]
pub struct ExecAnalysis {
    /// Matrix dimension.
    pub n: usize,
    /// Initial in-degree per component (dependency count).
    in_degree: Vec<u32>,
    /// Bitmask of GPUs that produce at least one dependency of `i`
    /// from a different GPU than `i`'s owner.
    remote_mask: Vec<u16>,
    /// CSR-style offsets into [`Self::peers`] (n+1 entries).
    peers_ptr: Vec<u32>,
    /// Gather peer lists, flat (empty for non-Shmem backends).
    peers: Vec<GpuId>,
    /// CSR-style offsets into the update lists (n+1 entries).
    dep_ptr: Vec<u32>,
    /// Dependent row per update entry.
    dep_rows: Vec<u32>,
    /// Matrix value per update entry.
    dep_vals: Vec<f64>,
    /// Diagonal entry per component.
    diag: Vec<f64>,
    /// Stored entries per column (timing model input).
    col_nnz: Vec<u32>,
    /// Owned nonzeros per GPU (in-degree setup kernel sizing).
    nnz_per_gpu: Vec<u64>,
    /// Device bytes per GPU under this plan/backend.
    device_bytes: Vec<u64>,
}

impl ExecAnalysis {
    /// Run the analysis phase for `m` under `plan` and `cfg`:
    /// in-degrees, remote masks, gather peers, flattened update lists.
    /// Cost: O(n + nnz); runs once per engine build.
    pub fn build(m: &CscMatrix, plan: &ExecutionPlan, cfg: &ExecConfig) -> ExecAnalysis {
        ANALYSIS_BUILDS.with(|c| c.set(c.get() + 1));
        let n = m.n();
        let tri = cfg.triangle;
        let gpus = plan.gpus;
        assert_eq!(plan.owner.len(), n, "plan size mismatch");

        let in_degree = m.in_degrees(tri);

        // --- source-GPU masks for each component's dependencies -------
        let mut remote_mask = vec![0u16; n];
        for j in 0..n {
            let gj = plan.owner[j];
            for (r, _) in m.col(j) {
                let r = r as usize;
                let is_dep = match tri {
                    Triangle::Lower => r > j,
                    Triangle::Upper => r < j,
                };
                if is_dep && plan.owner[r] != gj {
                    remote_mask[r] |= 1 << gj;
                }
            }
        }

        // --- flat gather-peer adjacency (Shmem only) ------------------
        let mut peers_ptr = vec![0u32; n + 1];
        let mut peers: Vec<GpuId> = Vec::new();
        if matches!(cfg.backend, Backend::Shmem { .. }) {
            for i in 0..n {
                if cfg.gather_all_pes {
                    peers.extend((0..gpus).filter(|&g| g != plan.owner[i]));
                } else {
                    peers.extend((0..gpus).filter(|&g| remote_mask[i] & (1 << g) != 0));
                }
                peers_ptr[i + 1] = peers.len() as u32;
            }
        }

        // --- flattened per-component update lists and diagonals -------
        let mut a = ExecAnalysis::columns_only(m, tri);

        // --- per-GPU sizing -------------------------------------------
        let mut nnz_per_gpu = vec![0u64; gpus];
        for j in 0..n {
            nnz_per_gpu[plan.owner[j]] += a.col_nnz[j] as u64;
        }
        let replicated = matches!(cfg.backend, Backend::Shmem { .. });
        let device_bytes = (0..gpus).map(|g| plan.device_bytes(m, g, replicated)).collect();

        a.in_degree = in_degree;
        a.remote_mask = remote_mask;
        a.peers_ptr = peers_ptr;
        a.peers = peers;
        a.nnz_per_gpu = nnz_per_gpu;
        a.device_bytes = device_bytes;
        a
    }

    /// Flat column data only — diagonals and update lists, the part of
    /// the analysis the numeric [`ExecAnalysis::replay`] needs. Skips
    /// every distribution-dependent field (in-degrees, masks, peers,
    /// per-GPU sizing) and does **not** count as an adjacency build in
    /// [`analysis_builds`]; the level-set engine variant uses this.
    pub fn columns_only(m: &CscMatrix, tri: Triangle) -> ExecAnalysis {
        let n = m.n();
        let col_ptr = m.col_ptr();
        let row_idx = m.row_idx();
        let values = m.values();
        let mut dep_ptr = vec![0u32; n + 1];
        let mut dep_rows = Vec::with_capacity(m.nnz().saturating_sub(n));
        let mut dep_vals = Vec::with_capacity(m.nnz().saturating_sub(n));
        let mut diag = vec![0.0f64; n];
        let mut col_nnz = vec![0u32; n];
        for j in 0..n {
            let (lo, hi) = (col_ptr[j], col_ptr[j + 1]);
            col_nnz[j] = (hi - lo) as u32;
            let (dlo, dhi) = match tri {
                Triangle::Lower => {
                    diag[j] = values[lo];
                    (lo + 1, hi)
                }
                Triangle::Upper => {
                    diag[j] = values[hi - 1];
                    (lo, hi - 1)
                }
            };
            dep_rows.extend_from_slice(&row_idx[dlo..dhi]);
            dep_vals.extend_from_slice(&values[dlo..dhi]);
            dep_ptr[j + 1] = dep_rows.len() as u32;
        }
        ExecAnalysis {
            n,
            in_degree: Vec::new(),
            remote_mask: Vec::new(),
            peers_ptr: Vec::new(),
            peers: Vec::new(),
            dep_ptr,
            dep_rows,
            dep_vals,
            diag,
            col_nnz,
            nnz_per_gpu: Vec::new(),
            device_bytes: Vec::new(),
        }
    }

    /// Rewrite the value-dependent arrays (`diag`, `dep_vals`) in place
    /// from `m`'s values, leaving every topology field untouched — the
    /// numeric half of a value refresh. `m` must have exactly the
    /// structure this analysis was built from (the engine validates
    /// that before calling); the extraction walks the same per-column
    /// layout as [`ExecAnalysis::columns_only`], so a refreshed
    /// analysis is indistinguishable from one built fresh on `m`.
    /// Allocates nothing.
    pub(crate) fn refresh_values(&mut self, m: &CscMatrix, tri: Triangle) {
        debug_assert_eq!(self.n, m.n(), "refresh requires the recorded structure");
        let col_ptr = m.col_ptr();
        let values = m.values();
        for j in 0..self.n {
            let (lo, hi) = (col_ptr[j], col_ptr[j + 1]);
            let (dlo, dhi) = match tri {
                Triangle::Lower => {
                    self.diag[j] = values[lo];
                    (lo + 1, hi)
                }
                Triangle::Upper => {
                    self.diag[j] = values[hi - 1];
                    (lo, hi - 1)
                }
            };
            let (at_lo, at_hi) = (self.dep_ptr[j] as usize, self.dep_ptr[j + 1] as usize);
            debug_assert_eq!(at_hi - at_lo, dhi - dlo, "dep layout must match the structure");
            self.dep_vals[at_lo..at_hi].copy_from_slice(&values[dlo..dhi]);
        }
    }

    /// Host bytes held by this analysis' flat arrays — what an engine
    /// cache charges against its byte budget. Counts capacity, not
    /// length: the allocation is what occupies memory.
    pub fn host_bytes(&self) -> u64 {
        fn cap<T>(v: &Vec<T>) -> u64 {
            (v.capacity() * std::mem::size_of::<T>()) as u64
        }
        cap(&self.in_degree)
            + cap(&self.remote_mask)
            + cap(&self.peers_ptr)
            + cap(&self.peers)
            + cap(&self.dep_ptr)
            + cap(&self.dep_rows)
            + cap(&self.dep_vals)
            + cap(&self.diag)
            + cap(&self.col_nnz)
            + cap(&self.nnz_per_gpu)
            + cap(&self.device_bytes)
    }

    /// Update list (dependent rows and matrix values) of component `c`.
    #[inline]
    fn updates_of(&self, c: u32) -> (&[u32], &[f64]) {
        let (lo, hi) = (self.dep_ptr[c as usize] as usize, self.dep_ptr[c as usize + 1] as usize);
        (&self.dep_rows[lo..hi], &self.dep_vals[lo..hi])
    }

    /// Gather peers of component `c` (empty unless Shmem).
    #[inline]
    fn peers_of(&self, c: u32) -> &[GpuId] {
        let (lo, hi) =
            (self.peers_ptr[c as usize] as usize, self.peers_ptr[c as usize + 1] as usize);
        &self.peers[lo..hi]
    }

    /// Replay the numeric solve along a recorded wake order.
    ///
    /// The discrete-event timeline is *value-independent*: event times
    /// depend only on the structure, the plan and the machine seed —
    /// never on `b`. A recorded [`ExecOutcome::solve_order`] therefore
    /// determines the exact floating-point operation sequence of a full
    /// simulation, and replaying it is bit-identical to re-simulating —
    /// at O(n + nnz) cost instead of the full event loop. This is the
    /// §II-B amortization realized in wall-clock: analysis *and*
    /// schedule are paid once, every further right-hand side pays only
    /// the substitution sweep.
    pub fn replay(&self, order: &[u32], b: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0f64; self.n];
        let mut left_sum = vec![0.0f64; self.n];
        self.replay_into(order, b, &mut left_sum, &mut x);
        x
    }

    /// Allocation-free [`ExecAnalysis::replay`]: the caller provides
    /// the `left_sum` scratch and the output vector (both length `n`).
    /// The floating-point operation sequence is identical to `replay`,
    /// so results are bit-identical; only the storage strategy differs.
    pub fn replay_into(&self, order: &[u32], b: &[f64], left_sum: &mut [f64], x: &mut [f64]) {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        assert_eq!(order.len(), self.n, "order must cover every component");
        assert_eq!(left_sum.len(), self.n, "left_sum scratch length mismatch");
        assert_eq!(x.len(), self.n, "output length mismatch");
        left_sum.fill(0.0);
        for &c in order {
            self.replay_step(c as usize, b, left_sum, x);
        }
    }

    /// Replay along the **natural substitution order** (ascending
    /// components for a lower triangle, descending for upper) without
    /// materializing an order array. The per-component operations are
    /// exactly [`ExecAnalysis::replay_into`]'s, so the result is
    /// bit-identical to a replay over the corresponding explicit order
    /// — and, by the Krylov path's property tests, bit-identical to the
    /// serial reference substitution. Allocates nothing.
    pub(crate) fn replay_natural_into(
        &self,
        ascending: bool,
        b: &[f64],
        left_sum: &mut [f64],
        x: &mut [f64],
    ) {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        assert_eq!(left_sum.len(), self.n, "left_sum scratch length mismatch");
        assert_eq!(x.len(), self.n, "output length mismatch");
        left_sum.fill(0.0);
        if ascending {
            for i in 0..self.n {
                self.replay_step(i, b, left_sum, x);
            }
        } else {
            for i in (0..self.n).rev() {
                self.replay_step(i, b, left_sum, x);
            }
        }
    }

    /// Solve one component and push its updates — the shared inner body
    /// of the scalar replay orders.
    #[inline(always)]
    fn replay_step(&self, i: usize, b: &[f64], left_sum: &mut [f64], x: &mut [f64]) {
        let xi = (b[i] - left_sum[i]) / self.diag[i];
        x[i] = xi;
        let (rows, vals) = self.updates_of(i as u32);
        for (r, v) in rows.iter().zip(vals) {
            left_sum[*r as usize] += *v * xi;
        }
    }

    /// Fused multi-RHS replay: stream the flattened adjacency
    /// (`dep_ptr`/`dep_rows`/`dep_vals`) **once per K-wide block** of
    /// right-hand sides instead of once per RHS.
    ///
    /// Right-hand sides are processed in fixed-width blocks of
    /// [`PANEL_K`] (ragged tails fall back to 4/2/1-wide blocks), with
    /// the per-component state held in an interleaved panel layout
    /// (`K` consecutive lanes per row) so the inner loop over the block
    /// is contiguous and auto-vectorizes. Since SpTRSV replay is
    /// memory-bandwidth-bound, amortizing the factor traffic over K
    /// solves is worth ~K× on the dominant stream.
    ///
    /// Each right-hand side's floating-point operation sequence is
    /// exactly the scalar [`ExecAnalysis::replay`]'s (the K lanes never
    /// mix), so every solution is **bit-identical** to a per-RHS
    /// replay. Steady-state calls allocate nothing once `ws` has grown
    /// to the panel size.
    pub fn replay_panel(
        &self,
        order: &[u32],
        bs: &[Vec<f64>],
        ws: &mut ReplayWorkspace,
        outs: &mut [Vec<f64>],
    ) {
        assert_eq!(bs.len(), outs.len(), "one output per right-hand side");
        for b in bs {
            assert_eq!(b.len(), self.n, "rhs length mismatch");
        }
        for out in outs.iter_mut() {
            out.resize(self.n, 0.0);
        }
        let mut lo = 0;
        while lo < bs.len() {
            let rem = bs.len() - lo;
            // greedy fixed-width blocks: monomorphized kernels for
            // 8/4/2/1 lanes keep the inner loop a compile-time constant
            let k = if rem >= 8 {
                8
            } else if rem >= 4 {
                4
            } else if rem >= 2 {
                2
            } else {
                1
            };
            let bs_blk = &bs[lo..lo + k];
            let outs_blk = &mut outs[lo..lo + k];
            match k {
                8 => self.replay_block::<8>(order, bs_blk, ws, outs_blk),
                4 => self.replay_block::<4>(order, bs_blk, ws, outs_blk),
                2 => self.replay_block::<2>(order, bs_blk, ws, outs_blk),
                _ => self.replay_block::<1>(order, bs_blk, ws, outs_blk),
            }
            lo += k;
        }
    }

    /// One K-wide block of the fused replay. `K` is a const generic so
    /// the lane loops have compile-time trip counts (LLVM unrolls and
    /// vectorizes them into packed f64 operations).
    fn replay_block<const K: usize>(
        &self,
        order: &[u32],
        bs: &[Vec<f64>],
        ws: &mut ReplayWorkspace,
        outs: &mut [Vec<f64>],
    ) {
        let n = self.n;
        debug_assert_eq!(bs.len(), K);
        assert_eq!(order.len(), n, "order must cover every component");
        ws.ensure(n, K);
        let bb = &mut ws.panel_b[..n * K];
        let xb = &mut ws.panel_x[..n * K];
        let lsb = &mut ws.panel_ls[..n * K];
        // pack the RHS columns into the interleaved panel (row i holds
        // the K lanes contiguously); `i` outer so the panel writes are
        // sequential and the K source lanes stream in parallel
        for i in 0..n {
            for (k, b) in bs.iter().enumerate() {
                bb[i * K + k] = b[i];
            }
        }
        lsb.fill(0.0);

        for &c in order {
            let i = c as usize;
            let d = self.diag[i];
            let base = i * K;
            let mut xv = [0.0f64; K];
            for k in 0..K {
                xv[k] = (bb[base + k] - lsb[base + k]) / d;
            }
            xb[base..base + K].copy_from_slice(&xv);
            let (rows, vals) = self.updates_of(c);
            for (r, v) in rows.iter().zip(vals) {
                // copy the matrix value to a local: a reference-typed
                // `v` makes LLVM re-load it after every lane store
                // (it cannot rule out aliasing with `lsb` once
                // inlined), which blocks packing the lane loop
                let v = *v;
                let row = &mut lsb[*r as usize * K..*r as usize * K + K];
                for k in 0..K {
                    row[k] += v * xv[k];
                }
            }
        }

        // unpack the interleaved solutions back into per-RHS columns
        // (`i` outer: sequential panel reads, K parallel write streams)
        for i in 0..n {
            let row = &xb[i * K..i * K + K];
            for (k, out) in outs.iter_mut().enumerate() {
                out[i] = row[k];
            }
        }
    }
}

/// Maximum lane width of [`ExecAnalysis::replay_panel`] blocks: the
/// widest monomorphized kernel (8 × f64 = one cache line of lanes per
/// row; ragged tails use 4/2/1-wide blocks).
pub const PANEL_K: usize = 8;

/// Reusable scratch for the fused panel replay. Buffers grow to
/// `n × K` on first use and are retained, so steady-state
/// [`ExecAnalysis::replay_panel`] calls perform **zero** heap
/// allocation.
#[derive(Debug, Default, Clone)]
pub struct ReplayWorkspace {
    /// Interleaved right-hand-side panel (`n × K`, K lanes per row).
    panel_b: Vec<f64>,
    /// Interleaved solution panel.
    panel_x: Vec<f64>,
    /// Interleaved partial-sum panel.
    panel_ls: Vec<f64>,
}

impl ReplayWorkspace {
    /// A workspace with no buffers; they grow on first use.
    pub fn new() -> ReplayWorkspace {
        ReplayWorkspace::default()
    }

    /// Grow (never shrink) the panel buffers to `n × k` elements.
    fn ensure(&mut self, n: usize, k: usize) {
        let len = n * k;
        if self.panel_b.len() < len {
            self.panel_b.resize(len, 0.0);
            self.panel_x.resize(len, 0.0);
            self.panel_ls.resize(len, 0.0);
        }
    }
}

/// The chain-fused, level-parallel replay executor — the paper's
/// parallel execution model (independent components solved
/// concurrently, updates applied owner-locally) materialized for the
/// host warm path, stepping the engine's [`Schedule`] IR.
///
/// The scheduling facts — canonical order, owner segmentation, chain
/// partition — live in the shared [`Schedule`] (built once at
/// engine-build time); this struct adds only the *numeric* bucket
/// arrays: per `(source level, target shard)` update lists, filled in
/// canonical source order so every target row accumulates exactly as
/// the serial [`ExecAnalysis::replay_into`] does.
///
/// At solve time execution steps the schedule's **chains**, with
/// barriers only at chain boundaries:
///
/// * a **fused chain** (run of narrow levels) is walked entirely by
///   worker 0 in canonical order with inline solve+update — no
///   internal barriers — then one trailing barrier publishes its rows;
/// * a **wide level** runs the owner-computes two-phase path: shard
///   `s` is handled by worker `s % workers`, solve phase → barrier →
///   bucketed update phase → trailing barrier.
///
/// Both strategies execute the canonical floating-point sequence (see
/// the module docs' bit-identity section), on a
/// [`WorkerPool::run_region`] parallel region with one reusable
/// stack-allocated [`RegionBarrier`], so steady-state sharded solves
/// allocate nothing.
#[derive(Debug, Clone)]
pub struct ShardedReplay {
    /// The engine-wide Schedule IR this executor steps (shared with
    /// the engine's structure plan — a refcount, not a copy).
    schedule: Arc<Schedule>,
    /// Update-list offsets per `(level, shard)` bucket
    /// (`n_levels * shards + 1` entries, CSR-style). Buckets exist for
    /// every level — including fused ones, whose updates are applied
    /// inline instead — so the layout is threshold-independent and a
    /// value refresh never re-derives it.
    upd_ptr: Vec<u32>,
    /// Source component per update entry (its `x` feeds the update).
    upd_src: Vec<u32>,
    /// Target row per update entry (owned by the bucket's shard).
    upd_row: Vec<u32>,
    /// Matrix value per update entry.
    upd_val: Vec<f64>,
    /// Source index of each update's value in the analysis' flat
    /// `dep_vals` array — the permutation a value refresh replays to
    /// rewrite `upd_val` in place without re-deriving the schedule.
    upd_from: Vec<u32>,
}

/// How many owner shards each level is cut into. Worker counts above
/// this are clamped; counts below it stripe shards round-robin
/// (`shard % workers`), which keeps results bit-identical across
/// worker counts — a row's updates always live in exactly one shard's
/// bucket, in canonical order, applied by exactly one worker.
pub const SHARD_COUNT: usize = 16;

impl ShardedReplay {
    /// Derive the numeric bucket arrays for a prebuilt analysis under
    /// an engine's [`Schedule`] (which owns the canonical order, the
    /// owner segmentation and the chain partition — see
    /// [`Schedule::build`]). Cost: O(n + nnz); runs once per engine
    /// build.
    pub fn build(a: &ExecAnalysis, levels: &LevelSets, schedule: &Arc<Schedule>) -> ShardedReplay {
        let shards = schedule.shards();
        let n_levels = schedule.n_levels();
        debug_assert_eq!(n_levels, levels.n_levels(), "schedule built from different levels");
        let shard_of = schedule.shard_of();
        let n_upd = a.dep_rows.len();

        // counting pass: one bucket per (source level, target shard)
        let mut upd_ptr = vec![0u32; n_levels * shards + 1];
        for c in 0..a.n {
            let l = levels.level_of[c] as usize;
            let (rows, _) = a.updates_of(c as u32);
            for &r in rows {
                upd_ptr[l * shards + shard_of[r as usize] as usize + 1] += 1;
            }
        }
        for k in 0..n_levels * shards {
            upd_ptr[k + 1] += upd_ptr[k];
        }

        // fill pass in canonical order, so every bucket — and therefore
        // every target row — accumulates its updates in exactly the
        // source order of the serial replay
        let mut cursor: Vec<u32> = upd_ptr.clone();
        let mut upd_src = vec![0u32; n_upd];
        let mut upd_row = vec![0u32; n_upd];
        let mut upd_val = vec![0.0f64; n_upd];
        let mut upd_from = vec![0u32; n_upd];
        for &c in schedule.order().iter() {
            let l = levels.level_of[c as usize] as usize;
            let dep_base = a.dep_ptr[c as usize];
            let (rows, vals) = a.updates_of(c);
            for (k, (r, v)) in rows.iter().zip(vals).enumerate() {
                let bucket = l * shards + shard_of[*r as usize] as usize;
                let at = cursor[bucket] as usize;
                upd_src[at] = c;
                upd_row[at] = *r;
                upd_val[at] = *v;
                upd_from[at] = dep_base + k as u32;
                cursor[bucket] += 1;
            }
        }

        ShardedReplay {
            schedule: Arc::clone(schedule),
            upd_ptr,
            upd_src,
            upd_row,
            upd_val,
            upd_from,
        }
    }

    /// Rewrite the schedule's value array in place from a refreshed
    /// analysis by replaying the recorded `dep_vals` permutation —
    /// every topology array (order, segments, buckets, sources,
    /// targets) stays untouched. Allocates nothing.
    pub(crate) fn refresh_values(&mut self, a: &ExecAnalysis) {
        debug_assert_eq!(self.upd_val.len(), a.dep_vals.len(), "schedule/analysis mismatch");
        for (v, &src) in self.upd_val.iter_mut().zip(&self.upd_from) {
            *v = a.dep_vals[src as usize];
        }
    }

    /// The canonical serial order of this executor's schedule, behind
    /// a shared handle. The engine stores this as its warm replay
    /// order, which is what makes the sharded tier bit-identical to
    /// every serial tier.
    #[inline]
    pub fn order_shared(&self) -> Arc<[u32]> {
        self.schedule.order_shared()
    }

    /// The Schedule IR this executor steps.
    #[inline]
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Host bytes held by the numeric bucket arrays. The shared
    /// [`Schedule`] (canonical order, segments, chains) is counted by
    /// [`Schedule::host_bytes`] — its owner of record — not here.
    pub fn host_bytes(&self) -> u64 {
        fn cap<T>(v: &Vec<T>) -> u64 {
            (v.capacity() * std::mem::size_of::<T>()) as u64
        }
        cap(&self.upd_ptr)
            + cap(&self.upd_src)
            + cap(&self.upd_row)
            + cap(&self.upd_val)
            + cap(&self.upd_from)
    }

    /// Execute one warm solve chain-parallel across `workers` region
    /// workers, writing the solution into `x` with `left_sum` as the
    /// partial-sum scratch (both length `n`).
    ///
    /// The loop steps the schedule's [`ChainPartition`] rather than raw
    /// levels. A **fused** chain (consecutive narrow levels) runs on
    /// worker 0 in canonical level-major order with updates applied
    /// inline — zero internal barriers. A **wide** chain is a single
    /// level stepped owner-computes across shards in two
    /// barrier-separated phases (solve, then bucket updates). Barriers
    /// thus land only at chain boundaries plus one mid-level barrier
    /// per wide level.
    ///
    /// Bit-identical to `a.replay_into(&self.order_shared(), b, ...)`
    /// for **every** worker count: ownership fixes each row's solve
    /// and accumulation onto one worker, the bucket layout fixes the
    /// accumulation order to the canonical source order, and a fused
    /// chain's instruction stream is literally the serial replay's
    /// subsequence for those levels (see the module docs). Steady
    /// state this allocates nothing (the barrier lives on the stack,
    /// the region descriptor in the pool).
    ///
    /// `workers` is clamped to `[1, SHARD_COUNT]`; with one worker, a
    /// single chain, or an empty system the serial replay runs
    /// directly. If the pool's region slot is already taken — a
    /// concurrent sharded solve — the call degrades to the serial
    /// replay on the calling thread rather than blocking, so
    /// concurrent solves on one engine never serialize behind each
    /// other.
    pub fn replay_into(
        &self,
        a: &ExecAnalysis,
        b: &[f64],
        left_sum: &mut [f64],
        x: &mut [f64],
        pool: &WorkerPool,
        workers: usize,
    ) {
        let sch = &*self.schedule;
        let shards = sch.shards();
        let workers = workers.clamp(1, shards.max(1));
        if workers == 1 || sch.n_chains() <= 1 || a.n == 0 {
            a.replay_into(sch.order(), b, left_sum, x);
            return;
        }
        assert_eq!(b.len(), a.n, "rhs length mismatch");
        assert_eq!(left_sum.len(), a.n, "left_sum scratch length mismatch");
        assert_eq!(x.len(), a.n, "output length mismatch");
        left_sum.fill(0.0);
        let xs = DisjointSlice::new(x);
        let ls = DisjointSlice::new(left_sum);
        let barrier = RegionBarrier::new(workers);
        let diag = &a.diag[..];
        let (order, seg_ptr) = (sch.order(), sch.seg_ptr());
        let chains = sch.chains();
        let n_chains = chains.n_chains();
        // Per chain:
        //   fused — worker 0 walks the chain's slice of the canonical
        //     order, solving each row and applying its updates inline;
        //     peers park at the trailing barrier, whose acquire/release
        //     ordering publishes worker 0's writes.
        //   wide — two phases, barrier-separated:
        //     A: solve the level's owned shards (reads b/diag and
        //        owned left_sum — all updates into them landed in
        //        earlier chains);
        //     B: apply the level's updates into owned deeper rows
        //        (reads x solved in phase A, possibly by peers — hence
        //        the barrier — and writes only shard-owned left_sum).
        // The trailing barrier orders each chain before the next; the
        // last chain needs none (region completion synchronizes).
        //
        // try_run_region: if another region already occupies the pool
        // (a concurrent sharded solve on the same engine), run the
        // serial replay instead of queueing — the results are
        // bit-identical either way, and solving now on this thread
        // beats waiting for threads another solve is using.
        // Telemetry: worker 0 records one `ShardedChain` span per
        // chain and one `ShardedBarrier` span per barrier it waits on
        // — chain spans == `ScheduleStats.chains` and barrier spans ==
        // `ScheduleStats.barriers_per_solve`, exactly (every worker
        // waits the same barriers; recording one lane keeps the
        // timeline reconcilable with the static schedule counts).
        let ran_parallel = pool.try_run_region(workers, &|w| {
            for k in 0..n_chains {
                let lv = chains.chain(k);
                let chain_span = SpanGuard::enter_on(w == 0, Site::ShardedChain);
                if chains.is_fused(k) {
                    if w == 0 {
                        // seg_ptr is cumulative across levels, so a
                        // chain's rows are one contiguous slice of the
                        // canonical order.
                        let lo = seg_ptr[lv.start * shards] as usize;
                        let hi = seg_ptr[lv.end * shards] as usize;
                        for &c in &order[lo..hi] {
                            let i = c as usize;
                            let xi = (b[i] - ls.get(i)) / diag[i];
                            xs.set(i, xi);
                            let (rows, vals) = a.updates_of(c);
                            for (r, v) in rows.iter().zip(vals) {
                                let r = *r as usize;
                                ls.set(r, ls.get(r) + *v * xi);
                            }
                        }
                    }
                } else {
                    let base = lv.start * shards;
                    let mut s = w;
                    while s < shards {
                        let (lo, hi) = (seg_ptr[base + s] as usize, seg_ptr[base + s + 1] as usize);
                        for &c in &order[lo..hi] {
                            let i = c as usize;
                            xs.set(i, (b[i] - ls.get(i)) / diag[i]);
                        }
                        s += workers;
                    }
                    if w == 0 {
                        let _g = SpanGuard::enter(Site::ShardedBarrier);
                        let sw = Stopwatch::start();
                        barrier.wait();
                        sw.stop(Hist::BarrierWaitNs);
                    } else {
                        barrier.wait();
                    }
                    let mut s = w;
                    while s < shards {
                        let (lo, hi) =
                            (self.upd_ptr[base + s] as usize, self.upd_ptr[base + s + 1] as usize);
                        for j in lo..hi {
                            let r = self.upd_row[j] as usize;
                            ls.set(
                                r,
                                ls.get(r) + self.upd_val[j] * xs.get(self.upd_src[j] as usize),
                            );
                        }
                        s += workers;
                    }
                }
                drop(chain_span);
                if k + 1 < n_chains {
                    if w == 0 {
                        let _g = SpanGuard::enter(Site::ShardedBarrier);
                        let sw = Stopwatch::start();
                        barrier.wait();
                        sw.stop(Hist::BarrierWaitNs);
                    } else {
                        barrier.wait();
                    }
                }
            }
        });
        if !ran_parallel {
            a.replay_into(sch.order(), b, left_sum, x);
        }
    }
}

/// Result of an executor run.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// The solution vector.
    pub x: Vec<f64>,
    /// When the analysis phase (in-degree setup) completed.
    pub analysis_end: SimTime,
    /// When the last warp retired.
    pub makespan: SimTime,
    /// Events processed by the calendar.
    pub events: u64,
    /// Components in the order their warps woke and solved — the
    /// recorded schedule that [`ExecAnalysis::replay`] re-executes.
    pub solve_order: Vec<u32>,
}

/// Executor failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The dataflow stalled: `unsolved` components never became ready.
    /// Indicates a plan whose launch order violates substitution order.
    Deadlock {
        /// Number of unsolved components at stall time.
        unsolved: usize,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Deadlock { unsolved } => {
                write!(f, "dataflow deadlock: {unsolved} components unsolved")
            }
        }
    }
}

impl std::error::Error for ExecError {}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Kernel `k` became schedulable.
    Kernel(u32),
    /// Component acquired its warp slot.
    Slot(u32),
    /// One dependency of the component became durable; payload carries
    /// the producing GPU.
    Dep(u32, u8),
    /// Dependencies visible; run gather + solve + update.
    Wake(u32),
    /// Updates durable; warp retires and frees its slot.
    Retire(u32),
}

// component flag bits
const HAS_SLOT: u8 = 1;
const BLOCKED: u8 = 2;
const SATISFIED: u8 = 4;
const DONE: u8 = 8;
const WATCHING: u8 = 16;
const POLLING: u8 = 32;

/// Mutable per-solve state — everything here is reset for each RHS,
/// while [`ExecAnalysis`] is shared read-only across solves.
struct ExecState<'m> {
    plan: &'m ExecutionPlan,
    cfg: &'m ExecConfig,
    remaining: Vec<u32>,
    left_sum: Vec<f64>,
    x: Vec<f64>,
    b: &'m [f64],
    flags: Vec<u8>,
    /// While BLOCKED: block start. After SATISFIED: satisfaction time.
    aux: Vec<SimTime>,
    last_src: Vec<u8>,
    /// Components in wake order (the recorded replay schedule).
    solve_order: Vec<u32>,
    // Unified-memory array mappings (None for other backends)
    indeg_um: Option<UmRange>,
    leftsum_um: Option<UmRange>,
    done_count: usize,
    makespan: SimTime,
}

impl ExecState<'_> {
    fn indeg_page(&self, c: u32) -> usize {
        self.indeg_um.as_ref().expect("unified backend").page_of(c as u64 * 4)
    }

    fn leftsum_page(&self, c: u32) -> usize {
        self.leftsum_um.as_ref().expect("unified backend").page_of(c as u64 * 8)
    }
}

/// Build the analysis for `(m, plan, cfg)` and immediately solve — the
/// one-shot entry point. Callers with many right-hand sides should use
/// [`crate::engine::SolverEngine`] instead, which runs
/// [`ExecAnalysis::build`] exactly once.
///
/// `plan` must order launches in substitution order (guaranteed by
/// [`ExecutionPlan::build`]); otherwise the run can deadlock, which is
/// detected and reported rather than hanging.
pub fn run(
    m: &CscMatrix,
    b: &[f64],
    plan: &ExecutionPlan,
    machine: &mut Machine,
    cfg: ExecConfig,
) -> Result<ExecOutcome, ExecError> {
    assert_eq!(b.len(), m.n(), "rhs length mismatch");
    let analysis = ExecAnalysis::build(m, plan, &cfg);
    run_prepared(b, plan, &analysis, machine, &cfg)
}

/// Solve against a prebuilt [`ExecAnalysis`]. Performs zero level-set,
/// plan or adjacency construction — only per-solve state (solution,
/// partial sums, flags) is allocated.
pub fn run_prepared(
    b: &[f64],
    plan: &ExecutionPlan,
    a: &ExecAnalysis,
    machine: &mut Machine,
    cfg: &ExecConfig,
) -> Result<ExecOutcome, ExecError> {
    let n = a.n;
    assert_eq!(b.len(), n, "rhs length mismatch");
    assert_eq!(plan.owner.len(), n, "plan size mismatch");
    assert_eq!(
        a.in_degree.len(),
        n,
        "analysis is columns-only or for a different matrix; run_prepared needs ExecAnalysis::build"
    );
    assert_eq!(
        a.device_bytes.len(),
        plan.gpus,
        "analysis was built for a plan with a different GPU count"
    );
    if n == 0 {
        return Ok(ExecOutcome {
            x: Vec::new(),
            analysis_end: SimTime::ZERO,
            makespan: SimTime::ZERO,
            events: 0,
            solve_order: Vec::new(),
        });
    }
    let gpus = plan.gpus;

    // --- device memory accounting --------------------------------------
    for g in 0..gpus {
        machine.account_alloc(g, a.device_bytes[g]);
    }

    // --- unified-memory allocations -------------------------------------
    let (indeg_um, leftsum_um) = if matches!(cfg.backend, Backend::Unified) {
        (Some(machine.um_alloc(n as u64 * 4)), Some(machine.um_alloc(n as u64 * 8)))
    } else {
        (None, None)
    };

    // --- analysis phase: in-degree setup --------------------------------
    // The in-degree *values* are precomputed on the host (ExecAnalysis);
    // what is charged here is the device-side setup kernel that
    // materializes them before every solve (Algorithm 2 lines 4–9 /
    // Algorithm 3 lines 13–16), so virtual timelines match the paper.
    let spec = machine.config().gpu.clone();
    let mut t_ready = vec![SimTime::ZERO; gpus];
    for g in 0..gpus {
        // one setup kernel: atomics over the local nonzeros, warp-wide
        let warp_ops = a.nnz_per_gpu[g].div_ceil(32);
        let dur = warp_ops * spec.atomic_ns / spec.exec_lanes as u64 + spec.launch_ns;
        t_ready[g] = SimTime::ZERO.after(dur);
    }
    if let (Some(ri), Some(rl)) = (indeg_um, leftsum_um) {
        // Algorithm 2 memsets both managed arrays (lines 4–5) and
        // computes the *global* in-degree with system-wide atomics
        // (lines 6–9). The sweeps are dense and in address order, so
        // the driver coalesces migrations; each GPU still drags the
        // arrays through its own memory once.
        for g in 0..gpus {
            t_ready[g] = machine.um_bulk_sweep(g, &ri, t_ready[g]);
            t_ready[g] = machine.um_bulk_sweep(g, &rl, t_ready[g]);
        }
    }
    let analysis_end = t_ready.iter().copied().max().unwrap_or(SimTime::ZERO);

    // --- schedule kernel launches ---------------------------------------
    let mut q: EventQueue<Ev> = EventQueue::with_capacity(n * 2 + a.dep_rows.len() + n);
    for (k, kd) in plan.kernels.iter().enumerate() {
        let at = machine.launch_kernel(kd.gpu, t_ready[kd.gpu]);
        q.schedule_at(at, Ev::Kernel(k as u32));
    }

    let mut st = ExecState {
        plan,
        cfg,
        remaining: a.in_degree.clone(),
        left_sum: vec![0.0; n],
        x: vec![0.0; n],
        b,
        flags: vec![0u8; n],
        aux: vec![SimTime::ZERO; n],
        last_src: vec![0u8; n],
        solve_order: Vec::with_capacity(n),
        indeg_um,
        leftsum_um,
        done_count: 0,
        makespan: SimTime::ZERO,
    };
    // components with no dependencies are satisfied from the start
    for i in 0..n {
        if st.remaining[i] == 0 {
            st.flags[i] |= SATISFIED;
        }
    }

    // --- main event loop --------------------------------------------------
    let mut events = 0u64;
    while let Some((now, ev)) = q.pop() {
        events += 1;
        match ev {
            Ev::Kernel(k) => on_kernel(&mut st, machine, &mut q, now, k),
            Ev::Slot(c) => on_slot(&mut st, a, machine, &mut q, now, c),
            Ev::Dep(c, src) => on_dep(&mut st, a, machine, &mut q, now, c, src),
            Ev::Wake(c) => on_wake(&mut st, a, machine, &mut q, now, c),
            Ev::Retire(c) => on_retire(&mut st, machine, &mut q, now, c),
        }
    }

    if st.done_count != n {
        return Err(ExecError::Deadlock { unsolved: n - st.done_count });
    }
    Ok(ExecOutcome {
        x: st.x,
        analysis_end,
        makespan: st.makespan,
        events,
        solve_order: st.solve_order,
    })
}

fn on_kernel(
    st: &mut ExecState,
    machine: &mut Machine,
    q: &mut EventQueue<Ev>,
    now: SimTime,
    k: u32,
) {
    let plan = st.plan;
    let kd = &plan.kernels[k as usize];
    let gpu = kd.gpu;
    for &c in &kd.comps {
        if machine.try_warp_slot(gpu) {
            q.schedule_at(now, Ev::Slot(c));
        } else {
            machine.enqueue_warp(gpu, c as u64);
        }
    }
}

fn on_slot(
    st: &mut ExecState,
    a: &ExecAnalysis,
    machine: &mut Machine,
    q: &mut EventQueue<Ev>,
    now: SimTime,
    c: u32,
) {
    let i = c as usize;
    st.flags[i] |= HAS_SLOT;
    if st.flags[i] & SATISFIED != 0 {
        schedule_wake(st, a, machine, q, now, c);
    } else {
        st.flags[i] |= BLOCKED;
        st.aux[i] = now;
        // a warp spinning on remote state loads the fabric (GUP
        // detection is owner-local, so it does not poll the wire)
        if a.remote_mask[i] != 0
            && !matches!(st.cfg.backend, Backend::SingleGpu | Backend::ShmemGup)
        {
            machine.polling_started();
            st.flags[i] |= POLLING;
        }
        if matches!(st.cfg.backend, Backend::Unified) {
            machine.um_watch(st.plan.owner[i], st.indeg_page(c));
            st.flags[i] |= WATCHING;
        }
    }
}

fn on_dep(
    st: &mut ExecState,
    a: &ExecAnalysis,
    machine: &mut Machine,
    q: &mut EventQueue<Ev>,
    now: SimTime,
    c: u32,
    src: u8,
) {
    let i = c as usize;
    debug_assert!(st.remaining[i] > 0, "dep underflow at {c}");
    st.remaining[i] -= 1;
    if st.remaining[i] > 0 {
        return;
    }
    st.last_src[i] = src;
    if st.flags[i] & BLOCKED != 0 {
        // account the poll traffic spent while blocked
        match st.cfg.backend {
            Backend::Shmem { poll_caching } => {
                let waited = now - st.aux[i];
                let period = machine.remote_poll_period_ns().max(1);
                let rounds = waited / period;
                let peers = a.remote_mask[i].count_ones() as u64;
                if peers > 0 && rounds > 0 {
                    let polled = if poll_caching {
                        // satisfied peers drop out of the loop roughly
                        // linearly over the wait
                        rounds * peers.div_ceil(2)
                    } else {
                        rounds * peers
                    };
                    machine.record_polling(rounds, peers, polled);
                }
            }
            Backend::Unified => {
                // spin polls of s.in_degree feed the UVM access
                // counters; sustained waiting drags the page to the
                // poller (then the loop runs locally)
                let waited = now - st.aux[i];
                let period = machine.um_poll_period_ns().max(1);
                let rounds = (waited / period).min(u32::MAX as u64) as u32;
                let page = st.indeg_page(c);
                let gpu = st.plan.owner[i];
                if let Some(done) = machine.um_poll_pressure(gpu, page, rounds, now) {
                    st.aux[i] = done.max(now);
                }
            }
            Backend::SingleGpu | Backend::ShmemGup => {}
        }
        if st.flags[i] & POLLING != 0 {
            machine.polling_stopped();
            st.flags[i] &= !POLLING;
        }
        st.flags[i] &= !BLOCKED;
        st.flags[i] |= SATISFIED;
        st.aux[i] = st.aux[i].max(now);
        let base = st.aux[i];
        schedule_wake(st, a, machine, q, base, c);
    } else {
        st.flags[i] |= SATISFIED;
        st.aux[i] = now;
    }
}

/// Compute when the waiting warp *observes* satisfaction and schedule
/// its wake. `base` is when the last dependency became durable (or when
/// the slot was granted, if later).
fn schedule_wake(
    st: &mut ExecState,
    a: &ExecAnalysis,
    machine: &mut Machine,
    q: &mut EventQueue<Ev>,
    base: SimTime,
    c: u32,
) {
    let i = c as usize;
    let gpu = st.plan.owner[i];
    let spec = machine.config().gpu.clone();
    let wake_at = match st.cfg.backend {
        Backend::SingleGpu | Backend::ShmemGup => {
            base.after(spec.poll_ns / 2 + machine.jitter(spec.poll_ns / 2 + 1))
        }
        Backend::Shmem { .. } => {
            let src = st.last_src[i] as GpuId;
            if src == gpu || st.remaining[i] == 0 && a.remote_mask[i] == 0 {
                base.after(spec.poll_ns / 2 + machine.jitter(spec.poll_ns / 2 + 1))
            } else {
                // next poll round issues a get that sees the zero
                let period = machine.remote_poll_period_ns();
                let probe = base.after(machine.jitter(period + 1));
                machine.shmem_get(gpu, src, 4, probe)
            }
        }
        Backend::Unified => {
            let page = st.indeg_page(c);
            machine.um_visible_at(gpu, page, base)
        }
    };
    q.schedule_at(wake_at.max(base), Ev::Wake(c));
}

fn on_wake(
    st: &mut ExecState,
    a: &ExecAnalysis,
    machine: &mut Machine,
    q: &mut EventQueue<Ev>,
    now: SimTime,
    c: u32,
) {
    let i = c as usize;
    let gpu = st.plan.owner[i];
    let spec = machine.config().gpu.clone();
    debug_assert_eq!(st.remaining[i], 0, "woke before satisfaction");

    if st.flags[i] & WATCHING != 0 {
        machine.um_unwatch(gpu, st.indeg_page(c));
        st.flags[i] &= !WATCHING;
    }

    // --- gather phase ---------------------------------------------------
    let t_gather = match st.cfg.backend {
        Backend::SingleGpu | Backend::ShmemGup => now,
        Backend::Shmem { .. } => {
            let peers = a.peers_of(c);
            if peers.is_empty() {
                now
            } else {
                machine.shmem_gather_reduce(gpu, peers, 8, now)
            }
        }
        Backend::Unified => {
            // read the system-wide left_sum entry (Alg. 2 line 19)
            let page = st.leftsum_page(c);
            machine.um_read(gpu, page, now)
        }
    };

    // --- solve phase ------------------------------------------------------
    let col_nnz = a.col_nnz[i] as u64;
    let mut t = t_gather;
    let spill = machine.spill_ratio(gpu);
    if spill > 0.0 {
        // out-of-core: the spilled fraction of this column streams from
        // host over PCIe before the warp can proceed
        let col_bytes = col_nnz * 12;
        let spilled = (col_bytes as f64 * spill) as u64;
        if spilled > 0 {
            t = machine.host_transfer(gpu, spilled, t);
        }
    }
    let solve_dur = spec.solve_ns + col_nnz.div_ceil(32) * spec.per_nnz_ns;
    let t_solve = machine.exec(gpu, t, solve_dur);

    let xi = (st.b[i] - st.left_sum[i]) / a.diag[i];
    st.x[i] = xi;
    st.solve_order.push(c);

    // --- update phase -------------------------------------------------------
    let (rows, vals) = a.updates_of(c);
    let k_total = rows.len() as u64;
    let t_upd = if k_total > 0 {
        machine.exec(gpu, t_solve, k_total.div_ceil(32) * spec.atomic_ns)
    } else {
        t_solve
    };

    let mut retire_at = t_upd;
    let mut gup_cursor = t_upd; // naive GUP round trips serialize per warp
    for (r, v) in rows.iter().zip(vals) {
        let r = *r;
        let contrib = *v * xi;
        st.left_sum[r as usize] += contrib;
        let target_gpu = st.plan.owner[r as usize];
        let durable_at = if target_gpu == gpu {
            t_upd
        } else {
            match st.cfg.backend {
                // zero-copy: remote publishes are atomics on the
                // producer's OWN heap copy — local cost, no wire traffic
                Backend::Shmem { .. } | Backend::SingleGpu => t_upd,
                // naive Get-Update-Put: two serialized wire round trips
                // (left_sum, then in_degree) with a fence after each —
                // the restriction cascade §IV-A describes
                Backend::ShmemGup => {
                    let h = target_gpu;
                    let t_get = machine.shmem_get(gpu, h, 8, gup_cursor);
                    let t_put = machine.shmem_put(gpu, h, 8, t_get);
                    let t_f1 = machine.shmem_fence(t_put);
                    let t_put2 = machine.shmem_put(gpu, h, 4, t_f1);
                    let t_f2 = machine.shmem_fence(t_put2);
                    gup_cursor = t_f2;
                    t_f2
                }
                Backend::Unified => {
                    // two system-wide atomics (s.left_sum, then
                    // s.in_degree), issued by parallel threads of the
                    // warp; the warp only pays issue cost, durability
                    // rides the fabric / async migration machinery.
                    // The decrement must not be observed before the
                    // partial sum it guards, hence the max.
                    let p1 = st.leftsum_page(r);
                    let p2 = st.indeg_page(r);
                    let (f1, d1) = machine.um_write(gpu, p1, t_upd);
                    // both atomics are in flight concurrently (distinct
                    // pages); issue order is preserved, wire latencies
                    // overlap
                    let (f2, d2) = machine.um_write(gpu, p2, t_upd.max(f1));
                    retire_at = retire_at.max(f1).max(f2);
                    d1.max(d2)
                }
            }
        };
        if target_gpu == gpu || matches!(st.cfg.backend, Backend::ShmemGup) {
            retire_at = retire_at.max(durable_at);
        }
        q.schedule_at(durable_at, Ev::Dep(r, gpu as u8));
    }
    if matches!(st.cfg.backend, Backend::ShmemGup) && gup_cursor > t_upd {
        retire_at = retire_at.max(machine.shmem_quiet(gup_cursor));
    }

    q.schedule_at(retire_at, Ev::Retire(c));
}

fn on_retire(
    st: &mut ExecState,
    machine: &mut Machine,
    q: &mut EventQueue<Ev>,
    now: SimTime,
    c: u32,
) {
    let i = c as usize;
    let gpu = st.plan.owner[i];
    st.flags[i] |= DONE;
    st.done_count += 1;
    st.makespan = st.makespan.max(now);
    if let Some(next) = machine.release_warp(gpu) {
        q.schedule_at(now, Ev::Slot(next as u32));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Partition;
    use crate::reference;
    use crate::schedule::ScheduleTuning;
    use crate::verify;
    use mgpu_sim::MachineConfig;
    use sparsemat::gen;

    fn run_case(
        m: &CscMatrix,
        gpus: usize,
        backend: Backend,
        partition: Partition,
    ) -> (ExecOutcome, Vec<f64>) {
        let (_, b) = verify::rhs_for(m, 42);
        let plan = ExecutionPlan::build(m.n(), gpus, partition, Triangle::Lower);
        let mut machine = Machine::new(MachineConfig::dgx1(gpus.max(1)));
        let cfg = ExecConfig { backend, triangle: Triangle::Lower, gather_all_pes: true };
        let out = run(m, &b, &plan, &mut machine, cfg).expect("no deadlock");
        let reference = reference::solve_lower(m, &b).unwrap();
        (out, reference)
    }

    #[test]
    fn single_gpu_matches_reference() {
        let m = gen::banded_lower(800, 8, 4.0, 3);
        let (out, r) = run_case(&m, 1, Backend::SingleGpu, Partition::Blocked);
        assert!(verify::rel_inf_diff(&out.x, &r) < verify::DEFAULT_TOL);
        assert!(out.makespan > SimTime::ZERO);
    }

    #[test]
    fn shmem_multi_gpu_matches_reference() {
        let m = gen::level_structured(&gen::LevelSpec::new(1200, 30, 5000, 7));
        for gpus in [2usize, 3, 4] {
            let (out, r) = run_case(
                &m,
                gpus,
                Backend::Shmem { poll_caching: true },
                Partition::Tasks { per_gpu: 8 },
            );
            assert!(verify::rel_inf_diff(&out.x, &r) < verify::DEFAULT_TOL, "gpus={gpus}");
        }
    }

    #[test]
    fn unified_multi_gpu_matches_reference() {
        let m = gen::level_structured(&gen::LevelSpec::new(600, 15, 2400, 9));
        let (out, r) = run_case(&m, 4, Backend::Unified, Partition::Blocked);
        assert!(verify::rel_inf_diff(&out.x, &r) < verify::DEFAULT_TOL);
    }

    #[test]
    fn prepared_run_reproduces_one_shot_run() {
        let m = gen::level_structured(&gen::LevelSpec::new(900, 22, 3600, 13));
        let (_, b) = verify::rhs_for(&m, 42);
        let plan = ExecutionPlan::build(m.n(), 4, Partition::Tasks { per_gpu: 8 }, Triangle::Lower);
        let cfg =
            ExecConfig { backend: Backend::Shmem { poll_caching: true }, ..ExecConfig::default() };
        let mut m1 = Machine::new(MachineConfig::dgx1(4));
        let one_shot = run(&m, &b, &plan, &mut m1, cfg.clone()).unwrap();
        let analysis = ExecAnalysis::build(&m, &plan, &cfg);
        let mut m2 = Machine::new(MachineConfig::dgx1(4));
        let prepared = run_prepared(&b, &plan, &analysis, &mut m2, &cfg).unwrap();
        assert_eq!(one_shot.x, prepared.x, "bit-identical numerics");
        assert_eq!(one_shot.makespan, prepared.makespan);
        assert_eq!(one_shot.events, prepared.events);
    }

    #[test]
    fn replay_of_recorded_order_is_bit_identical() {
        let m = gen::level_structured(&gen::LevelSpec::new(1100, 28, 4400, 17));
        let plan = ExecutionPlan::build(m.n(), 4, Partition::Tasks { per_gpu: 8 }, Triangle::Lower);
        let cfg =
            ExecConfig { backend: Backend::Shmem { poll_caching: true }, ..ExecConfig::default() };
        let analysis = ExecAnalysis::build(&m, &plan, &cfg);
        // calibrate with one RHS, replay a different one: the schedule
        // is value-independent, so the recorded order serves any b
        let (_, b0) = verify::rhs_for(&m, 1);
        let mut machine = Machine::new(MachineConfig::dgx1(4));
        let calibration = run_prepared(&b0, &plan, &analysis, &mut machine, &cfg).unwrap();
        assert_eq!(calibration.solve_order.len(), m.n());

        let (_, b1) = verify::rhs_for(&m, 2);
        let mut machine = Machine::new(MachineConfig::dgx1(4));
        let full = run_prepared(&b1, &plan, &analysis, &mut machine, &cfg).unwrap();
        let replayed = analysis.replay(&calibration.solve_order, &b1);
        assert_eq!(full.x, replayed, "replay must be bit-identical to simulation");
        assert_eq!(full.solve_order, calibration.solve_order, "schedule is value-independent");
    }

    #[test]
    fn analysis_flat_layout_matches_matrix() {
        let m = gen::level_structured(&gen::LevelSpec::new(500, 12, 2000, 5));
        let plan = ExecutionPlan::build(m.n(), 2, Partition::Blocked, Triangle::Lower);
        let a = ExecAnalysis::build(&m, &plan, &ExecConfig::default());
        for j in 0..m.n() {
            let (rows, vals) = a.updates_of(j as u32);
            let expect: Vec<(u32, f64)> = m.col(j).filter(|&(r, _)| (r as usize) > j).collect();
            assert_eq!(rows.len(), expect.len());
            for (k, &(r, v)) in expect.iter().enumerate() {
                assert_eq!(rows[k], r);
                assert_eq!(vals[k], v);
            }
            assert_eq!(a.diag[j], m.get(j, j).unwrap());
        }
    }

    #[test]
    fn unified_generates_page_faults_shmem_does_not() {
        let m = gen::level_structured(&gen::LevelSpec::new(800, 20, 3200, 5));
        let (_, b) = verify::rhs_for(&m, 42);
        let plan = ExecutionPlan::build(m.n(), 4, Partition::Blocked, Triangle::Lower);

        let mut um_machine = Machine::new(MachineConfig::dgx1(4));
        run(
            &m,
            &b,
            &plan,
            &mut um_machine,
            ExecConfig { backend: Backend::Unified, ..ExecConfig::default() },
        )
        .unwrap();
        let um_stats = um_machine.stats();
        assert!(um_stats.total_um_faults() > 0, "UM must fault");
        assert!(
            um_stats.um_remote_ops + um_stats.um_migrations > 100,
            "UM must push traffic through the fabric"
        );

        let mut sh_machine = Machine::new(MachineConfig::dgx1(4));
        run(
            &m,
            &b,
            &plan,
            &mut sh_machine,
            ExecConfig { backend: Backend::Shmem { poll_caching: true }, ..ExecConfig::default() },
        )
        .unwrap();
        let s = sh_machine.stats();
        assert_eq!(s.total_um_faults(), 0, "zero-copy must not touch UM");
        assert!(s.shmem.gets > 0, "zero-copy communicates via gets");
    }

    #[test]
    fn zero_copy_beats_unified_on_makespan() {
        // The headline claim (Fig. 7): same matrix, same machine,
        // zero-copy finishes faster than the UM design. Needs enough
        // work per GPU to amortize the task kernels (crossover ~n=6k).
        let m = gen::level_structured(&gen::LevelSpec::new(8000, 25, 32000, 11));
        let (_, b) = verify::rhs_for(&m, 1);
        let mut um = Machine::new(MachineConfig::dgx1(4));
        let plan_b = ExecutionPlan::build(m.n(), 4, Partition::Blocked, Triangle::Lower);
        let um_out = run(
            &m,
            &b,
            &plan_b,
            &mut um,
            ExecConfig { backend: Backend::Unified, ..ExecConfig::default() },
        )
        .unwrap();

        let mut zc = Machine::new(MachineConfig::dgx1(4));
        let plan_t =
            ExecutionPlan::build(m.n(), 4, Partition::Tasks { per_gpu: 8 }, Triangle::Lower);
        let zc_out = run(
            &m,
            &b,
            &plan_t,
            &mut zc,
            ExecConfig { backend: Backend::Shmem { poll_caching: true }, ..ExecConfig::default() },
        )
        .unwrap();
        assert!(
            zc_out.makespan < um_out.makespan,
            "zerocopy {} vs unified {}",
            zc_out.makespan,
            um_out.makespan
        );
    }

    #[test]
    fn upper_triangle_solves() {
        let l = gen::banded_lower(500, 6, 3.0, 13);
        let u = l.transpose();
        let (_, b) = verify::rhs_for(&u, 3);
        let plan = ExecutionPlan::build(u.n(), 2, Partition::Tasks { per_gpu: 4 }, Triangle::Upper);
        let mut machine = Machine::new(MachineConfig::dgx1(2));
        let out = run(
            &u,
            &b,
            &plan,
            &mut machine,
            ExecConfig {
                backend: Backend::Shmem { poll_caching: true },
                triangle: Triangle::Upper,
                gather_all_pes: true,
            },
        )
        .unwrap();
        let r = reference::solve_upper(&u, &b).unwrap();
        assert!(verify::rel_inf_diff(&out.x, &r) < verify::DEFAULT_TOL);
    }

    #[test]
    fn chain_is_fully_sequential() {
        // n-level chain: makespan must scale ~linearly with n
        let m1 = gen::chain(100);
        let m2 = gen::chain(200);
        let (o1, _) = run_case(&m1, 1, Backend::SingleGpu, Partition::Blocked);
        let (o2, _) = run_case(&m2, 1, Backend::SingleGpu, Partition::Blocked);
        let ratio = o2.makespan.as_ns() as f64 / o1.makespan.as_ns() as f64;
        assert!((1.6..2.6).contains(&ratio), "chain should scale linearly: {ratio}");
    }

    #[test]
    fn diagonal_matrix_is_embarrassingly_parallel() {
        let m = gen::diagonal(4000, 3);
        let (out, r) = run_case(&m, 1, Backend::SingleGpu, Partition::Blocked);
        assert!(verify::rel_inf_diff(&out.x, &r) < 1e-12);
        // no dependencies: every component solves without Dep events
        assert!(out.events >= 4000 * 2);
    }

    #[test]
    fn deterministic_runs() {
        let m = gen::level_structured(&gen::LevelSpec::new(700, 12, 2800, 21));
        let (a, _) =
            run_case(&m, 4, Backend::Shmem { poll_caching: true }, Partition::Tasks { per_gpu: 8 });
        let (b, _) =
            run_case(&m, 4, Backend::Shmem { poll_caching: true }, Partition::Tasks { per_gpu: 8 });
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.events, b.events);
        assert_eq!(a.x, b.x);
    }

    #[test]
    fn empty_matrix_is_trivial() {
        let m = sparsemat::TripletBuilder::new(0).build().unwrap();
        let plan = ExecutionPlan::build(0, 1, Partition::Blocked, Triangle::Lower);
        let mut machine = Machine::new(MachineConfig::dgx1(1));
        let out = run(&m, &[], &plan, &mut machine, ExecConfig::default()).unwrap();
        assert!(out.x.is_empty());
    }

    #[test]
    fn replay_panel_bit_identical_to_scalar_replay() {
        let m = gen::level_structured(&gen::LevelSpec::new(700, 20, 2800, 9));
        let plan = ExecutionPlan::build(m.n(), 4, Partition::Tasks { per_gpu: 8 }, Triangle::Lower);
        let cfg =
            ExecConfig { backend: Backend::Shmem { poll_caching: true }, ..ExecConfig::default() };
        let analysis = ExecAnalysis::build(&m, &plan, &cfg);
        let (_, b0) = verify::rhs_for(&m, 1);
        let mut machine = Machine::new(MachineConfig::dgx1(4));
        let order = run_prepared(&b0, &plan, &analysis, &mut machine, &cfg).unwrap().solve_order;
        let mut ws = ReplayWorkspace::new();
        // batch sizes exercising every block width and ragged tails
        for batch in [1usize, 2, 3, 5, 8, 13] {
            let bs: Vec<Vec<f64>> =
                (0..batch as u64).map(|k| verify::rhs_for(&m, 100 + k).1).collect();
            let mut outs: Vec<Vec<f64>> = vec![Vec::new(); batch];
            analysis.replay_panel(&order, &bs, &mut ws, &mut outs);
            for (k, b) in bs.iter().enumerate() {
                let scalar = analysis.replay(&order, b);
                assert_eq!(outs[k], scalar, "batch={batch} rhs={k}: panel must be bit-identical");
            }
        }
    }

    #[test]
    fn replay_into_matches_replay() {
        let m = gen::banded_lower(400, 6, 3.0, 5);
        let analysis = ExecAnalysis::columns_only(&m, Triangle::Lower);
        let order: Vec<u32> = (0..m.n() as u32).collect();
        let (_, b) = verify::rhs_for(&m, 77);
        let heap = analysis.replay(&order, &b);
        let mut ls = vec![1.0; m.n()]; // dirty scratch must not leak in
        let mut x = vec![2.0; m.n()];
        analysis.replay_into(&order, &b, &mut ls, &mut x);
        assert_eq!(heap, x);
    }

    #[test]
    fn sharded_replay_bit_identical_to_serial_replay() {
        let m = gen::level_structured(&gen::LevelSpec::new(1500, 25, 6000, 41));
        let plan = ExecutionPlan::build(m.n(), 4, Partition::Tasks { per_gpu: 8 }, Triangle::Lower);
        let cfg =
            ExecConfig { backend: Backend::Shmem { poll_caching: true }, ..ExecConfig::default() };
        let analysis = ExecAnalysis::build(&m, &plan, &cfg);
        let levels = LevelSets::analyze(&m, Triangle::Lower);
        let pool = WorkerPool::new();
        // thresholds span no fusion (0), mixed (32 vs ~60 mean width)
        // and the default (everything here fuses)
        for threshold in [0usize, 32, ScheduleTuning::default().chain_width_threshold] {
            for owner in [None, Some(&plan.owner[..])] {
                let tuning =
                    ScheduleTuning { chain_width_threshold: threshold, ..Default::default() };
                let schedule = Arc::new(Schedule::build(&levels, owner, tuning));
                let sharded = ShardedReplay::build(&analysis, &levels, &schedule);
                let order = sharded.order_shared();
                let (_, b) = verify::rhs_for(&m, 99);
                let serial = analysis.replay(&order, &b);
                for workers in [1usize, 2, 3, 5, SHARD_COUNT, SHARD_COUNT + 7] {
                    let mut ls = vec![1.0; m.n()]; // dirty scratch must not leak in
                    let mut x = vec![2.0; m.n()];
                    sharded.replay_into(&analysis, &b, &mut ls, &mut x, &pool, workers);
                    assert_eq!(
                        x,
                        serial,
                        "workers={workers} owner={} t={threshold}",
                        owner.is_some()
                    );
                }
            }
        }
    }

    #[test]
    fn sharded_order_is_level_major_and_owner_grouped() {
        let m = gen::level_structured(&gen::LevelSpec::new(600, 12, 2400, 7));
        let plan = ExecutionPlan::build(m.n(), 4, Partition::Blocked, Triangle::Lower);
        let analysis = ExecAnalysis::columns_only(&m, Triangle::Lower);
        let levels = LevelSets::analyze(&m, Triangle::Lower);
        let schedule =
            Arc::new(Schedule::build(&levels, Some(&plan.owner), ScheduleTuning::default()));
        let sharded = ShardedReplay::build(&analysis, &levels, &schedule);
        let order = sharded.order_shared();
        assert_eq!(order.len(), m.n());
        // level-major: levels never decrease along the order
        let mut last = 0u32;
        for &c in order.iter() {
            let l = levels.level_of[c as usize];
            assert!(l >= last, "order must be level-major");
            last = l;
        }
        // owner-grouped within a level: owners never decrease inside one level
        for l in 0..levels.n_levels() {
            let lp = levels.level_ptr();
            let slice = &order[lp[l] as usize..lp[l + 1] as usize];
            for pair in slice.windows(2) {
                assert!(
                    plan.owner[pair[0] as usize] <= plan.owner[pair[1] as usize],
                    "level {l} must group by owner"
                );
            }
        }
    }

    #[test]
    fn sharded_replay_handles_degenerate_shapes() {
        let pool = WorkerPool::new();
        // empty system
        let empty = sparsemat::TripletBuilder::new(0).build().unwrap();
        let a = ExecAnalysis::columns_only(&empty, Triangle::Lower);
        let levels = LevelSets::analyze(&empty, Triangle::Lower);
        let schedule = Arc::new(Schedule::build(&levels, None, ScheduleTuning::default()));
        let sharded = ShardedReplay::build(&a, &levels, &schedule);
        let (mut ls, mut x) = (Vec::new(), Vec::new());
        sharded.replay_into(&a, &[], &mut ls, &mut x, &pool, 4);
        // fully sequential chain: every level has width 1. Default
        // tuning fuses it into one chain (serial degrade); threshold 0
        // forces 50 singleton chains through the barriered path.
        let chain = gen::chain(50);
        let a = ExecAnalysis::columns_only(&chain, Triangle::Lower);
        let levels = LevelSets::analyze(&chain, Triangle::Lower);
        for threshold in [ScheduleTuning::default().chain_width_threshold, 0] {
            let tuning = ScheduleTuning { chain_width_threshold: threshold, ..Default::default() };
            let schedule = Arc::new(Schedule::build(&levels, None, tuning));
            let sharded = ShardedReplay::build(&a, &levels, &schedule);
            let (_, b) = verify::rhs_for(&chain, 5);
            let serial = a.replay(&sharded.order_shared(), &b);
            let mut ls = vec![0.0; 50];
            let mut x = vec![0.0; 50];
            sharded.replay_into(&a, &b, &mut ls, &mut x, &pool, 4);
            assert_eq!(x, serial, "t={threshold}");
        }
    }

    #[test]
    fn poll_caching_reduces_poll_gets() {
        let m = gen::level_structured(&gen::LevelSpec::new(1000, 40, 4000, 31));
        let (_, b) = verify::rhs_for(&m, 42);
        let plan = ExecutionPlan::build(m.n(), 4, Partition::Tasks { per_gpu: 8 }, Triangle::Lower);
        let mut cached = Machine::new(MachineConfig::dgx1(4));
        run(
            &m,
            &b,
            &plan,
            &mut cached,
            ExecConfig { backend: Backend::Shmem { poll_caching: true }, ..ExecConfig::default() },
        )
        .unwrap();
        let mut raw = Machine::new(MachineConfig::dgx1(4));
        run(
            &m,
            &b,
            &plan,
            &mut raw,
            ExecConfig { backend: Backend::Shmem { poll_caching: false }, ..ExecConfig::default() },
        )
        .unwrap();
        let c = cached.stats().shmem;
        let r = raw.stats().shmem;
        assert!(
            c.poll_gets < r.poll_gets,
            "caching must cut poll traffic: {} vs {}",
            c.poll_gets,
            r.poll_gets
        );
        assert!(c.poll_gets_saved > 0);
    }
}
