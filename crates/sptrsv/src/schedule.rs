//! The Schedule IR: the engine-wide levels → chains → shards
//! decomposition, built once per engine build and shared by every warm
//! tier.
//!
//! Before this module existed, three layers each re-derived scheduling
//! facts from raw [`LevelSets`]: `exec::ShardedReplay` called
//! [`LevelSets::owner_segments`] itself, the engine's auto-worker
//! heuristic hard-coded `SHARD_MIN_*` consts against
//! `max_level_width`/`n_levels`, and the replay loop implicitly
//! encoded "barrier twice per level". [`Schedule`] makes the
//! decomposition explicit and singular:
//!
//! * **levels** — the level-major canonical order and its
//!   owner-computes segmentation ([`sparsemat::levels::LevelSegments`]);
//! * **chains** — maximal runs of narrow levels fused into
//!   barrier-free chains ([`ChainPartition`], threshold-driven);
//! * **shards** — each wide level cut into [`crate::exec::SHARD_COUNT`]
//!   owner segments striped across workers.
//!
//! Everything in here depends only on the factor's *structure* and the
//! [`ScheduleTuning`] — never on matrix values — so the schedule lives
//! in the engine's immutable `StructurePlan` and survives
//! `refresh_values` untouched by construction.
//!
//! [`ScheduleStats`] summarizes the decomposition (levels, chains,
//! fused fraction, barriers per solve) for observability
//! ([`crate::report::SolveReport`], the bench JSON) and feeds the
//! auto-worker heuristic ([`Schedule::auto_workers`]).

use sparsemat::levels::{ChainPartition, LevelSegments};
use sparsemat::LevelSets;
use std::fmt;
use std::sync::Arc;

/// Default for [`ScheduleTuning::shard_min_rows_per_worker`]: a worker
/// must own at least this many rows of the widest level before the
/// auto heuristic adds it — below that, barrier and cache-handoff
/// costs beat the arithmetic it would take over.
pub const SHARD_MIN_ROWS_PER_WORKER: usize = 512;

/// Default for [`ScheduleTuning::shard_min_avg_level_width`]: minimum
/// rows per synchronization step before the auto heuristic parallelizes
/// at all — factors below it are barrier-dominated and run serial.
pub const SHARD_MIN_AVG_LEVEL_WIDTH: usize = 256;

/// Default for [`ScheduleTuning::chain_width_threshold`]: levels at or
/// below this width fuse into chains. A level this narrow cannot keep
/// even two workers busy past the barrier cost of splitting it, so
/// running the whole run of them on one worker strictly wins. `0`
/// disables fusion (every level stays a barrier-delimited singleton).
pub const CHAIN_WIDTH_THRESHOLD: usize = 128;

/// The knobs the Schedule IR is built and interpreted with. Lives on
/// [`crate::SolveOptions`] as individual documented fields; the
/// defaults reproduce the engine's historical hard-coded behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleTuning {
    /// See [`SHARD_MIN_ROWS_PER_WORKER`].
    pub shard_min_rows_per_worker: usize,
    /// See [`SHARD_MIN_AVG_LEVEL_WIDTH`].
    pub shard_min_avg_level_width: usize,
    /// See [`CHAIN_WIDTH_THRESHOLD`].
    pub chain_width_threshold: usize,
}

impl Default for ScheduleTuning {
    fn default() -> Self {
        ScheduleTuning {
            shard_min_rows_per_worker: SHARD_MIN_ROWS_PER_WORKER,
            shard_min_avg_level_width: SHARD_MIN_AVG_LEVEL_WIDTH,
            chain_width_threshold: CHAIN_WIDTH_THRESHOLD,
        }
    }
}

/// Structure-only summary of a [`Schedule`] — what observability
/// surfaces record and the auto-worker heuristic consumes. All fields
/// are fixed at engine build; none depend on matrix values or the
/// worker count of any particular solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleStats {
    /// Matrix dimension.
    pub rows: usize,
    /// Level-set count.
    pub levels: usize,
    /// Chain count (barrier-delimited execution steps).
    pub chains: usize,
    /// Shards each wide level is cut into.
    pub shards: usize,
    /// Levels living inside fused chains.
    pub fused_levels: usize,
    /// `fused_levels / levels` (0 for an empty matrix).
    pub fused_fraction: f64,
    /// Width of the widest level.
    pub max_level_width: usize,
    /// Barriers a parallel solve over this schedule pays — see
    /// [`ChainPartition::barriers_per_solve`]. The unfused schedule
    /// pays `2·levels − 1`.
    pub barriers_per_solve: usize,
}

impl ScheduleStats {
    /// Degenerate stats for a variant that replays the whole factor as
    /// one fused sequential chain (the plain serial solver, which
    /// never analyzes level sets): one level, one chain, one shard,
    /// everything fused, zero barriers. An empty factor is all zeros,
    /// matching [`Schedule::build`] on an empty matrix. Populating
    /// this everywhere means `SolveReport.schedule` consumers never
    /// special-case a missing schedule.
    pub fn serial(rows: usize) -> ScheduleStats {
        let unit = usize::from(rows > 0);
        ScheduleStats {
            rows,
            levels: unit,
            chains: unit,
            shards: unit,
            fused_levels: unit,
            fused_fraction: unit as f64,
            max_level_width: rows,
            barriers_per_solve: 0,
        }
    }
}

impl fmt::Display for ScheduleStats {
    /// One-liner for example/harness output, e.g.
    /// `schedule: 15000 rows, 2500 levels -> 5 chains (2496 fused,
    /// 99.8%), 16 shards, max width 6, 9 barriers/solve`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "schedule: {} rows, {} levels -> {} chains ({} fused, {:.1}%), {} shards, max width {}, {} barriers/solve",
            self.rows,
            self.levels,
            self.chains,
            self.fused_levels,
            self.fused_fraction * 100.0,
            self.shards,
            self.max_level_width,
            self.barriers_per_solve
        )
    }
}

/// The Schedule IR: canonical order, owner segmentation and chain
/// partition of one engine's factor, plus precomputed stats. Built
/// once by [`Schedule::build`]; immutable and value-independent
/// thereafter.
#[derive(Debug, Clone)]
pub struct Schedule {
    n_levels: usize,
    segs: LevelSegments,
    chains: ChainPartition,
    stats: ScheduleStats,
    tuning: ScheduleTuning,
}

impl Schedule {
    /// Build the schedule for analyzed `levels` under `tuning`.
    ///
    /// `owner` is the execution plan's component→GPU map (grouping
    /// each level's components owner-locally before sharding), or
    /// `None` for plan-less variants — the canonical order is then the
    /// level sets' own flat array, shared not copied. Cost:
    /// O(n log n); runs once per engine build.
    pub fn build(levels: &LevelSets, owner: Option<&[usize]>, tuning: ScheduleTuning) -> Schedule {
        let segs = levels.owner_segments(owner, crate::exec::SHARD_COUNT);
        let chains = levels.chains(tuning.chain_width_threshold);
        let n_levels = levels.n_levels();
        let fused_levels = chains.fused_levels();
        let stats = ScheduleStats {
            rows: segs.order.len(),
            levels: n_levels,
            chains: chains.n_chains(),
            shards: segs.shards,
            fused_levels,
            fused_fraction: if n_levels == 0 { 0.0 } else { fused_levels as f64 / n_levels as f64 },
            max_level_width: levels.max_level_width(),
            barriers_per_solve: chains.barriers_per_solve(),
        };
        Schedule { n_levels, segs, chains, stats, tuning }
    }

    /// Number of levels.
    #[inline]
    pub fn n_levels(&self) -> usize {
        self.n_levels
    }

    /// Number of chains (barrier-delimited execution steps).
    #[inline]
    pub fn n_chains(&self) -> usize {
        self.chains.n_chains()
    }

    /// Shards each wide level is cut into.
    #[inline]
    pub fn shards(&self) -> usize {
        self.segs.shards
    }

    /// The canonical level-major component order.
    #[inline]
    pub fn order(&self) -> &[u32] {
        &self.segs.order
    }

    /// The canonical order behind a shared handle (a refcount bump,
    /// not a copy) — the engine's warm serial replay schedule.
    #[inline]
    pub fn order_shared(&self) -> Arc<[u32]> {
        Arc::clone(&self.segs.order)
    }

    /// Solve-segment offsets into [`Schedule::order`]
    /// (`n_levels · shards + 1` entries, CSR-style: segment `(l, s)`
    /// is `order[seg_ptr[l·shards + s] .. seg_ptr[l·shards + s + 1]]`).
    #[inline]
    pub fn seg_ptr(&self) -> &[u32] {
        &self.segs.seg_ptr
    }

    /// Owning shard per component (within its level).
    #[inline]
    pub fn shard_of(&self) -> &[u32] {
        &self.segs.shard_of
    }

    /// The chain partition over the levels.
    #[inline]
    pub fn chains(&self) -> &ChainPartition {
        &self.chains
    }

    /// The precomputed structure stats.
    #[inline]
    pub fn stats(&self) -> ScheduleStats {
        self.stats
    }

    /// The tuning the schedule was built with.
    #[inline]
    pub fn tuning(&self) -> ScheduleTuning {
        self.tuning
    }

    /// The worker count the engine's auto tier should use on a machine
    /// with `hardware_threads` threads — derived entirely from the
    /// schedule's stats and tuning:
    ///
    /// 1. fewer than 2 threads, or an empty factor → serial;
    /// 2. the barriers must be amortized: the schedule's barrier count
    ///    divides the solve into synchronization steps, and each step
    ///    must average at least
    ///    [`ScheduleTuning::shard_min_avg_level_width`] rows. With
    ///    fusion disabled this is exactly the historical
    ///    `rows / levels` gate; fusing chains shrinks the step count,
    ///    so deep factors with a few wide levels can now qualify;
    /// 3. the widest level must give each worker at least
    ///    [`ScheduleTuning::shard_min_rows_per_worker`] rows.
    pub fn auto_workers(&self, hardware_threads: usize) -> usize {
        let hw = hardware_threads.min(self.stats.shards);
        if hw < 2 || self.stats.levels == 0 {
            return 1;
        }
        // barriers come in (solve, update) pairs per step; +1 for the
        // final barrier-free step — with fusion off this is n_levels
        let sync_steps = self.stats.barriers_per_solve / 2 + 1;
        if self.stats.rows / sync_steps < self.tuning.shard_min_avg_level_width {
            return 1;
        }
        let workers = (self.stats.max_level_width / self.tuning.shard_min_rows_per_worker).min(hw);
        if workers < 2 {
            1
        } else {
            workers
        }
    }

    /// Host bytes held by the schedule (including the shared canonical
    /// order — counted once here, by the owner of record) — what an
    /// engine cache charges against its byte budget.
    pub fn host_bytes(&self) -> u64 {
        fn cap<T>(v: &Vec<T>) -> u64 {
            (v.capacity() * std::mem::size_of::<T>()) as u64
        }
        (self.segs.order.len() * std::mem::size_of::<u32>()) as u64
            + cap(&self.segs.seg_ptr)
            + cap(&self.segs.shard_of)
            + std::mem::size_of_val(self.chains.chain_ptr()) as u64
            + self.chains.n_chains() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::{gen, Triangle};

    fn levels_of(m: &sparsemat::CscMatrix) -> LevelSets {
        LevelSets::analyze(m, Triangle::Lower)
    }

    #[test]
    fn default_tuning_matches_historical_consts() {
        let t = ScheduleTuning::default();
        assert_eq!(t.shard_min_rows_per_worker, 512);
        assert_eq!(t.shard_min_avg_level_width, 256);
        assert_eq!(t.chain_width_threshold, 128);
    }

    #[test]
    fn deep_narrow_factor_fuses_nearly_everything() {
        let m = gen::deep_narrow(500, 5, 3.0, 11);
        let ls = levels_of(&m);
        let fused = Schedule::build(&ls, None, ScheduleTuning::default());
        let s = fused.stats();
        assert_eq!(s.levels, 500);
        assert!(s.fused_fraction > 0.9, "fused fraction {}", s.fused_fraction);
        assert!(s.chains < 50, "chains {}", s.chains);
        // vs the unfused schedule: barriers collapse by far more than 5x
        let unfused = Schedule::build(
            &ls,
            None,
            ScheduleTuning { chain_width_threshold: 0, ..Default::default() },
        );
        assert_eq!(unfused.stats().barriers_per_solve, 2 * 500 - 1);
        assert!(unfused.stats().barriers_per_solve >= 5 * s.barriers_per_solve.max(1));
    }

    #[test]
    fn zero_threshold_reproduces_per_level_schedule() {
        let m = gen::level_structured(&gen::LevelSpec::new(1200, 24, 4800, 9));
        let ls = levels_of(&m);
        let sch = Schedule::build(
            &ls,
            None,
            ScheduleTuning { chain_width_threshold: 0, ..Default::default() },
        );
        let s = sch.stats();
        assert_eq!(s.chains, s.levels);
        assert_eq!(s.fused_levels, 0);
        assert_eq!(s.barriers_per_solve, 2 * s.levels - 1);
        assert_eq!(sch.order(), ls.level_comps());
    }

    #[test]
    fn auto_workers_matches_historical_heuristic_when_unfused() {
        let t = ScheduleTuning { chain_width_threshold: 0, ..Default::default() };
        // wide factor: qualifies for parallelism on a 16-thread machine
        let wide = levels_of(&gen::level_structured(&gen::LevelSpec::new(48_000, 24, 192_000, 7)));
        let sch = Schedule::build(&wide, None, t);
        let expect_wide = (wide.max_level_width() / 512).min(16);
        assert_eq!(sch.auto_workers(16), expect_wide.max(1));
        assert!(sch.auto_workers(16) >= 2);
        // single thread → serial, regardless of factor shape
        assert_eq!(sch.auto_workers(1), 1);
        // narrow factor: avg level width far below the gate → serial
        let narrow = levels_of(&gen::deep_narrow(500, 5, 3.0, 3));
        assert_eq!(Schedule::build(&narrow, None, t).auto_workers(16), 1);
    }

    #[test]
    fn fusion_can_unlock_parallelism_for_mixed_factors() {
        // mostly narrow levels with a few wide ones: unfused, the many
        // narrow sync steps drag rows-per-step below the gate; fused,
        // the wide levels dominate the step count
        let mut b = sparsemat::TripletBuilder::new(12_000);
        for i in 0..12_000usize {
            b.push(i, i, 4.0);
        }
        // 10 wide blocks of 1,150 independent rows, separated by chains
        // of 50 sequential rows
        let block = 1_200usize;
        for blk in 0..10usize {
            let base = blk * block;
            for i in 1..50 {
                b.push(base + i, base + i - 1, -1.0); // chain segment
            }
            for i in 50..block {
                b.push(base + i, base + 49, -0.5); // wide fan-out level
            }
        }
        let m = b.build().unwrap();
        let ls = levels_of(&m);
        let fused = Schedule::build(&ls, None, ScheduleTuning::default());
        let unfused = Schedule::build(
            &ls,
            None,
            ScheduleTuning { chain_width_threshold: 0, ..Default::default() },
        );
        assert_eq!(unfused.auto_workers(16), 1, "unfused schedule is barrier-bound");
        assert!(fused.auto_workers(16) >= 2, "fusion must unlock the wide levels");
        assert!(fused.stats().barriers_per_solve < unfused.stats().barriers_per_solve / 5);
    }

    #[test]
    fn serial_stats_are_one_fused_chain_with_no_barriers() {
        let s = ScheduleStats::serial(1_000);
        assert_eq!((s.rows, s.levels, s.chains, s.shards), (1_000, 1, 1, 1));
        assert_eq!((s.fused_levels, s.barriers_per_solve), (1, 0));
        assert_eq!(s.fused_fraction, 1.0);
        assert_eq!(s.max_level_width, 1_000);
        let empty = ScheduleStats::serial(0);
        assert_eq!((empty.rows, empty.levels, empty.chains, empty.fused_levels), (0, 0, 0, 0));
        assert_eq!(empty.fused_fraction, 0.0);
    }

    #[test]
    fn stats_display_is_a_single_line_mentioning_every_field() {
        let m = gen::deep_narrow(500, 5, 3.0, 11);
        let s = Schedule::build(&levels_of(&m), None, ScheduleTuning::default()).stats();
        let line = s.to_string();
        assert!(!line.contains('\n'));
        assert!(line.starts_with("schedule: "), "{line}");
        for needle in ["rows", "levels", "chains", "fused", "shards", "max width", "barriers/solve"]
        {
            assert!(line.contains(needle), "missing {needle} in {line}");
        }
        let serial = ScheduleStats::serial(64).to_string();
        assert!(serial.contains("64 rows") && serial.contains("0 barriers/solve"), "{serial}");
    }

    #[test]
    fn empty_factor_schedules_trivially() {
        let m = sparsemat::TripletBuilder::new(0).build().unwrap();
        let sch = Schedule::build(&levels_of(&m), None, ScheduleTuning::default());
        let s = sch.stats();
        assert_eq!((s.rows, s.levels, s.chains, s.fused_levels), (0, 0, 0, 0));
        assert_eq!(s.barriers_per_solve, 0);
        assert_eq!(sch.auto_workers(16), 1);
    }
}
