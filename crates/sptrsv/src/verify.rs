//! Verification utilities: residuals, reference comparison, and
//! reproducible right-hand-side generation.

use desim::Pcg32;
use sparsemat::CscMatrix;

/// Relative infinity-norm difference `‖x − y‖∞ / max(‖y‖∞, 1)`.
pub fn rel_inf_diff(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    let mut num: f64 = 0.0;
    let mut den: f64 = 1.0;
    for (a, b) in x.iter().zip(y) {
        num = num.max((a - b).abs());
        den = den.max(b.abs());
    }
    num / den
}

/// Relative residual `‖A x − b‖∞ / max(‖b‖∞, 1)`.
pub fn rel_residual(a: &CscMatrix, x: &[f64], b: &[f64]) -> f64 {
    let ax = a.matvec(x);
    rel_inf_diff(&ax, b)
}

/// A reproducible "true" solution vector with entries in `[-1, 1]`.
pub fn reference_x(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = Pcg32::seed_from_u64(seed ^ 0x9E37_79B9);
    (0..n).map(|_| rng.range_f64(-1.0, 1.0)).collect()
}

/// Build `b = A · x_true` for a known `x_true` — the standard way the
/// SpTRSV literature constructs right-hand sides so solutions can be
/// checked exactly.
pub fn rhs_for(a: &CscMatrix, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let x_true = reference_x(a.n(), seed);
    let b = a.matvec(&x_true);
    (x_true, b)
}

/// Default acceptance threshold for parallel-vs-serial comparison.
/// Parallel execution reassociates the `left_sum` reduction, so exact
/// equality is not expected; well-conditioned corpus factors stay
/// orders of magnitude below this.
pub const DEFAULT_TOL: f64 = 1e-8;

#[cfg(test)]
mod tests {
    use super::*;
    use sparsemat::gen;

    #[test]
    fn diff_of_identical_is_zero() {
        let x = vec![1.0, -2.0, 3.0];
        assert_eq!(rel_inf_diff(&x, &x), 0.0);
    }

    #[test]
    fn diff_detects_single_entry() {
        let x = vec![1.0, 2.0, 3.0];
        let y = vec![1.0, 2.5, 3.0];
        assert!((rel_inf_diff(&x, &y) - 0.5 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn residual_of_true_solution_is_tiny() {
        let l = gen::banded_lower(200, 6, 3.0, 4);
        let (x_true, b) = rhs_for(&l, 42);
        assert!(rel_residual(&l, &x_true, &b) < 1e-12);
    }

    #[test]
    fn rhs_is_deterministic() {
        let l = gen::banded_lower(50, 3, 2.0, 7);
        let (x1, b1) = rhs_for(&l, 1);
        let (x2, b2) = rhs_for(&l, 1);
        assert_eq!(x1, x2);
        assert_eq!(b1, b2);
        let (x3, _) = rhs_for(&l, 2);
        assert_ne!(x1, x3);
    }

    #[test]
    fn reference_x_in_range() {
        for v in reference_x(1000, 5) {
            assert!((-1.0..=1.0).contains(&v));
        }
    }
}
