//! Solve reports: timings, machine statistics and verification data.

use crate::schedule::ScheduleStats;
use crate::telemetry::TelemetryReport;
use desim::SimTime;
use mgpu_sim::MachineStats;
use std::fmt;
use std::sync::Arc;

/// Phase timings of one solve, in virtual time.
#[derive(Debug, Clone, Copy, Default)]
pub struct Timings {
    /// Analysis (preprocessing) phase duration.
    pub analysis: SimTime,
    /// Solver phase duration.
    pub solve: SimTime,
    /// End-to-end: analysis + solve (what the paper's figures report:
    /// "we sum up the execution time of the analysis phase and the
    /// solver phase").
    pub total: SimTime,
}

impl fmt::Display for Timings {
    /// One-liner for example/harness output, e.g.
    /// `timings: analysis 1.20ms + solve 340.00us = 1.54ms`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "timings: analysis {} + solve {} = {}", self.analysis, self.solve, self.total)
    }
}

/// The complete result of a verified solve.
#[derive(Debug, Clone)]
pub struct SolveReport {
    /// Solution vector.
    pub x: Vec<f64>,
    /// Phase timings (virtual time).
    pub timings: Timings,
    /// Machine counters captured at completion.
    pub stats: MachineStats,
    /// Calendar events processed (0 for the serial reference).
    pub events: u64,
    /// GPUs used.
    pub gpus: usize,
    /// Kernel launches in the plan (tasks × GPUs, or per level).
    pub kernels: usize,
    /// Matrix entries whose producer and consumer live on different
    /// GPUs under the chosen layout.
    pub cross_edges: u64,
    /// Whether the working set fit in device memory on every GPU.
    pub fits_in_memory: bool,
    /// Max relative difference against the serial reference
    /// (`None` when verification was disabled).
    pub verified_rel_err: Option<f64>,
    /// The warm-path Schedule IR statistics — levels, chains, shards,
    /// fused-level fraction and barriers per sharded solve. Always
    /// populated: variants that replay without analyzing level sets
    /// (the plain serial solver) report the degenerate
    /// [`ScheduleStats::serial`] single-chain stats, so consumers
    /// never special-case. (Kept `Option` for API stability; `None`
    /// no longer occurs on any in-tree path.)
    pub schedule: Option<ScheduleStats>,
    /// Cross-layer telemetry digest. `TelemetryReport::default()`
    /// (disabled, empty — costs nothing to clone) unless the
    /// [`crate::telemetry`] sink was armed and the producer attached a
    /// [`crate::telemetry::report`] snapshot.
    pub telemetry: TelemetryReport,
    /// Human-readable variant label (e.g. "zerocopy-8t"). Shared so
    /// cloning a warm-solve template bumps a refcount instead of
    /// copying the string.
    pub label: Arc<str>,
}

impl SolveReport {
    /// Speedup of this run relative to `baseline` on total time.
    pub fn speedup_over(&self, baseline: &SolveReport) -> f64 {
        baseline.timings.total.as_ns() as f64 / self.timings.total.as_ns().max(1) as f64
    }

    /// One-line summary for harness output.
    pub fn summary(&self) -> String {
        format!(
            "{:<16} total={:>12} analysis={:>12} solve={:>12} faults={:>8} gets={:>9} events={}",
            self.label,
            self.timings.total.to_string(),
            self.timings.analysis.to_string(),
            self.timings.solve.to_string(),
            self.stats.total_um_faults(),
            self.stats.shmem.total_gets(),
            self.events,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(total_ns: u64) -> SolveReport {
        SolveReport {
            x: vec![],
            timings: Timings {
                analysis: SimTime::ZERO,
                solve: SimTime::from_ns(total_ns),
                total: SimTime::from_ns(total_ns),
            },
            stats: MachineStats::default(),
            events: 0,
            gpus: 1,
            kernels: 1,
            cross_edges: 0,
            fits_in_memory: true,
            verified_rel_err: None,
            schedule: None,
            telemetry: TelemetryReport::default(),
            label: "test".into(),
        }
    }

    #[test]
    fn speedup_is_baseline_over_self() {
        let fast = dummy(100);
        let slow = dummy(400);
        assert!((fast.speedup_over(&slow) - 4.0).abs() < 1e-12);
        assert!((slow.speedup_over(&fast) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn summary_mentions_label() {
        assert!(dummy(5).summary().contains("test"));
    }

    #[test]
    fn timings_display_is_a_single_line() {
        let t = Timings {
            analysis: SimTime::from_ns(1_200_000),
            solve: SimTime::from_ns(340_000),
            total: SimTime::from_ns(1_540_000),
        };
        let line = t.to_string();
        assert!(!line.contains('\n'));
        assert!(line.starts_with("timings: analysis "), "{line}");
        assert!(line.contains(" + solve ") && line.contains(" = "), "{line}");
        assert!(line.contains(&t.total.to_string()), "{line}");
    }
}
