//! # sptrsv — sparse triangular solvers for multi-GPU systems
//!
//! The paper's primary contribution, reproduced in full:
//!
//! * [`mod@reference`] — serial forward/backward substitution
//!   (Algorithm 1), the ground truth every other solver is verified
//!   against.
//! * [`levelset`] — the level-set solver in the style of cuSPARSE
//!   `csrsv2()` (Naumov \[5\]), the paper's single-GPU baseline for the
//!   Fig. 10 scalability study.
//! * [`exec`] — the synchronization-free dataflow executor
//!   (lock-wait / solve-update, Liu et al. \[2\]) with three
//!   communication backends:
//!   - **SingleGpu** — everything device-local;
//!   - **Unified** — Algorithm 2: system-wide atomics on CUDA Unified
//!     Memory, with all the page-thrashing that §III characterizes;
//!   - **Shmem** — Algorithm 3: the zero-copy NVSHMEM design with
//!     producer-local heap updates, read-only inter-GPU gets, warp
//!     gather + shuffle reduction, and the `r.in_degree` poll-caching
//!     optimization.
//! * [`plan`] — data distribution: blocked (the baseline layout whose
//!   unidirectional waiting §V criticizes) and the malleable
//!   round-robin task pool (§V).
//! * [`schedule`] — the warm-path **Schedule IR**: one
//!   [`Schedule`] built at engine-build time owning the
//!   levels → chains → shards decomposition (canonical level-major
//!   order, owner-computes shard segments, and the chain partition
//!   that fuses runs of narrow levels so barriers land only at chain
//!   boundaries). Every warm tier and the engine's auto-heuristics
//!   read this one structure instead of re-deriving it from raw
//!   level sets.
//! * [`solver`] — the high-level API tying a matrix, a machine
//!   configuration and a solver variant into a verified
//!   [`report::SolveReport`].
//! * [`krylov`] — the preconditioned Krylov subsystem: a
//!   [`PreconditionerEngine`] pairing a forward-`L` and backward-`U`
//!   engine over one shared worker pool (zero-allocation warm
//!   [`PreconditionerEngine::apply_into`], fused-panel
//!   [`PreconditionerEngine::apply_batch_into`]), plus [`pcg`] /
//!   [`bicgstab`] drivers and an allocation-free [`SpMv`] kernel —
//!   the paper's §I workload (SpTRSV inside every iteration of a
//!   preconditioned iterative solver) running end to end.
//! * [`engine`] — the build-once/solve-many [`SolverEngine`]: one
//!   analysis phase (level sets, plan, flat dependency adjacency,
//!   calibration simulation), then arbitrarily many warm solves that
//!   replay only the numeric substitution — bit-identical to the
//!   one-shot path, at a fraction of the wall-clock. This is the
//!   §II-B amortization argument surfaced as API, and the shape the
//!   paper's preconditioned-iterative-solver workload needs.
//!
//!   Warm solves come in **four tiers** (see the [`engine`] docs):
//!   single solves ([`SolverEngine::solve`], or the zero-allocation
//!   [`SolverEngine::solve_into`] with a reusable [`SolveWorkspace`]),
//!   the **sharded level-parallel solve**
//!   ([`SolverEngine::solve_sharded_into`], which executes one
//!   right-hand side across the persistent worker pool level by level
//!   under an owner-computes discipline — the paper's parallel
//!   execution model running real numerics; `solve`/`solve_into`
//!   auto-select it on wide factors), the **fused multi-RHS panel**
//!   ([`SolverEngine::solve_panel_into`], which streams the factor
//!   once per [`exec::PANEL_K`]-wide block of right-hand sides instead
//!   of once per RHS — the big win on this memory-bandwidth-bound
//!   kernel), and the **pooled batch**
//!   ([`SolverEngine::solve_batch_into`]) that runs fused panels on a
//!   persistent worker pool. All tiers replay one canonical
//!   level-major operation sequence ([`exec::ShardedReplay`]), so
//!   every tier is bit-identical per RHS — whatever the worker count.
//! * [`serve`] — the async batched serving front-end: a
//!   [`SolverService`] accepts right-hand sides from any number of
//!   client threads (`submit(b) -> Ticket`), coalesces them into
//!   fused [`exec::PANEL_K`]-lane panels under a deadline-aware flush
//!   policy, applies admission control and backpressure (bounded
//!   queue in requests *and* bytes, typed
//!   [`ServeError::QueueFull`] / [`ServeError::ShuttingDown`] instead
//!   of blocking), and reports per-service statistics. Results are
//!   bit-identical to serial [`SolverEngine::solve`] for every
//!   coalescing interleaving, and steady-state dispatch allocates
//!   nothing — the "heavy traffic" path of the north star. The
//!   front-end is self-healing: [`SolverService::run_supervised`]
//!   restarts a panicked dispatcher with seeded exponential backoff, a
//!   circuit breaker degrades repeated panel failures to the
//!   bit-identical per-request serial path, and non-finite inputs are
//!   contained per ticket (admission scan + opt-in output scan).
//! * [`fleet`] — the fault-isolated multi-tenant serving tier: an
//!   [`EngineFleet`] routes `(FactorFingerprint, rhs)` requests to
//!   per-tenant bulkheaded [`SolverService`]s over a byte-bounded LRU
//!   factor cache, with a quarantining build pool (bounded retried
//!   builds under `catch_unwind` + deadline, typed
//!   [`fleet::FleetError::Quarantined`] cooldowns) and hard per-tenant
//!   admission budgets — one misbehaving factor or flooding client
//!   cannot touch any other tenant's latency or results.
//! * [`fault`] — the deterministic, seed-driven fault-injection plane
//!   behind the chaos suite: a [`fault::FaultPlan`] schedules worker
//!   spawn failures, task/dispatcher panics, admission shedding and
//!   RHS corruption from one `u64` seed (probes compile to constant
//!   `false` without the `fault-inject` feature).
//! * [`telemetry`] — the unified observability plane: per-thread
//!   lock-free event rings (spans, instants, counter deltas on one
//!   monotonic clock), a static metrics registry (counters, gauges,
//!   p50/p95/p99 latency histograms), and exporters for
//!   chrome://tracing JSON timelines and Prometheus text exposition.
//!
//! Every solve computes real `f64` numerics while the discrete-event
//! machine model advances virtual time, so results are simultaneously
//! *numerically checked* and *performance-profiled*.
//!
//! ## Observability
//!
//! Arm [`telemetry::set_enabled`] and every layer reports into one
//! span/metric namespace (disabled, each probe is a single relaxed
//! atomic load, and instrumented paths stay bit-identical and
//! allocation-free — proven in `tests/alloc_free.rs`):
//!
//! | layer | spans | metrics |
//! |---|---|---|
//! | engine build | `engine.build.{analyze,plan,schedule,calibrate}` | `engine_build_ns` |
//! | warm tiers | `engine.solve.{serial,sharded,panel,batch}` | `solve_*_ns` histograms |
//! | value refresh | `engine.refresh.values` | `value_refresh_ns` |
//! | sharded replay | `exec.sharded.chain` (one per chain), `exec.sharded.barrier` (one per barrier — the measured cost next to [`ScheduleStats::barriers_per_solve`]) | `barrier_wait_ns` |
//! | worker pool | `pool.region.dispatch`, `pool.worker.park` instants | per-site counters |
//! | serving | `serve.admit`, `serve.panel` spans; `serve.flush`, `serve.ticket` instants | `serve_queue_wait_ns`, `serve_solve_ns`, `serve_queue_depth` |
//! | fleet | `fleet.build`, `fleet.refresh` spans; `fleet.{quarantine,evict}` instants | `fleet_tenants_live`, `fleet_cache_bytes` |
//!
//! [`telemetry::snapshot`] captures everything on demand;
//! [`telemetry::chrome_trace_json`] / [`telemetry::prometheus_text`]
//! export it, and the compact [`TelemetryReport`] is embedded by
//! [`SolveReport`], [`ServiceReport`], and [`FleetReport`].
//!
//! ## One-shot vs engine
//!
//! [`solve`] and [`solve_multi_rhs`] are thin wrappers that build a
//! [`SolverEngine`] and immediately use it. Hold the engine yourself
//! whenever the same factor is solved more than once:
//!
//! ```
//! use mgpu_sim::MachineConfig;
//! use sptrsv::{SolveOptions, SolverEngine};
//!
//! let l = sparsemat::gen::banded_lower(512, 8, 3.0, 1);
//! let engine = SolverEngine::build(
//!     &l, MachineConfig::dgx1(2), &SolveOptions::default()).unwrap();
//! for seed in 0..3 {
//!     let (_, b) = sptrsv::verify::rhs_for(&l, seed);
//!     engine.solve(&b).unwrap(); // zero re-analysis
//! }
//! ```

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // index loops mirror the paper's pseudocode

pub mod cpu;
pub mod engine;
pub mod exec;
pub mod fault;
pub mod fleet;
pub mod krylov;
pub mod levelset;
pub mod plan;
mod pool;
pub mod reference;
pub mod report;
pub mod schedule;
pub mod serve;
pub mod solver;
pub mod telemetry;
pub mod verify;

pub use engine::{EngineResources, RefreshReport, SolveWorkspace, SolverEngine};
pub use fault::{FaultPlan, FaultSite};
pub use fleet::{EngineFleet, FleetConfig, FleetError, FleetReport, FleetTicket, TenantHealth};
pub use krylov::{
    bicgstab, pcg, ApplyWorkspace, KrylovOptions, KrylovReport, Precondition, PreconditionerEngine,
    SpMv,
};
pub use plan::{ExecutionPlan, Partition};
pub use report::{SolveReport, Timings};
pub use schedule::{Schedule, ScheduleStats, ScheduleTuning};
pub use serve::{
    serve_preconditioner, serve_solver, RetryPolicy, ServeError, ServedPreconditioner,
    ServiceConfig, ServiceEngine, ServiceHealth, ServiceReport, SolverService, Ticket,
};
pub use solver::{solve, solve_multi_rhs, MultiRhsReport, SolveError, SolveOptions, SolverKind};
pub use telemetry::{SpanSummary, TelemetryReport};

/// Communication backend for the synchronization-free executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// One GPU, no inter-GPU communication (Liu et al. \[2\]).
    SingleGpu,
    /// Algorithm 2: intermediate arrays in CUDA Unified Memory,
    /// system-wide atomics, page migration on contention.
    Unified,
    /// Algorithm 3: NVSHMEM symmetric heap, producer-local updates,
    /// read-only remote gets. `poll_caching` enables the r.in_degree
    /// optimization that skips already-satisfied peers in the
    /// lock-wait loop.
    Shmem {
        /// Skip polling peers whose partial in-degree already hit zero.
        poll_caching: bool,
    },
    /// The naive NVSHMEM design §IV-A rejects: intermediate arrays
    /// *distributed* (owner-held) on the symmetric heap, every remote
    /// update a Get-Update-Put round trip with an `nvshmem_fence` per
    /// operation and a `quiet` before warp retirement. Dependency
    /// detection is a cheap local poll (the owner holds its own
    /// entries) — but publishing serializes wire round trips on the
    /// producing warp, which is exactly why the paper abandons it.
    ShmemGup,
}

impl Backend {
    /// Short label used in reports and benchmark output.
    pub fn label(self) -> &'static str {
        match self {
            Backend::SingleGpu => "single",
            Backend::Unified => "unified",
            Backend::Shmem { poll_caching: true } => "shmem",
            Backend::Shmem { poll_caching: false } => "shmem-nocache",
            Backend::ShmemGup => "shmem-gup",
        }
    }
}
