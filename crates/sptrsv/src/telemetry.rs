//! Unified telemetry plane: zero-allocation span tracing, a static
//! metrics registry, and exportable timelines shared by every layer
//! of the stack (engine build, the four warm solve tiers, the worker
//! pool, the serving front-end, and the fleet).
//!
//! # Design
//!
//! Recording is **lock-free and heap-allocation-free in steady
//! state**: each thread owns a fixed-capacity ring buffer of POD
//! events (4 × `u64` words per slot, guarded by a per-slot seqlock so
//! cross-thread snapshot reads are race-free without locks). The only
//! allocation a thread ever performs is the one-time creation of its
//! ring on the *first* event it records — after that warm-up, spans,
//! instants, counters, and histogram observations touch nothing but
//! pre-existing atomics. `tests/alloc_free.rs` pins this with the
//! counting global allocator, the same discipline the pool uses.
//!
//! When the sink is disabled (the default) every probe reduces to one
//! relaxed load of a cold [`AtomicBool`] — mirroring how
//! `fault::fire()` vanishes — so instrumented hot paths stay
//! bit-identical and allocation-identical to their pre-telemetry
//! form. Enable with [`set_enabled`]; this is a runtime toggle, not a
//! cargo feature, so both CI feature configs exercise it.
//!
//! Metrics (counters per [`Site`], [`Gauge`]s, and fixed-bucket
//! power-of-two-nanosecond latency [`Hist`]ograms with interpolated
//! p50/p95/p99) live in static atomic arrays registered at build
//! time and are snapshotted on demand by [`snapshot`].
//!
//! # Exporters
//!
//! [`chrome_trace_json`] renders a snapshot as a chrome://tracing
//! compatible JSON timeline; [`prometheus_text`] renders the metric
//! registry in Prometheus text exposition style; [`report`] distills
//! everything into the small [`TelemetryReport`] embedded by
//! `SolveReport`, `ServiceReport`, and `FleetReport`.

use std::cell::OnceCell;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Number of events each per-thread ring buffer retains (power of
/// two; older events are overwritten and counted as dropped).
pub const RING_CAPACITY: usize = 4096;
/// `u64` words per ring slot: `[seq, ts_ns, meta, arg]`.
const WORDS: usize = 4;
/// Sentinel sequence marking a slot mid-write.
const SEQ_INVALID: u64 = u64::MAX;
/// Number of fixed histogram buckets (power-of-two nanosecond edges;
/// bucket `i >= 1` holds values in `[2^(i-1), 2^i)`, bucket 0 holds
/// zero). 41 buckets cover up to ~18 minutes.
pub const HIST_BUCKETS: usize = 41;

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static REGISTRY: Mutex<Vec<Arc<Ring>>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static LOCAL_TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    static LOCAL_RING: OnceCell<Arc<Ring>> = const { OnceCell::new() };
}

/// Is the telemetry sink armed? One relaxed atomic load; inlined so
/// the disabled fast path costs a test-and-branch on a cold flag.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Arm or disarm the telemetry sink process-wide. Arming pins the
/// monotonic epoch (first call wins) so all timestamps share one
/// clock. Disarming stops recording but keeps accumulated state for
/// snapshotting.
pub fn set_enabled(on: bool) {
    if on {
        let _ = EPOCH.get_or_init(Instant::now);
    }
    ENABLED.store(on, Ordering::Release);
}

/// Nanoseconds since the telemetry epoch (pinned on first use). The
/// shared monotonic clock every event timestamp draws from.
#[inline]
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// This thread's small dense telemetry id (assigned on first use;
/// stable for the thread's lifetime, used as the timeline lane).
pub fn current_tid() -> u64 {
    LOCAL_TID.with(|t| *t)
}

/// Every instrumented location in the stack. The variant doubles as
/// the index into the static counter registry, and [`Site::name`] is
/// the exported span/counter name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum Site {
    /// Engine build: symbolic analysis / adjacency recording.
    BuildAnalyze = 0,
    /// Engine build: execution-plan construction (cross-GPU edges).
    BuildPlan = 1,
    /// Engine build: Schedule IR (levels → chains → shards).
    BuildSchedule = 2,
    /// Engine build: calibration replay that seeds the report template.
    BuildCalibrate = 3,
    /// Warm tier: plain serial replay (`solve`/`solve_into`).
    SolveSerial = 4,
    /// Warm tier: chain-stepped sharded replay.
    SolveSharded = 5,
    /// Warm tier: fused multi-RHS panel kernel.
    SolvePanel = 6,
    /// Warm tier: batched multi-RHS dispatch over the pool.
    SolveBatch = 7,
    /// Analysis-free value refresh on an existing engine.
    ValueRefresh = 8,
    /// One chain stepped by the sharded replay (worker 0's lane).
    ShardedChain = 9,
    /// One region-barrier wait inside the sharded replay (worker 0).
    ShardedBarrier = 10,
    /// A parallel region installed on the worker pool.
    RegionDispatch = 11,
    /// A pool worker gave up spinning and parked on the condvar.
    WorkerPark = 12,
    /// Serving: one request admitted (span covers admission checks).
    ServeAdmit = 13,
    /// Serving: the dispatcher flushed a group (arg = flush cause).
    ServeFlush = 14,
    /// Serving: one coalesced panel solve.
    ServePanel = 15,
    /// Serving: one ticket resolved (arg = queue-wait ns).
    ServeTicket = 16,
    /// Fleet: one tenant engine build (span covers retries).
    FleetBuild = 17,
    /// Fleet: a tenant was quarantined.
    FleetQuarantine = 18,
    /// Fleet: a tenant was evicted from the factor cache.
    FleetEvict = 19,
    /// Fleet: one tenant value refresh (live or at-rest).
    FleetRefresh = 20,
}

/// Number of [`Site`] variants (size of the counter registry).
pub const SITE_COUNT: usize = 21;

impl Site {
    /// All sites, in registry (discriminant) order.
    pub const ALL: [Site; SITE_COUNT] = [
        Site::BuildAnalyze,
        Site::BuildPlan,
        Site::BuildSchedule,
        Site::BuildCalibrate,
        Site::SolveSerial,
        Site::SolveSharded,
        Site::SolvePanel,
        Site::SolveBatch,
        Site::ValueRefresh,
        Site::ShardedChain,
        Site::ShardedBarrier,
        Site::RegionDispatch,
        Site::WorkerPark,
        Site::ServeAdmit,
        Site::ServeFlush,
        Site::ServePanel,
        Site::ServeTicket,
        Site::FleetBuild,
        Site::FleetQuarantine,
        Site::FleetEvict,
        Site::FleetRefresh,
    ];

    /// The exported (dotted, layer-qualified) name of this site.
    pub fn name(self) -> &'static str {
        match self {
            Site::BuildAnalyze => "engine.build.analyze",
            Site::BuildPlan => "engine.build.plan",
            Site::BuildSchedule => "engine.build.schedule",
            Site::BuildCalibrate => "engine.build.calibrate",
            Site::SolveSerial => "engine.solve.serial",
            Site::SolveSharded => "engine.solve.sharded",
            Site::SolvePanel => "engine.solve.panel",
            Site::SolveBatch => "engine.solve.batch",
            Site::ValueRefresh => "engine.refresh.values",
            Site::ShardedChain => "exec.sharded.chain",
            Site::ShardedBarrier => "exec.sharded.barrier",
            Site::RegionDispatch => "pool.region.dispatch",
            Site::WorkerPark => "pool.worker.park",
            Site::ServeAdmit => "serve.admit",
            Site::ServeFlush => "serve.flush",
            Site::ServePanel => "serve.panel",
            Site::ServeTicket => "serve.ticket",
            Site::FleetBuild => "fleet.build",
            Site::FleetQuarantine => "fleet.quarantine",
            Site::FleetEvict => "fleet.evict",
            Site::FleetRefresh => "fleet.refresh",
        }
    }

    fn from_index(i: u32) -> Option<Site> {
        Site::ALL.get(i as usize).copied()
    }
}

/// What a ring event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// A span opened (paired with the next [`Kind::SpanExit`] for the
    /// same site on the same thread).
    SpanEnter,
    /// A span closed.
    SpanExit,
    /// A point-in-time event (`arg` is site-specific).
    Instant,
    /// A counter delta (`arg` is the increment).
    Count,
}

impl Kind {
    fn from_bits(b: u32) -> Kind {
        match b {
            0 => Kind::SpanEnter,
            1 => Kind::SpanExit,
            3 => Kind::Count,
            _ => Kind::Instant,
        }
    }

    fn bits(self) -> u64 {
        match self {
            Kind::SpanEnter => 0,
            Kind::SpanExit => 1,
            Kind::Instant => 2,
            Kind::Count => 3,
        }
    }
}

/// Process-wide gauges (point-in-time values, overwritten in place).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum Gauge {
    /// Requests queued in the serving dispatcher right now.
    ServeQueueDepth = 0,
    /// Live (non-quarantined) tenants in the fleet.
    FleetTenantsLive = 1,
    /// Bytes currently charged against the fleet factor cache.
    FleetCacheBytes = 2,
}

/// Number of [`Gauge`] variants.
pub const GAUGE_COUNT: usize = 3;

impl Gauge {
    /// All gauges, in registry order.
    pub const ALL: [Gauge; GAUGE_COUNT] =
        [Gauge::ServeQueueDepth, Gauge::FleetTenantsLive, Gauge::FleetCacheBytes];

    /// The exported (snake_case) name of this gauge.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::ServeQueueDepth => "serve_queue_depth",
            Gauge::FleetTenantsLive => "fleet_tenants_live",
            Gauge::FleetCacheBytes => "fleet_cache_bytes",
        }
    }
}

/// Fixed-bucket latency histograms (power-of-two nanosecond edges).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum Hist {
    /// Wall time of one serial warm solve.
    SolveSerialNs = 0,
    /// Wall time of one sharded warm solve.
    SolveShardedNs = 1,
    /// Wall time of one fused panel warm solve.
    SolvePanelNs = 2,
    /// Wall time of one batched warm solve.
    SolveBatchNs = 3,
    /// Wall time worker 0 spent in one sharded-replay barrier wait
    /// (the measured cost next to `ScheduleStats.barriers_per_solve`).
    BarrierWaitNs = 4,
    /// Per-ticket queue wait (submit → dispatch) in the server.
    ServeQueueWaitNs = 5,
    /// Per-group panel solve time in the server.
    ServeSolveNs = 6,
    /// Wall time of one full engine build.
    BuildNs = 7,
    /// Wall time of one value refresh.
    RefreshNs = 8,
}

/// Number of [`Hist`] variants.
pub const HIST_COUNT: usize = 9;

impl Hist {
    /// All histograms, in registry order.
    pub const ALL: [Hist; HIST_COUNT] = [
        Hist::SolveSerialNs,
        Hist::SolveShardedNs,
        Hist::SolvePanelNs,
        Hist::SolveBatchNs,
        Hist::BarrierWaitNs,
        Hist::ServeQueueWaitNs,
        Hist::ServeSolveNs,
        Hist::BuildNs,
        Hist::RefreshNs,
    ];

    /// The exported (snake_case) name of this histogram.
    pub fn name(self) -> &'static str {
        match self {
            Hist::SolveSerialNs => "solve_serial_ns",
            Hist::SolveShardedNs => "solve_sharded_ns",
            Hist::SolvePanelNs => "solve_panel_ns",
            Hist::SolveBatchNs => "solve_batch_ns",
            Hist::BarrierWaitNs => "barrier_wait_ns",
            Hist::ServeQueueWaitNs => "serve_queue_wait_ns",
            Hist::ServeSolveNs => "serve_solve_ns",
            Hist::BuildNs => "engine_build_ns",
            Hist::RefreshNs => "value_refresh_ns",
        }
    }
}

static COUNTERS: [AtomicU64; SITE_COUNT] = [const { AtomicU64::new(0) }; SITE_COUNT];
static GAUGES: [AtomicU64; GAUGE_COUNT] = [const { AtomicU64::new(0) }; GAUGE_COUNT];
static HIST_SUMS: [AtomicU64; HIST_COUNT] = [const { AtomicU64::new(0) }; HIST_COUNT];
static HIST_BINS: [[AtomicU64; HIST_BUCKETS]; HIST_COUNT] =
    [const { [const { AtomicU64::new(0) }; HIST_BUCKETS] }; HIST_COUNT];

/// One thread's event ring. Slots are quads of atomics written only
/// by the owning thread under a per-slot seqlock (invalidate →
/// payload → publish) so [`snapshot`] can read from any thread
/// without locks and detect torn slots.
struct Ring {
    tid: u64,
    head: AtomicU64,
    reset_mark: AtomicU64,
    slots: Box<[AtomicU64]>,
}

impl Ring {
    fn new(tid: u64) -> Ring {
        let slots = (0..RING_CAPACITY * WORDS)
            .map(|i| AtomicU64::new(if i % WORDS == 0 { SEQ_INVALID } else { 0 }))
            .collect();
        Ring { tid, head: AtomicU64::new(0), reset_mark: AtomicU64::new(0), slots }
    }

    #[inline]
    fn record(&self, kind: Kind, site: Site, arg: u64) {
        let seq = self.head.load(Ordering::Relaxed);
        let base = (seq as usize & (RING_CAPACITY - 1)) * WORDS;
        self.slots[base].store(SEQ_INVALID, Ordering::Relaxed);
        fence(Ordering::Release);
        self.slots[base + 1].store(now_ns(), Ordering::Relaxed);
        self.slots[base + 2].store((kind.bits() << 32) | site as u32 as u64, Ordering::Relaxed);
        self.slots[base + 3].store(arg, Ordering::Relaxed);
        self.slots[base].store(seq, Ordering::Release);
        self.head.store(seq + 1, Ordering::Release);
    }

    /// Append this ring's valid events to `out`; returns
    /// `(total_since_reset, dropped)`.
    fn drain(&self, out: &mut Vec<EventRecord>) -> (u64, u64) {
        let head = self.head.load(Ordering::Acquire);
        let mark = self.reset_mark.load(Ordering::Acquire);
        let total = head.saturating_sub(mark);
        let start = head.saturating_sub(RING_CAPACITY as u64).max(mark);
        let mut kept = 0u64;
        for seq in start..head {
            let base = (seq as usize & (RING_CAPACITY - 1)) * WORDS;
            let s1 = self.slots[base].load(Ordering::Acquire);
            let ts_ns = self.slots[base + 1].load(Ordering::Relaxed);
            let meta = self.slots[base + 2].load(Ordering::Relaxed);
            let arg = self.slots[base + 3].load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            let s2 = self.slots[base].load(Ordering::Relaxed);
            if s1 != seq || s2 != seq {
                continue; // torn: overwritten while we read
            }
            let Some(site) = Site::from_index((meta & 0xffff_ffff) as u32) else { continue };
            let kind = Kind::from_bits((meta >> 32) as u32);
            out.push(EventRecord { ts_ns, kind, site, arg, tid: self.tid, seq });
            kept += 1;
        }
        (total, total - kept)
    }
}

/// Run `f` against this thread's ring, creating and registering it on
/// first use (the one allocation a recording thread ever performs).
#[inline]
fn with_ring(f: impl FnOnce(&Ring)) {
    let _ = LOCAL_RING.try_with(|cell| {
        let ring = cell.get_or_init(|| {
            let ring = Arc::new(Ring::new(current_tid()));
            REGISTRY.lock().unwrap_or_else(PoisonError::into_inner).push(Arc::clone(&ring));
            ring
        });
        f(ring);
    });
}

/// Eagerly create (and register) the calling thread's event ring, so
/// later probes on this thread are guaranteed allocation-free even if
/// the sink is enabled mid-run. Long-lived threads that may record
/// from allocation-sensitive sections (the pool workers) call this
/// once at startup; everyone else pays the same one-time cost lazily
/// on their first recorded event.
pub fn warm_thread() {
    with_ring(|_| {});
}

/// Bump a site counter by `delta` and record a counter-delta event.
/// No-op (one relaxed load) when the sink is disabled.
#[inline]
pub fn counter_add(site: Site, delta: u64) {
    if !enabled() {
        return;
    }
    COUNTERS[site as usize].fetch_add(delta, Ordering::Relaxed);
    with_ring(|r| r.record(Kind::Count, site, delta));
}

/// Record a point-in-time event at `site` (and bump its counter).
/// No-op (one relaxed load) when the sink is disabled.
#[inline]
pub fn instant(site: Site, arg: u64) {
    if !enabled() {
        return;
    }
    COUNTERS[site as usize].fetch_add(1, Ordering::Relaxed);
    with_ring(|r| r.record(Kind::Instant, site, arg));
}

/// Overwrite a gauge. No-op when the sink is disabled.
#[inline]
pub fn gauge_set(gauge: Gauge, value: u64) {
    if !enabled() {
        return;
    }
    GAUGES[gauge as usize].store(value, Ordering::Relaxed);
}

/// Record one observation into a latency histogram. No-op when the
/// sink is disabled.
#[inline]
pub fn observe(hist: Hist, value_ns: u64) {
    if !enabled() {
        return;
    }
    let bucket = (64 - value_ns.leading_zeros() as usize).min(HIST_BUCKETS - 1);
    HIST_BINS[hist as usize][bucket].fetch_add(1, Ordering::Relaxed);
    HIST_SUMS[hist as usize].fetch_add(value_ns, Ordering::Relaxed);
}

/// RAII span: records `SpanEnter` on construction and `SpanExit` on
/// drop. Disarmed (no events, no allocation) when the sink is
/// disabled at enter time.
pub struct SpanGuard {
    site: Site,
    armed: bool,
}

impl SpanGuard {
    /// Open a span at `site`.
    #[inline]
    pub fn enter(site: Site) -> SpanGuard {
        SpanGuard::enter_on(true, site)
    }

    /// Open a span only when `cond` holds (e.g. "worker 0 only");
    /// otherwise the guard is inert.
    #[inline]
    pub fn enter_on(cond: bool, site: Site) -> SpanGuard {
        let armed = cond && enabled();
        if armed {
            COUNTERS[site as usize].fetch_add(1, Ordering::Relaxed);
            with_ring(|r| r.record(Kind::SpanEnter, site, 0));
        }
        SpanGuard { site, armed }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.armed {
            with_ring(|r| r.record(Kind::SpanExit, self.site, 0));
        }
    }
}

/// A start timestamp for a histogram observation; `0` means the sink
/// was disabled at start and [`Stopwatch::stop`] is a no-op.
pub struct Stopwatch(u64);

impl Stopwatch {
    /// Capture the start time (disarmed when the sink is disabled).
    #[inline]
    pub fn start() -> Stopwatch {
        if enabled() {
            Stopwatch(now_ns().max(1))
        } else {
            Stopwatch(0)
        }
    }

    /// Record the elapsed time into `hist` (no-op when disarmed).
    #[inline]
    pub fn stop(self, hist: Hist) {
        if self.0 != 0 {
            observe(hist, now_ns().saturating_sub(self.0));
        }
    }
}

/// One decoded ring event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRecord {
    /// Nanoseconds since the telemetry epoch.
    pub ts_ns: u64,
    /// What the event records.
    pub kind: Kind,
    /// Where it was recorded.
    pub site: Site,
    /// Site-specific argument (counter delta, flush cause, …).
    pub arg: u64,
    /// Recording thread's telemetry id.
    pub tid: u64,
    /// Per-thread sequence number (recording order).
    pub seq: u64,
}

/// A snapshotted histogram with interpolated quantiles.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Exported histogram name.
    pub name: &'static str,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (ns).
    pub sum: u64,
    /// Raw bucket counts (bucket `i >= 1` holds `[2^(i-1), 2^i)` ns).
    pub buckets: [u64; HIST_BUCKETS],
    /// Interpolated 50th percentile (ns).
    pub p50: f64,
    /// Interpolated 95th percentile (ns).
    pub p95: f64,
    /// Interpolated 99th percentile (ns).
    pub p99: f64,
}

/// A point-in-time capture of every ring and the metric registry.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Whether the sink was armed when the snapshot was taken.
    pub enabled: bool,
    /// All readable events, sorted by `(tid, seq)`.
    pub events: Vec<EventRecord>,
    /// Events recorded since the last [`reset`] (including dropped).
    pub total_events: u64,
    /// Events lost to ring wraparound (or torn mid-snapshot).
    pub dropped: u64,
    /// Per-site counters, in [`Site::ALL`] order.
    pub counters: Vec<(&'static str, u64)>,
    /// Gauges, in [`Gauge::ALL`] order.
    pub gauges: Vec<(&'static str, u64)>,
    /// Histograms, in [`Hist::ALL`] order.
    pub histograms: Vec<HistogramSnapshot>,
}

/// Interpolate quantile `q` (in `[0, 1]`) from power-of-two buckets.
fn bucket_quantile(buckets: &[u64; HIST_BUCKETS], q: f64) -> f64 {
    let count: u64 = buckets.iter().sum();
    if count == 0 {
        return 0.0;
    }
    let target = q * count as f64;
    let mut acc = 0.0;
    for (i, &b) in buckets.iter().enumerate() {
        if b == 0 {
            continue;
        }
        let prev = acc;
        acc += b as f64;
        if acc >= target {
            let lower = if i == 0 { 0.0 } else { (1u64 << (i - 1)) as f64 };
            let upper = if i == 0 { 1.0 } else { (1u64 << i.min(62)) as f64 };
            let frac = ((target - prev) / b as f64).clamp(0.0, 1.0);
            return lower + (upper - lower) * frac;
        }
    }
    (1u64 << (HIST_BUCKETS - 1).min(62)) as f64
}

/// Capture every thread's ring plus the full metric registry. Safe to
/// call from any thread at any time; concurrently-written slots are
/// detected by the seqlock and skipped.
pub fn snapshot() -> Snapshot {
    let rings: Vec<Arc<Ring>> =
        REGISTRY.lock().unwrap_or_else(PoisonError::into_inner).iter().map(Arc::clone).collect();
    let mut events = Vec::new();
    let mut total_events = 0u64;
    let mut dropped = 0u64;
    for ring in &rings {
        let (t, d) = ring.drain(&mut events);
        total_events += t;
        dropped += d;
    }
    events.sort_by_key(|e| (e.tid, e.seq));
    let counters = Site::ALL
        .iter()
        .map(|&s| (s.name(), COUNTERS[s as usize].load(Ordering::Relaxed)))
        .collect();
    let gauges = Gauge::ALL
        .iter()
        .map(|&g| (g.name(), GAUGES[g as usize].load(Ordering::Relaxed)))
        .collect();
    let histograms = Hist::ALL
        .iter()
        .map(|&h| {
            let mut buckets = [0u64; HIST_BUCKETS];
            for (b, a) in buckets.iter_mut().zip(HIST_BINS[h as usize].iter()) {
                *b = a.load(Ordering::Relaxed);
            }
            HistogramSnapshot {
                name: h.name(),
                count: buckets.iter().sum(),
                sum: HIST_SUMS[h as usize].load(Ordering::Relaxed),
                buckets,
                p50: bucket_quantile(&buckets, 0.50),
                p95: bucket_quantile(&buckets, 0.95),
                p99: bucket_quantile(&buckets, 0.99),
            }
        })
        .collect();
    Snapshot { enabled: enabled(), events, total_events, dropped, counters, gauges, histograms }
}

/// Discard accumulated events and zero every counter, gauge, and
/// histogram. Rings are not deallocated (threads keep recording into
/// them); events already recorded become invisible to [`snapshot`].
pub fn reset() {
    let rings: Vec<Arc<Ring>> =
        REGISTRY.lock().unwrap_or_else(PoisonError::into_inner).iter().map(Arc::clone).collect();
    for ring in &rings {
        ring.reset_mark.store(ring.head.load(Ordering::Acquire), Ordering::Release);
    }
    for c in &COUNTERS {
        c.store(0, Ordering::Relaxed);
    }
    for g in &GAUGES {
        g.store(0, Ordering::Relaxed);
    }
    for s in &HIST_SUMS {
        s.store(0, Ordering::Relaxed);
    }
    for bins in &HIST_BINS {
        for b in bins {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// Per-site aggregate of completed spans in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSummary {
    /// Exported site name.
    pub site: &'static str,
    /// Completed (enter/exit paired) spans.
    pub count: u64,
    /// Total nanoseconds across those spans.
    pub total_ns: u64,
}

/// The compact cross-layer telemetry digest embedded by the
/// per-subsystem reports (`SolveReport`, `ServiceReport`,
/// `FleetReport`). `Default` (all-zero, disabled) when the sink was
/// never armed, so embedding it costs nothing on untraced paths.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetryReport {
    /// Whether the sink was armed when the report was produced.
    pub enabled: bool,
    /// Events recorded since the last [`reset`] (including dropped).
    pub events: u64,
    /// Events lost to ring wraparound.
    pub dropped: u64,
    /// Aggregates of completed spans, in [`Site::ALL`] order
    /// (sites with zero spans omitted).
    pub spans: Vec<SpanSummary>,
}

impl fmt::Display for TelemetryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.enabled {
            return write!(f, "telemetry: disabled");
        }
        write!(f, "telemetry: {} events ({} dropped)", self.events, self.dropped)?;
        for s in &self.spans {
            write!(f, "; {} {}x/{:.3}ms", s.site, s.count, s.total_ns as f64 / 1e6)?;
        }
        Ok(())
    }
}

/// Distill a snapshot into a [`TelemetryReport`] by pairing span
/// enter/exit events per thread and site.
pub fn report_from(snap: &Snapshot) -> TelemetryReport {
    let mut count = [0u64; SITE_COUNT];
    let mut total = [0u64; SITE_COUNT];
    // One open-span stack per (thread, site); events are (tid, seq)
    // sorted so a linear pass sees each thread's recording order.
    let mut stacks: Vec<(u64, u32, Vec<u64>)> = Vec::new();
    for e in &snap.events {
        let idx = e.site as u32;
        match e.kind {
            Kind::SpanEnter => {
                if let Some(st) = stacks.iter_mut().find(|(t, s, _)| *t == e.tid && *s == idx) {
                    st.2.push(e.ts_ns);
                } else {
                    stacks.push((e.tid, idx, vec![e.ts_ns]));
                }
            }
            Kind::SpanExit => {
                if let Some(st) = stacks.iter_mut().find(|(t, s, _)| *t == e.tid && *s == idx) {
                    if let Some(start) = st.2.pop() {
                        count[idx as usize] += 1;
                        total[idx as usize] += e.ts_ns.saturating_sub(start);
                    }
                }
            }
            Kind::Instant | Kind::Count => {}
        }
    }
    let spans = Site::ALL
        .iter()
        .filter(|&&s| count[s as usize] > 0)
        .map(|&s| SpanSummary {
            site: s.name(),
            count: count[s as usize],
            total_ns: total[s as usize],
        })
        .collect();
    TelemetryReport {
        enabled: snap.enabled,
        events: snap.total_events,
        dropped: snap.dropped,
        spans,
    }
}

/// Snapshot and distill in one call. Returns `TelemetryReport::default()`
/// without touching the registry when the sink is disabled, so report
/// construction on untraced paths stays allocation-free.
pub fn report() -> TelemetryReport {
    if !enabled() {
        return TelemetryReport::default();
    }
    report_from(&snapshot())
}

/// Render a snapshot as a chrome://tracing compatible JSON array
/// (load via `chrome://tracing` or `ui.perfetto.dev`). Span
/// enter/exit become `"B"`/`"E"` duration events, instants `"i"`,
/// counter deltas `"C"`; timestamps are microseconds since the
/// telemetry epoch and thread lanes are the telemetry tids.
pub fn chrome_trace_json(snap: &Snapshot) -> String {
    let mut evs: Vec<&EventRecord> = snap.events.iter().collect();
    evs.sort_by_key(|e| (e.ts_ns, e.tid, e.seq));
    let mut out = String::with_capacity(evs.len() * 96 + 2);
    out.push('[');
    for (i, e) in evs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ph = match e.kind {
            Kind::SpanEnter => "B",
            Kind::SpanExit => "E",
            Kind::Instant => "i",
            Kind::Count => "C",
        };
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"sptrsv\",\"ph\":\"{}\",\"ts\":{:.3},\"pid\":1,\"tid\":{}",
            e.site.name(),
            ph,
            e.ts_ns as f64 / 1000.0,
            e.tid
        );
        match e.kind {
            Kind::Instant => {
                let _ = write!(out, ",\"s\":\"t\",\"args\":{{\"arg\":{}}}", e.arg);
            }
            Kind::Count => {
                let _ = write!(out, ",\"args\":{{\"value\":{}}}", e.arg);
            }
            Kind::SpanEnter | Kind::SpanExit => {}
        }
        out.push('}');
    }
    out.push(']');
    out
}

/// Render the metric registry of a snapshot in Prometheus text
/// exposition style: per-site event counters as one labelled family,
/// gauges, and full histogram bucket/sum/count series with
/// interpolated p50/p95/p99 as companion gauges.
pub fn prometheus_text(snap: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str("# TYPE sptrsv_site_events_total counter\n");
    for (name, v) in &snap.counters {
        let _ = writeln!(out, "sptrsv_site_events_total{{site=\"{name}\"}} {v}");
    }
    for (name, v) in &snap.gauges {
        let _ = writeln!(out, "# TYPE sptrsv_{name} gauge\nsptrsv_{name} {v}");
    }
    for h in &snap.histograms {
        let _ = writeln!(out, "# TYPE sptrsv_{} histogram", h.name);
        let mut cum = 0u64;
        for (i, &b) in h.buckets.iter().enumerate() {
            if b == 0 && i != 0 {
                continue; // keep the exposition compact: only occupied buckets
            }
            cum += b;
            let le = 1u64 << i.min(62);
            let _ = writeln!(out, "sptrsv_{}_bucket{{le=\"{}\"}} {}", h.name, le, cum);
        }
        let _ = writeln!(out, "sptrsv_{}_bucket{{le=\"+Inf\"}} {}", h.name, h.count);
        let _ = writeln!(out, "sptrsv_{}_sum {}", h.name, h.sum);
        let _ = writeln!(out, "sptrsv_{}_count {}", h.name, h.count);
        let _ = writeln!(out, "sptrsv_{}_p50 {:.1}", h.name, h.p50);
        let _ = writeln!(out, "sptrsv_{}_p95 {:.1}", h.name, h.p95);
        let _ = writeln!(out, "sptrsv_{}_p99 {:.1}", h.name, h.p99);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(tid: u64, seq: u64, ts_ns: u64, kind: Kind, site: Site, arg: u64) -> EventRecord {
        EventRecord { ts_ns, kind, site, arg, tid, seq }
    }

    fn synthetic(events: Vec<EventRecord>) -> Snapshot {
        let n = events.len() as u64;
        Snapshot {
            enabled: true,
            events,
            total_events: n,
            dropped: 0,
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
        }
    }

    #[test]
    fn site_indices_match_registry_order() {
        for (i, &s) in Site::ALL.iter().enumerate() {
            assert_eq!(s as usize, i);
            assert_eq!(Site::from_index(i as u32), Some(s));
        }
        assert_eq!(Site::from_index(SITE_COUNT as u32), None);
        for (i, &g) in Gauge::ALL.iter().enumerate() {
            assert_eq!(g as usize, i);
        }
        for (i, &h) in Hist::ALL.iter().enumerate() {
            assert_eq!(h as usize, i);
        }
    }

    #[test]
    fn bucket_mapping_is_monotone_and_bounded() {
        let bucket = |v: u64| (64 - v.leading_zeros() as usize).min(HIST_BUCKETS - 1);
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 1);
        assert_eq!(bucket(2), 2);
        assert_eq!(bucket(3), 2);
        assert_eq!(bucket(4), 3);
        let mut last = 0;
        for shift in 0..64 {
            let b = bucket(1u64 << shift);
            assert!(b >= last && b < HIST_BUCKETS);
            last = b;
        }
    }

    #[test]
    fn quantile_interpolation_lands_inside_the_bucket() {
        let mut buckets = [0u64; HIST_BUCKETS];
        buckets[11] = 100; // 100 observations in [1024, 2048)
        let p50 = bucket_quantile(&buckets, 0.50);
        let p99 = bucket_quantile(&buckets, 0.99);
        assert!((1024.0..2048.0).contains(&p50), "p50 = {p50}");
        assert!((1024.0..=2048.0).contains(&p99), "p99 = {p99}");
        assert!(p99 > p50);
        assert_eq!(bucket_quantile(&[0; HIST_BUCKETS], 0.5), 0.0);
    }

    #[test]
    fn report_pairs_spans_per_thread_and_site() {
        let s = Site::SolveSharded;
        let snap = synthetic(vec![
            ev(1, 0, 100, Kind::SpanEnter, s, 0),
            ev(1, 1, 400, Kind::SpanExit, s, 0),
            ev(2, 0, 200, Kind::SpanEnter, s, 0),
            ev(2, 1, 250, Kind::SpanExit, s, 0),
            // unmatched exit (enter lost to wraparound): ignored
            ev(3, 0, 900, Kind::SpanExit, s, 0),
        ]);
        let rep = report_from(&snap);
        assert_eq!(rep.spans.len(), 1);
        assert_eq!(rep.spans[0].site, "engine.solve.sharded");
        assert_eq!(rep.spans[0].count, 2);
        assert_eq!(rep.spans[0].total_ns, 350);
        let line = rep.to_string();
        assert!(line.contains("engine.solve.sharded 2x"), "{line}");
    }

    #[test]
    fn chrome_trace_renders_all_phases() {
        let snap = synthetic(vec![
            ev(1, 0, 1000, Kind::SpanEnter, Site::ServePanel, 0),
            ev(1, 1, 2500, Kind::SpanExit, Site::ServePanel, 0),
            ev(1, 2, 3000, Kind::Instant, Site::ServeFlush, 2),
            ev(1, 3, 3500, Kind::Count, Site::ServeTicket, 4),
        ]);
        let json = chrome_trace_json(&snap);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"args\":{\"value\":4}"));
        assert_eq!(chrome_trace_json(&synthetic(Vec::new())), "[]");
    }

    #[test]
    fn prometheus_text_emits_registered_families() {
        let mut buckets = [0u64; HIST_BUCKETS];
        buckets[5] = 3;
        let snap = Snapshot {
            enabled: true,
            events: Vec::new(),
            total_events: 0,
            dropped: 0,
            counters: vec![("engine.solve.sharded", 7)],
            gauges: vec![("serve_queue_depth", 2)],
            histograms: vec![HistogramSnapshot {
                name: "serve_solve_ns",
                count: 3,
                sum: 60,
                buckets,
                p50: 24.0,
                p95: 31.0,
                p99: 31.7,
            }],
        };
        let text = prometheus_text(&snap);
        assert!(text.contains("sptrsv_site_events_total{site=\"engine.solve.sharded\"} 7"));
        assert!(text.contains("sptrsv_serve_queue_depth 2"));
        assert!(text.contains("sptrsv_serve_solve_ns_bucket{le=\"32\"} 3"));
        assert!(text.contains("sptrsv_serve_solve_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("sptrsv_serve_solve_ns_sum 60"));
        assert!(text.contains("sptrsv_serve_solve_ns_count 3"));
        assert!(text.contains("sptrsv_serve_solve_ns_p95 31.0"));
    }

    #[test]
    fn disabled_probes_are_inert_and_report_is_default() {
        // Telemetry is process-global; this test only asserts the
        // *disabled* fast path, which other tests in this binary do
        // not flip (the armed integration tests live in
        // tests/telemetry.rs, a separate process).
        assert!(!enabled());
        counter_add(Site::ServeAdmit, 1);
        instant(Site::ServeFlush, 0);
        gauge_set(Gauge::ServeQueueDepth, 9);
        observe(Hist::ServeSolveNs, 123);
        let sw = Stopwatch::start();
        sw.stop(Hist::ServeSolveNs);
        drop(SpanGuard::enter(Site::ServeAdmit));
        drop(SpanGuard::enter_on(false, Site::ServeAdmit));
        assert_eq!(report(), TelemetryReport::default());
        assert_eq!(report().to_string(), "telemetry: disabled");
    }
}
