//! Deterministic, seed-driven fault injection for the serving stack.
//!
//! Long-lived serving processes meet failures the unit tests of a
//! solver kernel never provoke: worker threads that cannot spawn, pool
//! tasks that panic, a dispatcher that dies mid-panel, admission paths
//! that shed under memory pressure, and right-hand sides corrupted
//! between admission and dispatch. This module gives the chaos suite a
//! way to *schedule* those failures deterministically: a [`FaultPlan`]
//! is seeded with one `u64`, armed per scope with [`with_plan`], and
//! every instrumented site ([`FaultSite`]) asks the plan whether to
//! fire on each pass. The decision for probe `k` of site `s` under
//! seed `g` is a pure function of `(g, s, k)` (a PCG32 stream per
//! site, one draw per probe), so a failing chaos seed replays its
//! exact fault schedule on every rerun.
//!
//! ## Zero overhead when disabled
//!
//! Without the `fault-inject` cargo feature every probe compiles to a
//! constant `false` and [`with_plan`] is a plain call of its closure —
//! the serving hot path carries no atomic loads, no branches, no
//! allocations (the counting-allocator test in
//! `crates/sptrsv/tests/alloc_free.rs` covers the instrumented paths).
//! With the feature enabled but no plan installed, a probe is one
//! relaxed atomic load of a cold flag.
//!
//! ## Hermetic installation
//!
//! [`with_plan`] installs the plan process-globally (the dispatcher
//! and pool workers are separate threads and must observe it), saves
//! whatever plan was active before, and restores it on exit — even by
//! panic — so chaos tests compose. Scoping is an explicit **LIFO
//! stack on one thread**: nested scopes shadow the outer plan for
//! their duration and restore it on exit (tested, not incidental).
//! Two *concurrent* scopes on different threads can never both be
//! honored by one process-global plan, so the inner [`with_plan`]
//! panics with a diagnostic instead of silently clobbering the other
//! thread's schedule — chaos tests serialize on a mutex and never see
//! it; a test that forgets gets an immediate loud failure rather than
//! a flaky cross-contaminated fault schedule.

use std::sync::Arc;

/// An instrumented failure point in the pool / engine / serve stack.
///
/// Each site keys its own deterministic decision stream in a
/// [`FaultPlan`]; the containment story per site is documented in the
/// failure-modes table of the [`crate::serve`] module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A [`crate::pool`] worker thread fails to spawn: `ensure_threads`
    /// stops growing, parallel regions decline, sharded solves degrade
    /// to the bit-identical serial replay.
    WorkerSpawn = 0,
    /// A pool task body panics on a worker thread — the panic is
    /// latched and re-raised on the submitting thread, exactly like a
    /// real task bug.
    WorkerTaskPanic = 1,
    /// The serving dispatcher thread panics between panels. Under
    /// [`crate::serve::SolverService::run_supervised`] it restarts with
    /// backoff; in-flight tickets resolve as
    /// [`crate::serve::ServeError::Retryable`].
    DispatcherPanic = 2,
    /// The fused panel solve panics mid-kernel: the panel's requests
    /// fail typed, and repeated fires trip the serving circuit breaker
    /// onto the per-request serial path.
    PanelSolve = 3,
    /// Admission control sheds an otherwise admissible request
    /// (simulating allocation pressure): the client sees
    /// [`crate::serve::ServeError::QueueFull`] and may retry.
    AdmissionAlloc = 4,
    /// A right-hand side is corrupted to NaN *after* the admission
    /// scan accepted it — the bit-flip case the opt-in post-solve
    /// output scan exists to contain.
    RhsCorruptNonFinite = 5,
    /// An engine build panics on the fleet's build pool (a poisoned
    /// factor, an analysis bug): [`crate::fleet::EngineFleet`] retries
    /// with seeded backoff and quarantines the fingerprint when the
    /// attempt budget is exhausted
    /// ([`crate::fleet::FleetError::Quarantined`]).
    EngineBuild = 6,
    /// Factor-cache admission sheds a cold request under (simulated)
    /// memory pressure before reserving cache bytes: the client sees
    /// [`crate::fleet::FleetError::CacheFull`] and may retry — warm
    /// tenants are unaffected.
    CacheAdmit = 7,
    /// An in-place value refresh panics after validation and before the
    /// commit completes ([`crate::engine::SolverEngine::refresh_values`]):
    /// the engine's numeric state is untouched (the probe sits before
    /// the first mutation), so the old value epoch keeps serving — a
    /// refresh observes the old values or the new, never a torn mix.
    ValueRefresh = 8,
}

/// Number of distinct [`FaultSite`]s.
pub const SITE_COUNT: usize = 9;

/// Every site, in discriminant order — iterate this to reconcile a
/// report's counters against [`FaultPlan::fired`].
pub const ALL_SITES: [FaultSite; SITE_COUNT] = [
    FaultSite::WorkerSpawn,
    FaultSite::WorkerTaskPanic,
    FaultSite::DispatcherPanic,
    FaultSite::PanelSolve,
    FaultSite::AdmissionAlloc,
    FaultSite::RhsCorruptNonFinite,
    FaultSite::EngineBuild,
    FaultSite::CacheAdmit,
    FaultSite::ValueRefresh,
];

impl FaultSite {
    /// Short label for logs and injected panic payloads.
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::WorkerSpawn => "worker-spawn",
            FaultSite::WorkerTaskPanic => "worker-task-panic",
            FaultSite::DispatcherPanic => "dispatcher-panic",
            FaultSite::PanelSolve => "panel-solve",
            FaultSite::AdmissionAlloc => "admission-alloc",
            FaultSite::RhsCorruptNonFinite => "rhs-corrupt-nonfinite",
            FaultSite::EngineBuild => "engine-build",
            FaultSite::CacheAdmit => "cache-admit",
            FaultSite::ValueRefresh => "value-refresh",
        }
    }
}

/// Denominator of the per-site firing rate: rates are stored in parts
/// per million, so `with_rate(site, 1.0)` fires on every probe.
const PPM: u32 = 1_000_000;

/// A deterministic fault schedule: per-site firing rates and budgets
/// over one seed.
///
/// The decision for the `k`-th probe of a site is drawn from a PCG32
/// stream keyed by `(seed, site, k)` — independent of thread timing,
/// so a plan replays the same fault schedule whenever the probe
/// *counts* per site are reproducible (which the chaos suite arranges
/// by fixing its traffic). Probes and fires are counted per site for
/// post-run reconciliation against a
/// [`crate::serve::ServiceReport`]'s fault counters.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    rate_ppm: [u32; SITE_COUNT],
    budget: [u64; SITE_COUNT],
    probed: [std::sync::atomic::AtomicU64; SITE_COUNT],
    fired: [std::sync::atomic::AtomicU64; SITE_COUNT],
}

impl FaultPlan {
    /// A plan that never fires (all rates zero) over `seed`; arm sites
    /// with [`FaultPlan::with_rate`] / [`FaultPlan::with_budget`].
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed, budget: [u64::MAX; SITE_COUNT], ..FaultPlan::default() }
    }

    /// Fire `site` on each probe independently with probability `rate`
    /// (clamped to `[0, 1]`).
    pub fn with_rate(mut self, site: FaultSite, rate: f64) -> FaultPlan {
        self.rate_ppm[site as usize] = (rate.clamp(0.0, 1.0) * PPM as f64).round() as u32;
        self
    }

    /// Cap `site` at `n` total fires, whatever its rate. A rate-1.0
    /// site with budget 1 fires on exactly its first probe — the shape
    /// the targeted chaos tests use.
    pub fn with_budget(mut self, site: FaultSite, n: u64) -> FaultPlan {
        self.budget[site as usize] = n;
        self
    }

    /// How many times `site` was probed so far.
    pub fn probes(&self, site: FaultSite) -> u64 {
        self.probed[site as usize].load(std::sync::atomic::Ordering::Relaxed)
    }

    /// How many times `site` actually fired so far — the number the
    /// service report's fault counters reconcile against.
    pub fn fired(&self, site: FaultSite) -> u64 {
        self.fired[site as usize].load(std::sync::atomic::Ordering::Relaxed)
    }

    /// One probe of `site`: count it, draw the deterministic decision,
    /// enforce the budget.
    // without the feature nothing probes plans, but the decision logic
    // stays compiled (and unit-tested) in every configuration
    #[cfg_attr(not(feature = "fault-inject"), allow(dead_code))]
    fn should_fire(&self, site: FaultSite) -> bool {
        use std::sync::atomic::Ordering;
        let i = site as usize;
        let rate = self.rate_ppm[i];
        if rate == 0 {
            return false;
        }
        let k = self.probed[i].fetch_add(1, Ordering::Relaxed);
        // one PCG32 stream per site, one draw per probe: the decision
        // is a pure function of (seed, site, probe index)
        let mut rng = desim::Pcg32::new(self.seed ^ SITE_SALT[i], k);
        if rng.next_below(PPM) >= rate {
            return false;
        }
        // budget: admit fires one at a time so concurrent probes never
        // overshoot the cap
        loop {
            let f = self.fired[i].load(Ordering::Relaxed);
            if f >= self.budget[i] {
                return false;
            }
            if self.fired[i]
                .compare_exchange(f, f + 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return true;
            }
        }
    }
}

/// Per-site seed salts (random odd constants) so sites draw from
/// independent streams of one plan seed.
const SITE_SALT: [u64; SITE_COUNT] = [
    0x9E37_79B9_7F4A_7C15,
    0xBF58_476D_1CE4_E5B9,
    0x94D0_49BB_1331_11EB,
    0xD6E8_FEB8_6659_FD93,
    0xA076_1D64_78BD_642F,
    0xE703_7ED1_A0B4_28DB,
    0xC2B2_AE3D_27D4_EB4F,
    0x8CB9_2BA7_2F3D_8DD7,
    0xB492_B66F_BE98_F273,
];

#[cfg(feature = "fault-inject")]
mod armed {
    use super::{FaultPlan, FaultSite};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, PoisonError, RwLock};

    /// The installed plan. Process-global: the dispatcher and pool
    /// workers are separate threads and must observe it.
    static PLAN: RwLock<Option<Arc<FaultPlan>>> = RwLock::new(None);
    /// Cold fast-path flag so an unarmed probe is one relaxed load.
    static ENABLED: AtomicBool = AtomicBool::new(false);

    pub(super) fn install(plan: Option<Arc<FaultPlan>>) -> Option<Arc<FaultPlan>> {
        let mut g = PLAN.write().unwrap_or_else(PoisonError::into_inner);
        let prev = std::mem::replace(&mut *g, plan);
        ENABLED.store(g.is_some(), Ordering::Release);
        prev
    }

    /// Threads whose outermost `with_plan` scope is currently open.
    /// The plan is process-global, so this may legitimately be 0 or 1
    /// — a second thread trying to open a scope is a test bug.
    static OUTERMOST_SCOPES: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(0);

    std::thread_local! {
        /// This thread's `with_plan` nesting depth.
        static DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
    }

    /// RAII token for one `with_plan` scope: tracks per-thread nesting
    /// depth and rejects concurrent outermost scopes across threads.
    pub(super) struct Scope {
        outermost: bool,
    }

    impl Scope {
        pub(super) fn enter() -> Scope {
            let depth = DEPTH.with(|d| {
                let v = d.get();
                d.set(v + 1);
                v
            });
            if depth > 0 {
                // nested on this thread: legal LIFO shadowing
                return Scope { outermost: false };
            }
            if OUTERMOST_SCOPES.fetch_add(1, Ordering::AcqRel) != 0 {
                OUTERMOST_SCOPES.fetch_sub(1, Ordering::AcqRel);
                DEPTH.with(|d| d.set(d.get() - 1));
                panic!(
                    "fault::with_plan: a fault-plan scope is already active on another \
                     thread; plans are process-global, so concurrent scopes would \
                     clobber each other's schedules — serialize chaos scopes on a mutex"
                );
            }
            Scope { outermost: true }
        }
    }

    impl Drop for Scope {
        fn drop(&mut self) {
            DEPTH.with(|d| d.set(d.get() - 1));
            if self.outermost {
                OUTERMOST_SCOPES.fetch_sub(1, Ordering::AcqRel);
            }
        }
    }

    pub(super) fn active() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    pub(super) fn probe(site: FaultSite) -> bool {
        if !ENABLED.load(Ordering::Relaxed) {
            return false;
        }
        let g = PLAN.read().unwrap_or_else(PoisonError::into_inner);
        match g.as_ref() {
            Some(p) => p.should_fire(site),
            None => false,
        }
    }
}

/// Run `f` with `plan` installed as the process-global fault plan,
/// restoring the previously installed plan (if any) on exit — panic
/// included. Without the `fault-inject` feature this is exactly `f()`.
///
/// Scoping is an explicit LIFO stack **per thread**: a nested call on
/// the same thread shadows the outer plan for its duration and the
/// outer plan is restored when the inner scope exits (even by panic).
/// A call while another thread's scope is open **panics** — the plan
/// is process-global, so two live scopes would silently corrupt each
/// other's deterministic schedules, and a loud immediate failure beats
/// a flaky one. Chaos tests serialize on one mutex and never hit this.
#[cfg(feature = "fault-inject")]
pub fn with_plan<R>(plan: &Arc<FaultPlan>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Option<Arc<FaultPlan>>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            if let Some(prev) = self.0.take() {
                armed::install(prev);
            }
        }
    }
    // scope token first: a rejected concurrent scope must panic before
    // touching the installed plan
    let _scope = armed::Scope::enter();
    let prev = armed::install(Some(Arc::clone(plan)));
    let _restore = Restore(Some(prev));
    f()
}

/// Run `f` with `plan` installed as the process-global fault plan,
/// restoring the previously installed plan (if any) on exit — panic
/// included. Without the `fault-inject` feature this is exactly `f()`.
#[cfg(not(feature = "fault-inject"))]
pub fn with_plan<R>(plan: &Arc<FaultPlan>, f: impl FnOnce() -> R) -> R {
    let _ = plan;
    f()
}

/// Whether a fault plan is currently installed. Always `false` without
/// the `fault-inject` feature — the hook the allocation-free test uses
/// to assert the fault plane is inert.
pub fn plan_active() -> bool {
    #[cfg(feature = "fault-inject")]
    {
        armed::active()
    }
    #[cfg(not(feature = "fault-inject"))]
    {
        false
    }
}

/// Probe `site` against the installed plan. Constant `false` without
/// the `fault-inject` feature.
#[cfg(feature = "fault-inject")]
#[inline]
pub(crate) fn fire(site: FaultSite) -> bool {
    armed::probe(site)
}

/// Probe `site` against the installed plan. Constant `false` without
/// the `fault-inject` feature.
#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
pub(crate) fn fire(_site: FaultSite) -> bool {
    false
}

/// Probe `site` and panic with a recognizable payload if it fires —
/// the injection shape for sites whose real-world failure is a panic.
#[inline]
pub(crate) fn fire_panic(site: FaultSite) {
    if fire(site) {
        panic!("injected fault: {}", site.label());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let a = FaultPlan::new(7).with_rate(FaultSite::PanelSolve, 0.5);
        let b = FaultPlan::new(7).with_rate(FaultSite::PanelSolve, 0.5);
        let da: Vec<bool> = (0..64).map(|_| a.should_fire(FaultSite::PanelSolve)).collect();
        let db: Vec<bool> = (0..64).map(|_| b.should_fire(FaultSite::PanelSolve)).collect();
        assert_eq!(da, db, "same seed, same schedule");
        assert!(da.iter().any(|&d| d) && da.iter().any(|&d| !d), "rate 0.5 mixes outcomes");
        let c = FaultPlan::new(8).with_rate(FaultSite::PanelSolve, 0.5);
        let dc: Vec<bool> = (0..64).map(|_| c.should_fire(FaultSite::PanelSolve)).collect();
        assert_ne!(da, dc, "different seeds diverge");
    }

    #[test]
    fn budget_caps_fires() {
        let p = FaultPlan::new(3)
            .with_rate(FaultSite::DispatcherPanic, 1.0)
            .with_budget(FaultSite::DispatcherPanic, 2);
        let fired = (0..10).filter(|_| p.should_fire(FaultSite::DispatcherPanic)).count();
        assert_eq!(fired, 2);
        assert_eq!(p.fired(FaultSite::DispatcherPanic), 2);
        assert_eq!(p.probes(FaultSite::DispatcherPanic), 10);
    }

    #[test]
    fn sites_are_independent_streams() {
        let p = FaultPlan::new(11)
            .with_rate(FaultSite::WorkerSpawn, 1.0)
            .with_rate(FaultSite::AdmissionAlloc, 0.0);
        assert!(p.should_fire(FaultSite::WorkerSpawn));
        assert!(!p.should_fire(FaultSite::AdmissionAlloc));
        assert_eq!(p.probes(FaultSite::AdmissionAlloc), 0, "zero-rate sites skip the draw");
    }

    #[test]
    fn unarmed_probes_never_fire() {
        let _g = global_guard();
        assert!(!plan_active());
        assert!(!fire(FaultSite::PanelSolve));
        fire_panic(FaultSite::PanelSolve); // must not panic
    }

    /// Satellite: N threads hammering one CAS-budgeted site fire
    /// exactly `budget` times — concurrent probes can race the rate
    /// draw freely, but the fired CAS loop admits one fire at a time
    /// and never overshoots.
    #[test]
    fn concurrent_probes_never_overshoot_budget() {
        const THREADS: usize = 8;
        const PROBES: usize = 1000;
        const BUDGET: u64 = 17;
        let p = FaultPlan::new(0xC0FFEE)
            .with_rate(FaultSite::CacheAdmit, 1.0)
            .with_budget(FaultSite::CacheAdmit, BUDGET);
        let fired: usize = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    s.spawn(|| (0..PROBES).filter(|_| p.should_fire(FaultSite::CacheAdmit)).count())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(fired as u64, BUDGET, "exactly the budget, never more");
        assert_eq!(p.fired(FaultSite::CacheAdmit), BUDGET);
        assert_eq!(p.probes(FaultSite::CacheAdmit), (THREADS * PROBES) as u64);
    }

    #[test]
    fn new_sites_have_salts_and_labels() {
        assert_eq!(ALL_SITES.len(), SITE_COUNT);
        for (i, s) in ALL_SITES.iter().enumerate() {
            assert_eq!(*s as usize, i, "discriminants match ALL_SITES order");
            assert!(!s.label().is_empty());
        }
        let salts: std::collections::HashSet<u64> = SITE_SALT.iter().copied().collect();
        assert_eq!(salts.len(), SITE_COUNT, "per-site salts are distinct");
    }

    /// The installed-plan tests below mutate process-global state; they
    /// serialize on this mutex (integration-test chaos suites live in a
    /// different process, so only this binary's tests matter here).
    static GLOBAL: Mutex<()> = Mutex::new(());
    use std::sync::{Mutex, MutexGuard, PoisonError};

    fn global_guard() -> MutexGuard<'static, ()> {
        GLOBAL.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Satellite: nesting is documented LIFO shadowing — the inner
    /// plan's schedule applies inside the inner scope, the outer plan
    /// is restored when it exits, panic included.
    #[cfg(feature = "fault-inject")]
    #[test]
    fn with_plan_nests_lifo_and_restores_on_panic() {
        let _g = global_guard();
        let outer = Arc::new(FaultPlan::new(1).with_rate(FaultSite::PanelSolve, 1.0));
        let inner = Arc::new(FaultPlan::new(2)); // never fires
        with_plan(&outer, || {
            assert!(fire(FaultSite::PanelSolve), "outer plan armed");
            with_plan(&inner, || {
                assert!(!fire(FaultSite::PanelSolve), "inner plan shadows the outer");
            });
            assert!(fire(FaultSite::PanelSolve), "outer plan restored after inner exits");
            // a panicking inner scope must restore the outer plan too
            let r = std::panic::catch_unwind(|| with_plan(&inner, || panic!("inner scope dies")));
            assert!(r.is_err());
            assert!(fire(FaultSite::PanelSolve), "outer plan restored after inner panic");
        });
        assert!(!plan_active(), "everything restored after the stack unwinds");
    }

    /// Satellite: a concurrent scope on another thread is a loud typed
    /// failure (panic with a diagnostic), not silent last-writer-wins.
    #[cfg(feature = "fault-inject")]
    #[test]
    fn with_plan_concurrent_scopes_panic() {
        let _g = global_guard();
        let plan = Arc::new(FaultPlan::new(3));
        with_plan(&plan, || {
            let other = Arc::new(FaultPlan::new(4));
            let r = std::thread::spawn(move || {
                std::panic::catch_unwind(|| with_plan(&other, || ())).is_err()
            })
            .join()
            .unwrap();
            assert!(r, "the second thread's scope must be rejected");
            assert!(plan_active(), "the first thread's plan survives the rejection");
        });
        assert!(!plan_active());
        // and after the rejection, a fresh scope works again
        with_plan(&plan, || assert!(plan_active()));
    }
}
