//! Multi-core CPU level-set solver — the "multi-CPU" context of §I.
//!
//! The paper positions its design against CPU-side parallel SpTRSV
//! (e.g. the Sunway and NUMA-multicore work it cites \[4\]\[22\]): on CPUs
//! the level-set schedule with a barrier per level is the standard
//! parallelization. This module implements it with real OS threads
//! (`std::thread::scope`) and lock-free `f64` accumulation, so the
//! repository also contains an *actually parallel* solver measured in
//! wall-clock rather than simulated time.
//!
//! Concurrency design (per the Rust Atomics & Locks guidance): `x`
//! entries within a level are written by exactly one thread (the level
//! partition is disjoint), while `left_sum` targets may collide across
//! threads, so they are accumulated with a compare-exchange loop over
//! `AtomicU64` bit-patterns — the canonical lock-free f64 add. Workers
//! are spawned once and meet at a [`std::sync::Barrier`] between
//! levels. When one thread (or a level structure too narrow to feed
//! several) makes the run effectively serial, a non-atomic fast path
//! runs on plain `f64` buffers instead — no bit-cast round trips or
//! CAS loops on uncontended elements.
//!
//! Scaling caveat (measured in `benches/substrate.rs`): on scattered
//! dependency structures the CAS accumulation ping-pongs cache lines
//! between cores, so multi-thread runs can *lose* to the serial sweep
//! on small systems — the shared-memory contention wall that motivates
//! both the paper's GPU focus (§I) and the literature's more elaborate
//! CPU schemes (NUMA-aware STS-k \[22\], Sunway tiling \[4\]).

use sparsemat::{CscMatrix, LevelSets, MatrixError, Triangle};
use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free `left_sum[i] += v` via CAS on the f64 bit pattern.
#[inline]
fn atomic_f64_add(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let new = f64::from_bits(cur) + v;
        match cell.compare_exchange_weak(cur, new.to_bits(), Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// Solve a triangular system with `threads` OS threads using the
/// level-set schedule (barrier per level).
///
/// # Errors
/// Returns the validation error if `m` is not a solvable factor.
pub fn solve_parallel(
    m: &CscMatrix,
    b: &[f64],
    tri: Triangle,
    threads: usize,
) -> Result<Vec<f64>, MatrixError> {
    m.validate_triangular(tri)?;
    assert_eq!(b.len(), m.n(), "rhs length mismatch");
    let threads = threads.max(1);
    let n = m.n();
    let ls = LevelSets::analyze(m, tri);

    let col_ptr = m.col_ptr();
    let row_idx = m.row_idx();
    let values = m.values();

    // Parallelism only pays when levels are wide enough to amortize the
    // per-level barrier — the same overhead trade-off Fig. 9 exposes
    // for GPU kernel launches.
    let max_width = ls.max_level_width();
    if threads == 1 || max_width < 2 * threads {
        // Serial fast path: a single thread owns every component, so
        // plain f64 buffers suffice — no AtomicU64 bit-cast round trips
        // or CAS loops on each element.
        let mut x = vec![0.0f64; n];
        let mut left_sum = vec![0.0f64; n];
        for level in ls.iter_levels() {
            for &c in level {
                let j = c as usize;
                let (lo, hi) = (col_ptr[j], col_ptr[j + 1]);
                let diag = match tri {
                    Triangle::Lower => values[lo],
                    Triangle::Upper => values[hi - 1],
                };
                let xj = (b[j] - left_sum[j]) / diag;
                x[j] = xj;
                let (ulo, uhi) = match tri {
                    Triangle::Lower => (lo + 1, hi),
                    Triangle::Upper => (lo, hi - 1),
                };
                for k in ulo..uhi {
                    left_sum[row_idx[k] as usize] += values[k] * xj;
                }
            }
        }
        return Ok(x);
    }

    let left_sum: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0f64.to_bits())).collect();
    // x entries are written once each, by the unique thread owning the
    // component within its level; reads happen only in later levels.
    let x: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0f64.to_bits())).collect();

    let solve_one = |c: u32| {
        let j = c as usize;
        let (lo, hi) = (col_ptr[j], col_ptr[j + 1]);
        let diag = match tri {
            Triangle::Lower => values[lo],
            Triangle::Upper => values[hi - 1],
        };
        let ls_j = f64::from_bits(left_sum[j].load(Ordering::Acquire));
        let xj = (b[j] - ls_j) / diag;
        x[j].store(xj.to_bits(), Ordering::Release);
        let (ulo, uhi) = match tri {
            Triangle::Lower => (lo + 1, hi),
            Triangle::Upper => (lo, hi - 1),
        };
        for k in ulo..uhi {
            atomic_f64_add(&left_sum[row_idx[k] as usize], values[k] * xj);
        }
    };

    // Persistent workers: threads are spawned once and meet at a
    // barrier between levels (spawning per level costs orders of
    // magnitude more than the barrier).
    let barrier = std::sync::Barrier::new(threads);
    let solve_one = &solve_one;
    let barrier = &barrier;
    let ls = &ls;
    std::thread::scope(|scope| {
        for tid in 0..threads {
            scope.spawn(move || {
                for level in ls.iter_levels() {
                    let chunk = level.len().div_ceil(threads);
                    let lo = (tid * chunk).min(level.len());
                    let hi = ((tid + 1) * chunk).min(level.len());
                    for &c in &level[lo..hi] {
                        solve_one(c);
                    }
                    // updates of this level become visible to the
                    // next through the barrier's synchronization
                    barrier.wait();
                }
            });
        }
    });

    Ok(x.into_iter().map(|a| f64::from_bits(a.into_inner())).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{reference, verify};
    use sparsemat::gen;

    #[test]
    fn matches_reference_on_lower() {
        let m = gen::level_structured(&gen::LevelSpec::new(3_000, 40, 12_000, 7));
        let (_, b) = verify::rhs_for(&m, 1);
        let expected = reference::solve_lower(&m, &b).unwrap();
        for threads in [1usize, 2, 4, 8] {
            let x = solve_parallel(&m, &b, Triangle::Lower, threads).unwrap();
            let err = verify::rel_inf_diff(&x, &expected);
            assert!(err < 1e-9, "threads={threads}: err {err}");
        }
    }

    #[test]
    fn matches_reference_on_upper() {
        let u = gen::banded_lower(1_000, 8, 4.0, 3).transpose();
        let (_, b) = verify::rhs_for(&u, 2);
        let expected = reference::solve_upper(&u, &b).unwrap();
        let x = solve_parallel(&u, &b, Triangle::Upper, 4).unwrap();
        assert!(verify::rel_inf_diff(&x, &expected) < 1e-9);
    }

    #[test]
    fn zero_thread_request_clamps_to_one() {
        let m = gen::chain(50);
        let (_, b) = verify::rhs_for(&m, 3);
        let x = solve_parallel(&m, &b, Triangle::Lower, 0).unwrap();
        let expected = reference::solve_lower(&m, &b).unwrap();
        assert!(verify::rel_inf_diff(&x, &expected) < 1e-12);
    }

    #[test]
    fn rejects_invalid_factors() {
        let a = gen::grid_laplacian(4, 4); // not triangular
        let b = vec![1.0; a.n()];
        assert!(solve_parallel(&a, &b, Triangle::Lower, 2).is_err());
    }

    #[test]
    fn atomic_add_accumulates_under_contention() {
        let cell = AtomicU64::new(0f64.to_bits());
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1_000 {
                        atomic_f64_add(&cell, 0.5);
                    }
                });
            }
        });
        let total = f64::from_bits(cell.load(Ordering::Relaxed));
        assert_eq!(total, 8.0 * 1_000.0 * 0.5);
    }
}
