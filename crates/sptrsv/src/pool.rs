//! A persistent worker pool for batched and sharded warm solves.
//!
//! PR 1's `solve_batch` spawned fresh OS threads (`std::thread::scope`)
//! on every call — fine for one batch, but the paper's serving scenario
//! calls the solve phase thousands of times, and a thread spawn costs
//! orders of magnitude more than a warm replay of a small factor. The
//! [`WorkerPool`] here is spawned lazily on the first pooled solve and
//! reused for the lifetime of the engine. It dispatches two shapes of
//! work:
//!
//! * **Scoped batches** ([`WorkerPool::scope_run`]) — a `Vec` of
//!   independent boxed tasks; each call enqueues its chunk tasks and
//!   blocks until a completion latch opens. The submitting thread
//!   *helps*: while waiting it pops and executes its own batch's queued
//!   jobs, so a `scope_run` issued from **inside** a pool task cannot
//!   deadlock (the nested caller drains its own queue instead of
//!   blocking the only thread that could) and small batches finish with
//!   less handoff latency.
//! * **Parallel regions** ([`WorkerPool::run_region`]) — one shared
//!   `Fn(worker_index)` executed concurrently by `workers` threads (the
//!   caller participates as worker 0). Regions carry **no per-call
//!   allocation** — no boxed closures, no latch `Arc`; the region
//!   descriptor lives in the pool's queue state and workers claim
//!   indices from it. This is the dispatch mode of the sharded
//!   level-parallel replay, which issues one region per solve and
//!   synchronizes its level phases on a stack-allocated
//!   [`RegionBarrier`].
//!
//! ## Why the lifetime erasure is sound
//!
//! Tasks and region bodies borrow the engine's prepared state and the
//! caller's right-hand-side/output buffers, so they are not `'static` —
//! yet the workers are long-lived threads. Both entry points erase the
//! lifetime exactly the way `crossbeam::scope`/`rayon` do, and
//! re-establish safety with a strict discipline:
//!
//! 1. Neither `scope_run` nor `run_region` **returns** (not even by
//!    panic) until every submitted task / claimed worker index has
//!    finished running — a latch (batches) or an outstanding counter
//!    (regions) is decremented *after* the body completes, including by
//!    panic (workers catch unwinds).
//! 2. Panics are captured and re-raised **on the caller's thread**
//!    after the batch/region completes, so worker threads never die and
//!    the borrow discipline cannot be bypassed by unwinding. (A region
//!    body that synchronizes on a [`RegionBarrier`] must not panic
//!    between phases — a worker that unwinds past a barrier would
//!    strand its peers. The sharded replay validates all inputs before
//!    entering the region for exactly this reason.)
//!
//! Together these guarantee every borrow a task carries outlives the
//! task's execution, which is the entire obligation the `'static`
//! erasure discharges. This module is the only `unsafe` code in the
//! shipped library crates ([`DisjointSlice`], the disjoint-write buffer
//! the sharded replay shares across region workers, lives here for the
//! same reason); keep it that way.

use crate::fault::{self, FaultSite};
use crate::telemetry;
use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A task as submitted by a caller: may borrow caller state (`'scope`).
pub type ScopedTask<'scope> = Box<dyn FnOnce() + Send + 'scope>;
/// A task as held by the queue, lifetime-erased under the latch
/// discipline documented at module level.
type ErasedTask = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// Whether the current thread is a pool worker. Callers that would
    /// start a nested parallel region use this to degrade to serial
    /// execution instead (a region needs every worker index on its own
    /// thread, which a nested caller cannot guarantee).
    static IS_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// `true` on threads spawned by a [`WorkerPool`]. The engine's sharded
/// tier checks this to avoid launching a parallel region from inside a
/// pool task (it falls back to the serial replay there).
pub fn on_worker_thread() -> bool {
    IS_POOL_WORKER.with(Cell::get)
}

/// One batch's completion latch: counts outstanding tasks and stows the
/// first panic payload for re-raising on the submitting thread.
struct Latch {
    state: Mutex<LatchState>,
    cv: Condvar,
}

struct LatchState {
    remaining: usize,
    panic: Option<Box<dyn Any + Send>>,
}

impl Latch {
    fn new(tasks: usize) -> Latch {
        Latch {
            state: Mutex::new(LatchState { remaining: tasks, panic: None }),
            cv: Condvar::new(),
        }
    }

    /// Mark one task complete, recording its panic payload if any.
    fn complete(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut st = self.state.lock().expect("latch poisoned");
        st.remaining -= 1;
        if st.panic.is_none() {
            st.panic = panic;
        }
        if st.remaining == 0 {
            self.cv.notify_all();
        }
    }

    /// Block until every task has completed; returns the first panic.
    fn wait(&self) -> Option<Box<dyn Any + Send>> {
        let mut st = self.state.lock().expect("latch poisoned");
        while st.remaining > 0 {
            st = self.cv.wait(st).expect("latch poisoned");
        }
        st.panic.take()
    }
}

struct Job {
    task: ErasedTask,
    latch: Arc<Latch>,
}

/// A lifetime-erased pointer to a region body. Only dereferenced while
/// the submitting `run_region` call is blocked (see the module docs),
/// which keeps the borrow alive.
#[derive(Clone, Copy)]
struct RegionFn(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from many threads are
// fine) and the pointer only crosses threads inside the region
// discipline documented at module level.
unsafe impl Send for RegionFn {}

/// The active parallel region, at most one at a time. Worker indices
/// `1..workers` are claimed by pool threads; index 0 runs on the
/// submitting thread.
struct ActiveRegion {
    f: RegionFn,
    /// Next unclaimed worker index.
    next: usize,
    workers: usize,
    /// Worker indices not yet finished (claimed or not).
    outstanding: usize,
    panic: Option<Box<dyn Any + Send>>,
}

#[derive(Default)]
struct Queue {
    jobs: VecDeque<Job>,
    region: Option<ActiveRegion>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    /// Wakes workers when jobs or region indices become available.
    cv: Condvar,
    /// Wakes region submitters: on region completion and on the region
    /// slot becoming free.
    region_cv: Condvar,
}

/// A lazily grown pool of persistent worker threads executing scoped
/// tasks and parallel regions (see the module docs for the soundness
/// argument).
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Times [`WorkerPool::ensure_threads`] returned fewer workers than
    /// requested (spawn failure, real or injected). Callers with a
    /// serial fallback read this to report how often they degraded.
    shortfalls: AtomicU64,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("threads", &self.threads()).finish()
    }
}

impl WorkerPool {
    /// An empty pool; workers are spawned on demand by
    /// [`WorkerPool::ensure_threads`].
    pub fn new() -> WorkerPool {
        WorkerPool {
            shared: Arc::new(Shared {
                queue: Mutex::new(Queue::default()),
                cv: Condvar::new(),
                region_cv: Condvar::new(),
            }),
            handles: Mutex::new(Vec::new()),
            shortfalls: AtomicU64::new(0),
        }
    }

    /// Current worker count.
    pub fn threads(&self) -> usize {
        self.handles.lock().expect("pool poisoned").len()
    }

    /// Grow the pool to at least `n` workers (never shrinks). Returns
    /// the worker count actually reached: thread-spawn failure (fd or
    /// memory exhaustion) stops the growth instead of panicking, and
    /// the caller decides whether the shortfall matters —
    /// [`WorkerPool::scope_run`]'s helping submitter tolerates any
    /// count, [`WorkerPool::try_run_region`] declines so its caller's
    /// serial fallback runs.
    pub fn ensure_threads(&self, n: usize) -> usize {
        let mut handles = self.handles.lock().expect("pool poisoned");
        while handles.len() < n {
            // injected spawn failure: stop growing exactly like a real
            // EAGAIN from the OS would
            if fault::fire(FaultSite::WorkerSpawn) {
                break;
            }
            let shared = Arc::clone(&self.shared);
            let name = format!("sptrsv-worker-{}", handles.len());
            match std::thread::Builder::new().name(name).spawn(move || worker_loop(&shared)) {
                Ok(h) => handles.push(h),
                Err(_) => break,
            }
        }
        if handles.len() < n {
            self.shortfalls.fetch_add(1, Ordering::Relaxed);
        }
        handles.len()
    }

    /// Times [`WorkerPool::ensure_threads`] came up short of its
    /// request since the pool was created.
    pub fn spawn_shortfalls(&self) -> u64 {
        self.shortfalls.load(Ordering::Relaxed)
    }

    /// Run every task to completion on the pool, blocking the caller
    /// until all have finished. Task panics are re-raised here, on the
    /// calling thread, after the batch completes.
    ///
    /// The submitting thread **helps**: while waiting it executes its
    /// own batch's still-queued jobs. This makes nested calls safe — a
    /// task that itself calls `scope_run` drains the jobs it enqueued
    /// instead of deadlocking on a pool whose only threads are occupied
    /// by its ancestors — and shortens small batches (no handoff wait
    /// for work the caller can do itself).
    pub fn scope_run<'scope>(&self, tasks: Vec<ScopedTask<'scope>>) {
        if tasks.is_empty() {
            return;
        }
        self.ensure_threads(1); // a task must never wait on an empty pool
        let latch = Arc::new(Latch::new(tasks.len()));
        {
            let mut q = self.shared.queue.lock().expect("pool poisoned");
            for task in tasks {
                // SAFETY (lifetime erasure): `latch.wait()` below does
                // not return until this task has finished running and
                // `latch.complete` was called — which happens strictly
                // after the task body returns or unwinds, whether it
                // ran on a worker or on the helping submitter. The
                // caller therefore outlives every borrow the task
                // carries; see the module docs.
                let task: ErasedTask =
                    unsafe { std::mem::transmute::<ScopedTask<'scope>, ErasedTask>(task) };
                q.jobs.push_back(Job { task, latch: Arc::clone(&latch) });
            }
            self.shared.cv.notify_all();
        }
        // help: run this batch's queued jobs on the submitting thread
        loop {
            let job = {
                let mut q = self.shared.queue.lock().expect("pool poisoned");
                match q.jobs.iter().position(|j| Arc::ptr_eq(&j.latch, &latch)) {
                    Some(at) => q.jobs.remove(at),
                    None => None,
                }
            };
            match job {
                Some(job) => {
                    let result = catch_unwind(AssertUnwindSafe(job.task));
                    job.latch.complete(result.err());
                }
                None => break, // rest of the batch is running on workers
            }
        }
        if let Some(payload) = latch.wait() {
            resume_unwind(payload);
        }
    }

    /// Run `f(worker)` for every `worker` in `0..workers`, each on its
    /// own thread, blocking until all have finished. The calling thread
    /// participates as worker 0; workers `1..` are pool threads.
    ///
    /// Unlike [`WorkerPool::scope_run`] this allocates **nothing** per
    /// call in steady state: the region descriptor lives in the pool's
    /// queue state and `f` is shared by reference, so a solver that
    /// issues one region per warm solve stays heap-silent. `f` may
    /// synchronize its workers on a [`RegionBarrier`] of size `workers`
    /// — every index is guaranteed its own thread. Two rules follow
    /// from that guarantee:
    ///
    /// * regions must not be started from inside a pool task (the
    ///   nested caller cannot provide distinct threads) — check
    ///   [`on_worker_thread`] and degrade to `workers == 1` instead;
    /// * `f` must not panic between barrier phases (the unwinding
    ///   worker would strand its peers mid-barrier); panics outside
    ///   barrier use are caught and re-raised on the caller.
    pub fn run_region<'scope>(&self, workers: usize, f: &(dyn Fn(usize) + Sync + 'scope)) {
        // a zero request means "no parallelism", not "no work": clamp
        // to one worker instead of panicking on the degenerate count
        let workers = workers.max(1);
        if workers == 1 {
            f(0);
            return;
        }
        let f_static = self.prepare_region(workers, f);
        {
            let mut q = self.shared.queue.lock().expect("pool poisoned");
            // one region at a time: wait for the slot to free up
            while q.region.is_some() {
                q = self.shared.region_cv.wait(q).expect("pool poisoned");
            }
            install_region(&mut q, f_static, workers);
            self.shared.cv.notify_all();
        }
        self.finish_region(f);
    }

    /// [`WorkerPool::run_region`] that refuses to queue: if another
    /// region is already running on this pool, return `false`
    /// immediately (nothing executed) instead of waiting for the slot.
    ///
    /// This is the right entry point for callers with a serial
    /// fallback of equal result — e.g. the sharded replay, whose
    /// serial and parallel paths are bit-identical: when the pool is
    /// contended, running serially *now* beats queueing for threads
    /// another solve is using.
    pub fn try_run_region<'scope>(
        &self,
        workers: usize,
        f: &(dyn Fn(usize) + Sync + 'scope),
    ) -> bool {
        let workers = workers.max(1);
        if workers == 1 {
            f(0);
            return true;
        }
        if self.threads() + 1 < workers {
            // the pool could not spawn enough workers (see
            // `ensure_threads`) — decline so the caller's equal-result
            // serial fallback runs instead of stranding a region
            if self.ensure_threads(workers - 1) < workers - 1 {
                return false;
            }
        }
        let f_static = self.prepare_region(workers, f);
        {
            let mut q = self.shared.queue.lock().expect("pool poisoned");
            if q.region.is_some() {
                return false;
            }
            install_region(&mut q, f_static, workers);
            self.shared.cv.notify_all();
        }
        self.finish_region(f);
        true
    }

    /// Shared multi-worker region preamble: reject nested submission,
    /// grow the pool, erase the body's lifetime.
    fn prepare_region<'scope>(
        &self,
        workers: usize,
        f: &(dyn Fn(usize) + Sync + 'scope),
    ) -> &'static (dyn Fn(usize) + Sync) {
        assert!(
            !on_worker_thread(),
            "region started from a pool worker; degrade to workers == 1 instead"
        );
        let reached = self.ensure_threads(workers - 1);
        assert!(
            reached >= workers - 1,
            "pool could not spawn {workers} region workers (got {reached}); \
             use try_run_region when a serial fallback exists"
        );
        // SAFETY (lifetime erasure): `finish_region` does not return
        // until `outstanding == 0`, i.e. every claimed worker index
        // has finished executing `f` — so the borrow `f` carries
        // outlives all uses of the erased pointer; see the module
        // docs.
        unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync + 'scope), &(dyn Fn(usize) + Sync)>(f)
        }
    }

    /// Run worker 0 on the calling thread, wait out the region, clear
    /// the slot and re-raise any captured panic.
    fn finish_region(&self, f: &(dyn Fn(usize) + Sync + '_)) {
        let own = catch_unwind(AssertUnwindSafe(|| f(0)));
        let payload = {
            let mut q = self.shared.queue.lock().expect("pool poisoned");
            {
                let r = q.region.as_mut().expect("region vanished");
                r.outstanding -= 1;
                if let Err(p) = own {
                    if r.panic.is_none() {
                        r.panic = Some(p);
                    }
                }
            }
            while q.region.as_ref().expect("region vanished").outstanding > 0 {
                q = self.shared.region_cv.wait(q).expect("pool poisoned");
            }
            let done = q.region.take().expect("region vanished");
            // wake any submitter queued for the region slot
            self.shared.region_cv.notify_all();
            done.panic
        };
        if let Some(p) = payload {
            resume_unwind(p);
        }
    }
}

/// Install a fresh region descriptor in the (locked) queue state.
fn install_region(q: &mut Queue, f: &'static (dyn Fn(usize) + Sync), workers: usize) {
    debug_assert!(q.region.is_none(), "region slot already occupied");
    telemetry::instant(telemetry::Site::RegionDispatch, workers as u64);
    q.region = Some(ActiveRegion {
        f: RegionFn(f as *const _),
        next: 1,
        workers,
        outstanding: workers,
        panic: None,
    });
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool::new()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().expect("pool poisoned");
            q.shutdown = true;
            self.shared.cv.notify_all();
        }
        let handles = std::mem::take(&mut *self.handles.lock().expect("pool poisoned"));
        for h in handles {
            let _ = h.join();
        }
    }
}

enum Work {
    Task(Job),
    Region(RegionFn, usize),
}

fn worker_loop(shared: &Shared) {
    IS_POOL_WORKER.with(|w| w.set(true));
    // eager ring registration: a worker's first telemetry event (a
    // park instant mid-solve, say) must not be the one that allocates
    telemetry::warm_thread();
    loop {
        let work = {
            let mut q = shared.queue.lock().expect("pool poisoned");
            loop {
                // regions first: they are latency-sensitive (barrier
                // phases stall every participant on the slowest joiner)
                if let Some(r) = q.region.as_mut() {
                    if r.next < r.workers {
                        let idx = r.next;
                        r.next += 1;
                        break Work::Region(r.f, idx);
                    }
                }
                if let Some(job) = q.jobs.pop_front() {
                    break Work::Task(job);
                }
                if q.shutdown {
                    return;
                }
                q = shared.cv.wait(q).expect("pool poisoned");
            }
        };
        match work {
            Work::Task(job) => {
                // catch unwinds so a panicking task cannot kill the
                // worker or skip the latch; the payload resurfaces on
                // the caller's thread. The injected panic rides inside
                // the same catch, exactly like a real task bug — never
                // inside a region body, whose barriers a panicking
                // worker would strand.
                let result = catch_unwind(AssertUnwindSafe(|| {
                    fault::fire_panic(FaultSite::WorkerTaskPanic);
                    (job.task)();
                }));
                job.latch.complete(result.err());
            }
            Work::Region(f, idx) => {
                // SAFETY: the submitting `run_region` is blocked until
                // `outstanding` (decremented below, after the call)
                // reaches zero, so the pointee is alive.
                let body: &(dyn Fn(usize) + Sync) = unsafe { &*f.0 };
                let result = catch_unwind(AssertUnwindSafe(|| body(idx)));
                let mut q = shared.queue.lock().expect("pool poisoned");
                let r = q.region.as_mut().expect("region vanished");
                r.outstanding -= 1;
                if let Err(p) = result {
                    if r.panic.is_none() {
                        r.panic = Some(p);
                    }
                }
                if r.outstanding == 0 {
                    shared.region_cv.notify_all();
                }
            }
        }
    }
}

/// A reusable barrier for the workers of one parallel region.
///
/// Generation-counted (sense-reversing), so one stack-allocated
/// instance serves every level of a sharded replay — **no per-level
/// latch or `Vec` allocation**, the property the zero-allocation warm
/// tier depends on. Arrivals spin briefly (the common case on
/// dedicated cores: peers are a few hundred nanoseconds behind), then
/// park on a condvar so oversubscribed machines don't burn a core
/// per waiter.
pub struct RegionBarrier {
    total: usize,
    arrived: AtomicUsize,
    generation: AtomicU64,
    lock: Mutex<()>,
    cv: Condvar,
}

impl RegionBarrier {
    /// A barrier for `total` region workers. A zero count is clamped
    /// to one participant (a solo barrier is a no-op), matching the
    /// worker-count clamping of the region entry points.
    pub fn new(total: usize) -> RegionBarrier {
        let total = total.max(1);
        RegionBarrier {
            total,
            arrived: AtomicUsize::new(0),
            generation: AtomicU64::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Block until all `total` workers have arrived, then release
    /// everyone. Reusable: the next `wait` round starts immediately.
    pub fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            // last arrival: reset for the next round, then publish the
            // new generation under the lock so parked waiters cannot
            // miss the notification
            self.arrived.store(0, Ordering::Relaxed);
            let _guard = self.lock.lock().expect("barrier poisoned");
            self.generation.fetch_add(1, Ordering::Release);
            self.cv.notify_all();
            return;
        }
        for _ in 0..64 {
            if self.generation.load(Ordering::Acquire) != gen {
                return;
            }
            std::hint::spin_loop();
        }
        // spinning did not pay off — this worker parks on the condvar
        // (the telemetry signal that a solve's workers are imbalanced
        // enough to pay a futex round trip, not just a spin)
        telemetry::instant(telemetry::Site::WorkerPark, gen);
        let mut guard = self.lock.lock().expect("barrier poisoned");
        while self.generation.load(Ordering::Acquire) == gen {
            guard = self.cv.wait(guard).expect("barrier poisoned");
        }
    }
}

impl std::fmt::Debug for RegionBarrier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegionBarrier").field("total", &self.total).finish()
    }
}

/// A `&mut [f64]` shared across the workers of one parallel region
/// under an **owner-computes discipline**: within any barrier phase,
/// every index is written by at most one worker (reads of an index
/// some worker may be writing are likewise forbidden). The sharded
/// replay guarantees this structurally — each row belongs to exactly
/// one shard, each shard to exactly one worker — and the region's
/// barriers order writes of one phase before reads of the next.
///
/// Crate-internal by design: the accessors are not marked `unsafe`
/// (keeping all `unsafe` blocks inside this module), so this type must
/// never be exposed outside the crate.
pub(crate) struct DisjointSlice<'a> {
    ptr: *mut f64,
    len: usize,
    _marker: PhantomData<&'a mut [f64]>,
}

// SAFETY: cross-thread use is exactly what the type exists for; the
// disjoint-write discipline documented above makes it race-free.
unsafe impl Send for DisjointSlice<'_> {}
unsafe impl Sync for DisjointSlice<'_> {}

impl<'a> DisjointSlice<'a> {
    /// Wrap a uniquely borrowed slice for region-wide sharing.
    pub(crate) fn new(s: &'a mut [f64]) -> DisjointSlice<'a> {
        DisjointSlice { ptr: s.as_mut_ptr(), len: s.len(), _marker: PhantomData }
    }

    /// Read element `i`. Discipline: no worker may be writing `i` in
    /// the current barrier phase.
    #[inline]
    pub(crate) fn get(&self, i: usize) -> f64 {
        assert!(i < self.len, "index {i} out of bounds ({})", self.len);
        // SAFETY: in-bounds (asserted); racing writes are excluded by
        // the owner-computes discipline documented on the type.
        unsafe { *self.ptr.add(i) }
    }

    /// Write element `i`. Discipline: the calling worker owns `i` in
    /// the current barrier phase.
    #[inline]
    pub(crate) fn set(&self, i: usize, v: f64) {
        assert!(i < self.len, "index {i} out of bounds ({})", self.len);
        // SAFETY: in-bounds (asserted); exclusive ownership of `i` in
        // this phase is guaranteed by the caller's shard construction.
        unsafe { *self.ptr.add(i) = v }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_borrowing_tasks_to_completion() {
        let pool = WorkerPool::new();
        pool.ensure_threads(4);
        let mut out = vec![0usize; 64];
        let tasks: Vec<ScopedTask<'_>> = out
            .chunks_mut(16)
            .enumerate()
            .map(|(k, chunk)| {
                let t: ScopedTask<'_> = Box::new(move || {
                    for (i, slot) in chunk.iter_mut().enumerate() {
                        *slot = k * 100 + i;
                    }
                });
                t
            })
            .collect();
        pool.scope_run(tasks);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i / 16) * 100 + i % 16);
        }
    }

    #[test]
    fn pool_is_reused_across_calls() {
        let pool = WorkerPool::new();
        pool.ensure_threads(2);
        let counter = AtomicUsize::new(0);
        for _ in 0..10 {
            let tasks: Vec<ScopedTask<'_>> = (0..8)
                .map(|_| {
                    let t: ScopedTask<'_> = Box::new(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                    t
                })
                .collect();
            pool.scope_run(tasks);
        }
        assert_eq!(counter.load(Ordering::Relaxed), 80);
        assert_eq!(pool.threads(), 2, "no per-call spawning");
    }

    #[test]
    fn task_panic_reraises_on_caller_and_keeps_workers_alive() {
        let pool = WorkerPool::new();
        pool.ensure_threads(2);
        let err = catch_unwind(AssertUnwindSafe(|| {
            pool.scope_run(vec![Box::new(|| panic!("task exploded")) as ScopedTask<'_>]);
        }));
        assert!(err.is_err(), "panic must propagate to the caller");
        // the pool still works afterwards
        let ran = AtomicUsize::new(0);
        pool.scope_run(vec![Box::new(|| {
            ran.fetch_add(1, Ordering::Relaxed);
        }) as ScopedTask<'_>]);
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn empty_task_list_is_a_no_op() {
        let pool = WorkerPool::new();
        pool.scope_run(Vec::new());
        assert_eq!(pool.threads(), 0);
    }

    /// Regression for the nested-submission deadlock: a task running on
    /// the pool's only worker issues its own `scope_run`. Before the
    /// helping submitter, the inner call blocked on a latch no thread
    /// could ever drain; now the nested caller executes its own queued
    /// jobs in place.
    #[test]
    fn nested_scope_run_from_a_pool_task_completes() {
        let pool = WorkerPool::new();
        pool.ensure_threads(1); // exactly one worker: the hazard case
        let inner_runs = AtomicUsize::new(0);
        let tasks: Vec<ScopedTask<'_>> = vec![Box::new(|| {
            let nested: Vec<ScopedTask<'_>> = (0..4)
                .map(|_| {
                    let t: ScopedTask<'_> = Box::new(|| {
                        inner_runs.fetch_add(1, Ordering::Relaxed);
                    });
                    t
                })
                .collect();
            pool.scope_run(nested);
        })];
        pool.scope_run(tasks);
        assert_eq!(inner_runs.load(Ordering::Relaxed), 4);
        assert_eq!(pool.threads(), 1, "helping must not grow the pool");
    }

    #[test]
    fn worker_threads_are_flagged() {
        assert!(!on_worker_thread(), "the test thread is not a pool worker");
        let pool = WorkerPool::new();
        let seen = AtomicUsize::new(0);
        // run enough tasks that at least one lands on a worker; the
        // helping submitter contributes `false` observations only to
        // its own thread-local, never the workers'
        pool.ensure_threads(2);
        let tasks: Vec<ScopedTask<'_>> = (0..8)
            .map(|_| {
                let t: ScopedTask<'_> = Box::new(|| {
                    if on_worker_thread() {
                        seen.fetch_add(1, Ordering::Relaxed);
                    }
                    std::thread::sleep(std::time::Duration::from_millis(1));
                });
                t
            })
            .collect();
        pool.scope_run(tasks);
        assert!(seen.load(Ordering::Relaxed) > 0, "some task must run on a flagged worker");
    }

    #[test]
    fn region_runs_every_index_exactly_once() {
        let pool = WorkerPool::new();
        let hits: Vec<AtomicUsize> = (0..6).map(|_| AtomicUsize::new(0)).collect();
        for _ in 0..10 {
            pool.run_region(6, &|w| {
                hits[w].fetch_add(1, Ordering::Relaxed);
            });
        }
        for (w, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 10, "worker {w}");
        }
        assert_eq!(pool.threads(), 5, "caller participates as worker 0");
    }

    #[test]
    fn region_with_barrier_synchronizes_phases() {
        let pool = WorkerPool::new();
        let workers = 4;
        let mut phase_a = vec![0.0f64; workers];
        let mut phase_b = vec![0.0f64; workers];
        {
            let a = DisjointSlice::new(&mut phase_a);
            let b = DisjointSlice::new(&mut phase_b);
            let barrier = RegionBarrier::new(workers);
            pool.run_region(workers, &|w| {
                a.set(w, (w + 1) as f64);
                barrier.wait();
                // after the barrier every phase-A write is visible
                let sum: f64 = (0..workers).map(|k| a.get(k)).sum();
                b.set(w, sum);
            });
        }
        let expect = (1..=workers).sum::<usize>() as f64;
        for (w, v) in phase_b.iter().enumerate() {
            assert_eq!(*v, expect, "worker {w} must see all phase-A writes");
        }
    }

    #[test]
    fn region_panic_reraises_on_caller() {
        let pool = WorkerPool::new();
        let err = catch_unwind(AssertUnwindSafe(|| {
            pool.run_region(3, &|w| {
                if w == 2 {
                    panic!("region worker exploded");
                }
            });
        }));
        assert!(err.is_err(), "region panic must propagate");
        // the pool still serves regions afterwards
        let ran = AtomicUsize::new(0);
        pool.run_region(3, &|_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn single_worker_region_runs_inline() {
        let pool = WorkerPool::new();
        let ran = AtomicUsize::new(0);
        pool.run_region(1, &|w| {
            assert_eq!(w, 0);
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
        assert_eq!(pool.threads(), 0, "workers == 1 must not spawn threads");
    }

    #[test]
    fn try_run_region_declines_when_busy_and_recovers() {
        let pool = Arc::new(WorkerPool::new());
        pool.ensure_threads(2);
        let hold = Arc::new(AtomicUsize::new(0));
        let entered = Arc::new(AtomicUsize::new(0));
        let (p2, h2, e2) = (Arc::clone(&pool), Arc::clone(&hold), Arc::clone(&entered));
        let t = std::thread::spawn(move || {
            p2.run_region(2, &|_| {
                e2.fetch_add(1, Ordering::SeqCst);
                while h2.load(Ordering::SeqCst) == 0 {
                    std::thread::yield_now();
                }
            });
        });
        // wait until the first region is definitely occupying the slot
        while entered.load(Ordering::SeqCst) < 2 {
            std::thread::yield_now();
        }
        let ran = AtomicUsize::new(0);
        let accepted = pool.try_run_region(2, &|_| {
            ran.fetch_add(1, Ordering::SeqCst);
        });
        assert!(!accepted, "a busy region slot must decline, not queue");
        assert_eq!(ran.load(Ordering::SeqCst), 0, "a declined region runs nothing");
        hold.store(1, Ordering::SeqCst);
        t.join().unwrap();
        let accepted = pool.try_run_region(2, &|_| {
            ran.fetch_add(1, Ordering::SeqCst);
        });
        assert!(accepted, "the slot must free up after the region completes");
        assert_eq!(ran.load(Ordering::SeqCst), 2);
    }

    /// Zero worker counts are a degenerate request, not a bug: every
    /// entry point that accepts a count clamps to one instead of
    /// panicking.
    #[test]
    fn zero_worker_requests_are_clamped_not_panicked() {
        let pool = WorkerPool::new();
        let ran = AtomicUsize::new(0);
        pool.run_region(0, &|w| {
            assert_eq!(w, 0);
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert!(pool.try_run_region(0, &|_| {
            ran.fetch_add(1, Ordering::Relaxed);
        }));
        assert_eq!(ran.load(Ordering::Relaxed), 2);
        assert_eq!(pool.threads(), 0, "clamped regions run inline");
        RegionBarrier::new(0).wait(); // a solo barrier is a no-op
    }

    #[test]
    fn barrier_is_reusable_across_many_rounds() {
        let pool = WorkerPool::new();
        let workers = 3;
        let rounds = 50;
        let counter = AtomicUsize::new(0);
        let barrier = RegionBarrier::new(workers);
        pool.run_region(workers, &|_| {
            for r in 0..rounds {
                counter.fetch_add(1, Ordering::Relaxed);
                barrier.wait();
                // between barriers, every worker sees the full round
                assert!(counter.load(Ordering::Relaxed) >= (r + 1) * workers);
                barrier.wait();
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), rounds * workers);
    }
}
