//! A persistent worker pool for batched warm solves.
//!
//! PR 1's `solve_batch` spawned fresh OS threads (`std::thread::scope`)
//! on every call — fine for one batch, but the paper's serving scenario
//! calls the solve phase thousands of times, and a thread spawn costs
//! orders of magnitude more than a warm replay of a small factor. The
//! [`WorkerPool`] here is spawned lazily on the first batched solve and
//! reused for the lifetime of the engine: each call enqueues its chunk
//! tasks and blocks until a completion latch opens.
//!
//! ## Why the lifetime erasure is sound
//!
//! Tasks borrow the engine's prepared state and the caller's
//! right-hand-side/output buffers, so their closures are not `'static`
//! — yet the workers are long-lived threads. [`WorkerPool::scope_run`]
//! erases the lifetime exactly the way `crossbeam::scope`/`rayon`
//! do, and re-establishes safety with a strict discipline:
//!
//! 1. `scope_run` does **not return** (not even by panic) until every
//!    submitted task has finished running — a latch counts tasks down,
//!    and the count is decremented *after* the task body completes,
//!    including by panic (the worker catches unwinds).
//! 2. Task panics are captured and re-raised **on the caller's
//!    thread** after the latch opens, so worker threads never die and
//!    the borrow discipline cannot be bypassed by unwinding.
//!
//! Together these guarantee every borrow a task carries outlives the
//! task's execution, which is the entire obligation the `'static`
//! erasure discharges. This module is the only `unsafe` code in the
//! shipped library crates; keep it that way.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A task as submitted by a caller: may borrow caller state (`'scope`).
pub type ScopedTask<'scope> = Box<dyn FnOnce() + Send + 'scope>;
/// A task as held by the queue, lifetime-erased under the latch
/// discipline documented at module level.
type ErasedTask = Box<dyn FnOnce() + Send + 'static>;

/// One batch's completion latch: counts outstanding tasks and stows the
/// first panic payload for re-raising on the submitting thread.
struct Latch {
    state: Mutex<LatchState>,
    cv: Condvar,
}

struct LatchState {
    remaining: usize,
    panic: Option<Box<dyn Any + Send>>,
}

impl Latch {
    fn new(tasks: usize) -> Latch {
        Latch {
            state: Mutex::new(LatchState { remaining: tasks, panic: None }),
            cv: Condvar::new(),
        }
    }

    /// Mark one task complete, recording its panic payload if any.
    fn complete(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut st = self.state.lock().expect("latch poisoned");
        st.remaining -= 1;
        if st.panic.is_none() {
            st.panic = panic;
        }
        if st.remaining == 0 {
            self.cv.notify_all();
        }
    }

    /// Block until every task has completed; returns the first panic.
    fn wait(&self) -> Option<Box<dyn Any + Send>> {
        let mut st = self.state.lock().expect("latch poisoned");
        while st.remaining > 0 {
            st = self.cv.wait(st).expect("latch poisoned");
        }
        st.panic.take()
    }
}

struct Job {
    task: ErasedTask,
    latch: Arc<Latch>,
}

#[derive(Default)]
struct Queue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    cv: Condvar,
}

/// A lazily grown pool of persistent worker threads executing scoped
/// tasks (see the module docs for the soundness argument).
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("threads", &self.threads()).finish()
    }
}

impl WorkerPool {
    /// An empty pool; workers are spawned on demand by
    /// [`WorkerPool::ensure_threads`].
    pub fn new() -> WorkerPool {
        WorkerPool {
            shared: Arc::new(Shared { queue: Mutex::new(Queue::default()), cv: Condvar::new() }),
            handles: Mutex::new(Vec::new()),
        }
    }

    /// Current worker count.
    pub fn threads(&self) -> usize {
        self.handles.lock().expect("pool poisoned").len()
    }

    /// Grow the pool to at least `n` workers (never shrinks).
    pub fn ensure_threads(&self, n: usize) {
        let mut handles = self.handles.lock().expect("pool poisoned");
        while handles.len() < n {
            let shared = Arc::clone(&self.shared);
            let name = format!("sptrsv-worker-{}", handles.len());
            handles.push(
                std::thread::Builder::new()
                    .name(name)
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn solver worker"),
            );
        }
    }

    /// Run every task to completion on the pool, blocking the caller
    /// until all have finished. Task panics are re-raised here, on the
    /// calling thread, after the batch completes.
    pub fn scope_run<'scope>(&self, tasks: Vec<ScopedTask<'scope>>) {
        if tasks.is_empty() {
            return;
        }
        self.ensure_threads(1); // a task must never wait on an empty pool
        let latch = Arc::new(Latch::new(tasks.len()));
        {
            let mut q = self.shared.queue.lock().expect("pool poisoned");
            for task in tasks {
                // SAFETY (lifetime erasure): `latch.wait()` below does
                // not return until `worker_loop` has finished running
                // this task and called `latch.complete` — which happens
                // strictly after the task body returns or unwinds. The
                // caller therefore outlives every borrow the task
                // carries; see the module docs.
                let task: ErasedTask =
                    unsafe { std::mem::transmute::<ScopedTask<'scope>, ErasedTask>(task) };
                q.jobs.push_back(Job { task, latch: Arc::clone(&latch) });
            }
            self.shared.cv.notify_all();
        }
        if let Some(payload) = latch.wait() {
            std::panic::resume_unwind(payload);
        }
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool::new()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().expect("pool poisoned");
            q.shutdown = true;
            self.shared.cv.notify_all();
        }
        let handles = std::mem::take(&mut *self.handles.lock().expect("pool poisoned"));
        for h in handles {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("pool poisoned");
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = shared.cv.wait(q).expect("pool poisoned");
            }
        };
        // catch unwinds so a panicking task cannot kill the worker or
        // skip the latch; the payload resurfaces on the caller's thread
        let result = catch_unwind(AssertUnwindSafe(job.task));
        job.latch.complete(result.err());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_borrowing_tasks_to_completion() {
        let pool = WorkerPool::new();
        pool.ensure_threads(4);
        let mut out = vec![0usize; 64];
        let tasks: Vec<ScopedTask<'_>> = out
            .chunks_mut(16)
            .enumerate()
            .map(|(k, chunk)| {
                let t: ScopedTask<'_> = Box::new(move || {
                    for (i, slot) in chunk.iter_mut().enumerate() {
                        *slot = k * 100 + i;
                    }
                });
                t
            })
            .collect();
        pool.scope_run(tasks);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i / 16) * 100 + i % 16);
        }
    }

    #[test]
    fn pool_is_reused_across_calls() {
        let pool = WorkerPool::new();
        pool.ensure_threads(2);
        let counter = AtomicUsize::new(0);
        for _ in 0..10 {
            let tasks: Vec<ScopedTask<'_>> = (0..8)
                .map(|_| {
                    let t: ScopedTask<'_> = Box::new(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                    t
                })
                .collect();
            pool.scope_run(tasks);
        }
        assert_eq!(counter.load(Ordering::Relaxed), 80);
        assert_eq!(pool.threads(), 2, "no per-call spawning");
    }

    #[test]
    fn task_panic_reraises_on_caller_and_keeps_workers_alive() {
        let pool = WorkerPool::new();
        pool.ensure_threads(2);
        let err = catch_unwind(AssertUnwindSafe(|| {
            pool.scope_run(vec![Box::new(|| panic!("task exploded")) as ScopedTask<'_>]);
        }));
        assert!(err.is_err(), "panic must propagate to the caller");
        // the pool still works afterwards
        let ran = AtomicUsize::new(0);
        pool.scope_run(vec![Box::new(|| {
            ran.fetch_add(1, Ordering::Relaxed);
        }) as ScopedTask<'_>]);
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn empty_task_list_is_a_no_op() {
        let pool = WorkerPool::new();
        pool.scope_run(Vec::new());
        assert_eq!(pool.threads(), 0);
    }
}
