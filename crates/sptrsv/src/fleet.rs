//! # fleet — fault-isolated multi-tenant serving over a factor cache
//!
//! A production serving tier rarely holds one factor: an iterative
//! pipeline re-factors as the operator drifts, and many independent
//! systems (tenants) share one box. [`EngineFleet`] is that tier for
//! this repository's solvers. Clients address requests by
//! [`FactorFingerprint`] — the content-addressed factor identity from
//! [`sparsemat::fingerprint`] — and the fleet routes each right-hand
//! side to a warm per-tenant [`SolverService`], building, caching and
//! evicting [`SolverEngine`]s on demand under a hard byte budget.
//!
//! ## Architecture
//!
//! * **Bulkheads.** Every cached engine lives on its own OS thread
//!   (the *tenant thread*), which owns the `Arc<CscMatrix>`, builds
//!   the engine on its own stack, and runs
//!   [`SolverService::run_supervised`] locally, pumping requests from
//!   an mpsc mailbox. No tenant shares a dispatcher, a queue, or a
//!   panic domain with any other — the classic bulkhead pattern. All
//!   tenants *do* share one [`EngineResources`] pool, so worker
//!   threads and solve workspaces are recycled fleet-wide.
//! * **Quarantining build pool.** Engine builds run under
//!   `catch_unwind` with a wall-clock deadline and bounded, seeded
//!   retries. A fingerprint whose build keeps failing is quarantined:
//!   submits get a typed [`FleetError::Quarantined`] (with the
//!   remaining cooldown) instead of burning build attempts, and after
//!   the cooldown a single cold probe decides re-admission.
//! * **Byte-bounded factor cache.** Cached engines are charged their
//!   real footprint (matrix + analysis + replay + workspace bytes, via
//!   [`SolverEngine::footprint_bytes`]); admitting a new tenant sheds
//!   the coldest idle one first (LRU). Engines with in-flight requests
//!   are pinned — eviction never strands a ticket. Bytes are reserved
//!   *before* a build starts and corrected to the engine's actual
//!   footprint after, so live bytes never exceed the budget, not even
//!   transiently.
//!
//! ## Containment map
//!
//! What fails, where the blast radius stops, and how you can tell:
//!
//! | failure | containment boundary | what the client sees | counter | telemetry signal |
//! |---|---|---|---|---|
//! | engine build panics or times out ([`FaultSite::EngineBuild`]) | build pool: retries, then quarantine | [`FleetError::BuildFailed`], then [`FleetError::Quarantined`] | `builds_failed`, `quarantine_events` | long `fleet.build` span, then a `fleet.quarantine` instant |
//! | poisoned factor re-submitted after cooldown | one cold probe re-runs the build | success, or quarantine renewed | `build_retries`, `quarantine_rejections` | a fresh `fleet.build` span; `fleet.quarantine` instant again on renewal |
//! | one tenant's dispatcher panics repeatedly | that tenant's bulkhead thread | [`ServeError::Retryable`] on that tenant only; other tenants bit-identical | `tenant_aborts` | `serve.panel` spans stop on that tenant's thread only |
//! | one client floods the fleet | per-tenant request/byte budgets | [`FleetError::TenantQueueFull`] | `tenant_shed` | `serve_queue_depth` gauge pegged at the budget |
//! | cache pressure | LRU shed of coldest *idle* engine (in-flight engines pinned) | cold rebuild on next submit | `evictions` | `fleet.evict` instant (arg = bytes released); `fleet_cache_bytes` gauge drops |
//! | admission allocation failure ([`FaultSite::CacheAdmit`]) | admission gate | [`FleetError::CacheFull`] | `cache_admit_shed` | no `fleet.build` span follows the submit |
//! | fleet shutdown | every mailbox drained with typed errors | [`FleetError::ShuttingDown`] | — | `fleet_tenants_live` gauge falls to 0 |
//! | value refresh rejected or interrupted ([`FaultSite::ValueRefresh`]) | the tenant's engine validates before mutating; the old epoch keeps serving | typed error to the refresher only; tenant traffic unaffected | `refresh_failures` | `fleet.refresh` span with no nested `engine.refresh.values` commit |
//!
//! ## Value-refresh lifecycle
//!
//! When the operator drifts but its sparsity pattern does not, a
//! tenant does **not** need a second registration, a rebuild, or a
//! restart: [`EngineFleet::refresh_tenant`] swaps the new values into
//! the live tenant's warm engine in place, with zero symbolic work.
//! The refresh rides the tenant mailbox like any request, so it
//! executes on the bulkhead thread between request batches — the
//! engine's own numeric write lock is the panel-boundary quiesce, and
//! every in-flight ticket resolves against exactly one value epoch.
//! On success the stored factor is replaced (a later eviction +
//! rebuild uses the new values), the cache charge is corrected to the
//! refreshed engine's actual footprint, and the tenant's value epoch
//! gauge ([`EngineFleet::tenant_value_epoch`]) is bumped. On failure —
//! structure drift, a non-finite or zero pivot, or an injected
//! mid-refresh panic — the tenant keeps serving the old epoch
//! bit-identically and the caller gets the typed error; a fingerprint
//! inside its quarantine cooldown rejects refreshes with
//! [`FleetError::Quarantined`] exactly like submits. A registered but
//! non-resident fingerprint is refreshed *at rest*: same validation,
//! no engine to touch, the next cold build simply uses the new
//! values.
//!
//! Two invariants hold under any interleaving of the above — the chaos
//! suite (`tests/chaos.rs`) asserts both while injecting faults into
//! one tenant of a multi-tenant sweep:
//!
//! 1. **No ticket ever hangs.** Every [`FleetTicket`] resolves to a
//!    value or a typed error, even if its tenant thread panics, is
//!    evicted mid-queue, or the fleet shuts down underneath it.
//!    (Mailbox messages carry a drop-completing guard: a request
//!    dropped unread resolves its ticket with
//!    [`ServeError::Retryable`].)
//! 2. **The byte budget is hard.** `cache_bytes ≤ cache_budget_bytes`
//!    at every instant; [`FleetReport::cache_bytes_high_water`] is the
//!    audit trail.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use sptrsv::fleet::{EngineFleet, FleetConfig};
//!
//! let l = Arc::new(sparsemat::gen::banded_lower(256, 4, 3.0, 1));
//! let fleet = EngineFleet::new(FleetConfig::default()).unwrap();
//! let fp = fleet.register(Arc::clone(&l));
//! let (_, b) = sptrsv::verify::rhs_for(&l, 7);
//! let x = fleet.submit(fp, &b).unwrap().wait().unwrap();
//! assert_eq!(x.len(), 256);
//! ```

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mgpu_sim::MachineConfig;
use sparsemat::{CscMatrix, FactorFingerprint};

use crate::engine::{EngineResources, RefreshReport, SolverEngine};
use crate::exec::PANEL_K;
use crate::fault::{self, FaultSite};
use crate::serve::{
    backoff_delay, ServeError, ServiceConfig, ServiceEngine, ServiceHealth, ServiceReport,
    SolverService,
};
use crate::solver::{SolveError, SolveOptions};
use crate::telemetry::{self, Gauge, Site, SpanGuard, TelemetryReport};

/// Tuning knobs for an [`EngineFleet`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Machine model every tenant engine is built against.
    pub machine: MachineConfig,
    /// Solver options every tenant engine is built with. Defaults to
    /// the engine default with `verify` off — per-solve verification
    /// against the serial reference defeats the point of a warm cache.
    pub solve: SolveOptions,
    /// Per-tenant [`SolverService`] configuration (queue bounds,
    /// linger, supervision). The fleet overrides `supervision_seed`
    /// per tenant (`seed ^ fingerprint.structural`) so restart
    /// schedules are decorrelated across tenants but reproducible.
    pub service: ServiceConfig,
    /// Hard ceiling on cached bytes: engines + workspaces + matrices
    /// of all live tenants. Never exceeded, even mid-build.
    pub cache_budget_bytes: u64,
    /// Most in-flight requests one tenant may hold before its submits
    /// shed with [`FleetError::TenantQueueFull`].
    pub max_tenant_requests: usize,
    /// Most in-flight payload bytes one tenant may hold.
    pub max_tenant_bytes: usize,
    /// Build attempts (including the first) before a fingerprint is
    /// quarantined. Clamped to ≥ 1. Only *panicking* builds are
    /// retried; a typed build error is deterministic and fails fast.
    pub build_attempts: u32,
    /// Wall-clock deadline across all build attempts of one admission.
    pub build_deadline: Duration,
    /// Base backoff between build retries (seeded exponential jitter,
    /// capped at 100 ms).
    pub build_backoff: Duration,
    /// Most engine builds running concurrently fleet-wide; excess
    /// builders wait. Clamped to ≥ 1.
    pub build_concurrency: usize,
    /// How long a quarantined fingerprint is rejected before one cold
    /// probe may re-attempt its build.
    pub quarantine_cooldown: Duration,
    /// Seed for every deterministic schedule in the fleet (build
    /// backoff, per-tenant supervision jitter).
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            machine: MachineConfig::dgx1(2),
            solve: SolveOptions { verify: false, ..SolveOptions::default() },
            service: ServiceConfig::default(),
            cache_budget_bytes: 256 << 20,
            max_tenant_requests: 256,
            max_tenant_bytes: 64 << 20,
            build_attempts: 3,
            build_deadline: Duration::from_secs(10),
            build_backoff: Duration::from_micros(200),
            build_concurrency: 2,
            quarantine_cooldown: Duration::from_millis(500),
            seed: 0xF1EE7,
        }
    }
}

impl FleetConfig {
    /// Clamp the self-healable knobs and reject the unserviceable ones
    /// — a zero byte budget or zero tenant budget would reject every
    /// request forever, which is a configuration bug, not load.
    fn validated(&self) -> Result<FleetConfig, FleetError> {
        if self.cache_budget_bytes == 0 {
            return Err(FleetError::InvalidConfig { what: "cache_budget_bytes must be ≥ 1" });
        }
        if self.max_tenant_requests == 0 {
            return Err(FleetError::InvalidConfig { what: "max_tenant_requests must be ≥ 1" });
        }
        if self.max_tenant_bytes == 0 {
            return Err(FleetError::InvalidConfig { what: "max_tenant_bytes must be ≥ 1" });
        }
        let mut cfg = self.clone();
        cfg.build_attempts = cfg.build_attempts.max(1);
        cfg.build_concurrency = cfg.build_concurrency.max(1);
        Ok(cfg)
    }
}

/// Everything that can go wrong between a client and the fleet.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetError {
    /// No matrix has been [`EngineFleet::register`]ed under this
    /// fingerprint — the fleet cannot build what it has never seen.
    UnknownFactor {
        /// The unrecognized routing key.
        fingerprint: FactorFingerprint,
    },
    /// This fingerprint's builds failed repeatedly and it is cooling
    /// off; resubmit after `retry_in`.
    Quarantined {
        /// Consecutive admission failures recorded for the factor.
        failures: u32,
        /// Remaining cooldown before a re-admission probe is allowed.
        retry_in: Duration,
    },
    /// The engine build failed (panic, deadline, or a typed engine
    /// error) after `attempts` attempts; the fingerprint is now
    /// quarantined.
    BuildFailed {
        /// Build attempts actually made.
        attempts: u32,
    },
    /// The factor cache cannot fit this engine: the budget is smaller
    /// than the engine, or every resident engine is pinned by
    /// in-flight requests.
    CacheFull {
        /// Bytes the admission needed and could not reserve.
        needed_bytes: u64,
        /// The configured ceiling.
        budget_bytes: u64,
    },
    /// This tenant is at its per-tenant admission budget (requests or
    /// bytes); other tenants are unaffected.
    TenantQueueFull {
        /// The tenant's in-flight requests at rejection.
        depth: usize,
        /// The tenant's in-flight payload bytes at rejection.
        bytes: usize,
    },
    /// The fleet is shutting down (or shut down underneath a queued
    /// request).
    ShuttingDown,
    /// The fleet configuration cannot work.
    InvalidConfig {
        /// Which knob is broken.
        what: &'static str,
    },
    /// The tenant's serving front-end failed the request — the
    /// per-tenant [`SolverService`] error, verbatim.
    Serve(ServeError),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::UnknownFactor { fingerprint } => {
                write!(f, "no registered factor under fingerprint {fingerprint}")
            }
            FleetError::Quarantined { failures, retry_in } => {
                write!(f, "factor quarantined after {failures} failures; retry in {retry_in:?}")
            }
            FleetError::BuildFailed { attempts } => {
                write!(f, "engine build failed after {attempts} attempts; factor quarantined")
            }
            FleetError::CacheFull { needed_bytes, budget_bytes } => write!(
                f,
                "factor cache full: {needed_bytes} bytes needed, {budget_bytes} byte budget, \
                 no evictable engine"
            ),
            FleetError::TenantQueueFull { depth, bytes } => write!(
                f,
                "tenant at its admission budget ({depth} requests / {bytes} bytes in flight)"
            ),
            FleetError::ShuttingDown => write!(f, "the engine fleet is shutting down"),
            FleetError::InvalidConfig { what } => {
                write!(f, "invalid fleet configuration: {what}")
            }
            FleetError::Serve(e) => write!(f, "tenant service failed the request: {e}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Serve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ServeError> for FleetError {
    fn from(e: ServeError) -> Self {
        FleetError::Serve(e)
    }
}

/// Coarse per-tenant condition, reported by [`EngineFleet::health`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantHealth {
    /// Admitted; the engine build has not finished yet. Submits are
    /// accepted and queue in the tenant mailbox.
    Building,
    /// Serving normally.
    Ok,
    /// Serving, but impaired (circuit breaker open, or the dispatcher
    /// recently restarted).
    Degraded {
        /// Why the tenant is degraded.
        reason: &'static str,
    },
    /// The tenant is draining (eviction, abort cleanup, or fleet
    /// shutdown).
    Draining,
    /// The fingerprint is quarantined and holds no live engine.
    Quarantined {
        /// Consecutive admission failures recorded for the factor.
        failures: u32,
        /// Remaining cooldown before a re-admission probe is allowed.
        retry_in: Duration,
    },
}

/// Fleet-wide counters (all monotonic), snapshot by
/// [`EngineFleet::report`].
#[derive(Debug, Default)]
struct FleetCounters {
    submitted: AtomicU64,
    served: AtomicU64,
    failed: AtomicU64,
    tenant_shed: AtomicU64,
    cache_admit_shed: AtomicU64,
    quarantine_rejections: AtomicU64,
    builds_started: AtomicU64,
    builds_ok: AtomicU64,
    builds_failed: AtomicU64,
    build_retries: AtomicU64,
    quarantine_events: AtomicU64,
    evictions: AtomicU64,
    tenant_aborts: AtomicU64,
    value_refreshes: AtomicU64,
    refresh_failures: AtomicU64,
}

/// A point-in-time snapshot of the fleet, from [`EngineFleet::report`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetReport {
    /// Tenants currently holding a cached engine (or building one).
    pub tenants_live: usize,
    /// Fingerprints currently inside their quarantine cooldown.
    pub quarantined_now: usize,
    /// Bytes currently charged against the cache budget.
    pub cache_bytes: u64,
    /// Most bytes ever charged at once — always ≤ the budget.
    pub cache_bytes_high_water: u64,
    /// The configured ceiling, for reconciliation.
    pub cache_budget_bytes: u64,
    /// Requests accepted into some tenant mailbox.
    pub submitted: u64,
    /// Requests completed with a solution.
    pub served: u64,
    /// Requests completed with a typed error.
    pub failed: u64,
    /// Submits shed by a per-tenant admission budget.
    pub tenant_shed: u64,
    /// Cold admissions shed by injected allocation-pressure faults
    /// ([`FaultSite::CacheAdmit`]).
    pub cache_admit_shed: u64,
    /// Submits rejected because their fingerprint was in quarantine.
    pub quarantine_rejections: u64,
    /// Engine builds started (cold admissions).
    pub builds_started: u64,
    /// Builds that produced a serving engine.
    pub builds_ok: u64,
    /// Admissions that exhausted their build attempts or deadline.
    pub builds_failed: u64,
    /// Individual panicking build attempts that were retried.
    pub build_retries: u64,
    /// Times a fingerprint entered (or renewed) quarantine.
    pub quarantine_events: u64,
    /// Idle engines shed by the LRU to make room.
    pub evictions: u64,
    /// Tenant dispatchers that exhausted their restart budget and
    /// aborted — contained to their own bulkhead.
    pub tenant_aborts: u64,
    /// In-place value refreshes committed through
    /// [`EngineFleet::refresh_tenant`] — live tenants and at-rest
    /// factors both count.
    pub value_refreshes: u64,
    /// Refresh attempts that did not commit (structure drift, bad
    /// pivots, mid-refresh fault); the old epoch kept serving in every
    /// case.
    pub refresh_failures: u64,
    /// Span/event digest from the [`crate::telemetry`] plane, captured
    /// with this snapshot. `TelemetryReport::default()` (disabled,
    /// empty) unless [`crate::telemetry::set_enabled`] was armed.
    pub telemetry: TelemetryReport,
}

/// Live per-tenant gauges, shared between the tenant thread (writer)
/// and the fleet (reader), and read by every completing request slot.
#[derive(Debug)]
struct TenantGauge {
    inflight_requests: AtomicUsize,
    inflight_bytes: AtomicUsize,
    health: Mutex<TenantHealth>,
    last_report: Mutex<ServiceReport>,
    /// Monotonic count of committed value refreshes on this tenant's
    /// engine — 0 until the first [`EngineFleet::refresh_tenant`].
    value_epoch: AtomicU64,
}

impl TenantGauge {
    fn new(health: TenantHealth) -> TenantGauge {
        TenantGauge {
            inflight_requests: AtomicUsize::new(0),
            inflight_bytes: AtomicUsize::new(0),
            health: Mutex::new(health),
            last_report: Mutex::new(ServiceReport::default()),
            value_epoch: AtomicU64::new(0),
        }
    }

    fn health(&self) -> TenantHealth {
        *self.health.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn set_health(&self, h: TenantHealth) {
        *self.health.lock().unwrap_or_else(PoisonError::into_inner) = h;
    }
}

/// One request's rendezvous: the client waits on the condvar, whoever
/// owns the request completes it exactly once.
#[derive(Debug)]
struct ReqSlot {
    result: Mutex<Option<Result<Vec<f64>, FleetError>>>,
    cv: Condvar,
    bytes: usize,
    gauge: Arc<TenantGauge>,
    counters: Arc<FleetCounters>,
}

impl ReqSlot {
    fn complete(&self, r: Result<Vec<f64>, FleetError>) {
        let mut slot = self.result.lock().unwrap_or_else(PoisonError::into_inner);
        if slot.is_some() {
            debug_assert!(false, "fleet request completed twice");
            return;
        }
        match &r {
            Ok(_) => self.counters.served.fetch_add(1, Ordering::Relaxed),
            Err(_) => self.counters.failed.fetch_add(1, Ordering::Relaxed),
        };
        self.gauge.inflight_requests.fetch_sub(1, Ordering::AcqRel);
        self.gauge.inflight_bytes.fetch_sub(self.bytes, Ordering::AcqRel);
        *slot = Some(r);
        self.cv.notify_all();
    }
}

/// The no-hang guarantee, mechanized: a mailbox message owns its slot
/// through this guard, and dropping the guard un-completed (pump
/// panic, dead mailbox, `SendError`) resolves the ticket with a typed
/// retryable error instead of stranding the waiting client.
#[derive(Debug)]
struct SlotGuard(Option<Arc<ReqSlot>>);

impl SlotGuard {
    fn new(slot: Arc<ReqSlot>) -> SlotGuard {
        SlotGuard(Some(slot))
    }

    fn complete(mut self, r: Result<Vec<f64>, FleetError>) {
        if let Some(s) = self.0.take() {
            s.complete(r);
        }
    }
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        if let Some(s) = self.0.take() {
            s.complete(Err(FleetError::Serve(ServeError::Retryable {
                reason: "tenant dispatcher exited before serving the request",
            })));
        }
    }
}

/// A pending fleet request. Resolve it with [`FleetTicket::wait`] (or
/// the timed variants); dropping it abandons the result but the solve
/// still runs and the counters still reconcile.
#[derive(Debug)]
#[must_use = "the FleetTicket is the only way to collect this request's result"]
pub struct FleetTicket {
    slot: Arc<ReqSlot>,
}

impl FleetTicket {
    /// Block until the request completes.
    pub fn wait(self) -> Result<Vec<f64>, FleetError> {
        let mut g = self.slot.result.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(r) = g.take() {
                return r;
            }
            g = self.slot.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Block at most `timeout`. `Ok(result)` if the request completed
    /// in time; `Err(self)` returns the still-live ticket so the
    /// caller can keep waiting. `Duration::ZERO` is a pure poll.
    pub fn wait_timeout(
        self,
        timeout: Duration,
    ) -> Result<Result<Vec<f64>, FleetError>, FleetTicket> {
        let deadline = Instant::now() + timeout;
        {
            let slot = Arc::clone(&self.slot);
            let mut g = slot.result.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(r) = g.take() {
                    return Ok(r);
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                g = slot
                    .cv
                    .wait_timeout(g, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        }
        Err(self)
    }

    /// Non-blocking poll: `wait_timeout(Duration::ZERO)`.
    pub fn try_wait(self) -> Result<Result<Vec<f64>, FleetError>, FleetTicket> {
        self.wait_timeout(Duration::ZERO)
    }
}

enum TenantMsg {
    Req(Vec<f64>, SlotGuard),
    /// In-place value refresh of the tenant's engine. The reply sender
    /// carries the outcome plus the refreshed engine's actual
    /// footprint (for the cache recharge); dropping it unread — dead
    /// mailbox, pump panic — closes the channel, which the waiting
    /// [`EngineFleet::refresh_tenant`] maps to a typed retryable
    /// error. The no-hang guarantee, again.
    Refresh(Arc<CscMatrix>, Sender<Result<(RefreshReport, u64), FleetError>>),
    Stop,
}

struct TenantEntry {
    tx: Sender<TenantMsg>,
    join: Option<JoinHandle<()>>,
    gauge: Arc<TenantGauge>,
    /// Bytes currently charged against the cache budget for this
    /// tenant (reservation until the build recharges to actual).
    bytes: u64,
    last_used: u64,
    /// Until the build recharges: never an eviction victim, and the
    /// charged bytes are still the admission estimate.
    building: bool,
    n: usize,
}

#[derive(Debug, Clone, Copy)]
struct Quarantine {
    until: Instant,
    failures: u32,
}

struct FleetState {
    factors: HashMap<FactorFingerprint, Arc<CscMatrix>>,
    tenants: HashMap<FactorFingerprint, TenantEntry>,
    quarantine: HashMap<FactorFingerprint, Quarantine>,
    cache_bytes: u64,
    cache_high_water: u64,
    lru_clock: u64,
    builds_inflight: usize,
    shutdown: bool,
}

struct FleetShared {
    cfg: FleetConfig,
    counters: Arc<FleetCounters>,
    st: Mutex<FleetState>,
    cv: Condvar,
}

impl FleetShared {
    fn lock(&self) -> MutexGuard<'_, FleetState> {
        self.st.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Wait for a build slot. `false` means the fleet shut down while
    /// waiting and no permit was taken.
    fn acquire_build_permit(&self) -> bool {
        let mut st = self.lock();
        while st.builds_inflight >= self.cfg.build_concurrency && !st.shutdown {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        if st.shutdown {
            return false;
        }
        st.builds_inflight += 1;
        true
    }

    fn release_build_permit(&self) {
        let mut st = self.lock();
        st.builds_inflight -= 1;
        self.cv.notify_all();
    }

    /// Remove `fp`'s entry and release its charged bytes — whoever
    /// removes the entry releases the bytes, exactly once.
    fn remove_and_release(&self, fp: FactorFingerprint) {
        let mut st = self.lock();
        if let Some(e) = st.tenants.remove(&fp) {
            st.cache_bytes = st.cache_bytes.saturating_sub(e.bytes);
        }
    }

    /// Enter (or renew) quarantine for `fp` and tear down its entry.
    fn quarantine_and_remove(&self, fp: FactorFingerprint) {
        let mut st = self.lock();
        let cooldown = self.cfg.quarantine_cooldown;
        let q =
            st.quarantine.entry(fp).or_insert(Quarantine { until: Instant::now(), failures: 0 });
        q.failures += 1;
        q.until = Instant::now() + cooldown;
        self.counters.quarantine_events.fetch_add(1, Ordering::Relaxed);
        telemetry::instant(Site::FleetQuarantine, u64::from(q.failures));
        if let Some(e) = st.tenants.remove(&fp) {
            st.cache_bytes = st.cache_bytes.saturating_sub(e.bytes);
        }
    }

    /// Correct `fp`'s reservation to the engine's `actual` footprint.
    /// Shrinking always succeeds; growing may evict coldest idle
    /// engines, and if nothing can be shed the entry is removed and
    /// the admission fails with [`FleetError::CacheFull`]. Success
    /// clears the build flag and any quarantine record — the factor
    /// proved itself.
    fn recharge(&self, fp: FactorFingerprint, actual: u64) -> Result<(), FleetError> {
        loop {
            let mut st = self.lock();
            let Some(e) = st.tenants.get(&fp) else {
                // evicted or shut down mid-build: the remover released
                // our bytes; nothing to charge
                return Err(FleetError::ShuttingDown);
            };
            let reserved = e.bytes;
            if actual <= reserved
                || st.cache_bytes + (actual - reserved) <= self.cfg.cache_budget_bytes
            {
                let e = st.tenants.get_mut(&fp).expect("checked above");
                e.bytes = actual;
                e.building = false;
                if actual <= reserved {
                    st.cache_bytes -= reserved - actual;
                } else {
                    st.cache_bytes += actual - reserved;
                    st.cache_high_water = st.cache_high_water.max(st.cache_bytes);
                }
                st.quarantine.remove(&fp);
                return Ok(());
            }
            let delta = actual - reserved;
            let Some(victim) = pick_victim(&st, Some(fp)) else {
                st.tenants.remove(&fp);
                st.cache_bytes = st.cache_bytes.saturating_sub(reserved);
                return Err(FleetError::CacheFull {
                    needed_bytes: delta,
                    budget_bytes: self.cfg.cache_budget_bytes,
                });
            };
            let mut ve = st.tenants.remove(&victim).expect("victim picked from this map");
            st.cache_bytes = st.cache_bytes.saturating_sub(ve.bytes);
            drop(st);
            self.stop_tenant(&mut ve);
        }
    }

    /// Stop and join an already-removed tenant entry (bytes were
    /// released by the remover).
    fn stop_tenant(&self, e: &mut TenantEntry) {
        let _ = e.tx.send(TenantMsg::Stop);
        if let Some(j) = e.join.take() {
            let _ = j.join();
        }
        self.counters.evictions.fetch_add(1, Ordering::Relaxed);
        telemetry::instant(Site::FleetEvict, e.bytes);
    }

    /// Complete everything already queued in a dying mailbox with a
    /// typed error. Later sends fail (`SendError`) or are dropped with
    /// the receiver — either way the [`SlotGuard`] resolves them.
    fn fail_mailbox(&self, rx: &Receiver<TenantMsg>, err: impl Fn() -> FleetError) {
        while let Ok(msg) = rx.try_recv() {
            if let TenantMsg::Req(_, guard) = msg {
                guard.complete(Err(err()));
            }
        }
    }
}

/// Coldest idle engine: not building (bytes still an estimate, thread
/// mid-build), no in-flight requests (pinning — eviction must never
/// strand a ticket), smallest LRU stamp. `exclude` keeps a recharging
/// tenant from evicting itself.
fn pick_victim(st: &FleetState, exclude: Option<FactorFingerprint>) -> Option<FactorFingerprint> {
    st.tenants
        .iter()
        .filter(|(fp, e)| {
            Some(**fp) != exclude
                && !e.building
                && e.gauge.inflight_requests.load(Ordering::Acquire) == 0
        })
        .min_by_key(|(_, e)| e.last_used)
        .map(|(fp, _)| *fp)
}

/// Host bytes of the matrix an engine borrows — charged to the cache
/// alongside the engine because the fleet's `Arc<CscMatrix>` keeps it
/// alive exactly as long as the tenant.
fn matrix_host_bytes(m: &CscMatrix) -> u64 {
    ((m.n() + 1) * std::mem::size_of::<usize>()
        + m.nnz() * (std::mem::size_of::<u32>() + std::mem::size_of::<f64>())) as u64
}

/// Admission-time footprint estimate, deliberately generous: the
/// analysis arrays are a small multiple of the matrix, and the
/// reservation is corrected to [`SolverEngine::footprint_bytes`] the
/// moment the build finishes — over-reserving briefly is safe, while
/// under-reserving could let live bytes cross the budget mid-build.
fn estimate_bytes(m: &CscMatrix) -> u64 {
    let host = matrix_host_bytes(m);
    let workspace = m.n() as u64 * 8 * (3 * PANEL_K as u64 + 2);
    host * 4 + workspace
}

/// The multi-tenant serving tier: a factor registry, a byte-bounded
/// engine cache, and one bulkheaded [`SolverService`] per live tenant.
/// See the [module docs](self) for the containment map.
///
/// All methods take `&self`; the fleet is `Sync` and meant to be
/// shared across client threads (e.g. behind an `Arc`).
pub struct EngineFleet {
    shared: Arc<FleetShared>,
    resources: Arc<EngineResources>,
}

impl std::fmt::Debug for EngineFleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineFleet").field("report", &self.report()).finish()
    }
}

impl EngineFleet {
    /// Validate `cfg` and start an empty fleet (no threads until the
    /// first cold submit).
    pub fn new(cfg: FleetConfig) -> Result<EngineFleet, FleetError> {
        let cfg = cfg.validated()?;
        Ok(EngineFleet {
            shared: Arc::new(FleetShared {
                cfg,
                counters: Arc::new(FleetCounters::default()),
                st: Mutex::new(FleetState {
                    factors: HashMap::new(),
                    tenants: HashMap::new(),
                    quarantine: HashMap::new(),
                    cache_bytes: 0,
                    cache_high_water: 0,
                    lru_clock: 0,
                    builds_inflight: 0,
                    shutdown: false,
                }),
                cv: Condvar::new(),
            }),
            resources: Arc::new(EngineResources::new()),
        })
    }

    /// Register `m` under its content fingerprint (epoch 0) and return
    /// the routing key. Registration is cheap — no engine is built
    /// until the first submit. Re-registering a fingerprint replaces
    /// the stored matrix for *future* builds only.
    pub fn register(&self, m: Arc<CscMatrix>) -> FactorFingerprint {
        let fp = FactorFingerprint::of(&m);
        self.shared.lock().factors.insert(fp, m);
        fp
    }

    /// [`EngineFleet::register`] with an explicit value epoch — how a
    /// caller distinguishes numeric refreshes of one structure (see
    /// [`FactorFingerprint::next_epoch`]). Each epoch is its own
    /// tenant with its own engine and quarantine record.
    pub fn register_epoch(&self, m: Arc<CscMatrix>, epoch: u64) -> FactorFingerprint {
        let fp = FactorFingerprint::of(&m).with_epoch(epoch);
        self.shared.lock().factors.insert(fp, m);
        fp
    }

    /// Submit right-hand side `b` against the factor registered under
    /// `fp`. Warm tenants enqueue immediately; a cold fingerprint is
    /// admitted (reserving cache bytes, evicting coldest idle engines
    /// if needed) and its engine built on a fresh bulkhead thread
    /// while the request waits in the tenant mailbox.
    ///
    /// Never blocks on a solve. Typed rejections:
    /// [`FleetError::UnknownFactor`], [`FleetError::Quarantined`],
    /// [`FleetError::TenantQueueFull`], [`FleetError::CacheFull`],
    /// [`FleetError::ShuttingDown`], and dimension mismatches as
    /// [`FleetError::Serve`].
    pub fn submit(&self, fp: FactorFingerprint, b: &[f64]) -> Result<FleetTicket, FleetError> {
        loop {
            let mut st = self.shared.lock();
            if st.shutdown {
                return Err(FleetError::ShuttingDown);
            }
            if let Some(q) = st.quarantine.get(&fp).copied() {
                let now = Instant::now();
                if q.until > now {
                    self.shared.counters.quarantine_rejections.fetch_add(1, Ordering::Relaxed);
                    return Err(FleetError::Quarantined {
                        failures: q.failures,
                        retry_in: q.until - now,
                    });
                }
            }
            st.lru_clock += 1;
            let clock = st.lru_clock;

            // warm path: the tenant exists (serving or still building)
            if let Some(entry) = st.tenants.get_mut(&fp) {
                if b.len() != entry.n {
                    return Err(FleetError::Serve(ServeError::Solve(
                        SolveError::DimensionMismatch {
                            n: entry.n,
                            rhs: b.len(),
                            index: None,
                            buffer: "b",
                        },
                    )));
                }
                let depth = entry.gauge.inflight_requests.load(Ordering::Acquire);
                let bytes_inflight = entry.gauge.inflight_bytes.load(Ordering::Acquire);
                let bytes = std::mem::size_of_val(b);
                if depth >= self.shared.cfg.max_tenant_requests
                    || bytes_inflight.saturating_add(bytes) > self.shared.cfg.max_tenant_bytes
                {
                    self.shared.counters.tenant_shed.fetch_add(1, Ordering::Relaxed);
                    return Err(FleetError::TenantQueueFull { depth, bytes: bytes_inflight });
                }
                entry.last_used = clock;
                entry.gauge.inflight_requests.fetch_add(1, Ordering::AcqRel);
                entry.gauge.inflight_bytes.fetch_add(bytes, Ordering::AcqRel);
                let gauge = Arc::clone(&entry.gauge);
                let tx = entry.tx.clone();
                self.shared.counters.submitted.fetch_add(1, Ordering::Relaxed);
                drop(st);
                let slot = Arc::new(ReqSlot {
                    result: Mutex::new(None),
                    cv: Condvar::new(),
                    bytes,
                    gauge,
                    counters: Arc::clone(&self.shared.counters),
                });
                let ticket = FleetTicket { slot: Arc::clone(&slot) };
                // a SendError drops the message, whose SlotGuard then
                // completes the ticket — the no-hang guarantee again
                let _ = tx.send(TenantMsg::Req(b.to_vec(), SlotGuard::new(slot)));
                return Ok(ticket);
            }

            // cold path: admit, reserve bytes, spawn the bulkhead
            let Some(matrix) = st.factors.get(&fp).map(Arc::clone) else {
                return Err(FleetError::UnknownFactor { fingerprint: fp });
            };
            if b.len() != matrix.n() {
                return Err(FleetError::Serve(ServeError::Solve(SolveError::DimensionMismatch {
                    n: matrix.n(),
                    rhs: b.len(),
                    index: None,
                    buffer: "b",
                })));
            }
            let needed = estimate_bytes(&matrix);
            if fault::fire(FaultSite::CacheAdmit) {
                // injected allocation pressure at the admission gate:
                // shed exactly like a full cache
                self.shared.counters.cache_admit_shed.fetch_add(1, Ordering::Relaxed);
                return Err(FleetError::CacheFull {
                    needed_bytes: needed,
                    budget_bytes: self.shared.cfg.cache_budget_bytes,
                });
            }
            if st.cache_bytes + needed > self.shared.cfg.cache_budget_bytes {
                let Some(victim) = pick_victim(&st, None) else {
                    return Err(FleetError::CacheFull {
                        needed_bytes: needed,
                        budget_bytes: self.shared.cfg.cache_budget_bytes,
                    });
                };
                let mut ve = st.tenants.remove(&victim).expect("victim picked from this map");
                st.cache_bytes = st.cache_bytes.saturating_sub(ve.bytes);
                drop(st);
                self.shared.stop_tenant(&mut ve);
                continue;
            }
            st.cache_bytes += needed;
            st.cache_high_water = st.cache_high_water.max(st.cache_bytes);
            self.shared.counters.builds_started.fetch_add(1, Ordering::Relaxed);
            let gauge = Arc::new(TenantGauge::new(TenantHealth::Building));
            let (tx, rx) = channel();
            st.tenants.insert(
                fp,
                TenantEntry {
                    tx,
                    join: None,
                    gauge: Arc::clone(&gauge),
                    bytes: needed,
                    last_used: clock,
                    building: true,
                    n: matrix.n(),
                },
            );
            let shared = Arc::clone(&self.shared);
            let resources = Arc::clone(&self.resources);
            let spawned = std::thread::Builder::new()
                .name(format!("sptrsv-fleet-{fp}"))
                .spawn(move || tenant_main(fp, matrix, shared, resources, gauge, rx));
            match spawned {
                Ok(j) => {
                    st.tenants.get_mut(&fp).expect("just inserted").join = Some(j);
                }
                Err(_) => {
                    st.tenants.remove(&fp);
                    st.cache_bytes = st.cache_bytes.saturating_sub(needed);
                    return Err(FleetError::Serve(ServeError::Spawn));
                }
            }
            drop(st);
            // loop back: the warm path performs the actual enqueue
        }
    }

    /// Refresh the factor registered under `fp` with new numeric
    /// values **in place** — no second tenant, no rebuild, no symbolic
    /// work. `m2` must have the exact sparsity pattern of the
    /// registered matrix; only its values may differ. The routing key
    /// stays `fp`.
    ///
    /// A **live** tenant is refreshed on its own bulkhead thread: the
    /// refresh rides the mailbox between request batches, commits at a
    /// panel boundary under the engine's numeric write lock, replaces
    /// the stored factor (so a later eviction + rebuild uses the new
    /// values), corrects the cache charge to the refreshed footprint,
    /// and bumps [`EngineFleet::tenant_value_epoch`]. A registered but
    /// **non-resident** fingerprint is refreshed at rest: validated
    /// the same way, stored for the next cold build, reported with
    /// `value_epoch` 0.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownFactor`] for an unregistered fingerprint;
    /// [`FleetError::Quarantined`] inside a cooldown (same gate as
    /// submits); [`FleetError::ShuttingDown`]; and
    /// [`FleetError::Serve`] wrapping the engine's typed rejection —
    /// [`SolveError::StructureMismatch`] on pattern drift, the factor
    /// audit's error on non-finite or zero pivots, or
    /// [`ServeError::Retryable`] when an injected
    /// [`FaultSite::ValueRefresh`] panic interrupted the refresh
    /// before commit. In every failure case the tenant keeps serving
    /// the old value epoch bit-identically.
    pub fn refresh_tenant(
        &self,
        fp: FactorFingerprint,
        m2: Arc<CscMatrix>,
    ) -> Result<RefreshReport, FleetError> {
        let _refresh = SpanGuard::enter(Site::FleetRefresh);
        let tx = {
            let mut st = self.shared.lock();
            if st.shutdown {
                return Err(FleetError::ShuttingDown);
            }
            if let Some(q) = st.quarantine.get(&fp).copied() {
                let now = Instant::now();
                if q.until > now {
                    self.shared.counters.quarantine_rejections.fetch_add(1, Ordering::Relaxed);
                    return Err(FleetError::Quarantined {
                        failures: q.failures,
                        retry_in: q.until - now,
                    });
                }
            }
            if !st.factors.contains_key(&fp) {
                return Err(FleetError::UnknownFactor { fingerprint: fp });
            }
            if st.tenants.contains_key(&fp) {
                st.lru_clock += 1;
                let clock = st.lru_clock;
                let entry = st.tenants.get_mut(&fp).expect("checked above");
                entry.last_used = clock;
                entry.tx.clone()
            } else {
                // at rest: validate against the stored structure, then
                // swap the registration so the next cold build picks
                // up the new values
                let stored = Arc::clone(st.factors.get(&fp).expect("checked above"));
                drop(st);
                let report = match self.validate_at_rest(&stored, &m2) {
                    Ok(r) => r,
                    Err(e) => {
                        self.shared.counters.refresh_failures.fetch_add(1, Ordering::Relaxed);
                        return Err(e);
                    }
                };
                self.shared.lock().factors.insert(fp, m2);
                self.shared.counters.value_refreshes.fetch_add(1, Ordering::Relaxed);
                return Ok(report);
            }
        };
        let (reply_tx, reply_rx) = channel();
        let _ = tx.send(TenantMsg::Refresh(Arc::clone(&m2), reply_tx));
        let outcome = reply_rx.recv().unwrap_or(Err(FleetError::Serve(ServeError::Retryable {
            reason: "tenant exited before the value refresh ran; the old epoch is intact",
        })));
        match outcome {
            Ok((report, actual)) => {
                self.shared.lock().factors.insert(fp, m2);
                // correct the cache charge to the refreshed engine's
                // actual footprint (identical structure ⇒ identical
                // arrays, so this is a same-size recharge in practice;
                // a missing entry just means the tenant was evicted
                // after replying, and the evictor released its bytes)
                let _ = self.shared.recharge(fp, actual);
                self.shared.counters.value_refreshes.fetch_add(1, Ordering::Relaxed);
                Ok(report)
            }
            Err(e) => {
                self.shared.counters.refresh_failures.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// The at-rest half of [`EngineFleet::refresh_tenant`]: the same
    /// validate-before-mutate contract a live engine enforces, applied
    /// to a factor with no engine built over it.
    fn validate_at_rest(
        &self,
        stored: &CscMatrix,
        m2: &CscMatrix,
    ) -> Result<RefreshReport, FleetError> {
        if m2.n() != stored.n()
            || m2.col_ptr() != stored.col_ptr()
            || m2.row_idx() != stored.row_idx()
        {
            return Err(FleetError::Serve(ServeError::Solve(SolveError::StructureMismatch {
                expected: FactorFingerprint::of(stored).structure_hash(),
                got: FactorFingerprint::of(m2).structure_hash(),
            })));
        }
        let audit = sparsemat::audit_factor(m2);
        if let Some(e) = audit.first_error() {
            return Err(FleetError::Serve(ServeError::Solve(SolveError::Matrix(e))));
        }
        Ok(RefreshReport { n: m2.n(), nnz: m2.nnz(), value_epoch: 0, audit })
    }

    /// Committed value refreshes on `fp`'s live engine — 0 before the
    /// first [`EngineFleet::refresh_tenant`], `None` for fingerprints
    /// without a live tenant.
    pub fn tenant_value_epoch(&self, fp: FactorFingerprint) -> Option<u64> {
        let st = self.shared.lock();
        st.tenants.get(&fp).map(|e| e.gauge.value_epoch.load(Ordering::Acquire))
    }

    /// Per-tenant condition, sorted by fingerprint for deterministic
    /// output: live tenants report their gauge; quarantined
    /// fingerprints without a live engine are appended as
    /// [`TenantHealth::Quarantined`].
    pub fn health(&self) -> Vec<(FactorFingerprint, TenantHealth)> {
        let st = self.shared.lock();
        let now = Instant::now();
        let mut v: Vec<_> = st.tenants.iter().map(|(fp, e)| (*fp, e.gauge.health())).collect();
        for (fp, q) in &st.quarantine {
            if !st.tenants.contains_key(fp) && q.until > now {
                v.push((
                    *fp,
                    TenantHealth::Quarantined { failures: q.failures, retry_in: q.until - now },
                ));
            }
        }
        v.sort_by_key(|(fp, _)| *fp);
        v
    }

    /// The last [`ServiceReport`] a tenant's service published (the
    /// pump refreshes it after every batch, and the final report lands
    /// when the tenant drains). `None` for unknown or never-built
    /// fingerprints.
    pub fn tenant_report(&self, fp: FactorFingerprint) -> Option<ServiceReport> {
        let st = self.shared.lock();
        st.tenants
            .get(&fp)
            .map(|e| e.gauge.last_report.lock().unwrap_or_else(PoisonError::into_inner).clone())
    }

    /// A point-in-time snapshot of the fleet counters and gauges.
    /// Also publishes the fleet gauges to the [`crate::telemetry`]
    /// registry and, when that plane is armed, attaches a span digest.
    pub fn report(&self) -> FleetReport {
        let st = self.shared.lock();
        let c = &self.shared.counters;
        let now = Instant::now();
        telemetry::gauge_set(Gauge::FleetTenantsLive, st.tenants.len() as u64);
        telemetry::gauge_set(Gauge::FleetCacheBytes, st.cache_bytes);
        FleetReport {
            tenants_live: st.tenants.len(),
            quarantined_now: st.quarantine.values().filter(|q| q.until > now).count(),
            cache_bytes: st.cache_bytes,
            cache_bytes_high_water: st.cache_high_water,
            cache_budget_bytes: self.shared.cfg.cache_budget_bytes,
            submitted: c.submitted.load(Ordering::Relaxed),
            served: c.served.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            tenant_shed: c.tenant_shed.load(Ordering::Relaxed),
            cache_admit_shed: c.cache_admit_shed.load(Ordering::Relaxed),
            quarantine_rejections: c.quarantine_rejections.load(Ordering::Relaxed),
            builds_started: c.builds_started.load(Ordering::Relaxed),
            builds_ok: c.builds_ok.load(Ordering::Relaxed),
            builds_failed: c.builds_failed.load(Ordering::Relaxed),
            build_retries: c.build_retries.load(Ordering::Relaxed),
            quarantine_events: c.quarantine_events.load(Ordering::Relaxed),
            evictions: c.evictions.load(Ordering::Relaxed),
            tenant_aborts: c.tenant_aborts.load(Ordering::Relaxed),
            value_refreshes: c.value_refreshes.load(Ordering::Relaxed),
            refresh_failures: c.refresh_failures.load(Ordering::Relaxed),
            telemetry: telemetry::report(),
        }
    }

    /// Begin shutdown: reject new submits, stop and join every tenant
    /// (their queued work completes with typed errors per the service
    /// config), release all cache bytes. Idempotent; also runs on
    /// drop.
    pub fn shutdown(&self) {
        let entries: Vec<TenantEntry> = {
            let mut st = self.shared.lock();
            st.shutdown = true;
            self.shared.cv.notify_all();
            let fps: Vec<_> = st.tenants.keys().copied().collect();
            fps.iter().filter_map(|fp| st.tenants.remove(fp)).collect()
        };
        for mut e in entries {
            let _ = e.tx.send(TenantMsg::Stop);
            if let Some(j) = e.join.take() {
                let _ = j.join();
            }
            let mut st = self.shared.lock();
            st.cache_bytes = st.cache_bytes.saturating_sub(e.bytes);
        }
    }
}

impl Drop for EngineFleet {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The bulkhead: one tenant's whole life on its own OS thread — build
/// (with retries, deadline and quarantine), recharge the byte
/// reservation, then serve the mailbox through a supervised
/// [`SolverService`] until stopped. Every exit path drains the mailbox
/// with typed errors; a panic here is caught and contained.
fn tenant_main(
    fp: FactorFingerprint,
    matrix: Arc<CscMatrix>,
    shared: Arc<FleetShared>,
    resources: Arc<EngineResources>,
    gauge: Arc<TenantGauge>,
    rx: Receiver<TenantMsg>,
) {
    let cfg = shared.cfg.clone();
    if !shared.acquire_build_permit() {
        shared.remove_and_release(fp);
        shared.fail_mailbox(&rx, || FleetError::ShuttingDown);
        return;
    }
    let deadline = Instant::now() + cfg.build_deadline;
    let mut attempts = 0u32;
    let mut engine = None;
    // one fleet.build span per admission, covering every retry — the
    // inner engine.build.* spans land inside it on the timeline
    let build_span = SpanGuard::enter(Site::FleetBuild);
    while attempts < cfg.build_attempts {
        attempts += 1;
        let built = catch_unwind(AssertUnwindSafe(|| {
            fault::fire_panic(FaultSite::EngineBuild);
            SolverEngine::build_shared(
                &matrix,
                cfg.machine.clone(),
                &cfg.solve,
                Arc::clone(&resources),
            )
        }));
        match built {
            Ok(Ok(e)) if Instant::now() <= deadline => {
                engine = Some(e);
                break;
            }
            Ok(Ok(_)) => break,  // built, but past the deadline: too slow, fail
            Ok(Err(_)) => break, // typed engine error: deterministic, never retry
            Err(_) => {}         // panic: retryable
        }
        if attempts < cfg.build_attempts && Instant::now() < deadline {
            shared.counters.build_retries.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(backoff_delay(
                cfg.build_backoff,
                Duration::from_millis(100),
                cfg.seed ^ fp.structural,
                attempts,
            ));
        } else {
            break;
        }
    }
    shared.release_build_permit();
    drop(build_span);
    let Some(engine) = engine else {
        shared.counters.builds_failed.fetch_add(1, Ordering::Relaxed);
        shared.quarantine_and_remove(fp);
        gauge.set_health(TenantHealth::Draining);
        shared.fail_mailbox(&rx, || FleetError::BuildFailed { attempts });
        return;
    };
    let actual = matrix_host_bytes(&matrix) + engine.footprint_bytes();
    if let Err(e) = shared.recharge(fp, actual) {
        gauge.set_health(TenantHealth::Draining);
        shared.fail_mailbox(&rx, || e.clone());
        return;
    }
    shared.counters.builds_ok.fetch_add(1, Ordering::Relaxed);
    gauge.set_health(TenantHealth::Ok);
    let mut svc_cfg = cfg.service.clone();
    svc_cfg.supervision_seed = cfg.seed ^ fp.structural;
    let ran = catch_unwind(AssertUnwindSafe(|| {
        SolverService::run_supervised(ServiceEngine::Solver(&engine), &svc_cfg, |svc| {
            pump(&rx, svc, &gauge)
        })
    }));
    match ran {
        Ok(Ok(((), report))) => {
            // normal Stop-driven exit: whoever sent Stop (evictor or
            // shutdown) already removed the entry and released bytes
            *gauge.last_report.lock().unwrap_or_else(PoisonError::into_inner) = report;
            gauge.set_health(TenantHealth::Draining);
            shared.fail_mailbox(&rx, || FleetError::ShuttingDown);
        }
        Ok(Err(e)) => {
            shared.remove_and_release(fp);
            gauge.set_health(TenantHealth::Draining);
            shared.fail_mailbox(&rx, || FleetError::Serve(e.clone()));
        }
        Err(_panic) => {
            // the dispatcher exhausted its restart budget and aborted;
            // the blast radius ends at this bulkhead
            shared.counters.tenant_aborts.fetch_add(1, Ordering::Relaxed);
            shared.quarantine_and_remove(fp);
            gauge.set_health(TenantHealth::Draining);
            shared.fail_mailbox(&rx, || {
                FleetError::Serve(ServeError::Retryable {
                    reason: "tenant dispatcher aborted after exhausting its restart budget",
                })
            });
        }
    }
}

/// The tenant thread's serving loop: batch the mailbox into the
/// service, resolve tickets, mirror service health into the gauge.
/// Returns on Stop, a dead mailbox, or a service abort (Draining
/// without Stop — returning lets `run_supervised` re-raise the panic
/// into `tenant_main`'s containment).
fn pump(rx: &Receiver<TenantMsg>, svc: &SolverService<'_, '_>, gauge: &TenantGauge) {
    let mut stop = false;
    let mut msgs = Vec::new();
    let mut inflight = Vec::new();
    while !stop {
        let Ok(first) = rx.recv() else { return };
        msgs.push(first);
        while let Ok(m) = rx.try_recv() {
            msgs.push(m);
        }
        for m in msgs.drain(..) {
            match m {
                TenantMsg::Req(b, guard) => match svc.submit(&b) {
                    Ok(t) => inflight.push((t, guard)),
                    Err(e) => guard.complete(Err(FleetError::Serve(e))),
                },
                TenantMsg::Refresh(m2, reply) => {
                    let r = svc
                        .refresh_solver(&m2)
                        .map(|rep| {
                            let bytes = match svc.engine() {
                                ServiceEngine::Solver(e) => {
                                    matrix_host_bytes(&m2) + e.footprint_bytes()
                                }
                                ServiceEngine::Preconditioner(_) => 0,
                            };
                            gauge.value_epoch.store(rep.value_epoch, Ordering::Release);
                            (rep, bytes)
                        })
                        .map_err(FleetError::Serve);
                    let _ = reply.send(r);
                }
                TenantMsg::Stop => stop = true,
            }
        }
        for (t, guard) in inflight.drain(..) {
            guard.complete(t.wait().map_err(FleetError::Serve));
        }
        let h = svc.health();
        gauge.set_health(match h {
            ServiceHealth::Ok => TenantHealth::Ok,
            ServiceHealth::Degraded { reason } => TenantHealth::Degraded { reason },
            ServiceHealth::Draining => TenantHealth::Draining,
        });
        *gauge.last_report.lock().unwrap_or_else(PoisonError::into_inner) = svc.stats();
        if matches!(h, ServiceHealth::Draining) && !stop {
            return;
        }
    }
}
